# Benchmark binaries. Included from the top-level CMakeLists (instead of
# add_subdirectory) so that build/bench/ contains ONLY the bench
# executables and `for b in build/bench/*; do $b; done` runs them cleanly.

function(df_add_bench name)
  add_executable(${name} ${ARGN})
  target_link_libraries(${name} PRIVATE droidfuzz)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

df_add_bench(bench_table2_bugs ${CMAKE_SOURCE_DIR}/bench/bench_table2_bugs.cc)
df_add_bench(bench_fig4_coverage ${CMAKE_SOURCE_DIR}/bench/bench_fig4_coverage.cc)
df_add_bench(bench_fig5_difuze ${CMAKE_SOURCE_DIR}/bench/bench_fig5_difuze.cc)
df_add_bench(bench_table3_ablation ${CMAKE_SOURCE_DIR}/bench/bench_table3_ablation.cc)
df_add_bench(bench_fleet_parallel ${CMAKE_SOURCE_DIR}/bench/bench_fleet_parallel.cc)
df_add_bench(bench_fault_recovery ${CMAKE_SOURCE_DIR}/bench/bench_fault_recovery.cc)
df_add_bench(bench_service_throughput ${CMAKE_SOURCE_DIR}/bench/bench_service_throughput.cc)
df_add_bench(bench_micro ${CMAKE_SOURCE_DIR}/bench/bench_micro.cc)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
