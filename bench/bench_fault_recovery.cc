// Fault-recovery bench (DESIGN.md §9): runs the full 7-device catalog
// fleet to the same per-device budget at fault rates 0 / 1e-3 / 1e-2 and
// reports, per rate, the aggregate throughput and the recovery cost the
// transport layer paid (retries, reboots, lost executions, virtual
// recovery latency).
//
// Two content contracts ride along, both validated by
// scripts/check_bench_json.py:
//   - every rate configuration is run twice and must produce bit-identical
//     per-device results (the fault schedule is a seeded plan, not chance);
//   - the faulty campaigns lose no bugs: every bug the fault-free run finds
//     at this budget is also found at fault rate 1e-2 (lost_bugs == 0).
//
// Recovery latency is *virtual* time (core/exec/faults.h): deterministic
// microsecond charges for backoff waits, hang deadlines, and reboots, so
// it is content, not wall clock. Throughput lives under "timing".
//
// Env knobs: DF_FLEET_EXECS (per-device executions; defaults to the 48h
// calibrated budget, where both campaigns reach bug saturation — at much
// smaller budgets the two trajectories may genuinely find different bug
// subsets and lost_bugs can be non-zero), DF_SEED.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fuzz/daemon.h"
#include "device/catalog.h"
#include "util/hash.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kSlice = 256;
constexpr uint64_t kRatesPpm[] = {0, 1000, 10000};
constexpr size_t kRepsPerRate = 2;  // determinism needs a second run

uint64_t fleet_execs_from_env(uint64_t fallback) {
  const char* env = std::getenv("DF_FLEET_EXECS");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : fallback;
}

struct RateRun {
  double wall_seconds = 0;
  std::string fingerprint;  // per-device results + fault accounting
  core::FaultTotals totals; // summed across the fleet
  std::map<std::string, std::set<std::string>> bugs;  // device -> titles
  size_t bug_count = 0;
  std::vector<BenchSeries> series;
  std::unique_ptr<obs::Observability> obs;
  std::string velocity_json;  // coverage-velocity section, rendered pre-exit
  core::FleetUtilization util;
  core::SnapshotStats snap;   // summed across the fleet
  uint64_t replay_execs = 0;  // kReplay attempts: budget spent re-warming
};

RateRun run_fleet(uint64_t seed, uint64_t execs, uint64_t rate_ppm,
                  size_t rep, const std::vector<std::string>& ids,
                  bool use_snapshots = true) {
  RateRun out;
  core::DaemonConfig cfg;
  cfg.seed = seed;
  cfg.engine.use_snapshots = use_snapshots;
  cfg.engine.fault.rate = static_cast<double>(rate_ppm) / 1e6;
  core::Daemon d(cfg);
  out.obs = std::make_unique<obs::Observability>();
  out.obs->trace.set_record_execs(false);
  obs::StatsReporter reporter(std::max<uint64_t>(execs / 4, 1));
  d.attach_observability(out.obs.get());
  d.attach_reporter(&reporter);
  for (const auto& id : ids) d.add_device(id);
  for (const auto& id : ids) d.engine(id)->setup();

  const WallTimer t;
  d.run(execs, kSlice);
  out.wall_seconds = t.seconds();

  for (const auto& id : ids) {
    core::Engine* e = d.engine(id);
    out.fingerprint += id;
    out.fingerprint += ":execs=" + std::to_string(e->executions());
    out.fingerprint += ",kcov=" + std::to_string(e->kernel_coverage());
    out.fingerprint += ",corpus=" + std::to_string(e->corpus().size());
    out.fingerprint += ",edges=" + std::to_string(e->relations().edge_count());
    if (const core::FaultInjector* inj = e->fault_injector()) {
      const core::FaultTotals& ft = inj->totals();
      out.totals.injected += ft.injected;
      out.totals.hangs += ft.hangs;
      out.totals.transport_errors += ft.transport_errors;
      out.totals.reboots += ft.reboots;
      out.totals.kasan_reboots += ft.kasan_reboots;
      out.totals.retries += ft.retries;
      out.totals.lost_execs += ft.lost_execs;
      out.totals.recovery_virtual_us += ft.recovery_virtual_us;
      out.fingerprint += ",faults=" + std::to_string(ft.injected) + "/" +
                         std::to_string(ft.lost_execs) + "/" +
                         std::to_string(ft.recovery_virtual_us);
    }
    const core::SnapshotStats& ss = e->snapshot_stats();
    out.snap.captures += ss.captures;
    out.snap.restores += ss.restores;
    out.snap.forks += ss.forks;
    out.snap.fault_recoveries += ss.fault_recoveries;
    out.snap.prefix_execs_saved += ss.prefix_execs_saved;
    out.snap.prefix_calls_saved += ss.prefix_calls_saved;
    out.snap.sections_total += ss.sections_total;
    out.snap.sections_shared += ss.sections_shared;
    out.snap.bytes_total += ss.bytes_total;
    out.snap.bytes_shared += ss.bytes_shared;
    out.replay_execs +=
        e->attribution().row(obs::ProgramOrigin::kReplay).attempts;
    out.fingerprint += ",snap=" + std::to_string(ss.captures) + "/" +
                       std::to_string(ss.restores) + "/" +
                       std::to_string(ss.forks) + "/" +
                       std::to_string(ss.fault_recoveries);
    for (const auto& b : e->crashes().bugs()) {
      out.fingerprint += ",bug=" + b.title + "@" +
                         std::to_string(b.first_exec);
      out.bugs[id].insert(b.title);
      ++out.bug_count;
    }
    out.fingerprint += "\n";
  }
  out.fingerprint +=
      "corpus_hash=" + std::to_string(util::fnv1a(d.save_corpus())) + "\n";

  const std::string config = "rate" + std::to_string(rate_ppm) + "ppm";
  for (const auto& id : ids) {
    out.series.push_back({id, config, rep, reporter.series(id), {}});
    capture_analytics(out.series.back(), *d.engine(id));
  }
  out.velocity_json = d.velocity().to_json(&reporter);
  out.util = d.utilization();
  return out;
}

// Bugs the fault-free run found that `faulty` missed, per device.
size_t lost_bugs(const RateRun& fault_free, const RateRun& faulty) {
  size_t lost = 0;
  for (const auto& [id, titles] : fault_free.bugs) {
    const auto it = faulty.bugs.find(id);
    for (const auto& title : titles) {
      if (it == faulty.bugs.end() || it->second.count(title) == 0) {
        ++lost;
        std::fprintf(stderr, "fault_recovery: LOST BUG %s on %s\n",
                     title.c_str(), id.c_str());
      }
    }
  }
  return lost;
}

}  // namespace

int main() {
  const WallTimer wall;
  const uint64_t seed = seed_from_env();
  const uint64_t execs = fleet_execs_from_env(k48h);

  std::vector<std::string> ids;
  for (const auto& spec : device::device_table()) ids.push_back(spec.id);

  std::printf(
      "=== fault recovery: %zu devices x %llu execs, slice %llu, "
      "fault rates 0 / 1e-3 / 1e-2 ===\n",
      ids.size(), static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(kSlice));

  struct RateResult {
    uint64_t rate_ppm = 0;
    double best_wall = 0;
    double execs_per_sec = 0;
    core::FaultTotals totals;
    size_t bug_count = 0;
    core::FleetUtilization util;  // rep-0 per-worker accounting
  };
  std::vector<RateResult> results;
  std::vector<BenchSeries> exported;
  std::unique_ptr<obs::Observability> exported_obs;
  std::unique_ptr<RateRun> baseline;  // fault-free, rep 0
  std::unique_ptr<RateRun> faultiest;
  bool deterministic = true;

  for (const uint64_t rate_ppm : kRatesPpm) {
    RateResult r;
    r.rate_ppm = rate_ppm;
    std::string rate_fp;
    for (size_t rep = 0; rep < kRepsPerRate; ++rep) {
      RateRun run = run_fleet(seed, execs, rate_ppm, rep, ids);
      if (rate_fp.empty()) {
        rate_fp = run.fingerprint;
      } else if (run.fingerprint != rate_fp) {
        deterministic = false;
        std::fprintf(stderr,
                     "fault_recovery: NON-DETERMINISTIC results at "
                     "rate=%lluppm rep=%zu\n",
                     static_cast<unsigned long long>(rate_ppm), rep);
      }
      if (r.best_wall == 0 || run.wall_seconds < r.best_wall) {
        r.best_wall = run.wall_seconds;
      }
      if (rep == 0) {
        r.totals = run.totals;
        r.bug_count = run.bug_count;
        r.util = run.util;
        // Export the fault-free and the faultiest trajectories.
        if (rate_ppm == 0 || rate_ppm == kRatesPpm[2]) {
          for (auto& s : run.series) exported.push_back(std::move(s));
        }
        if (rate_ppm == 0) {
          exported_obs = std::move(run.obs);
          baseline = std::make_unique<RateRun>(std::move(run));
        } else if (rate_ppm == kRatesPpm[2]) {
          faultiest = std::make_unique<RateRun>(std::move(run));
        }
      }
    }
    const double total_execs =
        static_cast<double>(execs) * static_cast<double>(ids.size());
    r.execs_per_sec = total_execs / r.best_wall;
    results.push_back(r);
  }

  // Snapshots on-vs-off at the faultiest rate: same budget, snapshots off
  // means fault recovery falls back to the reestablish() replay, spending
  // budget re-warming instead of fuzzing. Two reps for the off-trajectory's
  // own determinism; min wall for throughput.
  double off_wall = 0;
  std::unique_ptr<RateRun> off_run;
  bool off_deterministic = true;
  for (size_t rep = 0; rep < kRepsPerRate; ++rep) {
    RateRun run = run_fleet(seed, execs, kRatesPpm[2], rep, ids,
                            /*use_snapshots=*/false);
    if (off_run != nullptr && run.fingerprint != off_run->fingerprint) {
      off_deterministic = false;
      deterministic = false;
      std::fprintf(stderr,
                   "fault_recovery: NON-DETERMINISTIC snapshots-off results "
                   "at rep=%zu\n",
                   rep);
    }
    if (off_wall == 0 || run.wall_seconds < off_wall) {
      off_wall = run.wall_seconds;
    }
    if (off_run == nullptr) off_run = std::make_unique<RateRun>(std::move(run));
  }
  const double fleet_execs_total =
      static_cast<double>(execs) * static_cast<double>(ids.size());
  const double on_rate = results.back().execs_per_sec;
  const double off_rate = fleet_execs_total / off_wall;
  // Useful-throughput uplift: replay re-warm executions spend budget without
  // fuzzing anything new; snapshot recovery removes them. Both fractions are
  // content (deterministic), unlike the wall-clock rates.
  const double useful_on =
      (fleet_execs_total - static_cast<double>(faultiest->replay_execs)) /
      fleet_execs_total;
  const double useful_off =
      (fleet_execs_total - static_cast<double>(off_run->replay_execs)) /
      fleet_execs_total;
  const double useful_uplift_pct = 100.0 * (useful_on / useful_off - 1.0);

  const size_t lost = lost_bugs(*baseline, *faultiest);
  // The zero-lost-bugs contract is a saturation claim: both campaigns must
  // have had time to find every bug this seed reaches. Below the 48h
  // calibrated budget the two trajectories legitimately find different
  // subsets, so lost_bugs is reported but not enforced.
  const bool saturated = execs >= k48h;
  for (const auto& r : results) {
    const uint64_t events = r.totals.reboots + r.totals.retries;
    std::printf(
        "  rate=%5llu ppm  %10.0f execs/sec  bugs %zu  lost %llu execs  "
        "reboots %llu  retries %llu  recovery %llu us (%llu us/event)\n",
        static_cast<unsigned long long>(r.rate_ppm), r.execs_per_sec,
        r.bug_count, static_cast<unsigned long long>(r.totals.lost_execs),
        static_cast<unsigned long long>(r.totals.reboots),
        static_cast<unsigned long long>(r.totals.retries),
        static_cast<unsigned long long>(r.totals.recovery_virtual_us),
        static_cast<unsigned long long>(
            events == 0 ? 0 : r.totals.recovery_virtual_us / events));
  }
  std::printf("  per-rate results: %s, lost bugs vs fault-free: %zu\n",
              deterministic ? "bit-identical across reps"
                            : "MISMATCH (bug!)",
              lost);
  std::printf(
      "  snapshots at rate=%llu ppm: %llu captures, %llu forks, %llu fault "
      "recoveries, %llu prefix execs saved\n",
      static_cast<unsigned long long>(kRatesPpm[2]),
      static_cast<unsigned long long>(faultiest->snap.captures),
      static_cast<unsigned long long>(faultiest->snap.forks),
      static_cast<unsigned long long>(faultiest->snap.fault_recoveries),
      static_cast<unsigned long long>(faultiest->snap.prefix_execs_saved));
  std::printf(
      "  snapshots on: %.0f execs/sec (%.2f%% useful)  off: %.0f execs/sec "
      "(%.2f%% useful)  useful-throughput uplift %+.2f%%\n\n",
      on_rate, 100.0 * useful_on, off_rate, 100.0 * useful_off,
      useful_uplift_pct);

  const bool wrote = write_bench_json(
      "fault_recovery", seed, kRepsPerRate, exported, exported_obs.get(),
      wall.seconds(), [&](obs::JsonWriter& w) {
        w.key("fault_recovery").begin_object();
        w.field("devices", static_cast<uint64_t>(ids.size()));
        w.field("execs_per_device", execs);
        w.field("slice", kSlice);
        w.field("deterministic", deterministic);
        w.field("budget_saturated", saturated);
        w.field("lost_bugs", static_cast<uint64_t>(lost));
        w.key("configs").begin_array();
        for (const auto& r : results) {
          const uint64_t events = r.totals.reboots + r.totals.retries;
          w.begin_object();
          w.field("fault_rate_ppm", r.rate_ppm);
          w.field("bugs", static_cast<uint64_t>(r.bug_count));
          w.key("faults").begin_object();
          w.field("injected", r.totals.injected);
          w.field("hangs", r.totals.hangs);
          w.field("transport_errors", r.totals.transport_errors);
          w.field("reboots", r.totals.reboots);
          w.field("kasan_reboots", r.totals.kasan_reboots);
          w.field("retries", r.totals.retries);
          w.field("lost_execs", r.totals.lost_execs);
          w.end_object();
          w.key("recovery").begin_object();
          w.field("virtual_us", r.totals.recovery_virtual_us);
          w.field("mean_us_per_event",
                  events == 0 ? 0 : r.totals.recovery_virtual_us / events);
          w.end_object();
          w.key("timing").begin_object();
          w.field("wall_seconds", r.best_wall);
          w.field("execs_per_sec", r.execs_per_sec);
          write_utilization_fields(w, r.util);
          w.end_object();
          w.end_object();
        }
        w.end_array();
        w.end_object();
        // Snapshot layer (DESIGN.md §13) at the faultiest rate: fork/restore
        // counters and delta-sharing totals are content; wall-clock rates
        // live under "timing". useful_* fractions are content too — replay
        // counts are part of the deterministic trajectory.
        const core::SnapshotStats& ss = faultiest->snap;
        w.key("snapshot").begin_object();
        w.field("fault_rate_ppm", kRatesPpm[2]);
        w.field("captures", ss.captures);
        w.field("restores", ss.restores);
        w.field("forks", ss.forks);
        w.field("fault_recoveries", ss.fault_recoveries);
        w.field("prefix_execs_saved", ss.prefix_execs_saved);
        w.field("prefix_calls_saved", ss.prefix_calls_saved);
        w.field("sections_total", ss.sections_total);
        w.field("sections_shared", ss.sections_shared);
        w.field("bytes_total", ss.bytes_total);
        w.field("bytes_shared", ss.bytes_shared);
        w.field("replay_execs_on", faultiest->replay_execs);
        w.field("replay_execs_off", off_run->replay_execs);
        w.field("useful_fraction_on", useful_on);
        w.field("useful_fraction_off", useful_off);
        w.field("useful_uplift_percent", useful_uplift_pct);
        w.field("off_deterministic", off_deterministic);
        w.key("timing").begin_object();
        w.field("on_execs_per_sec", on_rate);
        w.field("off_execs_per_sec", off_rate);
        w.field("execs_per_sec_uplift_percent",
                100.0 * (on_rate / off_rate - 1.0));
        w.end_object();
        w.end_object();
        if (baseline != nullptr && !baseline->velocity_json.empty()) {
          w.key("velocity").raw(baseline->velocity_json);
        }
      });

  return deterministic && wrote && (lost == 0 || !saturated) ? 0 : 1;
}
