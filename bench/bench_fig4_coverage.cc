// Reproduces Fig. 4: kernel coverage of DroidFuzz vs Syzkaller on devices
// A1, A2, B, C1 over 48 simulated hours, averaged over DF_REPS repetitions
// (paper: 10), with Mann-Whitney U significance on the final values.
// Also reports the §I claim: average per-driver kernel coverage increase
// of DroidFuzz over Syzkaller (paper: 17% on average).
//
// Exports BENCH_fig4_coverage.json: every (device, config, rep) trajectory
// sampled through obs::StatsReporter plus phase-latency histogram summaries
// from the DroidFuzz engines. Series content is deterministic for a fixed
// DF_SEED (timing fields excluded).
#include <cstdio>

#include "baseline/syzkaller.h"
#include "bench/bench_util.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kStep = 5 * kExecsPerHour;  // sample every 5 sim-hours

}  // namespace

int main() {
  const WallTimer wall;
  const size_t reps = reps_from_env();
  const uint64_t base_seed = seed_from_env();
  const char* devices[] = {"A1", "A2", "B", "C1"};

  // Campaign telemetry: the DroidFuzz engines run with observability
  // attached, so the exported JSON carries phase-latency histograms.
  // Per-exec trace events are off — only milestone events are retained.
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  std::vector<BenchSeries> exported;

  std::printf("=== Fig. 4: coverage over 48 simulated hours (mean of %zu "
              "reps) ===\n",
              reps);
  std::printf("series columns: coverage at hours 5,10,...,50\n\n");

  double ratio_sum = 0;
  double per_driver_gain_sum = 0;
  size_t per_driver_gain_count = 0;

  for (const char* id : devices) {
    std::vector<Series> df_runs, syz_runs;
    std::vector<double> df_final, syz_final;
    std::map<uint16_t, std::pair<double, double>> driver_cov;  // df, syz sums
    std::map<uint16_t, std::string> driver_names;

    for (size_t r = 0; r < reps; ++r) {
      const uint64_t seed = base_seed + r * 101;
      {
        auto dev = device::make_device(id, seed);
        core::EngineConfig cfg;
        cfg.seed = seed;
        core::Engine eng(*dev, cfg);
        eng.attach_observability(&obs);
        auto points = run_sampled_points(eng, k48h, kStep);
        df_runs.push_back(to_series(points));
        df_final.push_back(static_cast<double>(eng.kernel_coverage()));
        BenchSeries series{id, "droidfuzz", r, std::move(points), {}};
        series.states = eng.state_coverage();
        capture_analytics(series, eng);
        capture_distill(series, eng);
        exported.push_back(std::move(series));
        for (const auto& [drv, n] : dev->kernel().per_driver_coverage()) {
          driver_cov[drv].first += static_cast<double>(n);
        }
        for (const auto& d : dev->kernel().drivers()) {
          driver_names[d->driver_id()] = std::string(d->name());
        }
      }
      {
        auto dev = device::make_device(id, seed);
        baseline::SyzkallerFuzzer syz(*dev, seed);
        auto points = run_sampled_points(syz.engine(), k48h, kStep);
        syz_runs.push_back(to_series(points));
        syz_final.push_back(static_cast<double>(syz.kernel_coverage()));
        BenchSeries series{id, "syzkaller", r, std::move(points), {}};
        capture_analytics(series, syz.engine());
        exported.push_back(std::move(series));
        for (const auto& [drv, n] : dev->kernel().per_driver_coverage()) {
          driver_cov[drv].second += static_cast<double>(n);
        }
      }
    }

    // Mean series.
    Series df_mean = df_runs[0], syz_mean = syz_runs[0];
    for (size_t i = 0; i < df_mean.coverage.size(); ++i) {
      size_t dsum = 0, ssum = 0;
      for (size_t r = 0; r < reps; ++r) {
        dsum += df_runs[r].coverage[i];
        ssum += syz_runs[r].coverage[i];
      }
      df_mean.coverage[i] = dsum / reps;
      syz_mean.coverage[i] = ssum / reps;
    }
    std::printf("[%s] DroidFuzz", id);
    print_series("", df_mean);
    std::printf("[%s] Syzkaller", id);
    print_series("", syz_mean);
    const double dmean = util::mean(df_final);
    const double smean = util::mean(syz_final);
    ratio_sum += dmean / smean;
    std::printf("[%s] final: DroidFuzz %.0f vs Syzkaller %.0f (+%.1f%%), %s\n",
                id, dmean, smean, 100.0 * (dmean / smean - 1.0),
                significance_tag(df_final, syz_final).c_str());

    // Per-driver coverage gains (drivers only; skip core id 0).
    std::printf("[%s] per-driver coverage (DroidFuzz vs Syzkaller):\n", id);
    for (const auto& [drv, sums] : driver_cov) {
      if (drv == 0) continue;
      const double d = sums.first / static_cast<double>(reps);
      const double s = sums.second / static_cast<double>(reps);
      if (s <= 0) continue;
      const double gain = 100.0 * (d / s - 1.0);
      per_driver_gain_sum += gain;
      ++per_driver_gain_count;
      std::printf("    %-12s %7.1f vs %7.1f  (%+.1f%%)\n",
                  driver_names[drv].c_str(), d, s, gain);
    }
    std::printf("\n");
  }

  std::printf("summary: DroidFuzz/Syzkaller total-coverage ratio %.2fx "
              "(paper Fig. 4: DroidFuzz consistently above)\n",
              ratio_sum / 4.0);
  if (per_driver_gain_count > 0) {
    std::printf("summary: average per-driver coverage increase %.1f%% "
                "(paper SI: 17%% on average)\n",
                per_driver_gain_sum / per_driver_gain_count);
  }

  write_bench_json("fig4_coverage", base_seed, reps, exported, &obs,
                   wall.seconds());
  return 0;
}
