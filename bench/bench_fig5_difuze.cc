// Reproduces Fig. 5: kernel coverage of DroidFuzz, Difuze, and DROIDFUZZ-D
// (the ioctl-only variant) on devices A1 and A2 over 48 simulated hours.
// The paper's companion claims: Difuze extracted 285 / 232 interfaces on
// A1 / A2 (our simulated drivers expose fewer), and "DROIDFUZZ-D leads
// Difuze's coverage by 34%".
#include <cstdio>

#include "baseline/difuze.h"
#include "bench/bench_util.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kStep = 5 * kExecsPerHour;

}  // namespace

int main() {
  const size_t reps = reps_from_env();
  const uint64_t base_seed = seed_from_env();

  std::printf("=== Fig. 5: DroidFuzz vs Difuze vs DROIDFUZZ-D, 48 simulated "
              "hours (mean of %zu reps) ===\n\n",
              reps);

  double dfd_vs_difuze_sum = 0;
  for (const char* id : {"A1", "A2"}) {
    std::vector<double> df_final, dfd_final, difuze_final;
    Series df_mean, dfd_mean, difuze_mean;
    size_t extracted = 0;

    for (size_t r = 0; r < reps; ++r) {
      const uint64_t seed = base_seed + r * 101;
      // Full DroidFuzz.
      {
        auto dev = device::make_device(id, seed);
        core::EngineConfig cfg;
        cfg.seed = seed;
        core::Engine eng(*dev, cfg);
        const Series s = run_sampled(eng, k48h, kStep);
        if (r == 0) df_mean = s;
        for (size_t i = 0; i < s.coverage.size() && r > 0; ++i) {
          df_mean.coverage[i] += s.coverage[i];
        }
        df_final.push_back(static_cast<double>(eng.kernel_coverage()));
      }
      // DROIDFUZZ-D: executor and HAL limited to ioctl-class requests.
      {
        auto dev = device::make_device(id, seed);
        core::EngineConfig cfg;
        cfg.seed = seed;
        cfg.gen.ioctl_only = true;
        core::Engine eng(*dev, cfg);
        const Series s = run_sampled(eng, k48h, kStep);
        if (r == 0) dfd_mean = s;
        for (size_t i = 0; i < s.coverage.size() && r > 0; ++i) {
          dfd_mean.coverage[i] += s.coverage[i];
        }
        dfd_final.push_back(static_cast<double>(eng.kernel_coverage()));
      }
      // Difuze.
      {
        auto dev = device::make_device(id, seed);
        baseline::DifuzeFuzzer difuze(*dev, seed);
        extracted = difuze.setup();
        Series s;
        for (uint64_t done = 0; done < k48h; done += kStep) {
          difuze.run(kStep);
          s.hours.push_back((done + kStep) / kExecsPerHour);
          s.coverage.push_back(difuze.kernel_coverage());
        }
        if (r == 0) difuze_mean = s;
        for (size_t i = 0; i < s.coverage.size() && r > 0; ++i) {
          difuze_mean.coverage[i] += s.coverage[i];
        }
        difuze_final.push_back(static_cast<double>(difuze.kernel_coverage()));
      }
    }
    for (auto& c : df_mean.coverage) c /= reps;
    for (auto& c : dfd_mean.coverage) c /= reps;
    for (auto& c : difuze_mean.coverage) c /= reps;

    std::printf("[%s] Difuze extracted %zu ioctl interfaces (paper: %s)\n",
                id, extracted, std::string(id) == "A1" ? "285" : "232");
    std::printf("[%s] DroidFuzz  ", id);
    print_series("", df_mean);
    std::printf("[%s] DroidFuzz-D", id);
    print_series("", dfd_mean);
    std::printf("[%s] Difuze     ", id);
    print_series("", difuze_mean);

    const double dfm = util::mean(df_final);
    const double dfdm = util::mean(dfd_final);
    const double dzm = util::mean(difuze_final);
    const double lead = 100.0 * (dfdm / dzm - 1.0);
    dfd_vs_difuze_sum += lead;
    std::printf("[%s] final: DF %.0f | DF-D %.0f | Difuze %.0f;  DF-D leads "
                "Difuze by %.1f%%;  DF vs Difuze %s\n\n",
                id, dfm, dfdm, dzm, lead,
                significance_tag(df_final, difuze_final).c_str());
  }
  std::printf("summary: DROIDFUZZ-D leads Difuze by %.1f%% on average "
              "(paper SV-C2: 34%%)\n",
              dfd_vs_difuze_sum / 2.0);
  return 0;
}
