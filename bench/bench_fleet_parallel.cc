// Parallel fleet scaling bench (DESIGN.md §8): runs the full 7-device
// catalog fleet to the same per-device execution budget at workers =
// 1/2/4/hardware_concurrency, reports aggregate execs/sec and the
// sequential-vs-parallel speedup, and — the part that is hardware-
// independent — verifies that every configuration produces bit-identical
// per-device results (coverage, corpus, relations, bug list) for the same
// seed.
//
// Speedup is bounded by the host: on a single-core machine every
// configuration lands near 1.0x, which is the honest number (the JSON
// carries hardware_concurrency so readers can interpret it). All
// throughput/speedup values live under "timing" keys; the `deterministic`
// flag and fleet shape are content, validated by
// scripts/check_bench_json.py.
//
// Env knobs: DF_FLEET_EXECS (per-device executions, default 4000), DF_REPS
// (repetitions per worker configuration, default 1), DF_SEED.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fuzz/daemon.h"
#include "core/fuzz/fleet.h"
#include "device/catalog.h"
#include "util/hash.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kSlice = 256;

uint64_t fleet_execs_from_env(uint64_t fallback) {
  const char* env = std::getenv("DF_FLEET_EXECS");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : fallback;
}

struct FleetRun {
  double wall_seconds = 0;
  std::string fingerprint;  // per-device results, comparable across configs
  std::vector<BenchSeries> series;
  std::unique_ptr<obs::Observability> obs;
  std::string velocity_json;  // coverage-velocity section, rendered pre-exit
  core::FleetUtilization util;
};

FleetRun run_fleet(uint64_t seed, uint64_t execs, size_t workers, size_t rep,
                   const std::vector<std::string>& ids) {
  FleetRun out;
  core::DaemonConfig cfg;
  cfg.seed = seed;
  cfg.workers = workers;
  core::Daemon d(cfg);
  out.obs = std::make_unique<obs::Observability>();
  out.obs->trace.set_record_execs(false);
  obs::StatsReporter reporter(std::max<uint64_t>(execs / 4, 1));
  d.attach_observability(out.obs.get());
  d.attach_reporter(&reporter);
  for (const auto& id : ids) d.add_device(id);
  // Probing is identical (and sequential) for every configuration; keep it
  // outside the timed region so the scaling numbers measure the fuzz loop.
  for (const auto& id : ids) d.engine(id)->setup();

  const WallTimer t;
  d.run(execs, kSlice);
  out.wall_seconds = t.seconds();

  for (const auto& id : ids) {
    const core::Engine* e = d.engine(id);
    out.fingerprint += id;
    out.fingerprint += ":execs=" + std::to_string(e->executions());
    out.fingerprint += ",kcov=" + std::to_string(e->kernel_coverage());
    out.fingerprint += ",cov=" + std::to_string(e->total_coverage());
    out.fingerprint += ",corpus=" + std::to_string(e->corpus().size());
    out.fingerprint += ",edges=" + std::to_string(e->relations().edge_count());
    for (const auto& b : e->crashes().bugs()) {
      out.fingerprint += ",bug=" + b.title + "@" +
                         std::to_string(b.first_exec);
    }
    out.fingerprint += "\n";
  }
  out.fingerprint +=
      "corpus_hash=" + std::to_string(util::fnv1a(d.save_corpus())) + "\n";

  const std::string config = "workers" + std::to_string(workers);
  for (const auto& id : ids) {
    out.series.push_back({id, config, rep, reporter.series(id), {}});
    capture_analytics(out.series.back(), *d.engine(id));
  }
  out.velocity_json = d.velocity().to_json(&reporter);
  out.util = d.utilization();
  return out;
}

}  // namespace

int main() {
  const WallTimer wall;
  const uint64_t seed = seed_from_env();
  const size_t reps = reps_from_env(1);
  const uint64_t execs = fleet_execs_from_env(4000);
  const size_t hw = core::FleetExecutor::resolve_workers(0);

  std::vector<std::string> ids;
  for (const auto& spec : device::device_table()) ids.push_back(spec.id);

  std::vector<size_t> worker_configs{1, 2, 4, hw};
  std::sort(worker_configs.begin(), worker_configs.end());
  worker_configs.erase(
      std::unique(worker_configs.begin(), worker_configs.end()),
      worker_configs.end());

  std::printf(
      "=== fleet parallel scaling: %zu devices x %llu execs, slice %llu, "
      "%zu reps, hardware_concurrency=%zu ===\n",
      ids.size(), static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(kSlice), reps, hw);

  struct ConfigResult {
    size_t workers = 0;
    double best_wall = 0;  // fastest rep
    double execs_per_sec = 0;
    core::FleetUtilization util;  // rep-0 per-worker accounting
  };
  std::vector<ConfigResult> results;
  std::vector<BenchSeries> exported;
  std::unique_ptr<obs::Observability> exported_obs;
  std::string exported_velocity;
  std::string baseline_fp;
  bool deterministic = true;

  for (const size_t workers : worker_configs) {
    ConfigResult r;
    r.workers = workers;
    for (size_t rep = 0; rep < reps; ++rep) {
      FleetRun run = run_fleet(seed, execs, workers, rep, ids);
      if (baseline_fp.empty()) {
        baseline_fp = run.fingerprint;
      } else if (run.fingerprint != baseline_fp) {
        deterministic = false;
        std::fprintf(stderr,
                     "fleet: NON-DETERMINISTIC results at workers=%zu rep=%zu\n",
                     workers, rep);
      }
      if (rep == 0 && (workers == 1 || workers == worker_configs.back())) {
        // Export the sequential and widest-parallel trajectories: identical
        // series content across the two configs is the determinism contract
        // made visible in the JSON itself.
        for (auto& s : run.series) exported.push_back(std::move(s));
        if (workers == 1) {
          exported_obs = std::move(run.obs);
          exported_velocity = std::move(run.velocity_json);
        }
      }
      if (rep == 0) r.util = std::move(run.util);
      if (r.best_wall == 0 || run.wall_seconds < r.best_wall) {
        r.best_wall = run.wall_seconds;
      }
    }
    const double total_execs =
        static_cast<double>(execs) * static_cast<double>(ids.size());
    r.execs_per_sec = total_execs / r.best_wall;
    results.push_back(r);
  }

  const double seq_rate = results.front().execs_per_sec;
  for (const auto& r : results) {
    std::printf("  workers=%-2zu  %10.0f execs/sec   speedup %.2fx\n",
                r.workers, r.execs_per_sec, r.execs_per_sec / seq_rate);
  }
  std::printf("  per-device results: %s\n\n",
              deterministic ? "bit-identical across all configurations"
                            : "MISMATCH (bug!)");

  const bool wrote = write_bench_json(
      "fleet_parallel", seed, reps, exported, exported_obs.get(),
      wall.seconds(), [&](obs::JsonWriter& w) {
        w.key("fleet_parallel").begin_object();
        w.field("devices", static_cast<uint64_t>(ids.size()));
        w.field("execs_per_device", execs);
        w.field("slice", kSlice);
        w.field("hardware_concurrency", static_cast<uint64_t>(hw));
        w.field("deterministic", deterministic);
        w.key("configs").begin_array();
        for (const auto& r : results) {
          w.begin_object();
          w.field("workers", static_cast<uint64_t>(r.workers));
          w.key("timing").begin_object();
          w.field("wall_seconds", r.best_wall);
          w.field("execs_per_sec", r.execs_per_sec);
          w.field("speedup_vs_sequential", r.execs_per_sec / seq_rate);
          write_utilization_fields(w, r.util);
          w.end_object();
          w.end_object();
        }
        w.end_array();
        w.end_object();
        if (!exported_velocity.empty()) {
          w.key("velocity").raw(exported_velocity);
        }
      });

  return deterministic && wrote ? 0 : 1;
}
