// Parallel fleet scaling bench (DESIGN.md §8): runs the full 7-device
// catalog fleet to the same per-device execution budget at workers =
// 1/2/4/hardware_concurrency, reports aggregate execs/sec and the
// sequential-vs-parallel speedup, and — the part that is hardware-
// independent — verifies that every configuration produces bit-identical
// per-device results (coverage, corpus, relations, bug list) for the same
// seed.
//
// Speedup is bounded by the host: on a single-core machine every
// configuration lands near 1.0x, which is the honest number (the JSON
// carries hardware_concurrency so readers can interpret it). All
// throughput/speedup values live under "timing" keys; the `deterministic`
// flag and fleet shape are content, validated by
// scripts/check_bench_json.py.
//
// Env knobs: DF_FLEET_EXECS (per-device executions, default 4000), DF_REPS
// (repetitions per worker configuration, default 1), DF_SEED.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fuzz/daemon.h"
#include "core/fuzz/fleet.h"
#include "device/catalog.h"
#include "util/hash.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kSlice = 256;

uint64_t fleet_execs_from_env(uint64_t fallback) {
  const char* env = std::getenv("DF_FLEET_EXECS");
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : fallback;
}

struct FleetRun {
  double wall_seconds = 0;
  std::string fingerprint;  // per-device results, comparable across configs
  std::vector<BenchSeries> series;
  std::unique_ptr<obs::Observability> obs;
  std::string velocity_json;  // coverage-velocity section, rendered pre-exit
  core::FleetUtilization util;
  core::SnapshotStats snap;  // summed across the fleet
};

FleetRun run_fleet(uint64_t seed, uint64_t execs, size_t workers, size_t rep,
                   const std::vector<std::string>& ids,
                   bool use_snapshots = true) {
  FleetRun out;
  core::DaemonConfig cfg;
  cfg.seed = seed;
  cfg.workers = workers;
  cfg.engine.use_snapshots = use_snapshots;
  core::Daemon d(cfg);
  out.obs = std::make_unique<obs::Observability>();
  out.obs->trace.set_record_execs(false);
  obs::StatsReporter reporter(std::max<uint64_t>(execs / 4, 1));
  d.attach_observability(out.obs.get());
  d.attach_reporter(&reporter);
  for (const auto& id : ids) d.add_device(id);
  // Probing is identical (and sequential) for every configuration; keep it
  // outside the timed region so the scaling numbers measure the fuzz loop.
  for (const auto& id : ids) d.engine(id)->setup();

  const WallTimer t;
  d.run(execs, kSlice);
  out.wall_seconds = t.seconds();

  for (const auto& id : ids) {
    const core::Engine* e = d.engine(id);
    out.fingerprint += id;
    out.fingerprint += ":execs=" + std::to_string(e->executions());
    out.fingerprint += ",kcov=" + std::to_string(e->kernel_coverage());
    out.fingerprint += ",cov=" + std::to_string(e->total_coverage());
    out.fingerprint += ",corpus=" + std::to_string(e->corpus().size());
    out.fingerprint += ",edges=" + std::to_string(e->relations().edge_count());
    for (const auto& b : e->crashes().bugs()) {
      out.fingerprint += ",bug=" + b.title + "@" +
                         std::to_string(b.first_exec);
    }
    const core::SnapshotStats& ss = e->snapshot_stats();
    out.snap.captures += ss.captures;
    out.snap.restores += ss.restores;
    out.snap.forks += ss.forks;
    out.snap.fault_recoveries += ss.fault_recoveries;
    out.snap.prefix_execs_saved += ss.prefix_execs_saved;
    out.snap.prefix_calls_saved += ss.prefix_calls_saved;
    out.snap.sections_total += ss.sections_total;
    out.snap.sections_shared += ss.sections_shared;
    out.snap.bytes_total += ss.bytes_total;
    out.snap.bytes_shared += ss.bytes_shared;
    out.fingerprint += ",snap=" + std::to_string(ss.captures) + "/" +
                       std::to_string(ss.restores) + "/" +
                       std::to_string(ss.forks);
    out.fingerprint += "\n";
  }
  out.fingerprint +=
      "corpus_hash=" + std::to_string(util::fnv1a(d.save_corpus())) + "\n";

  const std::string config = "workers" + std::to_string(workers);
  for (const auto& id : ids) {
    out.series.push_back({id, config, rep, reporter.series(id), {}});
    capture_analytics(out.series.back(), *d.engine(id));
  }
  out.velocity_json = d.velocity().to_json(&reporter);
  out.util = d.utilization();
  return out;
}

}  // namespace

int main() {
  const WallTimer wall;
  const uint64_t seed = seed_from_env();
  const size_t reps = reps_from_env(1);
  const uint64_t execs = fleet_execs_from_env(4000);
  const size_t hw = core::FleetExecutor::resolve_workers(0);

  std::vector<std::string> ids;
  for (const auto& spec : device::device_table()) ids.push_back(spec.id);

  std::vector<size_t> worker_configs{1, 2, 4, hw};
  std::sort(worker_configs.begin(), worker_configs.end());
  worker_configs.erase(
      std::unique(worker_configs.begin(), worker_configs.end()),
      worker_configs.end());

  std::printf(
      "=== fleet parallel scaling: %zu devices x %llu execs, slice %llu, "
      "%zu reps, hardware_concurrency=%zu ===\n",
      ids.size(), static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(kSlice), reps, hw);

  struct ConfigResult {
    size_t workers = 0;
    double best_wall = 0;  // fastest rep
    double execs_per_sec = 0;
    core::FleetUtilization util;  // rep-0 per-worker accounting
  };
  std::vector<ConfigResult> results;
  std::vector<BenchSeries> exported;
  std::unique_ptr<obs::Observability> exported_obs;
  std::string exported_velocity;
  std::string baseline_fp;
  bool deterministic = true;
  core::SnapshotStats snap_on;  // rep-0 workers-1 run; identical across configs

  for (const size_t workers : worker_configs) {
    ConfigResult r;
    r.workers = workers;
    for (size_t rep = 0; rep < reps; ++rep) {
      FleetRun run = run_fleet(seed, execs, workers, rep, ids);
      if (workers == 1 && rep == 0) snap_on = run.snap;
      if (baseline_fp.empty()) {
        baseline_fp = run.fingerprint;
      } else if (run.fingerprint != baseline_fp) {
        deterministic = false;
        std::fprintf(stderr,
                     "fleet: NON-DETERMINISTIC results at workers=%zu rep=%zu\n",
                     workers, rep);
      }
      if (rep == 0 && (workers == 1 || workers == worker_configs.back())) {
        // Export the sequential and widest-parallel trajectories: identical
        // series content across the two configs is the determinism contract
        // made visible in the JSON itself.
        for (auto& s : run.series) exported.push_back(std::move(s));
        if (workers == 1) {
          exported_obs = std::move(run.obs);
          exported_velocity = std::move(run.velocity_json);
        }
      }
      if (rep == 0) r.util = std::move(run.util);
      if (r.best_wall == 0 || run.wall_seconds < r.best_wall) {
        r.best_wall = run.wall_seconds;
      }
    }
    const double total_execs =
        static_cast<double>(execs) * static_cast<double>(ids.size());
    r.execs_per_sec = total_execs / r.best_wall;
    results.push_back(r);
  }

  // Snapshots-off comparison at the widest configuration: same budget, no
  // frontier captures / forks. Two runs — one for the off-trajectory's own
  // determinism check, min wall for throughput.
  double off_wall = 0;
  std::string off_fp;
  bool off_deterministic = true;
  for (size_t rep = 0; rep < 2; ++rep) {
    FleetRun run = run_fleet(seed, execs, worker_configs.back(), rep, ids,
                             /*use_snapshots=*/false);
    if (off_fp.empty()) {
      off_fp = run.fingerprint;
    } else if (run.fingerprint != off_fp) {
      off_deterministic = false;
      deterministic = false;
      std::fprintf(stderr,
                   "fleet: NON-DETERMINISTIC snapshots-off results at "
                   "rep=%zu\n",
                   rep);
    }
    if (off_wall == 0 || run.wall_seconds < off_wall) {
      off_wall = run.wall_seconds;
    }
  }
  const double fleet_execs_total =
      static_cast<double>(execs) * static_cast<double>(ids.size());
  const double on_rate = results.back().execs_per_sec;
  const double off_rate = fleet_execs_total / off_wall;

  const double seq_rate = results.front().execs_per_sec;
  for (const auto& r : results) {
    std::printf("  workers=%-2zu  %10.0f execs/sec   speedup %.2fx\n",
                r.workers, r.execs_per_sec, r.execs_per_sec / seq_rate);
  }
  std::printf("  per-device results: %s\n",
              deterministic ? "bit-identical across all configurations"
                            : "MISMATCH (bug!)");
  std::printf(
      "  snapshots: %llu captures, %llu forks, %llu prefix execs saved, "
      "%llu/%llu sections shared; on %0.f execs/sec vs off %0.f\n\n",
      static_cast<unsigned long long>(snap_on.captures),
      static_cast<unsigned long long>(snap_on.forks),
      static_cast<unsigned long long>(snap_on.prefix_execs_saved),
      static_cast<unsigned long long>(snap_on.sections_shared),
      static_cast<unsigned long long>(snap_on.sections_total), on_rate,
      off_rate);

  const bool wrote = write_bench_json(
      "fleet_parallel", seed, reps, exported, exported_obs.get(),
      wall.seconds(), [&](obs::JsonWriter& w) {
        w.key("fleet_parallel").begin_object();
        w.field("devices", static_cast<uint64_t>(ids.size()));
        w.field("execs_per_device", execs);
        w.field("slice", kSlice);
        w.field("hardware_concurrency", static_cast<uint64_t>(hw));
        w.field("deterministic", deterministic);
        w.key("configs").begin_array();
        for (const auto& r : results) {
          w.begin_object();
          w.field("workers", static_cast<uint64_t>(r.workers));
          w.key("timing").begin_object();
          w.field("wall_seconds", r.best_wall);
          w.field("execs_per_sec", r.execs_per_sec);
          w.field("speedup_vs_sequential", r.execs_per_sec / seq_rate);
          write_utilization_fields(w, r.util);
          w.end_object();
          w.end_object();
        }
        w.end_array();
        w.end_object();
        // Snapshot layer (DESIGN.md §13): fork/restore counters and
        // delta-sharing totals are content (identical across worker
        // configurations); on-vs-off wall rates live under "timing".
        w.key("snapshot").begin_object();
        w.field("captures", snap_on.captures);
        w.field("restores", snap_on.restores);
        w.field("forks", snap_on.forks);
        w.field("fault_recoveries", snap_on.fault_recoveries);
        w.field("prefix_execs_saved", snap_on.prefix_execs_saved);
        w.field("prefix_calls_saved", snap_on.prefix_calls_saved);
        w.field("sections_total", snap_on.sections_total);
        w.field("sections_shared", snap_on.sections_shared);
        w.field("bytes_total", snap_on.bytes_total);
        w.field("bytes_shared", snap_on.bytes_shared);
        w.field("off_deterministic", off_deterministic);
        w.key("timing").begin_object();
        w.field("on_execs_per_sec", on_rate);
        w.field("off_execs_per_sec", off_rate);
        w.field("execs_per_sec_uplift_percent",
                100.0 * (on_rate / off_rate - 1.0));
        w.end_object();
        w.end_object();
        if (!exported_velocity.empty()) {
          w.key("velocity").raw(exported_velocity);
        }
      });

  return deterministic && wrote ? 0 : 1;
}
