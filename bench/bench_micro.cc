// Component microbenchmarks (google-benchmark): throughput of the pieces
// that dominate a fuzzing campaign — generation, execution, feedback
// merging, probing, and the relation-graph update rule.
#include <benchmark/benchmark.h>

#include "baseline/syzkaller.h"
#include "core/descriptions.h"
#include "core/exec/broker.h"
#include "core/fuzz/engine.h"
#include "core/gen/generator.h"
#include "core/probe/hal_probe.h"
#include "device/catalog.h"
#include "dsl/fmt.h"
#include "dsl/parse.h"
#include "hal/parcel.h"

namespace {

using namespace df;

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ParcelRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    hal::Parcel p;
    p.write_u32(1);
    p.write_u64(2);
    p.write_string("android.hardware.test");
    p.write_blob(std::vector<uint8_t>(32, 7));
    p.rewind();
    benchmark::DoNotOptimize(p.read_u32());
    benchmark::DoNotOptimize(p.read_u64());
    benchmark::DoNotOptimize(p.read_string());
    benchmark::DoNotOptimize(p.read_blob());
  }
}
BENCHMARK(BM_ParcelRoundTrip);

void BM_RelationObserve(benchmark::State& state) {
  dsl::CallTable table;
  std::vector<const dsl::CallDesc*> descs;
  for (int i = 0; i < 128; ++i) {
    dsl::CallDesc d;
    d.name = "c" + std::to_string(i);
    descs.push_back(table.add(std::move(d)));
  }
  core::RelationGraph g;
  for (const auto* d : descs) g.add_vertex(d, 1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    g.observe_relation(descs[rng.below(descs.size())],
                       descs[rng.below(descs.size())]);
  }
}
BENCHMARK(BM_RelationObserve);

// One fully assembled device + call table shared across iterations.
struct Fixture {
  Fixture() {
    dev = device::make_device("A1", 1);
    core::add_syscall_descriptions(table, *dev);
    for (const auto& svc : dev->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      core::add_hal_interface(table, svc->descriptor(), svc->interface(), w);
    }
    spec = core::make_spec_table(table);
    for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  }
  std::unique_ptr<device::Device> dev;
  dsl::CallTable table;
  trace::SpecTable spec;
  core::RelationGraph rel;
  core::Corpus corpus;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_GenerateFresh(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng(2);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_fresh());
  }
}
BENCHMARK(BM_GenerateFresh);

void BM_FormatParseRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng(3);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  const dsl::Program prog = gen.generate_fresh();
  for (auto _ : state) {
    const std::string text = dsl::format_program(prog);
    benchmark::DoNotOptimize(dsl::parse_program(text, f.table));
  }
}
BENCHMARK(BM_FormatParseRoundTrip);

void BM_BrokerExecute(benchmark::State& state) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  util::Rng rng(4);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  std::vector<dsl::Program> progs;
  for (int i = 0; i < 64; ++i) progs.push_back(gen.generate_fresh());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.execute(progs[i++ % progs.size()]));
  }
}
BENCHMARK(BM_BrokerExecute);

void BM_HalProbing(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto dev = device::make_device("A1", 1);
    state.ResumeTiming();
    core::HalProber prober(*dev, 1);
    benchmark::DoNotOptimize(prober.probe(100));
  }
}
BENCHMARK(BM_HalProbing)->Unit(benchmark::kMillisecond);

void BM_EngineStep(benchmark::State& state) {
  auto dev = device::make_device("A2", 1);
  core::EngineConfig cfg;
  cfg.seed = 1;
  core::Engine eng(*dev, cfg);
  eng.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
}
BENCHMARK(BM_EngineStep);

void BM_SyzkallerStep(benchmark::State& state) {
  auto dev = device::make_device("A2", 1);
  baseline::SyzkallerFuzzer syz(*dev, 1);
  syz.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(syz.step());
  }
}
BENCHMARK(BM_SyzkallerStep);

void BM_DeviceReboot(benchmark::State& state) {
  auto dev = device::make_device("A1", 1);
  for (auto _ : state) {
    dev->reboot();
  }
}
BENCHMARK(BM_DeviceReboot);

// Ablation microbench for the decay design choice (DESIGN.md SS4): cost of
// a full decay sweep at a realistic learned-edge count.
void BM_RelationDecay(benchmark::State& state) {
  auto& f = fixture();
  core::RelationGraph g;
  const auto& all = f.table.all();
  for (const auto* d : all) g.add_vertex(d, 1.0);
  util::Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    g.observe_relation(all[rng.below(all.size())],
                       all[rng.below(all.size())]);
  }
  for (auto _ : state) {
    g.decay(0.999);  // factor ~1: edges never pruned, stable workload
  }
}
BENCHMARK(BM_RelationDecay);

}  // namespace

BENCHMARK_MAIN();
