// Component microbenchmarks (google-benchmark): throughput of the pieces
// that dominate a fuzzing campaign — generation, execution, feedback
// merging, probing, and the relation-graph update rule — plus the
// observability primitives.
//
// Before the google-benchmark suite runs, an engine-step overhead probe
// measures campaign throughput with observability detached vs attached and
// writes BENCH_micro.json (instrumentation contract: the detached engine —
// no sink attached — must stay within noise of the pre-obs engine, and the
// attached engine within a few percent of detached).
#include <benchmark/benchmark.h>

#include <unordered_set>

#include "baseline/syzkaller.h"
#include "bench/bench_util.h"
#include "kernel/kcov.h"
#include "core/descriptions.h"
#include "core/exec/broker.h"
#include "core/fuzz/engine.h"
#include "core/gen/generator.h"
#include "core/probe/hal_probe.h"
#include "device/catalog.h"
#include "device/snapshot.h"
#include "dsl/fmt.h"
#include "dsl/parse.h"
#include "hal/parcel.h"
#include "obs/obs.h"

namespace {

using namespace df;
using namespace df::bench;

void BM_RngNext(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ParcelRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    hal::Parcel p;
    p.write_u32(1);
    p.write_u64(2);
    p.write_string("android.hardware.test");
    p.write_blob(std::vector<uint8_t>(32, 7));
    p.rewind();
    benchmark::DoNotOptimize(p.read_u32());
    benchmark::DoNotOptimize(p.read_u64());
    benchmark::DoNotOptimize(p.read_string());
    benchmark::DoNotOptimize(p.read_blob());
  }
}
BENCHMARK(BM_ParcelRoundTrip);

void BM_RelationObserve(benchmark::State& state) {
  dsl::CallTable table;
  std::vector<const dsl::CallDesc*> descs;
  for (int i = 0; i < 128; ++i) {
    dsl::CallDesc d;
    d.name = "c" + std::to_string(i);
    descs.push_back(table.add(std::move(d)));
  }
  core::RelationGraph g;
  for (const auto* d : descs) g.add_vertex(d, 1.0);
  util::Rng rng(1);
  for (auto _ : state) {
    g.observe_relation(descs[rng.below(descs.size())],
                       descs[rng.below(descs.size())]);
  }
}
BENCHMARK(BM_RelationObserve);

// One fully assembled device + call table shared across iterations.
struct Fixture {
  Fixture() {
    dev = device::make_device("A1", 1);
    core::add_syscall_descriptions(table, *dev);
    for (const auto& svc : dev->services()) {
      std::vector<std::pair<uint32_t, double>> w;
      for (const auto& uw : svc->app_usage_profile()) {
        w.emplace_back(uw.code, uw.weight);
      }
      core::add_hal_interface(table, svc->descriptor(), svc->interface(), w);
    }
    spec = core::make_spec_table(table);
    for (const auto* d : table.all()) rel.add_vertex(d, d->weight);
  }
  std::unique_ptr<device::Device> dev;
  dsl::CallTable table;
  trace::SpecTable spec;
  core::RelationGraph rel;
  core::Corpus corpus;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_GenerateFresh(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng(2);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_fresh());
  }
}
BENCHMARK(BM_GenerateFresh);

void BM_FormatParseRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  util::Rng rng(3);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  const dsl::Program prog = gen.generate_fresh();
  for (auto _ : state) {
    const std::string text = dsl::format_program(prog);
    benchmark::DoNotOptimize(dsl::parse_program(text, f.table));
  }
}
BENCHMARK(BM_FormatParseRoundTrip);

void BM_BrokerExecute(benchmark::State& state) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  util::Rng rng(4);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  std::vector<dsl::Program> progs;
  for (int i = 0; i < 64; ++i) progs.push_back(gen.generate_fresh());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.execute(progs[i++ % progs.size()]));
  }
}
BENCHMARK(BM_BrokerExecute);

void BM_HalProbing(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto dev = device::make_device("A1", 1);
    state.ResumeTiming();
    core::HalProber prober(*dev, 1);
    benchmark::DoNotOptimize(prober.probe(100));
  }
}
BENCHMARK(BM_HalProbing)->Unit(benchmark::kMillisecond);

void BM_EngineStep(benchmark::State& state) {
  auto dev = device::make_device("A2", 1);
  core::EngineConfig cfg;
  cfg.seed = 1;
  core::Engine eng(*dev, cfg);
  eng.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
}
BENCHMARK(BM_EngineStep);

// Same workload with full observability attached (phase timers, counters,
// milestone trace events): the instrumented-campaign configuration.
void BM_EngineStepObserved(benchmark::State& state) {
  auto dev = device::make_device("A2", 1);
  core::EngineConfig cfg;
  cfg.seed = 1;
  core::Engine eng(*dev, cfg);
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  eng.attach_observability(&obs);
  eng.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.step());
  }
}
BENCHMARK(BM_EngineStepObserved);

void BM_SyzkallerStep(benchmark::State& state) {
  auto dev = device::make_device("A2", 1);
  baseline::SyzkallerFuzzer syz(*dev, 1);
  syz.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(syz.step());
  }
}
BENCHMARK(BM_SyzkallerStep);

void BM_DeviceReboot(benchmark::State& state) {
  auto dev = device::make_device("A1", 1);
  for (auto _ : state) {
    dev->reboot();
  }
}
BENCHMARK(BM_DeviceReboot);

// --- snapshot layer (DESIGN.md §13) -----------------------------------------
// Capture/restore cost vs the full reestablish path they replace: a reboot
// plus re-executing the programs that established the state. The
// BENCH_micro.json "snapshot" section exports the same three costs.

// Warms `dev` through `broker` with `total` generated programs and returns
// the last `keep` of them (the establishment prefix a fork would skip).
std::vector<dsl::Program> warm_device(core::Broker& broker, uint64_t seed,
                                      int total, int keep) {
  auto& f = fixture();
  util::Rng rng(seed);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  std::vector<dsl::Program> kept;
  for (int i = 0; i < total; ++i) {
    dsl::Program p = gen.generate_fresh();
    broker.execute(p);
    if (i >= total - keep) kept.push_back(std::move(p));
  }
  return kept;
}

void BM_SnapshotCapture(benchmark::State& state) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  warm_device(broker, 31, 50, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::capture_snapshot(*f.dev, broker.native_task()));
  }
}
BENCHMARK(BM_SnapshotCapture);

void BM_SnapshotRestore(benchmark::State& state) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  warm_device(broker, 32, 50, 0);
  const device::StateSnapshot snap =
      device::capture_snapshot(*f.dev, broker.native_task());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::restore_snapshot(*f.dev, broker.native_task(), snap));
  }
}
BENCHMARK(BM_SnapshotRestore);

// What re-materializing the captured state costs without a snapshot:
// reboot, then re-execute the full establishment history since boot (the
// 50 programs that built the state). Snapshot restore is O(state bytes);
// replay is O(history length) — the asymmetry snapshot forking exploits.
// (The engine's reestablish() replays only a 4-seed rewarm suffix, which
// is cheaper but *loses* the deep state instead of recovering it.)
void BM_FullReestablish(benchmark::State& state) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  const std::vector<dsl::Program> est = warm_device(broker, 33, 50, 50);
  for (auto _ : state) {
    f.dev->reboot();
    for (const dsl::Program& p : est) broker.execute(p);
  }
}
BENCHMARK(BM_FullReestablish);

// Ablation microbench for the decay design choice (DESIGN.md SS4): cost of
// a full decay sweep at a realistic learned-edge count.
void BM_RelationDecay(benchmark::State& state) {
  auto& f = fixture();
  core::RelationGraph g;
  const auto& all = f.table.all();
  for (const auto* d : all) g.add_vertex(d, 1.0);
  util::Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    g.observe_relation(all[rng.below(all.size())],
                       all[rng.below(all.size())]);
  }
  for (auto _ : state) {
    g.decay(0.999);  // factor ~1: edges never pruned, stable workload
  }
}
BENCHMARK(BM_RelationDecay);

// --- feedback hot path: u64-set vs unordered_set ----------------------------
// The per-execution kcov dedup + cumulative FeatureSet merge are the two
// allocation-heavy feedback paths; both now run on util::U64Set with
// capacity retained across resets. The *StdSet twins replicate the previous
// std::unordered_set shape (including the clear()-per-exec reallocation) so
// the win is visible in one bench run.

// One execution's worth of coverage: ~256 hits, roughly half duplicates —
// the shape DriverCtx::cov() produces for a multi-call program.
std::vector<uint64_t> kcov_workload() {
  std::vector<uint64_t> feats;
  util::Rng rng(7);
  for (int i = 0; i < 256; ++i) {
    feats.push_back(kernel::cov_feature(static_cast<uint16_t>(1 + i % 4),
                                        rng.below(128)));
  }
  return feats;
}

void BM_KcovRecord(benchmark::State& state) {
  const std::vector<uint64_t> feats = kcov_workload();
  kernel::Kcov k;
  k.enable();
  std::vector<uint64_t> out;
  for (auto _ : state) {
    for (uint64_t f : feats) k.hit(f);
    out.clear();
    k.collect_into(out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KcovRecord);

// Pre-PR kcov shape: unordered_set dedup cleared per exec + a fresh output
// vector swapped out per exec.
void BM_KcovRecordStdSet(benchmark::State& state) {
  const std::vector<uint64_t> feats = kcov_workload();
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> buf;
  for (auto _ : state) {
    for (uint64_t f : feats) {
      if (seen.insert(f).second) buf.push_back(f);
    }
    std::vector<uint64_t> out;
    out.swap(buf);
    seen.clear();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KcovRecordStdSet);

// Steady-state corpus growth: most features are already known, a few are
// new — the FeatureSet::add_new profile after warmup.
void BM_FeatureSetAddNew(benchmark::State& state) {
  core::FeatureSet fs;
  util::Rng rng(9);
  std::vector<uint64_t> batch(64);
  for (auto _ : state) {
    for (auto& f : batch) {
      f = kernel::cov_feature(static_cast<uint16_t>(1 + rng.below(8)),
                              rng.below(1 << 16));
    }
    benchmark::DoNotOptimize(fs.add_new(batch));
  }
}
BENCHMARK(BM_FeatureSetAddNew);

void BM_FeatureSetAddNewStdSet(benchmark::State& state) {
  std::unordered_set<uint64_t> set;
  util::Rng rng(9);
  std::vector<uint64_t> batch(64);
  std::vector<uint64_t> fresh;
  for (auto _ : state) {
    for (auto& f : batch) {
      f = kernel::cov_feature(static_cast<uint16_t>(1 + rng.below(8)),
                              rng.below(1 << 16));
    }
    fresh.clear();
    for (uint64_t f : batch) {
      if (set.insert(f).second) fresh.push_back(f);
    }
    benchmark::DoNotOptimize(fresh.data());
  }
}
BENCHMARK(BM_FeatureSetAddNewStdSet);

// --- observability primitives -----------------------------------------------

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) c.inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench.hist");
  uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ObsHistogramRecord);

// The detached-engine hot path: a ScopedTimer over a null histogram must
// not touch the clock.
void BM_ObsScopedTimerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedTimer t(nullptr);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ObsScopedTimerDisabled);

void BM_ObsTraceEmit(benchmark::State& state) {
  obs::TraceSink sink(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    obs::TraceEvent ev{obs::EventKind::kNewCoverage, "A2", ++i, {}};
    ev.with("features", 3);
    sink.emit(std::move(ev));
  }
  benchmark::DoNotOptimize(sink.size());
}
BENCHMARK(BM_ObsTraceEmit);

// --- engine-step overhead probe + BENCH_micro.json ---------------------------

double steps_per_sec(uint64_t seed, obs::Observability* obs,
                     bool exec_events, uint64_t warmup, uint64_t measure) {
  auto dev = device::make_device("A2", seed);
  core::EngineConfig cfg;
  cfg.seed = seed;
  core::Engine eng(*dev, cfg);
  if (obs != nullptr) {
    obs->trace.set_record_execs(exec_events);
    eng.attach_observability(obs);
  }
  eng.setup();
  eng.run(warmup);
  const WallTimer t;
  eng.run(measure);
  return static_cast<double>(measure) / t.seconds();
}

// Snapshot micro-costs for BENCH_micro.json: the same capture / restore /
// reboot-and-replay loop the google-benchmark triple times, measured once
// so the checker can hold the restore-vs-reestablish ratio.
struct SnapProbe {
  double capture_us = 0;
  double restore_us = 0;
  double reestablish_us = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t snapshot_sections = 0;
};

SnapProbe run_snapshot_probe(uint64_t seed) {
  auto& f = fixture();
  core::Broker broker(*f.dev, f.spec);
  util::Rng rng(seed + 101);
  core::Generator gen(f.table, f.rel, f.corpus, rng, {});
  // The full establishment history since boot: what replay-based recovery
  // re-executes to land on the same state the snapshot stores.
  std::vector<dsl::Program> est;
  for (int i = 0; i < 50; ++i) {
    dsl::Program p = gen.generate_fresh();
    broker.execute(p);
    est.push_back(std::move(p));
  }
  constexpr int kIters = 400;
  SnapProbe out;
  {
    const WallTimer t;
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(
          device::capture_snapshot(*f.dev, broker.native_task()));
    }
    out.capture_us = t.seconds() * 1e6 / kIters;
  }
  const device::StateSnapshot snap =
      device::capture_snapshot(*f.dev, broker.native_task());
  out.snapshot_bytes = snap.total_bytes();
  out.snapshot_sections = snap.sections.size();
  {
    const WallTimer t;
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(
          device::restore_snapshot(*f.dev, broker.native_task(), snap));
    }
    out.restore_us = t.seconds() * 1e6 / kIters;
  }
  {
    const WallTimer t;
    for (int i = 0; i < kIters; ++i) {
      f.dev->reboot();
      for (const dsl::Program& p : est) broker.execute(p);
    }
    out.reestablish_us = t.seconds() * 1e6 / kIters;
  }
  return out;
}

void run_obs_overhead_probe() {
  const WallTimer wall;
  const uint64_t seed = seed_from_env();
  constexpr uint64_t kWarmup = 2000;
  constexpr uint64_t kMeasure = 20000;
  constexpr uint64_t kStep = 5000;

  // Deterministic sampled trajectories for both configurations — identical
  // series content is itself part of the contract (instrumentation must not
  // perturb the campaign).
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  std::vector<BenchSeries> exported;
  {
    auto dev = device::make_device("A2", seed);
    core::EngineConfig cfg;
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    BenchSeries series{"A2", "detached", 0,
                       run_sampled_points(eng, kMeasure, kStep), {}};
    capture_analytics(series, eng);
    exported.push_back(std::move(series));
  }
  {
    auto dev = device::make_device("A2", seed);
    core::EngineConfig cfg;
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    eng.attach_observability(&obs);
    BenchSeries series{"A2", "attached", 0,
                       run_sampled_points(eng, kMeasure, kStep), {}};
    capture_analytics(series, eng);
    exported.push_back(std::move(series));
  }

  const double detached =
      steps_per_sec(seed, nullptr, false, kWarmup, kMeasure);
  obs::Observability probe;
  const double attached =
      steps_per_sec(seed, &probe, false, kWarmup, kMeasure);
  const double traced = steps_per_sec(seed, &probe, true, kWarmup, kMeasure);
  // Full provenance: span tracing + crash flight recorder, the
  // `--trace-out --crash-dir` campaign configuration.
  obs::Observability prov;
  prov.spans.set_enabled(true);
  prov.flight.enable(16);
  const double provenance =
      steps_per_sec(seed, &prov, false, kWarmup, kMeasure);
  const double attached_pct = 100.0 * (detached / attached - 1.0);
  const double traced_pct = 100.0 * (detached / traced - 1.0);
  const double provenance_pct = 100.0 * (detached / provenance - 1.0);

  std::printf("=== obs overhead probe (device A2, %llu engine steps) ===\n",
              static_cast<unsigned long long>(kMeasure));
  std::printf("  detached:        %12.0f execs/sec\n", detached);
  std::printf("  attached:        %12.0f execs/sec  (%+.2f%%)\n", attached,
              attached_pct);
  std::printf("  attached+trace:  %12.0f execs/sec  (%+.2f%%)\n", traced,
              traced_pct);
  std::printf("  spans+flight:    %12.0f execs/sec  (%+.2f%%)\n\n", provenance,
              provenance_pct);

  const SnapProbe sp = run_snapshot_probe(seed);
  std::printf("=== snapshot micro probe (device A1, warmed broker) ===\n");
  std::printf("  capture:      %10.2f us  (%llu bytes, %llu sections)\n",
              sp.capture_us, static_cast<unsigned long long>(sp.snapshot_bytes),
              static_cast<unsigned long long>(sp.snapshot_sections));
  std::printf("  restore:      %10.2f us\n", sp.restore_us);
  std::printf("  reestablish:  %10.2f us  (reboot + replay)\n",
              sp.reestablish_us);
  std::printf("  restore speedup over reestablish: %.1fx\n\n",
              sp.restore_us > 0 ? sp.reestablish_us / sp.restore_us : 0.0);

  write_bench_json(
      "micro", seed, 1, exported, &obs, wall.seconds(),
      [&](obs::JsonWriter& w) {
        w.key("overhead").begin_object();
        w.field("device", "A2");
        w.field("measure_execs", kMeasure);
        // Throughputs and derived percentages are wall-dependent, so they
        // live under a "timing" key (stripped by the determinism checker).
        w.key("timing").begin_object();
        w.field("detached_execs_per_sec", detached);
        w.field("attached_execs_per_sec", attached);
        w.field("attached_trace_execs_per_sec", traced);
        w.field("provenance_execs_per_sec", provenance);
        w.field("attached_overhead_percent", attached_pct);
        w.field("attached_trace_overhead_percent", traced_pct);
        w.field("provenance_overhead_percent", provenance_pct);
        w.end_object();
        w.end_object();
        w.key("snapshot").begin_object();
        w.field("device", "A1");
        w.field("snapshot_bytes", sp.snapshot_bytes);
        w.field("snapshot_sections", sp.snapshot_sections);
        // Micro-costs are wall-dependent; the checker only holds the
        // restore-vs-reestablish ratio, not absolute numbers.
        w.key("timing").begin_object();
        w.field("capture_us", sp.capture_us);
        w.field("restore_us", sp.restore_us);
        w.field("reestablish_us", sp.reestablish_us);
        w.field("restore_speedup",
                sp.restore_us > 0 ? sp.reestablish_us / sp.restore_us : 0.0);
        w.end_object();
        w.end_object();
      });
}

}  // namespace

int main(int argc, char** argv) {
  run_obs_overhead_probe();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
