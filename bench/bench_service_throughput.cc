// Campaign-service scheduling bench (DESIGN.md §14): submits a batch of
// small campaigns to a CampaignService and drains the queue with the
// production preemption cadence (one checkpoint period per quantum), then
// runs every spec once more uninterrupted through the determinism oracle
// (CampaignService::run_reference).
//
// Three things are measured:
//   - jobs/hour through the preempting scheduler (timing);
//   - preemption overhead: preempted wall time vs the uninterrupted
//     references, same specs, same worker budget (timing);
//   - queue latency: per-job wait_ticks percentiles. The tick counts are
//     content (the scheduler is deterministic); their millisecond
//     equivalents live under "timing".
//
// The content contract, validated by scripts/check_bench_json.py: every
// preempted job's result document is byte-identical to its uninterrupted
// reference ("deterministic": true), and the per-job preemption counts sum
// to the reported total.
//
// Env knobs: DF_SERVICE_JOBS (default 6), DF_SERVICE_BUDGET (per-job
// executions, default 2560), DF_SEED.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fuzz/daemon.h"
#include "core/service/job.h"
#include "core/service/service.h"
#include "device/catalog.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kSlice = 64;
constexpr uint64_t kSampleEvery = 128;
constexpr uint64_t kCheckpointEvery = 256;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : fallback;
}

// Nearest-rank percentile of an unsorted sample.
uint64_t percentile(std::vector<uint64_t> v, int p) {
  std::sort(v.begin(), v.end());
  size_t rank = (v.size() * static_cast<size_t>(p) + 99) / 100;
  if (rank == 0) rank = 1;
  return v[rank - 1];
}

}  // namespace

int main() {
  const WallTimer wall;
  const uint64_t seed = seed_from_env();
  const uint64_t n_jobs = env_u64("DF_SERVICE_JOBS", 6);
  // Per-job budget, rounded up to the checkpoint grid so every job ends
  // exactly on a quantum barrier.
  const uint64_t raw_budget = env_u64("DF_SERVICE_BUDGET",
                                      10 * kCheckpointEvery);
  const uint64_t budget =
      (raw_budget + kCheckpointEvery - 1) / kCheckpointEvery *
      kCheckpointEvery;

  std::string root = "df_bench_service_root";
  if (const char* dir = std::getenv("DF_BENCH_JSON_DIR")) {
    root = std::string(dir) + "/" + root;
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);

  // One single-device spec per job, rotating through the catalog with
  // varied seeds and priorities so the queue actually reorders.
  const auto& table = device::device_table();
  std::vector<core::JobSpec> specs;
  for (uint64_t i = 0; i < n_jobs; ++i) {
    core::JobSpec spec;
    spec.name = "svc-" + std::to_string(i);
    spec.devices = {table[i % table.size()].id};
    spec.seed = seed + i;
    spec.budget = budget;
    spec.priority = (i * 3) % 5;
    spec.slice = kSlice;
    spec.sample_every = kSampleEvery;
    spec.checkpoint_every = kCheckpointEvery;
    specs.push_back(std::move(spec));
  }

  std::printf(
      "=== service throughput: %llu jobs x %llu execs, quantum %llu, "
      "slice %llu ===\n",
      static_cast<unsigned long long>(n_jobs),
      static_cast<unsigned long long>(budget),
      static_cast<unsigned long long>(kCheckpointEvery),
      static_cast<unsigned long long>(kSlice));

  // Phase 1: the preempting scheduler. One checkpoint period per quantum —
  // the tightest (most preemption-heavy) production cadence.
  core::ServiceConfig cfg;
  cfg.root_dir = root + "/service";
  cfg.workers = 1;
  cfg.quantum_barriers = 1;
  cfg.serve_port = -1;
  core::CampaignService svc(cfg);
  std::string error;
  if (!svc.boot(&error)) {
    std::fprintf(stderr, "bench_service: boot failed: %s\n", error.c_str());
    return 1;
  }
  for (const auto& spec : specs) {
    if (svc.submit(spec, &error) == 0) {
      std::fprintf(stderr, "bench_service: submit failed: %s\n",
                   error.c_str());
      return 1;
    }
  }
  const WallTimer preempted_timer;
  svc.run_until_idle();
  const double preempted_wall = preempted_timer.seconds();

  const auto records = svc.jobs();
  bool all_done = true;
  for (const auto& rec : records) {
    if (rec.state != core::JobState::kDone) {
      all_done = false;
      std::fprintf(stderr, "bench_service: job %llu ended %s: %s\n",
                   static_cast<unsigned long long>(rec.id),
                   std::string(core::to_string(rec.state)).c_str(),
                   rec.error.c_str());
    }
  }

  // Phase 2: the uninterrupted references (same specs, same worker budget,
  // same checkpoint grid — the determinism oracle).
  const WallTimer reference_timer;
  std::vector<std::string> references;
  for (size_t i = 0; i < specs.size(); ++i) {
    references.push_back(core::CampaignService::run_reference(
        specs[i], cfg.workers, root + "/ref" + std::to_string(i)));
  }
  const double uninterrupted_wall = reference_timer.seconds();

  bool deterministic = all_done;
  for (size_t i = 0; i < records.size() && i < references.size(); ++i) {
    if (records[i].result != references[i]) {
      deterministic = false;
      std::fprintf(stderr,
                   "bench_service: job %llu DIVERGED from its "
                   "uninterrupted reference\n",
                   static_cast<unsigned long long>(records[i].id));
    }
  }

  // Phase 3: instrumented re-runs on the same grid, for the exported
  // per-job trajectory series (the service does not keep reporter points).
  std::vector<BenchSeries> exported;
  for (size_t i = 0; i < specs.size(); ++i) {
    const core::JobSpec& spec = specs[i];
    core::DaemonConfig dc;
    dc.seed = spec.seed;
    dc.workers = cfg.workers;
    dc.engine.fault.rate = spec.fault_rate;
    dc.checkpoint_dir = root + "/series" + std::to_string(i);
    dc.checkpoint_every = spec.checkpoint_every;
    core::Daemon d(dc);
    obs::StatsReporter rep(spec.sample_every);
    d.attach_reporter(&rep);
    for (const auto& id : spec.devices) d.add_device(id);
    d.run(spec.budget, spec.slice);
    for (const auto& id : spec.devices) {
      exported.push_back({id, "service", i, rep.series(id), {}});
      capture_analytics(exported.back(), *d.engine(id));
    }
  }

  // Queue latency and preemption accounting.
  std::vector<uint64_t> waits;
  uint64_t preemptions_total = 0;
  for (const auto& rec : records) {
    waits.push_back(rec.wait_ticks);
    preemptions_total += rec.preemptions;
  }
  const uint64_t wait_p50 = percentile(waits, 50);
  const uint64_t wait_p90 = percentile(waits, 90);
  const uint64_t wait_max = percentile(waits, 100);
  const uint64_t ticks = svc.scheduler_ticks();
  const double tick_ms =
      ticks == 0 ? 0.0 : preempted_wall * 1000.0 / static_cast<double>(ticks);
  const double jobs_per_hour =
      preempted_wall > 0
          ? static_cast<double>(records.size()) * 3600.0 / preempted_wall
          : 0.0;
  const double overhead_pct =
      uninterrupted_wall > 0
          ? 100.0 * (preempted_wall / uninterrupted_wall - 1.0)
          : 0.0;

  std::printf("  %zu jobs in %.3fs (%.0f jobs/hour), %llu scheduler ticks\n",
              records.size(), preempted_wall, jobs_per_hour,
              static_cast<unsigned long long>(ticks));
  std::printf(
      "  preemptions %llu, wait ticks p50/p90/max %llu/%llu/%llu, "
      "preemption overhead %+.2f%% vs uninterrupted\n",
      static_cast<unsigned long long>(preemptions_total),
      static_cast<unsigned long long>(wait_p50),
      static_cast<unsigned long long>(wait_p90),
      static_cast<unsigned long long>(wait_max), overhead_pct);
  std::printf("  results vs references: %s\n\n",
              deterministic ? "bit-identical" : "MISMATCH (bug!)");

  const bool wrote = write_bench_json(
      "service", seed, /*reps=*/1, exported, nullptr, wall.seconds(),
      [&](obs::JsonWriter& w) {
        w.key("service").begin_object();
        w.field("jobs", static_cast<uint64_t>(records.size()));
        w.field("workers", static_cast<uint64_t>(cfg.workers));
        w.field("quantum_barriers", cfg.quantum_barriers);
        w.field("checkpoint_every", kCheckpointEvery);
        w.field("budget_per_job", budget);
        w.field("deterministic", deterministic);
        w.field("scheduler_ticks", ticks);
        w.field("preemptions_total", preemptions_total);
        w.key("wait_ticks").begin_object();
        w.field("p50", wait_p50);
        w.field("p90", wait_p90);
        w.field("max", wait_max);
        w.end_object();
        w.key("per_job").begin_array();
        for (const auto& rec : records) {
          w.begin_object();
          w.field("id", rec.id);
          w.field("device", rec.spec.devices.front());
          w.field("seed", rec.spec.seed);
          w.field("priority", rec.spec.priority);
          w.field("preemptions", rec.preemptions);
          w.field("wait_ticks", rec.wait_ticks);
          w.end_object();
        }
        w.end_array();
        w.key("timing").begin_object();
        w.field("preempted_wall_seconds", preempted_wall);
        w.field("uninterrupted_wall_seconds", uninterrupted_wall);
        w.field("jobs_per_hour", jobs_per_hour);
        w.field("preemption_overhead_percent", overhead_pct);
        w.field("queue_wait_p50_ms", static_cast<double>(wait_p50) * tick_ms);
        w.field("queue_wait_p90_ms", static_cast<double>(wait_p90) * tick_ms);
        w.field("queue_wait_max_ms", static_cast<double>(wait_max) * tick_ms);
        w.end_object();
        w.end_object();
      });

  return deterministic && wrote ? 0 : 1;
}
