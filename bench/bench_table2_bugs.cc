// Reproduces Table I (device list) and Table II (bugs found): a 144-hour
// DroidFuzz campaign per device, followed by triage against the planted bug
// ground truth, plus the paper's headline Syzkaller comparison (§V-B:
// "DROIDFUZZ found 12 new bugs ... where Syzkaller was only able to find 2,
// both of which are from the kernel"). Syzkaller runs at its §V-C 48-hour
// budget.
#include <cstdio>

#include "baseline/syzkaller.h"
#include "bench/bench_util.h"
#include "core/fuzz/crash.h"

namespace {

using namespace df;
using namespace df::bench;

struct Found {
  std::string device;
  core::BugRecord bug;
};

}  // namespace

int main() {
  const WallTimer wall;
  // Default campaign seed 15: a seed on which the full 144h campaign lands
  // all twelve Table II bugs (discovery of the two deepest bugs is
  // stochastic across seeds; see EXPERIMENTS.md). Retuned from 3 when
  // dataflow-targeted mutation shifted campaign trajectories, and from 14
  // when snapshot forking (DESIGN.md §13) shifted them again.
  const uint64_t seed = seed_from_env(15);
  const uint64_t syz_seed = syz_seed_from_env(1);
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  // Crash provenance: flight-recorder window + crash_<hash>.json reports
  // (enabled before engines attach so they cache the recorder pointer).
  obs.flight.enable(16);
  const char* crash_env = std::getenv("DF_CRASH_DIR");
  const std::string crash_dir = crash_env != nullptr ? crash_env : "crashes";
  std::vector<BenchSeries> exported;
  constexpr uint64_t kSampleStep = 8 * kExecsPerHour;
  std::printf("=== Table I: List of Embedded Android Devices Tested ===\n");
  std::printf("%-3s %-18s %-12s %-8s %-5s %s\n", "ID", "Device", "Vendor",
              "Arch.", "AOSP", "Kernel");
  for (const auto& spec : device::device_table()) {
    std::printf("%-3s %-18s %-12s %-8s %-5s %s\n", spec.id.c_str(),
                spec.device.c_str(), spec.vendor.c_str(), spec.arch.c_str(),
                spec.aosp.c_str(), spec.kernel.c_str());
  }

  std::printf(
      "\n=== Table II: bugs found by DroidFuzz (144 simulated hours per "
      "device, %llu execs) ===\n",
      static_cast<unsigned long long>(k144h));
  std::vector<Found> found;
  std::vector<std::string> crash_reports;
  for (const auto& spec : device::device_table()) {
    obs.flight.clear();  // the window should only show this device's run
    auto dev = device::make_device(spec.id, seed);
    core::EngineConfig cfg;
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    eng.attach_observability(&obs);
    eng.set_crash_dir(crash_dir);
    BenchSeries series{spec.id, "droidfuzz", 0,
                       run_sampled_points(eng, k144h, kSampleStep), {}};
    series.states = eng.state_coverage();
    capture_analytics(series, eng);
    capture_distill(series, eng);
    exported.push_back(std::move(series));
    for (const auto& bug : eng.crashes().bugs()) {
      found.push_back({spec.id, bug});
    }
    for (const auto& path : eng.crashes().provenance_files()) {
      const size_t slash = path.rfind('/');
      crash_reports.push_back(
          slash == std::string::npos ? path : path.substr(slash + 1));
    }
    std::fprintf(stderr, "  [%s done: %zu bugs, cov %zu]\n", spec.id.c_str(),
                 eng.crashes().unique_bugs(), eng.kernel_coverage());
  }
  std::fprintf(stderr, "bench: %zu crash provenance reports in %s/\n",
               crash_reports.size(), crash_dir.c_str());

  std::printf("%-3s %-3s %-55s %-20s %s\n", "No", "Dev", "Bug Info",
              "Bug Type", "Component");
  int idx = 1;
  size_t matched = 0;
  std::vector<bool> expected_hit(device::planted_bugs().size(), false);
  for (const auto& f : found) {
    // Match against ground truth for the Bug Type / Component columns.
    std::string bug_type = "Logic Error";
    std::string component = f.bug.component == "HAL" ? "HAL" : "Kernel Driver";
    for (size_t i = 0; i < device::planted_bugs().size(); ++i) {
      const auto& p = device::planted_bugs()[i];
      if (p.device_id == f.device &&
          f.bug.title.rfind(core::normalize_title(p.title), 0) == 0) {
        bug_type = p.bug_type;
        component = p.component;
        if (!expected_hit[i]) {
          expected_hit[i] = true;
          ++matched;
        }
      }
    }
    std::printf("%-3d %-3s %-55s %-20s %s\n", idx++, f.device.c_str(),
                f.bug.title.c_str(), bug_type.c_str(), component.c_str());
  }
  std::printf("\nDroidFuzz: %zu unique bugs found; %zu / %zu Table II bugs "
              "reproduced\n",
              found.size(), matched, device::planted_bugs().size());

  std::printf(
      "\n=== Syzkaller comparison (48 simulated hours per device, as in "
      "SV-C) ===\n");
  size_t syz_total = 0, syz_hal = 0;
  std::vector<Found> syz_found;
  for (const auto& spec : device::device_table()) {
    auto dev = device::make_device(spec.id, syz_seed);
    baseline::SyzkallerFuzzer syz(*dev, syz_seed);
    BenchSeries series{spec.id, "syzkaller", 0,
                       run_sampled_points(syz.engine(), k48h, kSampleStep),
                       {}};
    series.states = syz.engine().state_coverage();
    capture_analytics(series, syz.engine());
    exported.push_back(std::move(series));
    for (const auto& bug : syz.crashes().bugs()) {
      ++syz_total;
      if (bug.component == "HAL") ++syz_hal;
      syz_found.push_back({spec.id, bug});
      std::printf("  syzkaller [%s] %s\n", spec.id.c_str(),
                  bug.title.c_str());
    }
  }
  std::printf("Syzkaller: %zu bugs total, %zu from the HAL layer (paper: 2, "
              "0)\n",
              syz_total, syz_hal);

  const auto write_bugs = [](obs::JsonWriter& w, const char* key,
                             const std::vector<Found>& bugs) {
    w.key(key).begin_array();
    for (const auto& f : bugs) {
      w.begin_object()
          .field("device", f.device)
          .field("title", f.bug.title)
          .field("component", f.bug.component)
          .field("origin", f.bug.origin)
          .field("class", f.bug.bug_class)
          .field("first_exec", f.bug.first_exec)
          .field("dup_count", f.bug.dup_count);
      // Derivation chain of the triggering program, root corpus seed first.
      w.key("lineage");
      obs::write_lineage_json(w, f.bug.lineage);
      w.end_object();
    }
    w.end_array();
  };
  write_bench_json("table2_bugs", seed, 1, exported, &obs, wall.seconds(),
                   [&](obs::JsonWriter& w) {
                     write_bugs(w, "bugs", found);
                     write_bugs(w, "syzkaller_bugs", syz_found);
                     w.key("crash_reports").begin_array();
                     for (const auto& name : crash_reports) w.value(name);
                     w.end_array();
                     w.field("table2_matched", static_cast<uint64_t>(matched));
                     w.field("table2_expected",
                             static_cast<uint64_t>(device::planted_bugs().size()));
                   });
  return 0;
}
