// Reproduces Table III: 48-hour kernel coverage of DroidFuzz against its
// two ablations (DF-NoRel: random dependency generation; DF-NoHCov: no HAL
// directional coverage) and Syzkaller, on all seven devices, averaged over
// DF_REPS repetitions with Mann-Whitney significance vs DroidFuzz.
//
// Exports BENCH_table3_ablation.json with every per-config trajectory plus
// a "finals" summary (the Table III cells) and, for the full configuration,
// phase-latency histogram summaries.
#include <cstdio>

#include "baseline/syzkaller.h"
#include "bench/bench_util.h"

namespace {

using namespace df;
using namespace df::bench;

constexpr uint64_t kSampleStep = 8 * kExecsPerHour;

struct Final {
  std::string device, config;
  std::vector<double> values;
};

std::vector<double> run_config(const char* id, core::EngineConfig cfg,
                               size_t reps, uint64_t base_seed,
                               const char* config_name,
                               std::vector<BenchSeries>& exported,
                               obs::Observability* obs) {
  std::vector<double> finals;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t seed = base_seed + r * 101;
    auto dev = device::make_device(id, seed);
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    if (obs != nullptr) eng.attach_observability(obs);
    BenchSeries series{id, config_name, r,
                       run_sampled_points(eng, k48h, kSampleStep), {}};
    series.states = eng.state_coverage();
    capture_analytics(series, eng);
    exported.push_back(std::move(series));
    finals.push_back(static_cast<double>(eng.kernel_coverage()));
  }
  return finals;
}

std::vector<double> run_syzkaller(const char* id, size_t reps,
                                  uint64_t base_seed,
                                  std::vector<BenchSeries>& exported) {
  std::vector<double> finals;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t seed = base_seed + r * 101;
    auto dev = device::make_device(id, seed);
    baseline::SyzkallerFuzzer syz(*dev, seed);
    BenchSeries series{id, "syzkaller", r,
                       run_sampled_points(syz.engine(), k48h, kSampleStep),
                       {}};
    capture_analytics(series, syz.engine());
    exported.push_back(std::move(series));
    finals.push_back(static_cast<double>(syz.kernel_coverage()));
  }
  return finals;
}

}  // namespace

int main() {
  const WallTimer wall;
  const size_t reps = reps_from_env();
  const uint64_t base_seed = seed_from_env();

  // Phase histograms are collected for the full configuration only, so the
  // exported summaries describe DROIDFUZZ proper rather than a mix.
  obs::Observability obs;
  obs.trace.set_record_execs(false);
  std::vector<BenchSeries> exported;
  std::vector<Final> finals;

  core::EngineConfig full;
  core::EngineConfig norel;
  norel.gen.use_relations = false;
  norel.learn_relations = false;
  core::EngineConfig nohcov;
  nohcov.hal_feedback = false;

  std::printf("=== Table III: coverage statistics for ablation tests (48 "
              "simulated hours, mean of %zu reps) ===\n",
              reps);
  std::printf("%-7s %-10s %-10s %-10s %-10s\n", "Device", "DROIDFUZZ",
              "DF-NoRel", "DF-NoHCov", "Syzkaller");

  size_t df_wins_norel = 0, df_wins_nohcov = 0, all_beat_syz = 0;
  const size_t n_dev = device::device_table().size();
  for (const auto& spec : device::device_table()) {
    const char* id = spec.id.c_str();
    const auto df =
        run_config(id, full, reps, base_seed, "droidfuzz", exported, &obs);
    const auto nr =
        run_config(id, norel, reps, base_seed, "df-norel", exported, nullptr);
    const auto nh = run_config(id, nohcov, reps, base_seed, "df-nohcov",
                               exported, nullptr);
    const auto sz = run_syzkaller(id, reps, base_seed, exported);
    finals.push_back({spec.id, "droidfuzz", df});
    finals.push_back({spec.id, "df-norel", nr});
    finals.push_back({spec.id, "df-nohcov", nh});
    finals.push_back({spec.id, "syzkaller", sz});
    const double dfm = util::mean(df), nrm = util::mean(nr),
                 nhm = util::mean(nh), szm = util::mean(sz);
    std::printf("%-7s %-10.0f %-10.0f %-10.0f %-10.0f", id, dfm, nrm, nhm,
                szm);
    std::printf("  [DF vs Syz: %s]\n", significance_tag(df, sz).c_str());
    if (dfm > nrm) ++df_wins_norel;
    if (dfm > nhm) ++df_wins_nohcov;
    if (nrm > szm && nhm > szm) ++all_beat_syz;
  }

  std::printf("\nshape checks (paper SV-D):\n");
  std::printf("  DROIDFUZZ > DF-NoRel on %zu/%zu devices\n", df_wins_norel,
              n_dev);
  std::printf("  DROIDFUZZ > DF-NoHCov on %zu/%zu devices\n", df_wins_nohcov,
              n_dev);
  std::printf("  both ablations > Syzkaller on %zu/%zu devices\n",
              all_beat_syz, n_dev);

  write_bench_json(
      "table3_ablation", base_seed, reps, exported, &obs, wall.seconds(),
      [&](obs::JsonWriter& w) {
        w.key("finals").begin_array();
        for (const auto& f : finals) {
          w.begin_object()
              .field("device", f.device)
              .field("config", f.config)
              .field("mean", util::mean(f.values));
          w.key("values").begin_array();
          for (const double v : f.values) w.value(v);
          w.end_array();
          w.end_object();
        }
        w.end_array();
      });
  return 0;
}
