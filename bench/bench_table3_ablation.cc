// Reproduces Table III: 48-hour kernel coverage of DroidFuzz against its
// two ablations (DF-NoRel: random dependency generation; DF-NoHCov: no HAL
// directional coverage) and Syzkaller, on all seven devices, averaged over
// DF_REPS repetitions with Mann-Whitney significance vs DroidFuzz.
#include <cstdio>

#include "baseline/syzkaller.h"
#include "bench/bench_util.h"

namespace {

using namespace df;
using namespace df::bench;

std::vector<double> run_config(const char* id, core::EngineConfig cfg,
                               size_t reps, uint64_t base_seed) {
  std::vector<double> finals;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t seed = base_seed + r * 101;
    auto dev = device::make_device(id, seed);
    cfg.seed = seed;
    core::Engine eng(*dev, cfg);
    eng.run(k48h);
    finals.push_back(static_cast<double>(eng.kernel_coverage()));
  }
  return finals;
}

std::vector<double> run_syzkaller(const char* id, size_t reps,
                                  uint64_t base_seed) {
  std::vector<double> finals;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t seed = base_seed + r * 101;
    auto dev = device::make_device(id, seed);
    baseline::SyzkallerFuzzer syz(*dev, seed);
    syz.run(k48h);
    finals.push_back(static_cast<double>(syz.kernel_coverage()));
  }
  return finals;
}

}  // namespace

int main() {
  const size_t reps = reps_from_env();
  const uint64_t base_seed = seed_from_env();

  core::EngineConfig full;
  core::EngineConfig norel;
  norel.gen.use_relations = false;
  norel.learn_relations = false;
  core::EngineConfig nohcov;
  nohcov.hal_feedback = false;

  std::printf("=== Table III: coverage statistics for ablation tests (48 "
              "simulated hours, mean of %zu reps) ===\n",
              reps);
  std::printf("%-7s %-10s %-10s %-10s %-10s\n", "Device", "DROIDFUZZ",
              "DF-NoRel", "DF-NoHCov", "Syzkaller");

  size_t df_wins_norel = 0, df_wins_nohcov = 0, all_beat_syz = 0;
  const size_t n_dev = device::device_table().size();
  for (const auto& spec : device::device_table()) {
    const char* id = spec.id.c_str();
    const auto df = run_config(id, full, reps, base_seed);
    const auto nr = run_config(id, norel, reps, base_seed);
    const auto nh = run_config(id, nohcov, reps, base_seed);
    const auto sz = run_syzkaller(id, reps, base_seed);
    const double dfm = util::mean(df), nrm = util::mean(nr),
                 nhm = util::mean(nh), szm = util::mean(sz);
    std::printf("%-7s %-10.0f %-10.0f %-10.0f %-10.0f", id, dfm, nrm, nhm,
                szm);
    std::printf("  [DF vs Syz: %s]\n", significance_tag(df, sz).c_str());
    if (dfm > nrm) ++df_wins_norel;
    if (dfm > nhm) ++df_wins_nohcov;
    if (nrm > szm && nhm > szm) ++all_beat_syz;
  }

  std::printf("\nshape checks (paper SV-D):\n");
  std::printf("  DROIDFUZZ > DF-NoRel on %zu/%zu devices\n", df_wins_norel,
              n_dev);
  std::printf("  DROIDFUZZ > DF-NoHCov on %zu/%zu devices\n", df_wins_nohcov,
              n_dev);
  std::printf("  both ablations > Syzkaller on %zu/%zu devices\n",
              all_beat_syz, n_dev);
  return 0;
}
