// Shared helpers for the reproduction benches.
//
// Simulated-time calibration: the paper fuzzes physical devices over ADB for
// wall-clock hours; our substrate executes programs in microseconds. We map
// EXECS_PER_HOUR generated programs to one simulated hour (see
// EXPERIMENTS.md for the calibration rationale). All benches honour two
// environment variables:
//   DF_REPS  - repetitions per configuration (paper: 10; default: 3)
//   DF_SEED  - base campaign seed (default: 1)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "util/stats.h"

namespace df::bench {

inline constexpr uint64_t kExecsPerHour = 625;
inline constexpr uint64_t k48h = 48 * kExecsPerHour;    // 30000
inline constexpr uint64_t k144h = 144 * kExecsPerHour;  // 90000

inline size_t reps_from_env(size_t fallback = 3) {
  const char* env = std::getenv("DF_REPS");
  if (env == nullptr) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

inline uint64_t seed_from_env(uint64_t fallback = 1) {
  const char* env = std::getenv("DF_SEED");
  if (env == nullptr) return fallback;
  return std::strtoull(env, nullptr, 10);
}

// Seed for the independent Syzkaller campaign in the bug-table bench (the
// paper's Syzkaller numbers come from separate runs). Overridable via
// DF_SYZ_SEED; falls back to DF_SEED, then to the default.
inline uint64_t syz_seed_from_env(uint64_t fallback = 1) {
  if (const char* env = std::getenv("DF_SYZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return seed_from_env(fallback);
}

// A coverage-over-time series sampled every `step` executions.
struct Series {
  std::vector<uint64_t> hours;
  std::vector<size_t> coverage;
};

// Runs `eng` for `total` executions, sampling cumulative kernel coverage
// every `step` executions.
inline Series run_sampled(core::Engine& eng, uint64_t total, uint64_t step) {
  Series s;
  eng.setup();
  for (uint64_t done = 0; done < total; done += step) {
    eng.run(std::min(step, total - done));
    s.hours.push_back((done + step) / kExecsPerHour);
    s.coverage.push_back(eng.kernel_coverage());
  }
  return s;
}

inline void print_series(const std::string& label, const Series& s) {
  std::printf("%s:", label.c_str());
  for (size_t i = 0; i < s.coverage.size(); ++i) {
    std::printf(" %zu", s.coverage[i]);
  }
  std::printf("\n");
}

inline std::string significance_tag(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() < 3 || b.size() < 3) return "n/a (reps < 3)";
  const auto mw = util::mann_whitney_u(a, b);
  char buf[64];
  std::snprintf(buf, sizeof buf, "p=%.4f%s", mw.p_two_sided,
                mw.significant_at_05 ? "" : " (not significant)");
  return buf;
}

}  // namespace df::bench
