// Shared helpers for the reproduction benches.
//
// Simulated-time calibration: the paper fuzzes physical devices over ADB for
// wall-clock hours; our substrate executes programs in microseconds. We map
// EXECS_PER_HOUR generated programs to one simulated hour (see
// EXPERIMENTS.md for the calibration rationale). All benches honour two
// environment variables:
//   DF_REPS  - repetitions per configuration (paper: 10; default: 3)
//   DF_SEED  - base campaign seed (default: 1)
//
// Every bench additionally exports its campaign trajectory as
// BENCH_<name>.json (see scripts/check_bench_json.py for the schema and
// DESIGN.md "Observability" for the determinism contract). The output
// directory defaults to the current working directory and can be overridden
// with DF_BENCH_JSON_DIR.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/fuzz/checkpoint.h"
#include "core/fuzz/engine.h"
#include "core/fuzz/fleet.h"
#include "device/catalog.h"
#include "obs/analytics.h"
#include "obs/buildinfo.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "util/stats.h"

namespace df::bench {

inline constexpr uint64_t kExecsPerHour = 625;
inline constexpr uint64_t k48h = 48 * kExecsPerHour;    // 30000
inline constexpr uint64_t k144h = 144 * kExecsPerHour;  // 90000

inline size_t reps_from_env(size_t fallback = 3) {
  const char* env = std::getenv("DF_REPS");
  if (env == nullptr) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

inline uint64_t seed_from_env(uint64_t fallback = 1) {
  const char* env = std::getenv("DF_SEED");
  if (env == nullptr) return fallback;
  return std::strtoull(env, nullptr, 10);
}

// Seed for the independent Syzkaller campaign in the bug-table bench (the
// paper's Syzkaller numbers come from separate runs). Overridable via
// DF_SYZ_SEED; falls back to DF_SEED, then to the default.
inline uint64_t syz_seed_from_env(uint64_t fallback = 1) {
  if (const char* env = std::getenv("DF_SYZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return seed_from_env(fallback);
}

// A coverage-over-time series sampled every `step` executions.
struct Series {
  std::vector<uint64_t> hours;
  std::vector<size_t> coverage;
};

// Runs `eng` for `total` executions, recording a full stats point (baseline
// included) every `step` executions. This is the bench-side use of the
// campaign StatsReporter.
inline std::vector<obs::StatsReporter::Point> run_sampled_points(
    core::Engine& eng, uint64_t total, uint64_t step) {
  obs::StatsReporter rep(step);
  eng.setup();
  rep.record("run", eng.sample());
  for (uint64_t done = 0; done < total; done += step) {
    eng.run(std::min(step, total - done));
    rep.record("run", eng.sample());
  }
  return rep.series("run");
}

// Printable coverage series from sampled points (drops the exec-0 baseline
// point so columns stay "coverage at hours step, 2*step, ...").
inline Series to_series(const std::vector<obs::StatsReporter::Point>& pts) {
  Series s;
  for (size_t i = 1; i < pts.size(); ++i) {
    s.hours.push_back(pts[i].sample.executions / kExecsPerHour);
    s.coverage.push_back(static_cast<size_t>(pts[i].sample.kernel_coverage));
  }
  return s;
}

// Runs `eng` for `total` executions, sampling cumulative kernel coverage
// every `step` executions.
inline Series run_sampled(core::Engine& eng, uint64_t total, uint64_t step) {
  return to_series(run_sampled_points(eng, total, step));
}

inline void print_series(const std::string& label, const Series& s) {
  std::printf("%s:", label.c_str());
  for (size_t i = 0; i < s.coverage.size(); ++i) {
    std::printf(" %zu", s.coverage[i]);
  }
  std::printf("\n");
}

inline std::string significance_tag(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() < 3 || b.size() < 3) return "n/a (reps < 3)";
  const auto mw = util::mann_whitney_u(a, b);
  char buf[64];
  std::snprintf(buf, sizeof buf, "p=%.4f%s", mw.p_two_sided,
                mw.significant_at_05 ? "" : " (not significant)");
  return buf;
}

// --- BENCH_*.json export -----------------------------------------------------

inline std::string bench_json_path(const std::string& bench_name) {
  std::string path;
  if (const char* dir = std::getenv("DF_BENCH_JSON_DIR")) {
    path = dir;
    if (!path.empty() && path.back() != '/') path += '/';
  }
  return path + "BENCH_" + bench_name + ".json";
}

// One exported time-series: a (device, config, rep) trajectory. `states`
// (optional, filled from Engine::state_coverage() at campaign end) adds the
// per-driver state-transition coverage matrices to the series.
struct BenchSeries {
  std::string device;
  std::string config;  // "droidfuzz", "syzkaller", "df-norel", ...
  size_t rep = 0;
  std::vector<obs::StatsReporter::Point> points;
  std::vector<obs::DriverStateCoverage> states;
  // Attribution/lineage/frontier analytics at campaign end (DESIGN.md §11);
  // exported as the series' "analytics" section when captured.
  bool has_analytics = false;
  obs::AnalyticsSnapshot analytics{};
  // Corpus-distillation stats at campaign end (DESIGN.md §12); exported as
  // the series' "distill" section when captured.
  bool has_distill = false;
  core::DistillStats distill{};
};

// Snapshots the engine's campaign analytics into the series.
inline void capture_analytics(BenchSeries& s, const core::Engine& eng) {
  s.analytics = eng.analytics_snapshot();
  s.has_analytics = true;
}

// Runs a dry-run distillation pass (scratch-device replay; the campaign
// state is untouched) and records the stats into the series.
inline void capture_distill(BenchSeries& s, core::Engine& eng) {
  s.distill = eng.distill_corpus(/*dry_run=*/true);
  s.has_distill = true;
}

// Per-worker busy/idle/barrier accounting as JSON fields (an "utilization"
// array plus "busy_imbalance_ms"), written into an already-open "timing"
// object — everything here is wall-dependent by definition (DESIGN.md §10).
inline void write_utilization_fields(obs::JsonWriter& w,
                                     const core::FleetUtilization& util) {
  w.key("utilization").begin_array();
  for (size_t i = 0; i < util.workers.size(); ++i) {
    const core::WorkerUtilization& u = util.workers[i];
    w.begin_object();
    w.field("worker", static_cast<uint64_t>(i));
    w.field("rounds", u.rounds);
    w.field("busy_ms", static_cast<double>(u.busy_ns) / 1e6);
    w.field("idle_ms", static_cast<double>(u.idle_ns) / 1e6);
    w.field("barrier_ms", static_cast<double>(u.barrier_ns) / 1e6);
    w.end_object();
  }
  w.end_array();
  w.field("busy_imbalance_ms",
          static_cast<double>(util.busy_imbalance_ns()) / 1e6);
}

// Wall clock for the whole bench run (a timing-only field in the JSON).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Writes BENCH_<bench>.json: series content is deterministic for a fixed
// seed; everything wall-dependent lives under "timing" keys or *_ns fields.
// `obs` (optional) contributes the metric snapshot (phase-latency histogram
// summaries); `extra` (optional) appends bench-specific top-level sections.
inline bool write_bench_json(
    const std::string& bench, uint64_t seed, size_t reps,
    const std::vector<BenchSeries>& series, obs::Observability* obs,
    double wall_seconds,
    const std::function<void(obs::JsonWriter&)>& extra = {}) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", bench);
  w.field("seed", seed);
  w.field("reps", static_cast<uint64_t>(reps));

  w.key("series").begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.field("device", s.device);
    w.field("config", s.config);
    w.field("rep", static_cast<uint64_t>(s.rep));
    auto arr = [&](const char* key, auto get) {
      w.key(key).begin_array();
      for (const auto& p : s.points) w.value(get(p));
      w.end_array();
    };
    using Point = obs::StatsReporter::Point;
    arr("executions", [](const Point& p) { return p.sample.executions; });
    arr("kernel_coverage",
        [](const Point& p) { return p.sample.kernel_coverage; });
    arr("total_coverage",
        [](const Point& p) { return p.sample.total_coverage; });
    arr("corpus", [](const Point& p) { return p.sample.corpus_size; });
    arr("bugs", [](const Point& p) { return p.sample.unique_bugs; });
    if (!s.states.empty()) {
      w.key("state_coverage").begin_array();
      for (const auto& c : s.states) {
        if (c.states.empty()) continue;
        c.write_json(w);
      }
      w.end_array();
    }
    if (s.has_analytics) {
      w.key("analytics");
      s.analytics.write_json(w, &s.points);
    }
    if (s.has_distill) {
      const core::DistillStats& d = s.distill;
      w.key("distill").begin_object();
      w.field("before", static_cast<uint64_t>(d.before));
      w.field("after", static_cast<uint64_t>(d.after));
      w.field("dropped_static", static_cast<uint64_t>(d.dropped_static));
      w.field("dropped_covered", static_cast<uint64_t>(d.dropped_covered));
      w.field("footprint_union", static_cast<uint64_t>(d.footprint_union));
      w.field("fraction_dropped", d.fraction_dropped());
      w.field("verified", d.verified);
      w.field("dry_run", d.dry_run);
      w.end_object();
    }
    w.key("timing").begin_object();
    w.key("secs").begin_array();
    for (const auto& p : s.points) w.value(p.secs);
    w.end_array();
    w.end_object();
    w.end_object();
  }
  w.end_array();

  if (obs != nullptr) {
    obs::capture_log_metrics(obs->registry);
    w.key("metrics");
    obs->registry.snapshot().write_json(w);
  }
  w.key("build");
  w.raw(obs::build_json({{"checkpoint", core::CampaignCheckpoint::kVersion},
                         {"analytics", obs::kAnalyticsSchemaVersion}}));
  if (extra) extra(w);
  w.key("timing").begin_object();
  w.field("wall_seconds", wall_seconds);
  w.end_object();
  w.end_object();

  const std::string path = bench_json_path(bench);
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << w.str() << '\n';
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return true;
}

}  // namespace df::bench
