# Empty dependencies file for bench_fig4_coverage.
# This may be replaced when dependencies are built.
