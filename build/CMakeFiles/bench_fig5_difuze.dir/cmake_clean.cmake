file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_difuze.dir/bench/bench_fig5_difuze.cc.o"
  "CMakeFiles/bench_fig5_difuze.dir/bench/bench_fig5_difuze.cc.o.d"
  "bench/bench_fig5_difuze"
  "bench/bench_fig5_difuze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_difuze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
