file(REMOVE_RECURSE
  "CMakeFiles/hal_probe_demo.dir/hal_probe_demo.cpp.o"
  "CMakeFiles/hal_probe_demo.dir/hal_probe_demo.cpp.o.d"
  "hal_probe_demo"
  "hal_probe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_probe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
