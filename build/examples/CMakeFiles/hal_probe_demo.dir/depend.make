# Empty dependencies file for hal_probe_demo.
# This may be replaced when dependencies are built.
