file(REMOVE_RECURSE
  "CMakeFiles/df_baseline.dir/baseline/difuze.cc.o"
  "CMakeFiles/df_baseline.dir/baseline/difuze.cc.o.d"
  "CMakeFiles/df_baseline.dir/baseline/syzkaller.cc.o"
  "CMakeFiles/df_baseline.dir/baseline/syzkaller.cc.o.d"
  "libdf_baseline.a"
  "libdf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
