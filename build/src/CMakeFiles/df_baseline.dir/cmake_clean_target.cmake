file(REMOVE_RECURSE
  "libdf_baseline.a"
)
