# Empty compiler generated dependencies file for df_baseline.
# This may be replaced when dependencies are built.
