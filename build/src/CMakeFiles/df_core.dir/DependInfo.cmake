
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/descriptions.cc" "src/CMakeFiles/df_core.dir/core/descriptions.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/descriptions.cc.o.d"
  "/root/repo/src/core/exec/broker.cc" "src/CMakeFiles/df_core.dir/core/exec/broker.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/exec/broker.cc.o.d"
  "/root/repo/src/core/feedback/coverage.cc" "src/CMakeFiles/df_core.dir/core/feedback/coverage.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/feedback/coverage.cc.o.d"
  "/root/repo/src/core/fuzz/crash.cc" "src/CMakeFiles/df_core.dir/core/fuzz/crash.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/fuzz/crash.cc.o.d"
  "/root/repo/src/core/fuzz/daemon.cc" "src/CMakeFiles/df_core.dir/core/fuzz/daemon.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/fuzz/daemon.cc.o.d"
  "/root/repo/src/core/fuzz/engine.cc" "src/CMakeFiles/df_core.dir/core/fuzz/engine.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/fuzz/engine.cc.o.d"
  "/root/repo/src/core/gen/generator.cc" "src/CMakeFiles/df_core.dir/core/gen/generator.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/gen/generator.cc.o.d"
  "/root/repo/src/core/gen/minimize.cc" "src/CMakeFiles/df_core.dir/core/gen/minimize.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/gen/minimize.cc.o.d"
  "/root/repo/src/core/probe/hal_probe.cc" "src/CMakeFiles/df_core.dir/core/probe/hal_probe.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/probe/hal_probe.cc.o.d"
  "/root/repo/src/core/relation/graph.cc" "src/CMakeFiles/df_core.dir/core/relation/graph.cc.o" "gcc" "src/CMakeFiles/df_core.dir/core/relation/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/df_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
