file(REMOVE_RECURSE
  "CMakeFiles/df_core.dir/core/descriptions.cc.o"
  "CMakeFiles/df_core.dir/core/descriptions.cc.o.d"
  "CMakeFiles/df_core.dir/core/exec/broker.cc.o"
  "CMakeFiles/df_core.dir/core/exec/broker.cc.o.d"
  "CMakeFiles/df_core.dir/core/feedback/coverage.cc.o"
  "CMakeFiles/df_core.dir/core/feedback/coverage.cc.o.d"
  "CMakeFiles/df_core.dir/core/fuzz/crash.cc.o"
  "CMakeFiles/df_core.dir/core/fuzz/crash.cc.o.d"
  "CMakeFiles/df_core.dir/core/fuzz/daemon.cc.o"
  "CMakeFiles/df_core.dir/core/fuzz/daemon.cc.o.d"
  "CMakeFiles/df_core.dir/core/fuzz/engine.cc.o"
  "CMakeFiles/df_core.dir/core/fuzz/engine.cc.o.d"
  "CMakeFiles/df_core.dir/core/gen/generator.cc.o"
  "CMakeFiles/df_core.dir/core/gen/generator.cc.o.d"
  "CMakeFiles/df_core.dir/core/gen/minimize.cc.o"
  "CMakeFiles/df_core.dir/core/gen/minimize.cc.o.d"
  "CMakeFiles/df_core.dir/core/probe/hal_probe.cc.o"
  "CMakeFiles/df_core.dir/core/probe/hal_probe.cc.o.d"
  "CMakeFiles/df_core.dir/core/relation/graph.cc.o"
  "CMakeFiles/df_core.dir/core/relation/graph.cc.o.d"
  "libdf_core.a"
  "libdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
