file(REMOVE_RECURSE
  "CMakeFiles/df_device.dir/device/catalog.cc.o"
  "CMakeFiles/df_device.dir/device/catalog.cc.o.d"
  "CMakeFiles/df_device.dir/device/device.cc.o"
  "CMakeFiles/df_device.dir/device/device.cc.o.d"
  "libdf_device.a"
  "libdf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
