file(REMOVE_RECURSE
  "libdf_device.a"
)
