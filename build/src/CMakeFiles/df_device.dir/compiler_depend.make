# Empty compiler generated dependencies file for df_device.
# This may be replaced when dependencies are built.
