
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/descr.cc" "src/CMakeFiles/df_dsl.dir/dsl/descr.cc.o" "gcc" "src/CMakeFiles/df_dsl.dir/dsl/descr.cc.o.d"
  "/root/repo/src/dsl/fmt.cc" "src/CMakeFiles/df_dsl.dir/dsl/fmt.cc.o" "gcc" "src/CMakeFiles/df_dsl.dir/dsl/fmt.cc.o.d"
  "/root/repo/src/dsl/parse.cc" "src/CMakeFiles/df_dsl.dir/dsl/parse.cc.o" "gcc" "src/CMakeFiles/df_dsl.dir/dsl/parse.cc.o.d"
  "/root/repo/src/dsl/prog.cc" "src/CMakeFiles/df_dsl.dir/dsl/prog.cc.o" "gcc" "src/CMakeFiles/df_dsl.dir/dsl/prog.cc.o.d"
  "/root/repo/src/dsl/type.cc" "src/CMakeFiles/df_dsl.dir/dsl/type.cc.o" "gcc" "src/CMakeFiles/df_dsl.dir/dsl/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/df_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
