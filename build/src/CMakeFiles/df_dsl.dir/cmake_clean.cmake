file(REMOVE_RECURSE
  "CMakeFiles/df_dsl.dir/dsl/descr.cc.o"
  "CMakeFiles/df_dsl.dir/dsl/descr.cc.o.d"
  "CMakeFiles/df_dsl.dir/dsl/fmt.cc.o"
  "CMakeFiles/df_dsl.dir/dsl/fmt.cc.o.d"
  "CMakeFiles/df_dsl.dir/dsl/parse.cc.o"
  "CMakeFiles/df_dsl.dir/dsl/parse.cc.o.d"
  "CMakeFiles/df_dsl.dir/dsl/prog.cc.o"
  "CMakeFiles/df_dsl.dir/dsl/prog.cc.o.d"
  "CMakeFiles/df_dsl.dir/dsl/type.cc.o"
  "CMakeFiles/df_dsl.dir/dsl/type.cc.o.d"
  "libdf_dsl.a"
  "libdf_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
