file(REMOVE_RECURSE
  "libdf_dsl.a"
)
