# Empty compiler generated dependencies file for df_dsl.
# This may be replaced when dependencies are built.
