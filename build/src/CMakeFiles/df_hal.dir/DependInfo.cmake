
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hal/binder.cc" "src/CMakeFiles/df_hal.dir/hal/binder.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/binder.cc.o.d"
  "/root/repo/src/hal/hal_service.cc" "src/CMakeFiles/df_hal.dir/hal/hal_service.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/hal_service.cc.o.d"
  "/root/repo/src/hal/parcel.cc" "src/CMakeFiles/df_hal.dir/hal/parcel.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/parcel.cc.o.d"
  "/root/repo/src/hal/services/audio_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/audio_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/audio_hal.cc.o.d"
  "/root/repo/src/hal/services/bt_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/bt_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/bt_hal.cc.o.d"
  "/root/repo/src/hal/services/camera_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/camera_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/camera_hal.cc.o.d"
  "/root/repo/src/hal/services/graphics_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/graphics_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/graphics_hal.cc.o.d"
  "/root/repo/src/hal/services/light_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/light_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/light_hal.cc.o.d"
  "/root/repo/src/hal/services/media_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/media_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/media_hal.cc.o.d"
  "/root/repo/src/hal/services/power_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/power_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/power_hal.cc.o.d"
  "/root/repo/src/hal/services/sensors_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/sensors_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/sensors_hal.cc.o.d"
  "/root/repo/src/hal/services/wifi_hal.cc" "src/CMakeFiles/df_hal.dir/hal/services/wifi_hal.cc.o" "gcc" "src/CMakeFiles/df_hal.dir/hal/services/wifi_hal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/df_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
