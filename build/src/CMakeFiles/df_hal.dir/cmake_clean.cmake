file(REMOVE_RECURSE
  "CMakeFiles/df_hal.dir/hal/binder.cc.o"
  "CMakeFiles/df_hal.dir/hal/binder.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/hal_service.cc.o"
  "CMakeFiles/df_hal.dir/hal/hal_service.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/parcel.cc.o"
  "CMakeFiles/df_hal.dir/hal/parcel.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/audio_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/audio_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/bt_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/bt_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/camera_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/camera_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/graphics_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/graphics_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/light_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/light_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/media_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/media_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/power_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/power_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/sensors_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/sensors_hal.cc.o.d"
  "CMakeFiles/df_hal.dir/hal/services/wifi_hal.cc.o"
  "CMakeFiles/df_hal.dir/hal/services/wifi_hal.cc.o.d"
  "libdf_hal.a"
  "libdf_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
