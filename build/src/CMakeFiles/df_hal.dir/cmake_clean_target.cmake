file(REMOVE_RECURSE
  "libdf_hal.a"
)
