# Empty compiler generated dependencies file for df_hal.
# This may be replaced when dependencies are built.
