
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/dmesg.cc" "src/CMakeFiles/df_kernel.dir/kernel/dmesg.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/dmesg.cc.o.d"
  "/root/repo/src/kernel/driver.cc" "src/CMakeFiles/df_kernel.dir/kernel/driver.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/driver.cc.o.d"
  "/root/repo/src/kernel/drivers/audio_pcm.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/audio_pcm.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/audio_pcm.cc.o.d"
  "/root/repo/src/kernel/drivers/bt_hci.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/bt_hci.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/bt_hci.cc.o.d"
  "/root/repo/src/kernel/drivers/drm_gpu.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/drm_gpu.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/drm_gpu.cc.o.d"
  "/root/repo/src/kernel/drivers/gpu_mali.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/gpu_mali.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/gpu_mali.cc.o.d"
  "/root/repo/src/kernel/drivers/ion_alloc.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/ion_alloc.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/ion_alloc.cc.o.d"
  "/root/repo/src/kernel/drivers/l2cap.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/l2cap.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/l2cap.cc.o.d"
  "/root/repo/src/kernel/drivers/rt1711_i2c.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/rt1711_i2c.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/rt1711_i2c.cc.o.d"
  "/root/repo/src/kernel/drivers/sensor_hub.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/sensor_hub.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/sensor_hub.cc.o.d"
  "/root/repo/src/kernel/drivers/tcpc_core.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/tcpc_core.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/tcpc_core.cc.o.d"
  "/root/repo/src/kernel/drivers/v4l2_cam.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/v4l2_cam.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/v4l2_cam.cc.o.d"
  "/root/repo/src/kernel/drivers/wifi_rate.cc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/wifi_rate.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/drivers/wifi_rate.cc.o.d"
  "/root/repo/src/kernel/kasan.cc" "src/CMakeFiles/df_kernel.dir/kernel/kasan.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/kasan.cc.o.d"
  "/root/repo/src/kernel/kcov.cc" "src/CMakeFiles/df_kernel.dir/kernel/kcov.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/kcov.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/df_kernel.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/kmalloc.cc" "src/CMakeFiles/df_kernel.dir/kernel/kmalloc.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/kmalloc.cc.o.d"
  "/root/repo/src/kernel/vfs.cc" "src/CMakeFiles/df_kernel.dir/kernel/vfs.cc.o" "gcc" "src/CMakeFiles/df_kernel.dir/kernel/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/df_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
