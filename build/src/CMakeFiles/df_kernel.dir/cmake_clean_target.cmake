file(REMOVE_RECURSE
  "libdf_kernel.a"
)
