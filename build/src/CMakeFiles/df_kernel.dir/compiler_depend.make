# Empty compiler generated dependencies file for df_kernel.
# This may be replaced when dependencies are built.
