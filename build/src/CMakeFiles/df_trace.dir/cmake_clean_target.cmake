file(REMOVE_RECURSE
  "libdf_trace.a"
)
