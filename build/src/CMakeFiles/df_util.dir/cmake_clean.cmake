file(REMOVE_RECURSE
  "CMakeFiles/df_util.dir/util/log.cc.o"
  "CMakeFiles/df_util.dir/util/log.cc.o.d"
  "CMakeFiles/df_util.dir/util/rng.cc.o"
  "CMakeFiles/df_util.dir/util/rng.cc.o.d"
  "CMakeFiles/df_util.dir/util/stats.cc.o"
  "CMakeFiles/df_util.dir/util/stats.cc.o.d"
  "libdf_util.a"
  "libdf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
