file(REMOVE_RECURSE
  "libdf_util.a"
)
