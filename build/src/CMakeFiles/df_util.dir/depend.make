# Empty dependencies file for df_util.
# This may be replaced when dependencies are built.
