file(REMOVE_RECURSE
  "CMakeFiles/df_baseline_test.dir/baseline/baseline_test.cc.o"
  "CMakeFiles/df_baseline_test.dir/baseline/baseline_test.cc.o.d"
  "df_baseline_test"
  "df_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
