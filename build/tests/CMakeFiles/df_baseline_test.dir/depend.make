# Empty dependencies file for df_baseline_test.
# This may be replaced when dependencies are built.
