
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/broker_test.cc" "tests/CMakeFiles/df_core_test.dir/core/broker_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/broker_test.cc.o.d"
  "/root/repo/tests/core/crash_test.cc" "tests/CMakeFiles/df_core_test.dir/core/crash_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/crash_test.cc.o.d"
  "/root/repo/tests/core/daemon_test.cc" "tests/CMakeFiles/df_core_test.dir/core/daemon_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/daemon_test.cc.o.d"
  "/root/repo/tests/core/descriptions_test.cc" "tests/CMakeFiles/df_core_test.dir/core/descriptions_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/descriptions_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/df_core_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/feedback_test.cc" "tests/CMakeFiles/df_core_test.dir/core/feedback_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/feedback_test.cc.o.d"
  "/root/repo/tests/core/generator_test.cc" "tests/CMakeFiles/df_core_test.dir/core/generator_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/generator_test.cc.o.d"
  "/root/repo/tests/core/minimize_test.cc" "tests/CMakeFiles/df_core_test.dir/core/minimize_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/minimize_test.cc.o.d"
  "/root/repo/tests/core/probe_test.cc" "tests/CMakeFiles/df_core_test.dir/core/probe_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/probe_test.cc.o.d"
  "/root/repo/tests/core/relation_test.cc" "tests/CMakeFiles/df_core_test.dir/core/relation_test.cc.o" "gcc" "tests/CMakeFiles/df_core_test.dir/core/relation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/df_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/df_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
