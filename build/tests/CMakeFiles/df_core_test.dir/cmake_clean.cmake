file(REMOVE_RECURSE
  "CMakeFiles/df_core_test.dir/core/broker_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/broker_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/crash_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/crash_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/daemon_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/daemon_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/descriptions_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/descriptions_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/engine_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/engine_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/feedback_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/feedback_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/generator_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/generator_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/minimize_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/minimize_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/probe_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/probe_test.cc.o.d"
  "CMakeFiles/df_core_test.dir/core/relation_test.cc.o"
  "CMakeFiles/df_core_test.dir/core/relation_test.cc.o.d"
  "df_core_test"
  "df_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
