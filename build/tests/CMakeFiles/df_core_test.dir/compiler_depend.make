# Empty compiler generated dependencies file for df_core_test.
# This may be replaced when dependencies are built.
