file(REMOVE_RECURSE
  "CMakeFiles/df_device_test.dir/device/device_test.cc.o"
  "CMakeFiles/df_device_test.dir/device/device_test.cc.o.d"
  "CMakeFiles/df_device_test.dir/trace/trace_test.cc.o"
  "CMakeFiles/df_device_test.dir/trace/trace_test.cc.o.d"
  "df_device_test"
  "df_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
