# Empty compiler generated dependencies file for df_device_test.
# This may be replaced when dependencies are built.
