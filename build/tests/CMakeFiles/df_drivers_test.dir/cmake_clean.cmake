file(REMOVE_RECURSE
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_bt_test.cc.o"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_bt_test.cc.o.d"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_gpu_test.cc.o"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_gpu_test.cc.o.d"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_media_test.cc.o"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_media_test.cc.o.d"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_typec_test.cc.o"
  "CMakeFiles/df_drivers_test.dir/kernel/drivers_typec_test.cc.o.d"
  "df_drivers_test"
  "df_drivers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_drivers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
