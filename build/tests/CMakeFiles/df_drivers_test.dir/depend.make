# Empty dependencies file for df_drivers_test.
# This may be replaced when dependencies are built.
