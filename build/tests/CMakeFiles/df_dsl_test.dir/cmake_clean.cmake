file(REMOVE_RECURSE
  "CMakeFiles/df_dsl_test.dir/dsl/fmt_parse_test.cc.o"
  "CMakeFiles/df_dsl_test.dir/dsl/fmt_parse_test.cc.o.d"
  "CMakeFiles/df_dsl_test.dir/dsl/prog_test.cc.o"
  "CMakeFiles/df_dsl_test.dir/dsl/prog_test.cc.o.d"
  "CMakeFiles/df_dsl_test.dir/dsl/type_test.cc.o"
  "CMakeFiles/df_dsl_test.dir/dsl/type_test.cc.o.d"
  "df_dsl_test"
  "df_dsl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
