# Empty dependencies file for df_dsl_test.
# This may be replaced when dependencies are built.
