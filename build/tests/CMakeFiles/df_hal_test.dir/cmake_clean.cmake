file(REMOVE_RECURSE
  "CMakeFiles/df_hal_test.dir/hal/binder_test.cc.o"
  "CMakeFiles/df_hal_test.dir/hal/binder_test.cc.o.d"
  "CMakeFiles/df_hal_test.dir/hal/hal_services_test.cc.o"
  "CMakeFiles/df_hal_test.dir/hal/hal_services_test.cc.o.d"
  "CMakeFiles/df_hal_test.dir/hal/parcel_test.cc.o"
  "CMakeFiles/df_hal_test.dir/hal/parcel_test.cc.o.d"
  "df_hal_test"
  "df_hal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_hal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
