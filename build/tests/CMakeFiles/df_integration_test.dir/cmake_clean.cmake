file(REMOVE_RECURSE
  "CMakeFiles/df_integration_test.dir/integration/bug_repro_test.cc.o"
  "CMakeFiles/df_integration_test.dir/integration/bug_repro_test.cc.o.d"
  "CMakeFiles/df_integration_test.dir/integration/determinism_test.cc.o"
  "CMakeFiles/df_integration_test.dir/integration/determinism_test.cc.o.d"
  "CMakeFiles/df_integration_test.dir/integration/fuzz_smoke_test.cc.o"
  "CMakeFiles/df_integration_test.dir/integration/fuzz_smoke_test.cc.o.d"
  "df_integration_test"
  "df_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
