# Empty compiler generated dependencies file for df_integration_test.
# This may be replaced when dependencies are built.
