file(REMOVE_RECURSE
  "CMakeFiles/df_kernel_test.dir/kernel/dmesg_test.cc.o"
  "CMakeFiles/df_kernel_test.dir/kernel/dmesg_test.cc.o.d"
  "CMakeFiles/df_kernel_test.dir/kernel/kasan_test.cc.o"
  "CMakeFiles/df_kernel_test.dir/kernel/kasan_test.cc.o.d"
  "CMakeFiles/df_kernel_test.dir/kernel/kcov_test.cc.o"
  "CMakeFiles/df_kernel_test.dir/kernel/kcov_test.cc.o.d"
  "CMakeFiles/df_kernel_test.dir/kernel/kernel_core_test.cc.o"
  "CMakeFiles/df_kernel_test.dir/kernel/kernel_core_test.cc.o.d"
  "df_kernel_test"
  "df_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
