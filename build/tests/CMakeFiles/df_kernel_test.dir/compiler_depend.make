# Empty compiler generated dependencies file for df_kernel_test.
# This may be replaced when dependencies are built.
