file(REMOVE_RECURSE
  "CMakeFiles/df_property_test.dir/property/property_test.cc.o"
  "CMakeFiles/df_property_test.dir/property/property_test.cc.o.d"
  "df_property_test"
  "df_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
