# Empty dependencies file for df_property_test.
# This may be replaced when dependencies are built.
