file(REMOVE_RECURSE
  "CMakeFiles/df_util_test.dir/util/hash_test.cc.o"
  "CMakeFiles/df_util_test.dir/util/hash_test.cc.o.d"
  "CMakeFiles/df_util_test.dir/util/log_test.cc.o"
  "CMakeFiles/df_util_test.dir/util/log_test.cc.o.d"
  "CMakeFiles/df_util_test.dir/util/rng_test.cc.o"
  "CMakeFiles/df_util_test.dir/util/rng_test.cc.o.d"
  "CMakeFiles/df_util_test.dir/util/stats_test.cc.o"
  "CMakeFiles/df_util_test.dir/util/stats_test.cc.o.d"
  "df_util_test"
  "df_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
