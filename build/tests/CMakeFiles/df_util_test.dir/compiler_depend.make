# Empty compiler generated dependencies file for df_util_test.
# This may be replaced when dependencies are built.
