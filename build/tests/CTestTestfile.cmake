# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(df_util_test "/root/repo/build/tests/df_util_test")
set_tests_properties(df_util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_kernel_test "/root/repo/build/tests/df_kernel_test")
set_tests_properties(df_kernel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_drivers_test "/root/repo/build/tests/df_drivers_test")
set_tests_properties(df_drivers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;25;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_hal_test "/root/repo/build/tests/df_hal_test")
set_tests_properties(df_hal_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;32;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_device_test "/root/repo/build/tests/df_device_test")
set_tests_properties(df_device_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;38;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_dsl_test "/root/repo/build/tests/df_dsl_test")
set_tests_properties(df_dsl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;43;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_core_test "/root/repo/build/tests/df_core_test")
set_tests_properties(df_core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;49;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_baseline_test "/root/repo/build/tests/df_baseline_test")
set_tests_properties(df_baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;62;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_integration_test "/root/repo/build/tests/df_integration_test")
set_tests_properties(df_integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;66;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(df_property_test "/root/repo/build/tests/df_property_test")
set_tests_properties(df_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;72;df_add_test;/root/repo/tests/CMakeLists.txt;0;")
