// Crash triage workflow: fuzz a device until the first few unique bugs
// appear, then minimize each reproducer against its crash title and print
// the before/after DSL programs — the "minimized, deduplicated, and
// reproduced" pipeline from the paper's §V-B.
//
//   ./examples/crash_triage [device-id] [max-execs] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "dsl/fmt.h"

int main(int argc, char** argv) {
  const std::string device_id = argc > 1 ? argv[1] : "A1";
  const uint64_t max_execs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  auto dev = df::device::make_device(device_id, seed);
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", device_id.c_str());
    return 1;
  }
  df::core::EngineConfig cfg;
  cfg.seed = seed;
  df::core::Engine engine(*dev, cfg);
  engine.setup();

  std::printf("== crash triage on %s (budget %llu execs) ==\n",
              device_id.c_str(),
              static_cast<unsigned long long>(max_execs));
  uint64_t done = 0;
  while (done < max_execs) {
    engine.run(1000);
    done += 1000;
    if (engine.crashes().unique_bugs() >= 3) break;
  }
  std::printf("campaign: %llu execs, %zu unique bugs, coverage %zu\n\n",
              static_cast<unsigned long long>(engine.executions()),
              engine.crashes().unique_bugs(), engine.kernel_coverage());

  for (const auto& bug : engine.crashes().bugs()) {
    std::printf("--- %s [%s/%s], hit %llu times, first at exec %llu\n",
                bug.title.c_str(), bug.component.c_str(),
                bug.bug_class.c_str(),
                static_cast<unsigned long long>(bug.dup_count),
                static_cast<unsigned long long>(bug.first_exec));
    std::printf("original reproducer (%zu calls):\n%s", bug.repro.size(),
                bug.repro_text.c_str());
    const df::dsl::Program minimized = engine.minimize_crash(bug, 96);
    std::printf("minimized reproducer (%zu calls):\n%s\n", minimized.size(),
                df::dsl::format_program(minimized).c_str());
  }
  if (engine.crashes().bugs().empty()) {
    std::printf("no bugs found within the budget — try a longer run or "
                "another seed\n");
  }
  return 0;
}
