// Crash triage workflow: fuzz a device until the first few unique bugs
// appear, then minimize each reproducer against its crash title and print
// the before/after DSL programs — the "minimized, deduplicated, and
// reproduced" pipeline from the paper's §V-B.
//
//   ./examples/crash_triage [device-id] [max-execs] [seed]
//                           [--stats-json <path>] [--trace-out <path>]
//                           [--crash-dir <dir>] [--quiet]
//
// --stats-json writes campaign telemetry (stats series, metric snapshot
// including minimize-phase latency, bug trace events) as one JSON document;
// --trace-out enables hierarchical span tracing and exports a Chrome
// trace-event file (load at ui.perfetto.dev); --crash-dir enables the crash
// flight recorder and writes one crash_<hash>.json provenance report per
// unique bug; --quiet suppresses the per-bug listing, leaving the final
// one-line summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "dsl/fmt.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "util/log.h"

int main(int argc, char** argv) {
  df::util::init_log_from_env();
  std::string device_id = "A1";
  uint64_t max_execs = 30000;
  uint64_t seed = 3;
  std::string stats_path;
  std::string trace_path;
  std::string crash_dir;
  bool quiet = false;
  int pos = 0;
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_path = flag_value(i, "--stats-json");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = flag_value(i, "--trace-out");
    } else if (std::strcmp(argv[i], "--crash-dir") == 0) {
      crash_dir = flag_value(i, "--crash-dir");
    } else if (pos == 0) {
      device_id = argv[i];
      ++pos;
    } else if (pos == 1) {
      max_execs = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else if (pos == 2) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else {
      std::fprintf(stderr, "usage: %s [device-id] [max-execs] [seed] "
                   "[--stats-json <path>] [--trace-out <path>] "
                   "[--crash-dir <dir>] [--quiet]\n", argv[0]);
      return 1;
    }
  }

  auto dev = df::device::make_device(device_id, seed);
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", device_id.c_str());
    return 1;
  }
  df::core::EngineConfig cfg;
  cfg.seed = seed;
  df::core::Engine engine(*dev, cfg);
  // Span tracing keeps one event per iteration/phase/syscall/driver-op, so
  // the ring must outlast the campaign when a trace export is requested.
  df::obs::Observability obs(trace_path.empty() ? 4096 : 1 << 16);
  obs.trace.set_record_execs(false);
  // Enable provenance features before attach: the engine and broker cache
  // the span/flight pointers only when enabled at attach time.
  if (!trace_path.empty()) obs.spans.set_enabled(true);
  if (!crash_dir.empty()) obs.flight.enable(16);
  df::obs::StatsReporter reporter(1000);
  engine.attach_observability(&obs);
  if (!crash_dir.empty()) engine.set_crash_dir(crash_dir);
  engine.setup();

  if (!quiet) {
    std::printf("== crash triage on %s (budget %llu execs) ==\n",
                device_id.c_str(),
                static_cast<unsigned long long>(max_execs));
  }
  reporter.record(device_id, engine.sample());
  {
    // Campaign root span: every iteration/phase/syscall span nests below it.
    const df::obs::ScopedSpan campaign_span(
        obs.spans.enabled() ? &obs.spans : nullptr, "campaign");
    uint64_t done = 0;
    while (done < max_execs) {
      engine.run(1000);
      done += 1000;
      reporter.record(device_id, engine.sample());
      if (engine.crashes().unique_bugs() >= 3) break;
    }
  }
  if (!quiet) {
    std::printf("campaign: %llu execs, %zu unique bugs, coverage %zu\n\n",
                static_cast<unsigned long long>(engine.executions()),
                engine.crashes().unique_bugs(), engine.kernel_coverage());
  }

  size_t minimized_calls = 0;
  size_t original_calls = 0;
  for (const auto& bug : engine.crashes().bugs()) {
    const df::dsl::Program minimized = engine.minimize_crash(bug, 96);
    original_calls += bug.repro.size();
    minimized_calls += minimized.size();
    if (!quiet) {
      std::printf("--- %s [%s/%s], hit %llu times, first at exec %llu\n",
                  bug.title.c_str(), bug.component.c_str(),
                  bug.bug_class.c_str(),
                  static_cast<unsigned long long>(bug.dup_count),
                  static_cast<unsigned long long>(bug.first_exec));
      std::printf("original reproducer (%zu calls):\n%s", bug.repro.size(),
                  bug.repro_text.c_str());
      std::printf("minimized reproducer (%zu calls):\n%s\n", minimized.size(),
                  df::dsl::format_program(minimized).c_str());
    }
  }
  if (!quiet && engine.crashes().bugs().empty()) {
    std::printf("no bugs found within the budget — try a longer run or "
                "another seed\n");
  }

  if (!stats_path.empty()) {
    df::obs::capture_log_metrics(obs.registry);
    df::obs::JsonWriter w;
    w.begin_object();
    w.key("campaign").begin_object();
    w.field("example", "crash_triage");
    w.field("device", device_id);
    w.field("seed", seed);
    w.field("max_execs", max_execs);
    w.field("executions", engine.executions());
    w.field("bugs", static_cast<uint64_t>(engine.crashes().unique_bugs()));
    w.end_object();
    w.key("stats");
    reporter.write_json(w);
    w.key("metrics");
    obs.registry.snapshot().write_json(w);
    w.key("events").begin_array();
    for (size_t i = 0; i < obs.trace.size(); ++i) {
      w.raw(df::obs::TraceSink::to_json(obs.trace.at(i)));
    }
    w.end_array();
    w.end_object();
    std::ofstream out(stats_path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    if (!quiet) std::printf("stats written to %s\n", stats_path.c_str());
  }

  if (!trace_path.empty()) {
    if (!df::obs::write_chrome_trace(obs.trace, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("chrome trace written to %s (%llu spans; load at "
                "ui.perfetto.dev)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(obs.spans.spans_started()));
  }
  if (!crash_dir.empty()) {
    std::printf("crash provenance: %zu report(s) in %s/\n",
                engine.crashes().provenance_files().size(),
                crash_dir.c_str());
  }

  std::printf("crash_triage: device %s, %llu execs, %zu bugs, reproducers "
              "%zu -> %zu calls, coverage %zu, seed %llu\n",
              device_id.c_str(),
              static_cast<unsigned long long>(engine.executions()),
              engine.crashes().unique_bugs(), original_calls, minimized_calls,
              engine.kernel_coverage(),
              static_cast<unsigned long long>(seed));
  return 0;
}
