// df_distill: subsumption-based corpus distillation (DESIGN.md §12).
//
//   ./examples/df_distill [--device <id>] [--execs N] [--seed S]
//                         [--json <path>] [--quiet]
//
// Runs a short campaign per device (all Table I devices by default), then
// destructively distills each corpus: seeds whose replayed coverage
// footprint — execution features plus driver state-transitions, replayed on
// a scratch device — is already covered by the kept set are dropped, and a
// second replay of the kept set re-verifies that the distilled corpus
// reproduces bit-identical coverage. --json writes a machine-readable
// report (validated by scripts/check_bench_json.py). Exit code is non-zero
// when any device's distillation fails replay verification.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fuzz/engine.h"
#include "device/catalog.h"
#include "obs/json.h"
#include "util/log.h"

namespace {

struct DeviceResult {
  std::string device;
  uint64_t executions = 0;
  df::core::DistillStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  df::util::init_log_from_env();
  std::string only_device;
  std::string json_path;
  uint64_t execs = 2000;
  uint64_t seed = 1;
  bool quiet = false;
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0) {
      only_device = flag_value(i, "--device");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = flag_value(i, "--json");
    } else if (std::strcmp(argv[i], "--execs") == 0) {
      execs = std::strtoull(flag_value(i, "--execs"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(flag_value(i, "--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--device <id>] [--execs N] [--seed S] "
                   "[--json <path>] [--quiet]\n",
                   argv[0]);
      return 1;
    }
  }

  std::vector<DeviceResult> results;
  bool all_verified = true;
  for (const auto& spec : df::device::device_table()) {
    if (!only_device.empty() && spec.id != only_device) continue;
    auto dev = df::device::make_device(spec.id, seed);
    df::core::EngineConfig cfg;
    cfg.seed = seed;
    df::core::Engine eng(*dev, cfg);
    eng.run(execs);
    DeviceResult r;
    r.device = spec.id;
    r.executions = eng.executions();
    r.stats = eng.distill_corpus(/*dry_run=*/false);
    all_verified = all_verified && r.stats.verified;
    if (!quiet) {
      std::printf("%s: corpus %zu -> %zu seeds (%.0f%% dropped: %zu "
                  "statically subsumed, %zu replay-covered), footprint "
                  "union %zu, replay %s\n",
                  r.device.c_str(), r.stats.before, r.stats.after,
                  100.0 * r.stats.fraction_dropped(), r.stats.dropped_static,
                  r.stats.dropped_covered, r.stats.footprint_union,
                  r.stats.verified ? "verified" : "MISMATCH");
    }
    results.push_back(std::move(r));
  }
  if (results.empty()) {
    std::fprintf(stderr, "unknown device '%s'\n", only_device.c_str());
    return 1;
  }

  if (!json_path.empty()) {
    df::obs::JsonWriter w;
    w.begin_object().key("distill").begin_object();
    w.field("tool", "df_distill");
    w.field("seed", seed);
    w.field("execs", execs);
    w.key("devices").begin_array();
    for (const DeviceResult& r : results) {
      const df::core::DistillStats& d = r.stats;
      w.begin_object()
          .field("device", r.device)
          .field("executions", r.executions)
          .field("before", static_cast<uint64_t>(d.before))
          .field("after", static_cast<uint64_t>(d.after))
          .field("dropped_static", static_cast<uint64_t>(d.dropped_static))
          .field("dropped_covered", static_cast<uint64_t>(d.dropped_covered))
          .field("footprint_union", static_cast<uint64_t>(d.footprint_union))
          .field("fraction_dropped", d.fraction_dropped())
          .field("verified", d.verified)
          .end_object();
    }
    w.end_array();
    w.end_object().end_object();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
  }
  return all_verified ? 0 : 2;
}
