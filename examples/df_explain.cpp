// df_explain: campaign attribution and coverage-frontier explainer
// (DESIGN.md §11).
//
//   ./examples/df_explain [execs-per-device] [seed] [--json <path>]
//                         [--quiet]
//
// Runs a short campaign over the whole device catalog, then explains where
// the coverage came from and where it stopped:
//   * the per-operator yield table — attempts, accepts, new features, new
//     driver states, and bugs credited to each generation/mutation origin;
//   * the corpus lineage digest — roots, generation depth histogram, and
//     the highest-yield ancestor seeds;
//   * the coverage frontier — every declared-but-unvisited driver state,
//     classified as unreachable-from-frontier (no declared route),
//     planned-but-failed (plans ran, state never entered — with the
//     failure-reason counters), or never-attempted.
// --json writes the same report machine-readably (validated by
// scripts/check_bench_json.py); --quiet suppresses the tables.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/fuzz/checkpoint.h"
#include "core/fuzz/daemon.h"
#include "device/catalog.h"
#include "obs/analytics.h"
#include "obs/buildinfo.h"
#include "obs/json.h"
#include "util/log.h"

namespace {

void print_operator_table(const df::obs::OperatorAttribution& attr) {
  std::printf("  %-16s %8s %8s %8s %8s %6s %9s\n", "origin", "attempts",
              "accepts", "features", "states", "bugs", "mean_cost");
  for (size_t i = 0; i < df::obs::kProgramOriginCount; ++i) {
    const auto origin = static_cast<df::obs::ProgramOrigin>(i);
    const df::obs::OperatorYield& y = attr.row(origin);
    if (y.attempts == 0 && y.accepts == 0 && y.new_features == 0 &&
        y.new_states == 0 && y.bugs == 0) {
      continue;
    }
    const double mean_cost =
        y.attempts == 0 ? 0.0
                        : static_cast<double>(y.total_calls) /
                              static_cast<double>(y.attempts);
    std::printf("  %-16s %8llu %8llu %8llu %8llu %6llu %9.2f\n",
                std::string(df::obs::origin_name(origin)).c_str(),
                static_cast<unsigned long long>(y.attempts),
                static_cast<unsigned long long>(y.accepts),
                static_cast<unsigned long long>(y.new_features),
                static_cast<unsigned long long>(y.new_states),
                static_cast<unsigned long long>(y.bugs), mean_cost);
  }
}

void print_lineage(const df::obs::LineageSummary& lin) {
  std::printf("  corpus: %llu seeds, %llu roots, max depth %llu\n",
              static_cast<unsigned long long>(lin.seeds),
              static_cast<unsigned long long>(lin.roots),
              static_cast<unsigned long long>(lin.max_depth));
  std::printf("  depth histogram:");
  for (size_t d = 0; d < lin.depth_histogram.size(); ++d) {
    std::printf(" %zu:%llu", d,
                static_cast<unsigned long long>(lin.depth_histogram[d]));
  }
  std::printf("\n");
  for (const df::obs::AncestorYield& a : lin.top_ancestors) {
    std::printf("  ancestor %016llx: %llu descendants, %llu subtree "
                "features\n",
                static_cast<unsigned long long>(a.hash),
                static_cast<unsigned long long>(a.descendants),
                static_cast<unsigned long long>(a.subtree_new_features));
  }
}

void print_frontier(const df::obs::FrontierReport& fr) {
  std::printf("  frontier: %llu/%llu declared states visited\n",
              static_cast<unsigned long long>(fr.states_visited),
              static_cast<unsigned long long>(fr.states_total));
  for (const df::obs::FrontierState& s : fr.unvisited) {
    std::printf("    %s/%s: %s (plan length %llu",
                s.driver.c_str(), s.state.c_str(),
                std::string(df::obs::frontier_class_name(s.cls)).c_str(),
                static_cast<unsigned long long>(s.plan_length));
    if (s.cls == df::obs::FrontierClass::kPlannedButFailed) {
      std::printf("; injected %llu, materialize_failed %llu, "
                  "executed_no_visit %llu",
                  static_cast<unsigned long long>(s.plans_injected),
                  static_cast<unsigned long long>(s.materialize_failed),
                  static_cast<unsigned long long>(s.executed_no_visit));
    }
    std::printf(")\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  df::util::init_log_from_env();
  uint64_t execs = 4000;
  uint64_t seed = 3;
  std::string json_path;
  bool quiet = false;
  int pos = 0;
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = flag_value(i, "--json");
    } else if (pos == 0) {
      execs = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else if (pos == 1) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else {
      std::fprintf(stderr,
                   "usage: %s [execs-per-device] [seed] [--json <path>] "
                   "[--quiet]\n",
                   argv[0]);
      return 1;
    }
  }

  df::core::DaemonConfig cfg;
  cfg.seed = seed;
  df::core::Daemon daemon(cfg);
  for (const auto& spec : df::device::device_table()) {
    daemon.add_device(spec.id);
  }
  daemon.run(execs);

  uint64_t total_unvisited = 0;
  for (const auto& spec : df::device::device_table()) {
    df::core::Engine* eng = daemon.engine(spec.id);
    const df::obs::AnalyticsSnapshot snap = eng->analytics_snapshot();
    total_unvisited += snap.frontier.unvisited.size();
    if (quiet) continue;
    std::printf("== %s: %llu execs, %zu features, %zu bugs ==\n",
                spec.id.c_str(),
                static_cast<unsigned long long>(eng->executions()),
                eng->kernel_coverage(), eng->crashes().unique_bugs());
    print_operator_table(snap.operators);
    print_lineage(snap.lineage);
    print_frontier(snap.frontier);
    std::printf("\n");
  }

  if (!json_path.empty()) {
    df::obs::JsonWriter w;
    w.begin_object();
    w.key("report").begin_object();
    w.field("example", "df_explain");
    w.field("seed", seed);
    w.field("execs_per_device", execs);
    w.field("devices", static_cast<uint64_t>(daemon.device_count()));
    w.end_object();
    w.key("devices").begin_array();
    for (const auto& spec : df::device::device_table()) {
      df::core::Engine* eng = daemon.engine(spec.id);
      w.begin_object();
      w.field("device", spec.id);
      w.key("analytics");
      eng->analytics_snapshot().write_json(w);
      w.end_object();
    }
    w.end_array();
    w.key("build");
    w.raw(df::obs::build_json(
        {{"checkpoint", df::core::CampaignCheckpoint::kVersion},
         {"analytics", df::obs::kAnalyticsSchemaVersion}}));
    w.end_object();
    std::ofstream out(json_path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    if (!quiet) std::printf("report written to %s\n", json_path.c_str());
  }

  std::printf("df_explain: %zu devices, %llu execs/device, %llu unvisited "
              "states classified, seed %llu\n",
              daemon.device_count(), static_cast<unsigned long long>(execs),
              static_cast<unsigned long long>(total_unvisited),
              static_cast<unsigned long long>(seed));
  return 0;
}
