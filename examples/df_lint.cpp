// df_lint: standalone static analyzer for textual DSL programs.
//
//   ./examples/df_lint [--device <id>] [--json <path>] [--quiet]
//                      <file-or-dir>...
//
// Lints every *.dsl file (directories are scanned non-recursively) against
// the named device's call table: resource lifetimes (use-after-close,
// dangling refs), ioctl argument types/widths, and dead statements. Also
// prints the reachability planner's view of each driver's declared state
// graph — which states a fresh campaign has not visited and the shortest
// ioctl plan that would reach them. --json writes a machine-readable report
// (validated by scripts/check_bench_json.py). Exit code is 0 even when
// findings exist; only usage/IO errors are fatal.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/reachability.h"
#include "analysis/semantic.h"
#include "core/descriptions.h"
#include "device/catalog.h"
#include "dsl/parse.h"
#include "obs/json.h"
#include "util/log.h"

namespace {

struct FileReport {
  std::string path;
  size_t calls = 0;
  std::string parse_error;
  df::analysis::LintReport report;
  bool repairable = false;
  // Dataflow facts (analysis/dataflow.h): argument classification against
  // the device's declared transition guards, handle-lifetime lattice, and
  // after-close uses.
  size_t guard_args = 0;
  size_t shape_args = 0;
  size_t dead_args = 0;
  size_t live = 0;
  size_t closed = 0;
  size_t leaked = 0;
  size_t stale_uses = 0;
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  df::util::init_log_from_env();
  std::string device_id = "A1";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> inputs;
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0) {
      device_id = flag_value(i, "--device");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = flag_value(i, "--json");
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--device <id>] [--json <path>] [--quiet] "
                 "<file-or-dir>...\n",
                 argv[0]);
    return 1;
  }

  auto dev = df::device::make_device(device_id, /*seed=*/1);
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", device_id.c_str());
    return 1;
  }
  df::dsl::CallTable table;
  df::core::add_syscall_descriptions(table, *dev);
  df::analysis::GuardIndex guards;
  for (const auto& drv : dev->kernel().drivers()) guards.add_driver(*drv);

  // Expand directories into their *.dsl files, sorted for stable output.
  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::directory_iterator(in, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".dsl") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(in);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no .dsl files found\n");
    return 1;
  }

  const df::analysis::ProgramLint lint;
  std::vector<FileReport> reports;
  size_t programs = 0;
  size_t total_findings = 0;
  size_t total_errors = 0;
  size_t total_warnings = 0;
  size_t rejected = 0;   // programs with errors no repair could fix
  size_t repaired = 0;   // programs with errors that repair() fixed
  for (const std::string& path : files) {
    FileReport fr;
    fr.path = path;
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::string err;
    auto prog = df::dsl::parse_program(text, table, &err);
    if (!prog.has_value()) {
      fr.parse_error = err;
    } else {
      ++programs;
      fr.calls = prog->calls.size();
      fr.report = lint.analyze(*prog);
      total_findings += fr.report.findings.size();
      total_errors += fr.report.errors();
      total_warnings += fr.report.warnings();
      if (fr.report.errors() > 0) {
        df::dsl::Program fixed = df::dsl::clone(*prog);
        lint.repair(fixed);
        fr.repairable = lint.analyze(fixed).clean();
        if (fr.repairable) {
          ++repaired;
        } else {
          ++rejected;
        }
      }
      const df::analysis::ProgramDataflow flow(*prog);
      fr.stale_uses = flow.stale_use_count();
      for (const auto& def : flow.defs()) {
        switch (def.end_state) {
          case df::analysis::Lifetime::kLive: ++fr.live; break;
          case df::analysis::Lifetime::kClosed: ++fr.closed; break;
          case df::analysis::Lifetime::kLeaked: ++fr.leaked; break;
          case df::analysis::Lifetime::kUnknown: break;
        }
      }
      for (const auto& c : prog->calls) {
        if (c.desc == nullptr) continue;
        for (size_t a = 0; a < c.desc->params.size(); ++a) {
          switch (guards.classify_arg(*c.desc, a)) {
            case df::analysis::ArgClass::kGuardRelevant:
              ++fr.guard_args;
              break;
            case df::analysis::ArgClass::kShapeRelevant:
              ++fr.shape_args;
              break;
            case df::analysis::ArgClass::kDead:
              ++fr.dead_args;
              break;
          }
        }
      }
    }
    reports.push_back(std::move(fr));
  }

  if (!quiet) {
    for (const FileReport& fr : reports) {
      if (!fr.parse_error.empty()) {
        std::printf("%s: parse error: %s\n", fr.path.c_str(),
                    fr.parse_error.c_str());
        continue;
      }
      std::printf("%s: %zu calls, %zu findings%s\n", fr.path.c_str(),
                  fr.calls, fr.report.findings.size(),
                  fr.report.errors() > 0
                      ? (fr.repairable ? " (repairable)" : " (rejected)")
                      : "");
      for (const auto& f : fr.report.findings) {
        std::printf("  [%s] %s: call #%zu: %s\n",
                    std::string(severity_name(f.severity)).c_str(),
                    std::string(pass_name(f.pass)).c_str(), f.call,
                    f.message.c_str());
      }
      if (fr.parse_error.empty() && fr.calls > 0) {
        std::printf("  dataflow: args %zu guard / %zu shape / %zu dead; "
                    "handles %zu live / %zu closed / %zu leaked; "
                    "%zu stale uses\n",
                    fr.guard_args, fr.shape_args, fr.dead_args, fr.live,
                    fr.closed, fr.leaked, fr.stale_uses);
      }
    }
    std::printf("summary: %zu files, %zu programs, %zu findings "
                "(%zu errors, %zu warnings), %zu repaired, %zu rejected\n",
                reports.size(), programs, total_findings, total_errors,
                total_warnings, repaired, rejected);
  }

  // Planner diagnostics: every driver's declared state graph, from the
  // perspective of a campaign that has executed nothing yet.
  struct DriverPlans {
    std::string driver;
    std::vector<std::string> states;
    std::vector<df::analysis::StatePlan> plans;
  };
  std::vector<DriverPlans> planner_out;
  for (const auto& drv : dev->kernel().drivers()) {
    df::analysis::StateGraph g = df::analysis::graph_of(*drv);
    if (g.empty()) continue;
    DriverPlans dp;
    dp.driver = g.driver;
    dp.states = g.states;
    const df::analysis::ReachabilityPlanner planner(std::move(g));
    dp.plans = planner.plans();
    planner_out.push_back(std::move(dp));
  }
  if (!quiet) {
    for (const DriverPlans& dp : planner_out) {
      std::printf("planner: %s (%zu states)\n", dp.driver.c_str(),
                  dp.states.size());
      for (const auto& p : dp.plans) {
        if (!p.reachable) {
          std::printf("  %s: UNREACHABLE from declared graph\n",
                      p.state_name.c_str());
          continue;
        }
        std::printf("  %s: %zu calls", p.state_name.c_str(), p.steps.size());
        for (const auto& step : p.steps) {
          std::printf(" %s", step.call.c_str());
        }
        std::printf("\n");
      }
    }
  }

  if (!json_path.empty()) {
    df::obs::JsonWriter w;
    w.begin_object().key("lint").begin_object();
    w.field("tool", "df_lint").field("device", device_id);
    w.key("files").begin_array();
    for (const FileReport& fr : reports) {
      w.begin_object()
          .field("path", fr.path)
          .field("calls", static_cast<uint64_t>(fr.calls))
          .field("parse_error", fr.parse_error);
      w.key("findings").begin_array();
      for (const auto& f : fr.report.findings) {
        w.begin_object()
            .field("pass", pass_name(f.pass))
            .field("severity", severity_name(f.severity))
            .field("call", static_cast<uint64_t>(f.call))
            .field("arg", f.arg == df::analysis::Finding::kNoArg
                              ? static_cast<int64_t>(-1)
                              : static_cast<int64_t>(f.arg))
            .field("message", f.message)
            .end_object();
      }
      w.end_array();
      w.key("dataflow").begin_object();
      w.key("arg_classes")
          .begin_object()
          .field("guard_relevant", static_cast<uint64_t>(fr.guard_args))
          .field("shape_relevant", static_cast<uint64_t>(fr.shape_args))
          .field("dead", static_cast<uint64_t>(fr.dead_args))
          .end_object();
      w.key("lifetimes")
          .begin_object()
          .field("live", static_cast<uint64_t>(fr.live))
          .field("closed", static_cast<uint64_t>(fr.closed))
          .field("leaked", static_cast<uint64_t>(fr.leaked))
          .end_object();
      w.field("stale_uses", static_cast<uint64_t>(fr.stale_uses));
      w.end_object();
      w.field("repairable", fr.repairable).end_object();
    }
    w.end_array();
    w.key("summary")
        .begin_object()
        .field("files", static_cast<uint64_t>(reports.size()))
        .field("programs", static_cast<uint64_t>(programs))
        .field("findings", static_cast<uint64_t>(total_findings))
        .field("errors", static_cast<uint64_t>(total_errors))
        .field("warnings", static_cast<uint64_t>(total_warnings))
        .field("repaired", static_cast<uint64_t>(repaired))
        .field("rejected", static_cast<uint64_t>(rejected))
        .end_object();
    w.key("plans").begin_array();
    for (const DriverPlans& dp : planner_out) {
      w.begin_object().field("driver", dp.driver);
      w.key("states").begin_array();
      for (const std::string& s : dp.states) w.value(s);
      w.end_array();
      w.key("plans").begin_array();
      for (const auto& p : dp.plans) {
        w.begin_object()
            .field("state", static_cast<uint64_t>(p.state))
            .field("name", p.state_name)
            .field("reachable", p.reachable)
            .field("calls", static_cast<uint64_t>(p.steps.size()))
            .end_object();
      }
      w.end_array().end_object();
    }
    w.end_array();
    w.end_object().end_object();
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << w.str() << "\n";
  }
  return 0;
}
