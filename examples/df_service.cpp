// Campaign service daemon (DESIGN.md §14): the multi-tenant control plane
// over the fleet daemon. Boots the job table from <root>/service.json (crash
// recovery), serves the HTTP job API, and runs the scheduler loop — one
// preemption quantum per pass — until POST /shutdown.
//
//   ./examples/df_service --root <dir> [--port <p>] [--workers <n>]
//                         [--quantum-barriers <n>] [--age-every <n>]
//                         [--idle-exit-ms <ms>]
//   ./examples/df_service --oneshot <spec.json> [--workers <n>]
//                         [--scratch <dir>]
//
// Service mode announces the bound port on stdout:
//
//   df_service: serving job API on http://127.0.0.1:<port>/
//
// and then schedules until a POST /shutdown arrives (or, with
// --idle-exit-ms, until the queue has been empty that long — the CI e2e
// harness's safety net). Endpoints: GET /healthz, POST /jobs (JobSpec
// document), GET /jobs, GET /jobs/<id>, POST /jobs/<id>/{pause,resume,
// cancel}, GET /jobs/<id>/{status,coverage,frontier}.
//
// --oneshot runs the spec uninterrupted (same checkpoint grid the service
// uses) and prints the result document — the byte-exact reference a service
// job with the same spec must reproduce (the scheduler determinism
// contract). The e2e test diffs the two.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/service/job.h"
#include "core/service/service.h"
#include "obs/serve.h"
#include "util/log.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: df_service --root <dir> [--port <p>] [--workers <n>]\n"
               "                  [--quantum-barriers <n>] [--age-every <n>]\n"
               "                  [--idle-exit-ms <ms>]\n"
               "       df_service --oneshot <spec.json> [--workers <n>]\n"
               "                  [--scratch <dir>]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  df::util::init_log_from_env();

  std::string root;
  std::string oneshot_path;
  std::string scratch = "/tmp/df_service_oneshot";
  int port = 0;
  size_t workers = 1;
  uint64_t quantum_barriers = 1;
  uint64_t age_every = 4;
  uint64_t idle_exit_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const auto has_value = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (has_value("--root")) {
      root = argv[++i];
    } else if (has_value("--oneshot")) {
      oneshot_path = argv[++i];
    } else if (has_value("--scratch")) {
      scratch = argv[++i];
    } else if (has_value("--port")) {
      port = std::atoi(argv[++i]);
    } else if (has_value("--workers")) {
      workers = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (has_value("--quantum-barriers")) {
      quantum_barriers = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--age-every")) {
      age_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (has_value("--idle-exit-ms")) {
      idle_exit_ms = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }

  // Reference mode: run the spec uninterrupted, print the result document.
  if (!oneshot_path.empty()) {
    std::string text;
    if (!read_file(oneshot_path, &text)) {
      std::fprintf(stderr, "df_service: cannot read %s\n",
                   oneshot_path.c_str());
      return 1;
    }
    df::core::JobSpec spec;
    std::string error;
    if (!df::core::JobSpec::from_json(text, &spec, &error)) {
      std::fprintf(stderr, "df_service: bad spec: %s\n", error.c_str());
      return 1;
    }
    const std::string result =
        df::core::CampaignService::run_reference(spec, workers, scratch);
    std::printf("%s\n", result.c_str());
    return 0;
  }

  if (root.empty() || port < 0) return usage();

  df::core::ServiceConfig cfg;
  cfg.root_dir = root;
  cfg.workers = workers;
  cfg.quantum_barriers = quantum_barriers;
  cfg.age_every = age_every;
  cfg.serve_port = port;
  df::core::CampaignService svc(cfg);

  std::string error;
  if (!svc.boot(&error)) {
    std::fprintf(stderr, "df_service: boot failed: %s\n", error.c_str());
    return 1;
  }
  if (svc.server() == nullptr) {
    std::fprintf(stderr, "df_service: cannot bind port %d\n", port);
    return 1;
  }
  svc.server()->handle_route(
      "/shutdown", [&svc](const df::obs::HttpRequest& req) {
        df::obs::HttpResponse r;
        if (req.method != "POST") {
          r.status = 405;
          r.body = "{\"error\":\"use POST to shut down\"}\n";
          r.content_type = "application/json";
          return r;
        }
        svc.request_shutdown();
        r.body = "shutting down\n";
        return r;
      });

  std::printf("df_service: serving job API on http://127.0.0.1:%d/\n",
              svc.serve_port());
  std::fflush(stdout);

  // The scheduler loop: one quantum per pass; idle passes sleep briefly so
  // freshly submitted jobs are picked up within a few milliseconds.
  auto idle_since = std::chrono::steady_clock::now();
  bool idle = false;
  while (!svc.shutdown_requested()) {
    if (svc.run_one_quantum()) {
      idle = false;
      continue;
    }
    if (!idle) {
      idle = true;
      idle_since = std::chrono::steady_clock::now();
    } else if (idle_exit_ms != 0) {
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - idle_since);
      if (waited.count() >= static_cast<int64_t>(idle_exit_ms)) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  size_t done = 0;
  size_t failed = 0;
  const auto jobs = svc.jobs();
  for (const auto& rec : jobs) {
    if (rec.state == df::core::JobState::kDone) ++done;
    if (rec.state == df::core::JobState::kFailed) ++failed;
  }
  std::printf("df_service: exiting after %llu quanta: %zu jobs, %zu done, "
              "%zu failed\n",
              static_cast<unsigned long long>(svc.scheduler_ticks()),
              jobs.size(), done, failed);
  return 0;
}
