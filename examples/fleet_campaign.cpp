// Fleet campaign: the Daemon workflow from §IV-A — one fuzzing engine per
// device, coordinated round-robin, with a persistent corpus snapshot. This
// is the shape of the paper's multi-device deployment (their Figure 2),
// miniaturized: fuzz the whole Table I fleet, print a campaign dashboard,
// then save and reload the corpus to show warm-start behaviour.
//
//   ./examples/fleet_campaign [execs-per-device] [seed]
//                             [--stats-json <path>] [--quiet]
//
// --stats-json writes the full campaign telemetry (per-device + aggregate
// time series, metric snapshot, milestone trace events) as one JSON
// document; --quiet suppresses the dashboard, leaving only the final
// one-line summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/fuzz/daemon.h"
#include "device/catalog.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"

int main(int argc, char** argv) {
  uint64_t execs = 15000;
  uint64_t seed = 3;
  std::string stats_path;
  bool quiet = false;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--stats-json requires a path\n");
        return 1;
      }
      stats_path = argv[++i];
    } else if (pos == 0) {
      execs = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else if (pos == 1) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else {
      std::fprintf(stderr, "usage: %s [execs-per-device] [seed] "
                   "[--stats-json <path>] [--quiet]\n", argv[0]);
      return 1;
    }
  }

  df::core::DaemonConfig cfg;
  cfg.seed = seed;
  df::core::Daemon daemon(cfg);
  df::obs::Observability obs;
  obs.trace.set_record_execs(false);
  df::obs::StatsReporter reporter(2048);
  daemon.attach_observability(&obs);
  daemon.attach_reporter(&reporter);
  for (const auto& spec : df::device::device_table()) {
    daemon.add_device(spec.id);
  }
  if (!quiet) {
    std::printf("== fleet campaign: %zu devices x %llu execs ==\n",
                daemon.device_count(),
                static_cast<unsigned long long>(execs));
  }
  daemon.run(execs, 512);

  size_t fleet_coverage = 0;
  size_t fleet_corpus = 0;
  if (!quiet) {
    std::printf("\n%-4s %-9s %-8s %-7s %-9s %s\n", "Dev", "coverage",
                "corpus", "bugs", "relations", "reboots");
  }
  for (const auto& spec : df::device::device_table()) {
    df::core::Engine* eng = daemon.engine(spec.id);
    fleet_coverage += eng->kernel_coverage();
    fleet_corpus += eng->corpus().size();
    if (!quiet) {
      std::printf("%-4s %-9zu %-8zu %-7zu %-9zu %llu\n", spec.id.c_str(),
                  eng->kernel_coverage(), eng->corpus().size(),
                  eng->crashes().unique_bugs(), eng->relations().edge_count(),
                  static_cast<unsigned long long>(
                      eng->device().kernel().reboot_count()));
    }
  }

  const auto bugs = daemon.all_bugs();
  if (!quiet) {
    std::printf("\nbugs across the fleet:\n");
    for (const auto& found : bugs) {
      std::printf("  [%s] %s (first at exec %llu)\n", found.device_id.c_str(),
                  found.bug.title.c_str(),
                  static_cast<unsigned long long>(found.bug.first_exec));
    }
  }

  // Persist and warm-start: a fresh daemon reloads the distilled corpus.
  const std::string snapshot = daemon.save_corpus();
  df::core::Daemon warm(cfg);
  for (const auto& spec : df::device::device_table()) {
    warm.add_device(spec.id);
  }
  const size_t loaded = warm.load_corpus(snapshot);
  if (!quiet) {
    std::printf("\ncorpus snapshot: %zu bytes, %zu programs reloaded into a "
                "fresh daemon\n",
                snapshot.size(), loaded);
  }

  if (!stats_path.empty()) {
    df::obs::capture_log_metrics(obs.registry);
    df::obs::JsonWriter w;
    w.begin_object();
    w.key("campaign").begin_object();
    w.field("example", "fleet_campaign");
    w.field("seed", seed);
    w.field("execs_per_device", execs);
    w.field("devices", static_cast<uint64_t>(daemon.device_count()));
    w.field("bugs", static_cast<uint64_t>(bugs.size()));
    w.end_object();
    w.key("stats");
    reporter.write_json(w);
    w.key("metrics");
    obs.registry.snapshot().write_json(w);
    w.key("events").begin_array();
    for (size_t i = 0; i < obs.trace.size(); ++i) {
      w.raw(df::obs::TraceSink::to_json(obs.trace.at(i)));
    }
    w.end_array();
    w.end_object();
    std::ofstream out(stats_path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    if (!quiet) std::printf("\nstats written to %s\n", stats_path.c_str());
  }

  std::printf("fleet_campaign: %zu devices, %llu execs/device, coverage %zu, "
              "corpus %zu, bugs %zu, seed %llu\n",
              daemon.device_count(), static_cast<unsigned long long>(execs),
              fleet_coverage, fleet_corpus, bugs.size(),
              static_cast<unsigned long long>(seed));
  return 0;
}
