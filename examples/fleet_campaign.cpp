// Fleet campaign: the Daemon workflow from §IV-A — one fuzzing engine per
// device, coordinated round-robin, with a persistent corpus snapshot. This
// is the shape of the paper's multi-device deployment (their Figure 2),
// miniaturized: fuzz the whole Table I fleet, print a campaign dashboard,
// then save and reload the corpus to show warm-start behaviour.
//
//   ./examples/fleet_campaign [execs-per-device] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/fuzz/daemon.h"
#include "device/catalog.h"

int main(int argc, char** argv) {
  const uint64_t execs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 15000;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  df::core::DaemonConfig cfg;
  cfg.seed = seed;
  df::core::Daemon daemon(cfg);
  for (const auto& spec : df::device::device_table()) {
    daemon.add_device(spec.id);
  }
  std::printf("== fleet campaign: %zu devices x %llu execs ==\n",
              daemon.device_count(),
              static_cast<unsigned long long>(execs));
  daemon.run(execs, 512);

  std::printf("\n%-4s %-9s %-8s %-7s %-9s %s\n", "Dev", "coverage", "corpus",
              "bugs", "relations", "reboots");
  for (const auto& spec : df::device::device_table()) {
    df::core::Engine* eng = daemon.engine(spec.id);
    std::printf("%-4s %-9zu %-8zu %-7zu %-9zu %llu\n", spec.id.c_str(),
                eng->kernel_coverage(), eng->corpus().size(),
                eng->crashes().unique_bugs(), eng->relations().edge_count(),
                static_cast<unsigned long long>(
                    eng->device().kernel().reboot_count()));
  }

  std::printf("\nbugs across the fleet:\n");
  for (const auto& found : daemon.all_bugs()) {
    std::printf("  [%s] %s (first at exec %llu)\n", found.device_id.c_str(),
                found.bug.title.c_str(),
                static_cast<unsigned long long>(found.bug.first_exec));
  }

  // Persist and warm-start: a fresh daemon reloads the distilled corpus.
  const std::string snapshot = daemon.save_corpus();
  df::core::Daemon warm(cfg);
  for (const auto& spec : df::device::device_table()) {
    warm.add_device(spec.id);
  }
  const size_t loaded = warm.load_corpus(snapshot);
  std::printf("\ncorpus snapshot: %zu bytes, %zu programs reloaded into a "
              "fresh daemon\n",
              snapshot.size(), loaded);
  return 0;
}
