// Fleet campaign: the Daemon workflow from §IV-A — one fuzzing engine per
// device, coordinated round-robin, with a persistent corpus snapshot. This
// is the shape of the paper's multi-device deployment (their Figure 2),
// miniaturized: fuzz the whole Table I fleet, print a campaign dashboard,
// then save and reload the corpus to show warm-start behaviour.
//
//   ./examples/fleet_campaign [execs-per-device] [seed]
//                             [--workers <n>] [--fault-rate <p>]
//                             [--snapshots <0|1>]
//                             [--checkpoint-dir <dir>]
//                             [--checkpoint-every <execs>] [--resume <file>]
//                             [--stats-json <path>] [--trace-out <path>]
//                             [--crash-dir <dir>] [--stall-window <execs>]
//                             [--serve-port <p>] [--serve-linger-ms <ms>]
//                             [--quiet]
//
// --workers drives the fleet with N threads (0 = one per hardware core,
// default 1 = sequential); per-device results are identical for any worker
// count (DESIGN.md §8), only the wall clock changes.
//
// --fault-rate injects transport faults (hangs, dropped programs,
// spontaneous reboots) at probability p per execution attempt (DESIGN.md
// §9); 0 (the default) is bit-identical to a build without the fault layer.
//
// --snapshots toggles the copy-on-write state snapshot layer (DESIGN.md
// §13; default 1): frontier forks and fault recovery restore a captured
// device state instead of replaying the establishing corpus. Per-device
// results are deterministic either way; 0 is the baseline opt-out used for
// A/B throughput comparisons.
// --checkpoint-dir + --checkpoint-every periodically serialize the whole
// campaign to <dir>/checkpoint.json; --resume <file> restores one and
// continues to the same total budget, bit-identical to the uninterrupted
// same-seed run (compare with scripts/check_bench_json.py --compare).
//
// --stats-json writes the full campaign telemetry (per-device + aggregate
// time series, metric snapshot, milestone trace events) as one JSON
// document; --trace-out enables hierarchical span tracing and exports the
// campaign as a Chrome trace-event file (load at ui.perfetto.dev);
// --crash-dir enables the crash flight recorder and writes one
// crash_<hash>.json provenance report per unique bug; --stall-window sets
// the coverage-plateau watchdog (default 5000 execs, 0 disables); --quiet
// suppresses the dashboard, leaving only the final one-line summary.
//
// --serve-port starts the live introspection server on 127.0.0.1 (0 = pick
// a free port; the bound port is announced on stdout) serving /metrics,
// /status, /healthz, /coverage, /frontier, and /buildz (DESIGN.md §10–11);
// --serve-linger-ms keeps
// the process (and the server) alive that long after the campaign so
// scrapers can collect the final state.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "core/fuzz/checkpoint.h"
#include "core/fuzz/daemon.h"
#include "core/fuzz/fleet.h"
#include "device/catalog.h"
#include "obs/buildinfo.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "util/log.h"

int main(int argc, char** argv) {
  df::util::init_log_from_env();
  uint64_t execs = 15000;
  uint64_t seed = 3;
  std::string stats_path;
  std::string trace_path;
  std::string crash_dir;
  std::string checkpoint_dir;
  std::string resume_path;
  uint64_t checkpoint_every = 4096;
  double fault_rate = 0.0;
  bool use_snapshots = true;
  uint64_t stall_window = 5000;
  size_t workers = 1;
  int serve_port = -1;
  uint64_t serve_linger_ms = 0;
  bool quiet = false;
  int pos = 0;
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(1);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_path = flag_value(i, "--stats-json");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      trace_path = flag_value(i, "--trace-out");
    } else if (std::strcmp(argv[i], "--crash-dir") == 0) {
      crash_dir = flag_value(i, "--crash-dir");
    } else if (std::strcmp(argv[i], "--fault-rate") == 0) {
      fault_rate = std::strtod(flag_value(i, "--fault-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--snapshots") == 0) {
      use_snapshots =
          std::strtoull(flag_value(i, "--snapshots"), nullptr, 10) != 0;
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      checkpoint_dir = flag_value(i, "--checkpoint-dir");
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      checkpoint_every =
          std::strtoull(flag_value(i, "--checkpoint-every"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume_path = flag_value(i, "--resume");
    } else if (std::strcmp(argv[i], "--stall-window") == 0) {
      stall_window = std::strtoull(flag_value(i, "--stall-window"), nullptr,
                                   10);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = std::strtoull(flag_value(i, "--workers"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--serve-port") == 0) {
      serve_port =
          static_cast<int>(std::strtol(flag_value(i, "--serve-port"),
                                       nullptr, 10));
    } else if (std::strcmp(argv[i], "--serve-linger-ms") == 0) {
      serve_linger_ms =
          std::strtoull(flag_value(i, "--serve-linger-ms"), nullptr, 10);
    } else if (pos == 0) {
      execs = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else if (pos == 1) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++pos;
    } else {
      std::fprintf(stderr, "usage: %s [execs-per-device] [seed] "
                   "[--workers <n>] [--fault-rate <p>] [--snapshots <0|1>] "
                   "[--checkpoint-dir <dir>] [--checkpoint-every <execs>] "
                   "[--resume <file>] [--stats-json <path>] "
                   "[--trace-out <path>] [--crash-dir <dir>] "
                   "[--stall-window <execs>] [--serve-port <p>] "
                   "[--serve-linger-ms <ms>] [--quiet]\n",
                   argv[0]);
      return 1;
    }
  }

  df::core::DaemonConfig cfg;
  cfg.seed = seed;
  cfg.workers = workers;
  cfg.crash_dir = crash_dir;
  cfg.engine.fault.rate = fault_rate;
  cfg.engine.use_snapshots = use_snapshots;
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.checkpoint_every = checkpoint_dir.empty() ? 0 : checkpoint_every;
  cfg.serve_port = serve_port;
  const size_t resolved_workers =
      df::core::FleetExecutor::resolve_workers(workers);
  df::core::Daemon daemon(cfg);
  if (serve_port >= 0) {
    if (daemon.server() == nullptr) {
      std::fprintf(stderr, "--serve-port %d: bind failed\n", serve_port);
      return 1;
    }
    // Printed (and flushed) even with --quiet: scrapers parse this line to
    // discover an ephemeral port.
    std::printf("serving live introspection on http://127.0.0.1:%d/ "
                "(/metrics /status /healthz /coverage /frontier /buildz)\n",
                daemon.serve_port());
    std::fflush(stdout);
  }
  // Span tracing needs a deeper event ring than the default: one span per
  // iteration/phase/syscall/driver-op survives until export.
  df::obs::Observability obs(trace_path.empty() ? 4096 : 1 << 16);
  obs.trace.set_record_execs(false);
  // Provenance features are enabled before any engine attaches (components
  // cache the span/flight pointers at attach time).
  if (!trace_path.empty()) obs.spans.set_enabled(true);
  if (!crash_dir.empty()) obs.flight.enable(16);
  df::obs::StatsReporter reporter(2048);
  reporter.set_stall_window(stall_window);
  reporter.attach_observability(&obs);
  daemon.attach_observability(&obs);
  daemon.attach_reporter(&reporter);
  for (const auto& spec : df::device::device_table()) {
    daemon.add_device(spec.id);
  }
  if (!resume_path.empty()) {
    std::string text;
    std::string error;
    if (!df::core::CampaignCheckpoint::read_file(resume_path, &text,
                                                 &error) ||
        !daemon.resume(text, &error)) {
      std::fprintf(stderr, "--resume %s: %s\n", resume_path.c_str(),
                   error.c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("resumed from %s at %llu execs/device\n",
                  resume_path.c_str(),
                  static_cast<unsigned long long>(daemon.progress()));
    }
  }
  if (!quiet) {
    std::printf("== fleet campaign: %zu devices x %llu execs, %zu "
                "worker%s ==\n",
                daemon.device_count(),
                static_cast<unsigned long long>(execs), resolved_workers,
                resolved_workers == 1 ? "" : "s");
  }
  const auto run_start = std::chrono::steady_clock::now();
  daemon.run(execs, 512);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - run_start)
          .count();
  const double execs_per_sec =
      wall_ms > 0 ? static_cast<double>(execs) *
                        static_cast<double>(daemon.device_count()) /
                        (wall_ms / 1000.0)
                  : 0.0;

  size_t fleet_coverage = 0;
  size_t fleet_corpus = 0;
  if (!quiet) {
    std::printf("\n%-4s %-9s %-8s %-7s %-9s %s\n", "Dev", "coverage",
                "corpus", "bugs", "relations", "reboots");
  }
  for (const auto& spec : df::device::device_table()) {
    df::core::Engine* eng = daemon.engine(spec.id);
    fleet_coverage += eng->kernel_coverage();
    fleet_corpus += eng->corpus().size();
    if (!quiet) {
      std::printf("%-4s %-9zu %-8zu %-7zu %-9zu %llu\n", spec.id.c_str(),
                  eng->kernel_coverage(), eng->corpus().size(),
                  eng->crashes().unique_bugs(), eng->relations().edge_count(),
                  static_cast<unsigned long long>(
                      eng->device().kernel().reboot_count()));
    }
  }

  const auto bugs = daemon.all_bugs();
  if (!quiet) {
    std::printf("\nbugs across the fleet:\n");
    for (const auto& found : bugs) {
      std::printf("  [%s] %s (first at exec %llu)\n", found.device_id.c_str(),
                  found.bug.title.c_str(),
                  static_cast<unsigned long long>(found.bug.first_exec));
    }
  }

  // Persist and warm-start: a fresh daemon reloads the distilled corpus.
  // The warm daemon never serves (the campaign daemon owns the port).
  const std::string snapshot = daemon.save_corpus();
  df::core::DaemonConfig warm_cfg = cfg;
  warm_cfg.serve_port = -1;
  df::core::Daemon warm(warm_cfg);
  for (const auto& spec : df::device::device_table()) {
    warm.add_device(spec.id);
  }
  const size_t loaded = warm.load_corpus(snapshot);
  if (!quiet) {
    std::printf("\ncorpus snapshot: %zu bytes, %zu programs reloaded into a "
                "fresh daemon\n",
                snapshot.size(), loaded);
  }

  if (!stats_path.empty()) {
    df::obs::capture_log_metrics(obs.registry);
    df::obs::JsonWriter w;
    w.begin_object();
    w.key("campaign").begin_object();
    w.field("example", "fleet_campaign");
    w.field("seed", seed);
    w.field("execs_per_device", execs);
    w.field("devices", static_cast<uint64_t>(daemon.device_count()));
    w.field("bugs", static_cast<uint64_t>(bugs.size()));
    w.end_object();
    // Parallel execution summary: workers/devices are content, the wall
    // clock and throughput live under "timing" (stripped by the checker's
    // determinism comparison).
    w.key("fleet").begin_object();
    w.field("workers", static_cast<uint64_t>(resolved_workers));
    w.field("devices", static_cast<uint64_t>(daemon.device_count()));
    w.key("timing").begin_object();
    w.field("wall_ms", wall_ms);
    w.field("execs_per_sec", execs_per_sec);
    // Per-worker utilization (DESIGN.md §10) — the same numbers /status
    // serves live, so offline output matches the introspection endpoint.
    const auto& util = daemon.utilization();
    w.key("utilization").begin_array();
    for (size_t i = 0; i < util.workers.size(); ++i) {
      const auto& u = util.workers[i];
      w.begin_object();
      w.field("worker", static_cast<uint64_t>(i));
      w.field("rounds", u.rounds);
      w.field("busy_ms", static_cast<double>(u.busy_ns) / 1e6);
      w.field("idle_ms", static_cast<double>(u.idle_ns) / 1e6);
      w.field("barrier_ms", static_cast<double>(u.barrier_ns) / 1e6);
      w.end_object();
    }
    w.end_array();
    w.field("busy_imbalance_ms",
            static_cast<double>(util.busy_imbalance_ns()) / 1e6);
    w.end_object();
    w.end_object();
    w.key("velocity");
    daemon.velocity().write_json(w, &reporter);
    // Per-device attribution/lineage/frontier analytics (DESIGN.md §11),
    // with the downsampled coverage series for plotting.
    w.key("analytics").begin_object();
    w.key("devices").begin_array();
    for (const auto& spec : df::device::device_table()) {
      df::core::Engine* eng = daemon.engine(spec.id);
      w.begin_object();
      w.field("device", spec.id);
      w.key("analytics");
      eng->analytics_snapshot().write_json(w, &reporter.series(spec.id));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("build");
    w.raw(df::obs::build_json(
        {{"checkpoint", df::core::CampaignCheckpoint::kVersion},
         {"analytics", df::obs::kAnalyticsSchemaVersion}}));
    w.key("stats");
    reporter.write_json(w);
    w.key("metrics");
    obs.registry.snapshot().write_json(w);
    w.key("events").begin_array();
    for (size_t i = 0; i < obs.trace.size(); ++i) {
      w.raw(df::obs::TraceSink::to_json(obs.trace.at(i)));
    }
    w.end_array();
    w.end_object();
    std::ofstream out(stats_path, std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    out << w.str() << '\n';
    if (!quiet) std::printf("\nstats written to %s\n", stats_path.c_str());
  }

  if (!trace_path.empty()) {
    if (!df::obs::write_chrome_trace(obs.trace, trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("chrome trace written to %s (%llu spans; load at "
                  "ui.perfetto.dev)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(obs.spans.spans_started()));
    }
  }
  if (!crash_dir.empty() && !quiet) {
    size_t reports = 0;
    for (const auto& spec : df::device::device_table()) {
      reports += daemon.engine(spec.id)->crashes().provenance_files().size();
    }
    std::printf("crash provenance: %zu report(s) in %s/\n", reports,
                crash_dir.c_str());
  }
  if (!quiet && stall_window > 0) {
    for (const auto& spec : df::device::device_table()) {
      if (reporter.stalled(spec.id)) {
        std::printf("watchdog: %s stalled (no coverage growth in %llu "
                    "execs)\n",
                    spec.id.c_str(),
                    static_cast<unsigned long long>(stall_window));
      }
    }
  }

  std::printf("fleet_campaign: %zu devices, %llu execs/device, coverage %zu, "
              "corpus %zu, bugs %zu, seed %llu, workers %zu, %.0f "
              "execs/sec\n",
              daemon.device_count(), static_cast<unsigned long long>(execs),
              fleet_coverage, fleet_corpus, bugs.size(),
              static_cast<unsigned long long>(seed), resolved_workers,
              execs_per_sec);
  std::fflush(stdout);
  if (serve_port >= 0 && serve_linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_linger_ms));
  }
  return 0;
}
