// HAL probing demo: runs only the pre-testing probing pass (paper §IV-B)
// against a device and prints what the Poke app + probe utility recovered —
// services, interfaces, argument types, trial syscall counts, and the
// normalized-occurrence weights that later rank base invocations.
//
//   ./examples/hal_probe_demo [device-id] [workload-rounds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/probe/hal_probe.h"
#include "device/catalog.h"

namespace {

const char* kind_name(df::hal::ArgKind kind) {
  using df::hal::ArgKind;
  switch (kind) {
    case ArgKind::kU32: return "u32";
    case ArgKind::kU64: return "u64";
    case ArgKind::kEnum: return "enum";
    case ArgKind::kFlags: return "flags";
    case ArgKind::kBool: return "bool";
    case ArgKind::kString: return "string";
    case ArgKind::kBlob: return "blob";
    case ArgKind::kHandle: return "handle";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string device_id = argc > 1 ? argv[1] : "A1";
  const size_t rounds = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  auto dev = df::device::make_device(device_id, 1);
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", device_id.c_str());
    return 1;
  }
  std::printf("== HAL probing on %s (%s %s) ==\n", device_id.c_str(),
              dev->spec().vendor.c_str(), dev->spec().device.c_str());

  df::core::HalProber prober(*dev, 1);
  const df::core::ProbeResult result = prober.probe(rounds);

  std::printf("lshal: %zu running HAL services\n", result.services.size());
  std::printf("binder transactions observed: %llu (workload: %llu "
              "invocations)\n\n",
              static_cast<unsigned long long>(
                  result.binder_transactions_observed),
              static_cast<unsigned long long>(result.workload_invocations));

  for (const auto& service : result.services) {
    std::printf("%s\n", service.c_str());
    // Sort this service's methods by probed weight, highest first.
    std::vector<const df::core::ProbedMethod*> methods;
    for (const auto& m : result.methods) {
      if (m.service == service) methods.push_back(&m);
    }
    std::sort(methods.begin(), methods.end(),
              [](const auto* a, const auto* b) { return a->weight > b->weight; });
    for (const auto* m : methods) {
      std::string sig;
      for (size_t i = 0; i < m->desc.args.size(); ++i) {
        if (i > 0) sig += ", ";
        sig += std::string(kind_name(m->desc.args[i].kind)) + " " +
               m->desc.args[i].name;
      }
      std::printf("  [w=%.3f] %s(%s)%s%s  trial-syscalls=%llu\n", m->weight,
                  m->desc.name.c_str(), sig.c_str(),
                  m->desc.returns_handle.empty() ? "" : " -> ",
                  m->desc.returns_handle.c_str(),
                  static_cast<unsigned long long>(m->trial_syscalls));
    }
  }
  return 0;
}
