// Quickstart: fuzz one simulated embedded Android device with DroidFuzz.
//
// Builds the Xiaomi Phone Dev Board (device A1 from the paper's Table I),
// runs the full pipeline — HAL probing, relational generation, cross-
// boundary feedback — for a short campaign, and prints what it found.
//
//   ./examples/quickstart [device-id] [executions] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fuzz/engine.h"
#include "device/catalog.h"

int main(int argc, char** argv) {
  const std::string device_id = argc > 1 ? argv[1] : "A1";
  const uint64_t executions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  auto dev = df::device::make_device(device_id, seed);
  if (dev == nullptr) {
    std::fprintf(stderr, "unknown device '%s' (try A1 A2 B C1 C2 D E)\n",
                 device_id.c_str());
    return 1;
  }
  std::printf("== DroidFuzz quickstart ==\n");
  std::printf("device %s: %s %s (%s, AOSP %s, kernel %s)\n",
              dev->spec().id.c_str(), dev->spec().vendor.c_str(),
              dev->spec().device.c_str(), dev->spec().arch.c_str(),
              dev->spec().aosp.c_str(), dev->spec().kernel.c_str());

  df::core::EngineConfig cfg;
  cfg.seed = seed;
  df::core::Engine engine(*dev, cfg);
  engine.setup();

  const auto& probe = engine.probe_result();
  if (probe.has_value()) {
    std::printf("probing: %zu HAL services, %zu interfaces, %llu binder txs\n",
                probe->services.size(), probe->methods.size(),
                static_cast<unsigned long long>(
                    probe->binder_transactions_observed));
  }
  std::printf("call table: %zu descriptions\n", engine.calls().size());

  engine.run(executions);

  std::printf("\nafter %llu executions:\n",
              static_cast<unsigned long long>(engine.executions()));
  std::printf("  kernel coverage : %zu features\n", engine.kernel_coverage());
  std::printf("  total features  : %zu (incl. HAL directional)\n",
              engine.total_coverage());
  std::printf("  corpus          : %zu seeds\n", engine.corpus().size());
  std::printf("  relations       : %zu edges over %zu vertices\n",
              engine.relations().edge_count(),
              engine.relations().vertex_count());
  std::printf("  unique bugs     : %zu\n", engine.crashes().unique_bugs());
  for (const auto& bug : engine.crashes().bugs()) {
    std::printf("   [%s] %-55s (%s, hit %llu times, first at exec %llu)\n",
                bug.component.c_str(), bug.title.c_str(),
                bug.bug_class.c_str(),
                static_cast<unsigned long long>(bug.dup_count),
                static_cast<unsigned long long>(bug.first_exec));
  }
  if (!engine.crashes().bugs().empty()) {
    const auto& first = engine.crashes().bugs().front();
    std::printf("\nreproducer for \"%s\":\n%s", first.title.c_str(),
                first.repro_text.c_str());
  }
  return 0;
}
