#!/usr/bin/env python3
"""Compare two BENCH_*.json exports (or directories of them) for
performance regressions and content drift.

The determinism contract (scripts/check_bench_json.py) splits every bench
document into two halves:

  content  - everything outside "timing"/"secs"/"wall_seconds"/"ts"/"dur"
             keys and *_ns/*_per_sec suffixes. Identically-seeded runs must
             agree byte-for-byte here; any difference is reported as
             CONTENT drift (and fails the diff unless --allow-content).

  timing   - wall-dependent leaves. These are compared direction-aware:
             *_per_sec, *_per_hour, *speedup* and *uplift* leaves are
             higher-is-better (the snapshot layer's restore_speedup,
             execs_per_sec_uplift_percent, and the service scheduler's
             jobs_per_hour land here), while duration leaves
             (wall_seconds, secs, *_ns, *_ms, *_us, ts, dur — including the
             snapshot capture_us / restore_us / reestablish_us probe) are
             lower-is-better. A leaf that moves in the bad direction by
             more than --threshold percent is a REGRESSION.

With --timing-warn-only, timing regressions are demoted to WARN lines and
never fail the diff; only content drift (and missing timing leaves) still
fails. This is the CI soft-gate mode: shared runners make wall-clock
numbers too noisy to block a merge on, but the content halves of two
identically-seeded runs must still agree byte-for-byte.

Corpus-size leaves ("corpus" series arrays and the before/after counts of
"distill" stats objects) get direction-aware warn-only tracking on top:
distillation makes lower better, so growth beyond --threshold prints a
WARN line and a shrink prints as an improvement, but neither ever fails
the diff — corpus size is a quality signal, not a contract.

Usage:
  bench_diff.py BASELINE CANDIDATE [--threshold PCT] [--allow-content]
      BASELINE/CANDIDATE are two files, or two directories that are
      matched by BENCH_*.json basename.
  bench_diff.py --self-test

Exit status: 0 clean, 1 regression (or content drift), 2 usage error.
"""

import argparse
import json
import os
import sys

TIMING_KEYS = {"timing", "wall_seconds", "secs", "ts", "dur"}
TIMING_SUFFIXES = ("_ns", "_per_sec")

# Leaf-name patterns deciding which direction is an improvement.
HIGHER_BETTER_SUFFIXES = ("_per_sec", "_per_hour")
HIGHER_BETTER_SUBSTRINGS = ("speedup", "uplift")
LOWER_BETTER_KEYS = {"wall_seconds", "secs", "ts", "dur"}
LOWER_BETTER_SUFFIXES = ("_ns", "_ms", "_us")


def is_timing_key(key):
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def is_corpus_leaf(path):
    """Corpus-size leaves tracked warn-only, lower-is-better: "corpus"
    series arrays anywhere, plus before/after counts directly inside a
    "distill" stats object."""
    leaf = leaf_name(path)
    if leaf == "corpus":
        return True
    if leaf in ("before", "after"):
        parts = path.rsplit(".", 2)
        return len(parts) >= 2 and leaf_name(parts[-2]) == "distill"
    return False


def direction(leaf):
    """+1 higher-is-better, -1 lower-is-better, 0 informational only."""
    if leaf.endswith(HIGHER_BETTER_SUFFIXES):
        return 1
    if any(s in leaf for s in HIGHER_BETTER_SUBSTRINGS):
        return 1
    if leaf in LOWER_BETTER_KEYS or leaf.endswith(LOWER_BETTER_SUFFIXES):
        return -1
    return 0


def _flatten(doc, path, in_timing, out):
    """Numeric leaves as {dotted.path: (value, is_timing_leaf)}."""
    if isinstance(doc, dict):
        for key, val in doc.items():
            sub = f"{path}.{key}" if path else key
            _flatten(val, sub, in_timing or is_timing_key(key), out)
    elif isinstance(doc, list):
        for i, val in enumerate(doc):
            _flatten(val, f"{path}[{i}]", in_timing, out)
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[path] = (float(doc), in_timing)


def numeric_leaves(doc):
    out = {}
    _flatten(doc, "", False, out)
    return out


def strip_timing(doc):
    if isinstance(doc, dict):
        return {k: strip_timing(v) for k, v in doc.items()
                if not is_timing_key(k)}
    if isinstance(doc, list):
        return [strip_timing(v) for v in doc]
    return doc


def leaf_name(path):
    """Last key segment of a dotted path, with array indices dropped."""
    last = path.rsplit(".", 1)[-1]
    return last.split("[", 1)[0]


class Report:
    def __init__(self):
        self.regressions = []   # (path, base, cand, pct)
        self.improvements = []  # (path, base, cand, pct)
        self.warnings = []      # (path, base, cand, pct), never fail
        self.content = []       # human-readable drift lines

    def clean(self, allow_content):
        return not self.regressions and (allow_content or not self.content)


def diff_docs(base, cand, threshold_pct, report, label=""):
    tag = f"{label}: " if label else ""

    if strip_timing(base) != strip_timing(cand):
        report.content.append(
            f"{tag}content differs after stripping timing fields "
            f"(identically-seeded runs must agree)")

    base_leaves = numeric_leaves(base)
    cand_leaves = numeric_leaves(cand)
    for path in sorted(base_leaves.keys() & cand_leaves.keys()):
        bval, btiming = base_leaves[path]
        cval, _ = cand_leaves[path]
        if not btiming:
            # Content equality is already enforced above; corpus sizes get
            # an extra warn-only direction check (growth is suspicious once
            # distillation is on, but not automatically wrong).
            if is_corpus_leaf(path) and bval != 0:
                pct = (cval - bval) / abs(bval) * 100.0
                if pct > threshold_pct:
                    report.warnings.append((f"{tag}{path}", bval, cval, pct))
                elif -pct > threshold_pct:
                    report.improvements.append(
                        (f"{tag}{path}", bval, cval, pct))
            continue
        sign = direction(leaf_name(path))
        if sign == 0 or bval == 0:
            continue
        pct = (cval - bval) / abs(bval) * 100.0
        if sign * pct < -threshold_pct:
            report.regressions.append((f"{tag}{path}", bval, cval, pct))
        elif sign * pct > threshold_pct:
            report.improvements.append((f"{tag}{path}", bval, cval, pct))

    only_base = base_leaves.keys() - cand_leaves.keys()
    only_cand = cand_leaves.keys() - base_leaves.keys()
    for path in sorted(only_base):
        if base_leaves[path][1]:
            report.content.append(f"{tag}timing leaf only in baseline: "
                                  f"{path}")
    for path in sorted(only_cand):
        if cand_leaves[path][1]:
            report.content.append(f"{tag}timing leaf only in candidate: "
                                  f"{path}")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def pair_paths(a, b):
    """(label, base_path, cand_path) pairs for files or directories."""
    if os.path.isdir(a) != os.path.isdir(b):
        raise ValueError("BASELINE and CANDIDATE must both be files or "
                         "both be directories")
    if not os.path.isdir(a):
        return [(os.path.basename(a), a, b)]
    names_a = {n for n in os.listdir(a)
               if n.startswith("BENCH_") and n.endswith(".json")}
    names_b = {n for n in os.listdir(b)
               if n.startswith("BENCH_") and n.endswith(".json")}
    common = sorted(names_a & names_b)
    if not common:
        raise ValueError("no common BENCH_*.json files to compare")
    pairs = [(n, os.path.join(a, n), os.path.join(b, n)) for n in common]
    for n in sorted(names_a ^ names_b):
        side = "baseline" if n in names_a else "candidate"
        print(f"note: {n} only present in {side}; skipped")
    return pairs


def demote_timing_regressions(report):
    """--timing-warn-only: timing regressions become warn-only lines."""
    demoted = report.regressions
    report.regressions = []
    return demoted


def run_diff(baseline, candidate, threshold_pct, allow_content,
             timing_warn_only=False):
    try:
        pairs = pair_paths(baseline, candidate)
    except ValueError as e:
        print(f"error: {e}")
        return 2
    report = Report()
    for label, pa, pb in pairs:
        try:
            diff_docs(load(pa), load(pb), threshold_pct, report, label)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {label}: {e}")
            return 2

    if timing_warn_only:
        for path, bval, cval, pct in demote_timing_regressions(report):
            print(f"WARN       {path}: timing regressed {bval:g} -> "
                  f"{cval:g} ({pct:+.1f}%) [--timing-warn-only]")
    for path, bval, cval, pct in report.regressions:
        print(f"REGRESSION {path}: {bval:g} -> {cval:g} ({pct:+.1f}%)")
    for path, bval, cval, pct in report.improvements:
        print(f"improved   {path}: {bval:g} -> {cval:g} ({pct:+.1f}%)")
    for path, bval, cval, pct in report.warnings:
        print(f"WARN       {path}: corpus grew {bval:g} -> {cval:g} "
              f"({pct:+.1f}%)")
    for line in report.content:
        print(f"CONTENT    {line}")
    if report.clean(allow_content):
        print(f"OK: no timing regressions beyond {threshold_pct:g}% "
              f"across {len(pairs)} file(s)")
        return 0
    return 1


# --- self-test ---------------------------------------------------------------

def _doc(execs_per_sec=1000.0, wall=2.0, coverage=40, corpus=20,
         distilled=10):
    return {
        "bench": "fig4_coverage", "seed": 1, "reps": 1,
        "series": [{
            "device": "A1", "config": "droidfuzz", "rep": 0,
            "executions": [0, 100], "kernel_coverage": [0, coverage],
            "corpus": [0, corpus],
            "distill": {"before": corpus, "after": distilled,
                        "verified": True, "dry_run": True},
            "timing": {"secs": [0.0, wall]},
        }],
        "fleet_parallel": {
            "configs": [{"workers": 1,
                         "timing": {"wall_seconds": wall,
                                    "execs_per_sec": execs_per_sec,
                                    "speedup_vs_sequential": 1.0}}],
        },
        "timing": {"wall_seconds": wall},
    }


def self_test():
    failures = 0

    def case(name, ok):
        nonlocal failures
        if not ok:
            failures += 1
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")

    r = Report()
    diff_docs(_doc(), _doc(), 5.0, r)
    case("identical docs are clean", r.clean(allow_content=False))

    r = Report()
    diff_docs(_doc(execs_per_sec=1000.0), _doc(execs_per_sec=900.0), 5.0, r)
    case("throughput drop beyond threshold regresses",
         len(r.regressions) == 1 and not r.content)

    r = Report()
    diff_docs(_doc(execs_per_sec=1000.0), _doc(execs_per_sec=980.0), 5.0, r)
    case("throughput drop inside threshold passes",
         r.clean(allow_content=False))

    r = Report()
    diff_docs(_doc(wall=2.0), _doc(wall=3.0), 5.0, r)
    case("wall-clock growth regresses (lower is better)",
         any("wall_seconds" in p for p, *_ in r.regressions))

    r = Report()
    diff_docs(_doc(wall=3.0), _doc(wall=2.0), 5.0, r)
    case("wall-clock shrink is an improvement, not a regression",
         not r.regressions and r.improvements)

    r = Report()
    diff_docs(_doc(execs_per_sec=1000.0), _doc(execs_per_sec=1200.0), 5.0, r)
    case("throughput gain is an improvement",
         not r.regressions and r.improvements)

    r = Report()
    diff_docs(_doc(coverage=40), _doc(coverage=41), 5.0, r)
    case("content drift is flagged", len(r.content) == 1)
    case("content drift fails by default", not r.clean(allow_content=False))
    case("--allow-content downgrades drift", r.clean(allow_content=True))

    r = Report()
    a, b = _doc(), _doc()
    del b["fleet_parallel"]["configs"][0]["timing"]["execs_per_sec"]
    diff_docs(a, b, 5.0, r)
    case("missing timing leaf is reported",
         any("only in baseline" in line for line in r.content))

    r = Report()
    diff_docs(_doc(corpus=20), _doc(corpus=30), 5.0, r)
    case("corpus growth warns without failing",  # corpus[] + distill.before
         len(r.warnings) == 2 and not r.regressions
         and r.clean(allow_content=True))

    r = Report()
    diff_docs(_doc(distilled=10), _doc(distilled=6), 5.0, r)
    case("distilled corpus shrink is an improvement",
         not r.warnings and not r.regressions
         and any("distill.after" in p for p, *_ in r.improvements))

    r = Report()
    diff_docs(_doc(distilled=10), _doc(distilled=14), 5.0, r)
    case("distill.after growth warns",
         any("distill.after" in p for p, *_ in r.warnings))

    case("corpus leaf: series corpus arrays",
         is_corpus_leaf("series[0].corpus[1]"))
    case("corpus leaf: distill before/after only under distill",
         is_corpus_leaf("series[0].distill.after")
         and not is_corpus_leaf("fault_recovery.before"))

    case("direction: *_per_sec is higher-better",
         direction("execs_per_sec") == 1)
    case("direction: *_per_hour is higher-better",
         direction("jobs_per_hour") == 1)
    case("direction: speedup is higher-better",
         direction("speedup_vs_sequential") == 1)
    case("direction: snapshot restore_speedup is higher-better",
         direction("restore_speedup") == 1)
    case("direction: snapshot uplift is higher-better",
         direction("execs_per_sec_uplift_percent") == 1)
    case("direction: snapshot latencies are lower-better",
         direction("restore_us") == -1 and direction("reestablish_us") == -1)
    case("direction: *_ms is lower-better", direction("busy_imbalance_ms")
         == -1)
    case("direction: plain counters are informational",
         direction("executions") == 0)

    r = Report()
    diff_docs(_doc(execs_per_sec=1000.0), _doc(execs_per_sec=900.0), 5.0, r)
    demoted = demote_timing_regressions(r)
    case("--timing-warn-only demotes timing regressions",
         len(demoted) == 1 and r.clean(allow_content=False))

    r = Report()
    diff_docs(_doc(coverage=40), _doc(coverage=41), 5.0, r)
    demote_timing_regressions(r)
    case("--timing-warn-only still fails on content drift",
         not r.clean(allow_content=False))

    r = Report()
    a = {"bench": "service", "service": {
        "timing": {"jobs_per_hour": 1000.0}}}
    b = {"bench": "service", "service": {
        "timing": {"jobs_per_hour": 800.0}}}
    diff_docs(a, b, 5.0, r)
    case("jobs_per_hour drop beyond threshold regresses",
         any("jobs_per_hour" in p for p, *_ in r.regressions))

    r = Report()
    a, b = _doc(), _doc()
    a["snapshot"] = {"captures": 5, "off_deterministic": True,
                     "timing": {"on_execs_per_sec": 70000.0,
                                "execs_per_sec_uplift_percent": 4.0}}
    b["snapshot"] = {"captures": 5, "off_deterministic": True,
                     "timing": {"on_execs_per_sec": 70000.0,
                                "execs_per_sec_uplift_percent": 2.0}}
    diff_docs(a, b, 5.0, r)
    case("snapshot uplift drop beyond threshold regresses",
         any("uplift" in p for p, *_ in r.regressions) and not r.content)

    print(f"self-test: {'PASS' if failures == 0 else 'FAIL'}")
    return failures == 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json exports for regressions.")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--threshold", type=float, default=10.0,
                        metavar="PCT",
                        help="allowed timing movement in percent "
                             "(default 10)")
    parser.add_argument("--allow-content", action="store_true",
                        help="report content drift without failing "
                             "(for runs with different seeds/budgets)")
    parser.add_argument("--timing-warn-only", action="store_true",
                        help="demote timing regressions to warnings; only "
                             "content drift fails (CI soft-gate mode for "
                             "noisy shared runners)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)
    if args.self_test:
        return 0 if self_test() else 1
    if args.baseline is None or args.candidate is None:
        parser.print_usage()
        return 2
    if args.threshold < 0:
        print("error: --threshold must be >= 0")
        return 2
    return run_diff(args.baseline, args.candidate, args.threshold,
                    args.allow_content, args.timing_warn_only)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
