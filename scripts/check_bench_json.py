#!/usr/bin/env python3
"""Validate DroidFuzz telemetry JSON and compare runs for determinism.

Seven document shapes are understood:

  BENCH_*.json           (written by the bench binaries via write_bench_json)
      {"bench": ..., "seed": ..., "reps": ..., "series": [...],
       "metrics": {...}, ..., "timing": {...}}

  campaign stats export  (written by examples via --stats-json)
      {"campaign": {...}, "stats": {...}, "metrics": {...}, "events": [...]}

  Chrome trace export    (written by --trace-out via obs::write_chrome_trace)
      {"displayTimeUnit": ..., "traceEvents": [{"ph": "M"|"X", ...}, ...]}

  crash provenance       (crash_<hash>.json, written by core::CrashLog)
      {"crash": {...}, "campaign": {...}, "repro": {...},
       "driver_states": [...], "kasan_context": {...},
       "flight_recorder": {...}}

  lint report            (written by examples/df_lint via --json)
      {"lint": {"tool": "df_lint", "device": ..., "files": [...],
                "summary": {...}, "plans": [...]}}

  explain report         (written by examples/df_explain via --json)
      {"report": {"example": "df_explain", ...},
       "devices": [{"device": ..., "analytics": {...}}, ...],
       "build": {...}}

  distill report         (written by examples/df_distill via --json)
      {"distill": {"tool": "df_distill", "seed": ..., "execs": ...,
                   "devices": [{"device": ..., "before": ...,
                                "after": ..., "verified": true}, ...]}}

Bench series and lint files may additionally carry "distill" / "dataflow"
sections (DESIGN.md §12): corpus-distillation stats with the
after + dropped == before invariant, and per-file dataflow fact counts
(argument classes, handle lifetimes, stale uses). Both are validated
whenever present.

Bench and campaign documents may additionally carry "analytics" sections
(per-operator yield table, seed lineage summary, coverage-frontier
classification; obs::AnalyticsSnapshot, schema version 2 — v2 added the
snapshot_fork operator row) and a "build" block (toolchain
self-identification plus schema versions). Both are validated whenever
present; bench documents require "build".

Bench documents may also carry a top-level "service" section (DESIGN.md
§14, written by bench_service_throughput): the preempting scheduler's job
batch with per-job preemption and queue-wait accounting. The content
contract is that every preempted job reproduced its uninterrupted
reference byte-for-byte ("deterministic": true); jobs/hour, preemption
overhead, and the millisecond queue-wait percentiles are wall-dependent
and live under "timing".

Bench documents may also carry a top-level "snapshot" section (DESIGN.md
§13) in one of two shapes: the micro shape written by bench_micro
(snapshot_bytes / snapshot_sections plus capture/restore/reestablish
latencies under "timing") and the campaign shape written by
bench_fleet_parallel / bench_fault_recovery (the ten SnapshotStats
counters, the snapshots-off determinism flag, and on-vs-off wall rates
under "timing"). Counter identities — restores == forks +
fault_recoveries, shared <= total — are enforced as content.

Usage:
  check_bench_json.py FILE...            validate each document
  check_bench_json.py --compare A B      validate, then require A == B after
                                         stripping wall-clock fields
  check_bench_json.py --self-test        run the built-in unit checks

Determinism contract (DESIGN.md "Observability"): everything wall-dependent
lives under keys named "timing", "wall_seconds", "secs", or ending in "_ns"
or "_per_sec"; Chrome traces additionally quarantine wall-clock under the
format's "ts"/"dur" fields. Stripping those keys must make two
identically-seeded runs byte-identical. Counters/gauges whose *metric name*
ends in "_ns" or "_per_sec" carry wall-dependent values, so the snapshot
serializes them under "value_ns"/"value_per_sec" instead of "value" — the
checker enforces the key choice matches the name.
"""

import json
import sys

TIMING_KEYS = {"timing", "wall_seconds", "secs", "ts", "dur"}
TIMING_SUFFIXES = ("_ns", "_per_sec")

SERIES_ARRAYS = ("executions", "kernel_coverage", "total_coverage",
                 "corpus", "bugs")
LINT_PASSES = ("use-after-close", "dangling-ref", "type-width",
               "dead-statement")
LINT_SEVERITIES = ("error", "warning")
STATS_ARRAYS = SERIES_ARRAYS[:2] + ("total_coverage", "corpus", "bugs",
                                    "relation_edges", "reboots")

# ProgramOrigin wire names in enum order (obs/analytics.h); the exported
# operator table must carry exactly these rows, in this order.
ORIGINS = ("generate", "mutate_arg", "mutate_insert", "mutate_remove",
           "mutate_duplicate", "mutate_splice", "mutate_rewire",
           "plan_injected", "minimized", "replay", "snapshot_fork")
FRONTIER_CLASSES = ("unreachable-from-frontier", "planned-but-failed",
                    "never-attempted")
# v2 added the snapshot_fork operator row (DESIGN.md §13).
ANALYTICS_SCHEMA_VERSION = 2
SERIES_POINT_FIELDS = ("executions", "kernel_coverage", "total_coverage",
                       "corpus_size", "unique_bugs", "states_visited")


def is_timing_key(key):
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def metric_value_key(name):
    """Snapshot key a counter/gauge named `name` must serialize under."""
    if name.endswith("_ns"):
        return "value_ns"
    if name.endswith("_per_sec"):
        return "value_per_sec"
    return "value"


def strip_timing(doc):
    """Recursively drop wall-clock fields; returns a new structure."""
    if isinstance(doc, dict):
        return {k: strip_timing(v) for k, v in doc.items()
                if not is_timing_key(k)}
    if isinstance(doc, list):
        return [strip_timing(v) for v in doc]
    return doc


class CheckError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise CheckError(msg)


def check_monotone(name, values):
    require(all(b >= a for a, b in zip(values, values[1:])),
            f"{name} must be non-decreasing, got {values}")


def check_state_coverage(entries, where):
    """Per-driver state-machine coverage matrices (DriverStateCoverage)."""
    require(isinstance(entries, list) and entries,
            f"{where} must be a non-empty array")
    for i, cov in enumerate(entries):
        cwhere = f"{where}[{i}]"
        require(isinstance(cov, dict), f"{cwhere} must be an object")
        require(isinstance(cov.get("driver"), str) and cov["driver"],
                f"{cwhere}.driver must be a non-empty string")
        states = cov.get("states")
        require(isinstance(states, list) and states
                and all(isinstance(s, str) and s for s in states),
                f"{cwhere}.states must be a non-empty array of state names")
        n = len(states)
        require(cov.get("current") in states,
                f"{cwhere}.current must name one of the states")
        visits = cov.get("visits")
        require(isinstance(visits, list) and len(visits) == n
                and all(isinstance(v, int) and v >= 0 for v in visits),
                f"{cwhere}.visits must be {n} non-negative ints")
        matrix = cov.get("matrix")
        require(isinstance(matrix, list) and len(matrix) == n
                and all(isinstance(row, list) and len(row) == n
                        and all(isinstance(v, int) and v >= 0 for v in row)
                        for row in matrix),
                f"{cwhere}.matrix must be a {n}x{n} array of non-negative "
                f"ints")
        visited = sum(1 for v in visits if v > 0)
        require(cov.get("states_visited") == visited,
                f"{cwhere}.states_visited must equal the number of states "
                f"with visits > 0 ({visited})")
        transitions = sum(1 for row in matrix for v in row if v > 0)
        require(cov.get("transitions_observed") == transitions,
                f"{cwhere}.transitions_observed must equal the number of "
                f"non-zero matrix cells ({transitions})")


def check_operators(ops, where):
    """Per-operator yield table (obs::OperatorAttribution::write_json)."""
    require(isinstance(ops, list) and len(ops) == len(ORIGINS),
            f"{where} must be an array of exactly {len(ORIGINS)} rows")
    for i, row in enumerate(ops):
        rwhere = f"{where}[{i}]"
        require(isinstance(row, dict), f"{rwhere} must be an object")
        require(row.get("origin") == ORIGINS[i],
                f"{rwhere}.origin must be {ORIGINS[i]!r} (enum order), "
                f"got {row.get('origin')!r}")
        for key in ("attempts", "total_calls", "accepts", "new_features",
                    "new_states", "bugs"):
            require(isinstance(row.get(key), int) and row[key] >= 0,
                    f"{rwhere}.{key} must be a non-negative int")
        require(row["accepts"] <= row["attempts"],
                f"{rwhere}: accepts ({row['accepts']}) cannot exceed "
                f"attempts ({row['attempts']})")
        require(isinstance(row.get("mean_cost"), (int, float))
                and row["mean_cost"] >= 0,
                f"{rwhere}.mean_cost must be a non-negative number")
        if row["attempts"] == 0:
            require(row["mean_cost"] == 0,
                    f"{rwhere}.mean_cost must be 0 with no attempts")


def check_lineage_link(link, where, last_depth):
    """One LineageLink of a derivation chain; returns its depth."""
    require(isinstance(link, dict), f"{where} must be an object")
    h = link.get("hash")
    require(isinstance(h, str) and len(h) == 16
            and all(c in "0123456789abcdef" for c in h),
            f"{where}.hash must be 16 lowercase hex digits")
    require(link.get("origin") in ORIGINS,
            f"{where}.origin must be a ProgramOrigin wire name, "
            f"got {link.get('origin')!r}")
    for key in ("exec_index", "depth"):
        require(isinstance(link.get(key), int) and link[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    if last_depth is not None:
        require(link["depth"] > last_depth,
                f"{where}.depth must be strictly increasing along the "
                f"chain (root first)")
    return link["depth"]


def check_lineage_chain(chain, where):
    require(isinstance(chain, list), f"{where} must be an array")
    depth = None
    for i, link in enumerate(chain):
        depth = check_lineage_link(link, f"{where}[{i}]", depth)


def check_lineage_summary(lin, where):
    """Corpus lineage digest (obs::LineageSummary::write_json)."""
    require(isinstance(lin, dict), f"{where} must be an object")
    for key in ("seeds", "roots", "max_depth"):
        require(isinstance(lin.get(key), int) and lin[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    require(lin["roots"] <= lin["seeds"],
            f"{where}.roots ({lin['roots']}) cannot exceed seeds "
            f"({lin['seeds']})")
    hist = lin.get("depth_histogram")
    require(isinstance(hist, list)
            and all(isinstance(v, int) and v >= 0 for v in hist),
            f"{where}.depth_histogram must be an array of non-negative ints")
    require(sum(hist) == lin["seeds"],
            f"{where}.depth_histogram must sum to seeds ({lin['seeds']})")
    if lin["seeds"] > 0:
        require(len(hist) == lin["max_depth"] + 1,
                f"{where}.depth_histogram must have max_depth+1 "
                f"({lin['max_depth'] + 1}) buckets")
    ancestors = lin.get("top_ancestors")
    require(isinstance(ancestors, list),
            f"{where}.top_ancestors must be an array")
    for i, a in enumerate(ancestors):
        awhere = f"{where}.top_ancestors[{i}]"
        require(isinstance(a, dict), f"{awhere} must be an object")
        h = a.get("hash")
        require(isinstance(h, str) and len(h) == 16
                and all(c in "0123456789abcdef" for c in h),
                f"{awhere}.hash must be 16 lowercase hex digits")
        for key in ("exec_index", "descendants", "subtree_new_features"):
            require(isinstance(a.get(key), int) and a[key] >= 0,
                    f"{awhere}.{key} must be a non-negative int")


def check_frontier(fr, where):
    """Coverage-frontier report (obs::FrontierReport::write_json): every
    declared-but-unvisited state classified into exactly one of the three
    classes, with counters consistent with the class."""
    require(isinstance(fr, dict), f"{where} must be an object")
    for key in ("states_total", "states_visited"):
        require(isinstance(fr.get(key), int) and fr[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    require(fr["states_visited"] <= fr["states_total"],
            f"{where}.states_visited cannot exceed states_total")
    unvisited = fr.get("unvisited")
    require(isinstance(unvisited, list),
            f"{where}.unvisited must be an array")
    want = fr["states_total"] - fr["states_visited"]
    require(len(unvisited) == want,
            f"{where}.unvisited must classify every unvisited state "
            f"({want} entries, got {len(unvisited)})")
    for i, s in enumerate(unvisited):
        swhere = f"{where}.unvisited[{i}]"
        require(isinstance(s, dict), f"{swhere} must be an object")
        for key in ("driver", "state"):
            require(isinstance(s.get(key), str) and s[key],
                    f"{swhere}.{key} must be a non-empty string")
        for key in ("state_index", "plan_length", "plans_injected",
                    "materialize_failed", "executed_no_visit"):
            require(isinstance(s.get(key), int) and s[key] >= 0,
                    f"{swhere}.{key} must be a non-negative int")
        cls = s.get("class")
        require(cls in FRONTIER_CLASSES,
                f"{swhere}.class must be one of {FRONTIER_CLASSES}, "
                f"got {cls!r}")
        attempts = (s["plans_injected"] + s["materialize_failed"]
                    + s["executed_no_visit"])
        if cls == "never-attempted":
            require(attempts == 0,
                    f"{swhere}: never-attempted cannot carry plan-attempt "
                    f"counters")
        elif cls == "planned-but-failed":
            require(attempts > 0,
                    f"{swhere}: planned-but-failed must carry at least one "
                    f"plan-attempt counter")
        else:  # unreachable-from-frontier
            require(s["plan_length"] == 0,
                    f"{swhere}: unreachable state cannot carry a plan")


def check_analytics_series(points, where):
    """Downsampled campaign time series inside an analytics snapshot."""
    require(isinstance(points, list), f"{where} must be an array")
    last_execs = 0
    last_secs = 0.0
    for i, p in enumerate(points):
        pwhere = f"{where}[{i}]"
        require(isinstance(p, dict), f"{pwhere} must be an object")
        for key in SERIES_POINT_FIELDS:
            require(isinstance(p.get(key), int) and p[key] >= 0,
                    f"{pwhere}.{key} must be a non-negative int")
        require(p["executions"] >= last_execs,
                f"{pwhere}.executions must be non-decreasing")
        last_execs = p["executions"]
        timing = p.get("timing")
        require(isinstance(timing, dict)
                and isinstance(timing.get("secs"), (int, float)),
                f"{pwhere}.timing.secs must be a number")
        require(timing["secs"] >= last_secs,
                f"{pwhere}.timing.secs must be non-decreasing")
        last_secs = timing["secs"]


def check_analytics(a, where="analytics"):
    """One obs::AnalyticsSnapshot (operators + lineage + frontier)."""
    require(isinstance(a, dict), f"{where} must be an object")
    require(a.get("schema_version") == ANALYTICS_SCHEMA_VERSION,
            f"{where}.schema_version must be {ANALYTICS_SCHEMA_VERSION}, "
            f"got {a.get('schema_version')!r}")
    check_operators(a.get("operators"), f"{where}.operators")
    check_lineage_summary(a.get("lineage"), f"{where}.lineage")
    check_frontier(a.get("frontier"), f"{where}.frontier")
    if "series" in a:
        check_analytics_series(a["series"], f"{where}.series")


def check_device_analytics(section, where="analytics"):
    """Top-level per-device analytics array (--stats-json, df_explain)."""
    require(isinstance(section, dict), f"{where} must be an object")
    devices = section.get("devices")
    require(isinstance(devices, list) and devices,
            f"{where}.devices must be a non-empty array")
    for i, dev in enumerate(devices):
        dwhere = f"{where}.devices[{i}]"
        require(isinstance(dev, dict), f"{dwhere} must be an object")
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        check_analytics(dev.get("analytics"), f"{dwhere}.analytics")


def check_build(b, where="build"):
    """Build self-identification block (obs::write_build_json)."""
    require(isinstance(b, dict), f"{where} must be an object")
    require(isinstance(b.get("compiler"), str) and b["compiler"],
            f"{where}.compiler must be a non-empty string")
    for key in ("compiler_version", "build_type", "sanitizer", "flags"):
        require(isinstance(b.get(key), str),
                f"{where}.{key} must be a string")
    require(isinstance(b.get("cxx_standard"), int) and b["cxx_standard"] > 0,
            f"{where}.cxx_standard must be a positive int")
    require(isinstance(b.get("assertions"), bool),
            f"{where}.assertions must be a bool")
    schema = b.get("schema")
    require(isinstance(schema, dict), f"{where}.schema must be an object")
    for name, version in schema.items():
        require(isinstance(version, int) and version >= 1,
                f"{where}.schema.{name} must be a positive int version")


DISTILL_COUNTS = ("before", "after", "dropped_static", "dropped_covered",
                  "footprint_union")


def check_distill_counts(d, where):
    """Shared distillation-stat invariants (core::DistillStats)."""
    require(isinstance(d, dict), f"{where} must be an object")
    for key in DISTILL_COUNTS:
        require(isinstance(d.get(key), int) and d[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    require(d["after"] + d["dropped_static"] + d["dropped_covered"]
            == d["before"],
            f"{where}: after + dropped_static + dropped_covered must equal "
            f"before ({d['before']})")
    frac = d.get("fraction_dropped")
    require(isinstance(frac, (int, float)) and 0 <= frac <= 1,
            f"{where}.fraction_dropped must be a number in [0, 1]")
    want = ((d["before"] - d["after"]) / d["before"]) if d["before"] else 0.0
    # The emitter prints doubles at 6 significant digits (%.6g).
    require(abs(frac - want) < 1e-6,
            f"{where}.fraction_dropped must equal (before - after) / before "
            f"({want})")
    require(isinstance(d.get("verified"), bool),
            f"{where}.verified must be a bool")
    if d["verified"]:
        require(d["footprint_union"] > 0,
                f"{where}: replay verification implies a non-empty "
                f"footprint union")


def check_distill_stats(d, where="distill"):
    """One "distill" block inside a bench series or /status device."""
    check_distill_counts(d, where)
    require(isinstance(d.get("dry_run"), bool),
            f"{where}.dry_run must be a bool")


def check_distill_doc(doc):
    """df_distill --json report: per-device destructive distillation with a
    mandatory replay-verification pass (the bit-identical-coverage
    contract; df_distill itself exits non-zero on a mismatch)."""
    rep = doc.get("distill")
    require(isinstance(rep, dict), "distill must be an object")
    require(rep.get("tool") == "df_distill",
            "distill.tool must be 'df_distill'")
    require(isinstance(rep.get("seed"), int), "distill.seed must be an int")
    require(isinstance(rep.get("execs"), int) and rep["execs"] > 0,
            "distill.execs must be a positive int")
    devices = rep.get("devices")
    require(isinstance(devices, list) and devices,
            "distill.devices must be a non-empty array")
    for i, dev in enumerate(devices):
        dwhere = f"distill.devices[{i}]"
        require(isinstance(dev, dict), f"{dwhere} must be an object")
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        require(isinstance(dev.get("executions"), int)
                and dev["executions"] >= 0,
                f"{dwhere}.executions must be a non-negative int")
        check_distill_counts(dev, dwhere)
        require(dev["verified"] is True,
                f"{dwhere}.verified must be true: the distilled corpus must "
                f"replay to bit-identical coverage")


def check_lint_dataflow(df, where):
    """Per-file dataflow fact counts (analysis/dataflow.h via df_lint)."""
    require(isinstance(df, dict), f"{where} must be an object")
    classes = df.get("arg_classes")
    require(isinstance(classes, dict),
            f"{where}.arg_classes must be an object")
    for key in ("guard_relevant", "shape_relevant", "dead"):
        require(isinstance(classes.get(key), int) and classes[key] >= 0,
                f"{where}.arg_classes.{key} must be a non-negative int")
    lifetimes = df.get("lifetimes")
    require(isinstance(lifetimes, dict),
            f"{where}.lifetimes must be an object")
    for key in ("live", "closed", "leaked"):
        require(isinstance(lifetimes.get(key), int) and lifetimes[key] >= 0,
                f"{where}.lifetimes.{key} must be a non-negative int")
    require(isinstance(df.get("stale_uses"), int) and df["stale_uses"] >= 0,
            f"{where}.stale_uses must be a non-negative int")


def check_bug_list(bugs, where):
    """Named-bug list with lineage chains (bench_table2_bugs)."""
    require(isinstance(bugs, list), f"{where} must be an array")
    for i, b in enumerate(bugs):
        bwhere = f"{where}[{i}]"
        require(isinstance(b, dict), f"{bwhere} must be an object")
        for key in ("device", "title", "component", "origin", "class"):
            require(isinstance(b.get(key), str) and b[key],
                    f"{bwhere}.{key} must be a non-empty string")
        for key in ("first_exec", "dup_count"):
            require(isinstance(b.get(key), int) and b[key] >= 0,
                    f"{bwhere}.{key} must be a non-negative int")
        chain = b.get("lineage")
        require(isinstance(chain, list) and chain,
                f"{bwhere}.lineage must be a non-empty derivation chain "
                f"ending in the triggering program")
        check_lineage_chain(chain, f"{bwhere}.lineage")


def check_series_entry(i, entry):
    where = f"series[{i}]"
    require(isinstance(entry, dict), f"{where} must be an object")
    for key in ("device", "config"):
        require(isinstance(entry.get(key), str) and entry[key],
                f"{where}.{key} must be a non-empty string")
    lengths = set()
    for key in SERIES_ARRAYS:
        arr = entry.get(key)
        require(isinstance(arr, list) and arr,
                f"{where}.{key} must be a non-empty array")
        require(all(isinstance(v, int) and v >= 0 for v in arr),
                f"{where}.{key} must hold non-negative integers")
        lengths.add(len(arr))
    require(len(lengths) == 1,
            f"{where}: all series arrays must share one length, got {lengths}")
    for key in ("executions", "kernel_coverage", "total_coverage", "bugs"):
        check_monotone(f"{where}.{key}", entry[key])
    if "state_coverage" in entry:
        check_state_coverage(entry["state_coverage"],
                             f"{where}.state_coverage")
    if "analytics" in entry:
        check_analytics(entry["analytics"], f"{where}.analytics")
    if "distill" in entry:
        check_distill_stats(entry["distill"], f"{where}.distill")


def check_metric_value(entry, where, integer):
    """Counter/gauge value: under the key the metric *name* dictates."""
    key = metric_value_key(entry["name"])
    for other in ("value", "value_ns", "value_per_sec"):
        if other != key:
            require(other not in entry,
                    f"{where}.{other}: metric {entry['name']!r} must "
                    f"serialize under {key!r}")
    if integer:
        require(isinstance(entry.get(key), int) and entry[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    else:
        require(isinstance(entry.get(key), (int, float)),
                f"{where}.{key} must be a number")


def check_metrics(metrics, where="metrics"):
    require(isinstance(metrics, dict), f"{where} must be an object")
    for section in ("counters", "gauges", "histograms"):
        require(isinstance(metrics.get(section), list),
                f"{where}.{section} must be an array")
    for i, c in enumerate(metrics["counters"]):
        require(isinstance(c.get("name"), str) and c["name"],
                f"{where}.counters[{i}].name must be a non-empty string")
        check_metric_value(c, f"{where}.counters[{i}]", integer=True)
    for i, g in enumerate(metrics["gauges"]):
        require(isinstance(g.get("name"), str) and g["name"],
                f"{where}.gauges[{i}].name must be a non-empty string")
        check_metric_value(g, f"{where}.gauges[{i}]", integer=False)
    for i, h in enumerate(metrics["histograms"]):
        require(isinstance(h.get("name"), str) and h["name"],
                f"{where}.histograms[{i}].name must be a non-empty string")
        require(isinstance(h.get("count"), int) and h["count"] >= 0,
                f"{where}.histograms[{i}].count must be a non-negative int")
        for key in h:
            if key in ("name", "label", "count"):
                continue
            require(is_timing_key(key),
                    f"{where}.histograms[{i}].{key}: wall-dependent "
                    f"histogram fields must be *_ns")


def check_stats(stats, where="stats"):
    require(isinstance(stats, dict), f"{where} must be an object")
    require(isinstance(stats.get("sample_every"), int)
            and stats["sample_every"] > 0,
            f"{where}.sample_every must be a positive int")
    devices = stats.get("devices")
    require(isinstance(devices, list) and devices,
            f"{where}.devices must be a non-empty array")
    for i, dev in enumerate(devices):
        dwhere = f"{where}.devices[{i}]"
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        lengths = set()
        for key in STATS_ARRAYS:
            arr = dev.get(key)
            require(isinstance(arr, list),
                    f"{dwhere}.{key} must be an array")
            lengths.add(len(arr))
        require(len(lengths) == 1,
                f"{dwhere}: array length mismatch {lengths}")
        check_monotone(f"{dwhere}.executions", dev["executions"])
        if "state_coverage" in dev:
            check_state_coverage(dev["state_coverage"],
                                 f"{dwhere}.state_coverage")
    agg = stats.get("aggregate")
    require(isinstance(agg, dict), f"{where}.aggregate must be an object")
    n = min(len(d["executions"]) for d in devices)
    require(len(agg.get("executions", [])) == n,
            f"{where}.aggregate.executions must have {n} points "
            f"(shortest device series)")
    for i in range(n):
        want = sum(d["executions"][i] for d in devices)
        require(agg["executions"][i] == want,
                f"{where}.aggregate.executions[{i}] = "
                f"{agg['executions'][i]}, expected sum {want}")


def check_events(events, where="events"):
    require(isinstance(events, list), f"{where} must be an array")
    for i, ev in enumerate(events):
        require(isinstance(ev, dict), f"{where}[{i}] must be an object")
        require(isinstance(ev.get("event"), str) and ev["event"],
                f"{where}[{i}].event must be a non-empty string")
        require(isinstance(ev.get("exec"), int) and ev["exec"] >= 0,
                f"{where}[{i}].exec must be a non-negative int")


def check_worker_utilization(util, where):
    """Per-worker busy/idle/barrier accounting (an "utilization" array
    inside a "timing" object, DESIGN.md §10). Everything here is
    wall-dependent; the checker only enforces the shape."""
    require(isinstance(util, list) and util,
            f"{where} must be a non-empty array")
    for i, u in enumerate(util):
        uwhere = f"{where}[{i}]"
        require(isinstance(u, dict), f"{uwhere} must be an object")
        require(u.get("worker") == i,
                f"{uwhere}.worker must be the worker index {i}")
        require(isinstance(u.get("rounds"), int) and u["rounds"] >= 0,
                f"{uwhere}.rounds must be a non-negative int")
        for key in ("busy_ms", "idle_ms", "barrier_ms"):
            require(isinstance(u.get(key), (int, float)) and u[key] >= 0,
                    f"{uwhere}.{key} must be a non-negative number")


def check_timing_utilization(timing, where):
    """Validates timing.utilization / timing.busy_imbalance_ms if present."""
    if not isinstance(timing, dict):
        return
    if "utilization" in timing:
        check_worker_utilization(timing["utilization"],
                                 f"{where}.utilization")
        require(isinstance(timing.get("busy_imbalance_ms"), (int, float))
                and timing["busy_imbalance_ms"] >= 0,
                f"{where}.busy_imbalance_ms must accompany utilization")


def check_milestones(ladder, where):
    """The deterministic time-to-coverage ladder (obs::VelocityTracker)."""
    require(isinstance(ladder, list), f"{where} must be an array")
    last_frac, last_target, last_execs = 0.0, 0, 0
    for i, m in enumerate(ladder):
        mwhere = f"{where}[{i}]"
        require(isinstance(m, dict), f"{mwhere} must be an object")
        frac = m.get("fraction")
        require(isinstance(frac, (int, float)) and 0 < frac <= 1,
                f"{mwhere}.fraction must be in (0, 1]")
        require(frac > last_frac,
                f"{mwhere}.fraction must be strictly increasing")
        last_frac = frac
        target = m.get("target_coverage")
        require(isinstance(target, int) and target >= 1,
                f"{mwhere}.target_coverage must be a positive int")
        require(target >= last_target,
                f"{mwhere}.target_coverage must be non-decreasing")
        last_target = target
        execs = m.get("executions")
        require(isinstance(execs, int) and execs >= 0,
                f"{mwhere}.executions must be a non-negative int")
        require(execs >= last_execs,
                f"{mwhere}.executions must be non-decreasing")
        last_execs = execs
        for key in m:
            if key in ("fraction", "target_coverage", "executions"):
                continue
            require(is_timing_key(key),
                    f"{mwhere}.{key}: milestone wall-clock must live "
                    f"under 'timing'")


def check_velocity(vel, where="velocity"):
    """Coverage-velocity section (obs::VelocityTracker::write_json).

    The milestone ladder (fraction / target_coverage / executions) is
    deterministic content; the EWMA rates are wall-dependent and live under
    per-device "timing" objects.
    """
    require(isinstance(vel, dict), f"{where} must be an object")
    require(isinstance(vel.get("half_life_secs"), (int, float))
            and vel["half_life_secs"] > 0,
            f"{where}.half_life_secs must be a positive number")
    devices = vel.get("devices")
    require(isinstance(devices, list), f"{where}.devices must be an array")
    for i, dev in enumerate(devices):
        dwhere = f"{where}.devices[{i}]"
        require(isinstance(dev, dict), f"{dwhere} must be an object")
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        if "time_to_coverage" in dev:
            check_milestones(dev["time_to_coverage"],
                             f"{dwhere}.time_to_coverage")
        for key in dev:
            if key in ("device", "time_to_coverage"):
                continue
            require(is_timing_key(key),
                    f"{dwhere}.{key}: velocity rates must live under "
                    f"'timing'")
    agg = vel.get("aggregate")
    require(isinstance(agg, dict), f"{where}.aggregate must be an object")
    if "time_to_coverage" in agg:
        check_milestones(agg["time_to_coverage"],
                         f"{where}.aggregate.time_to_coverage")
    for key in agg:
        if key == "time_to_coverage":
            continue
        require(is_timing_key(key),
                f"{where}.aggregate.{key}: velocity rates must live under "
                f"'timing'")


def check_fleet_parallel(fp, where="fleet_parallel"):
    """Parallel-scaling section written by bench_fleet_parallel.

    Throughput and speedup are wall-dependent (and on a 1-core host land
    near 1.0x), so they live under per-config "timing" objects; the content
    contract — which the checker enforces — is that the run was
    deterministic across every worker configuration.
    """
    require(isinstance(fp, dict), f"{where} must be an object")
    for key in ("devices", "execs_per_device", "slice",
                "hardware_concurrency"):
        require(isinstance(fp.get(key), int) and fp[key] > 0,
                f"{where}.{key} must be a positive int")
    require(fp.get("deterministic") is True,
            f"{where}.deterministic must be true: per-device results must "
            f"be bit-identical across worker counts")
    configs = fp.get("configs")
    require(isinstance(configs, list) and configs,
            f"{where}.configs must be a non-empty array")
    last = 0
    for i, c in enumerate(configs):
        cwhere = f"{where}.configs[{i}]"
        require(isinstance(c, dict), f"{cwhere} must be an object")
        workers = c.get("workers")
        require(isinstance(workers, int) and workers > 0,
                f"{cwhere}.workers must be a positive int")
        require(workers > last,
                f"{cwhere}.workers must be strictly increasing")
        last = workers
        for key in c:
            if key == "workers":
                continue
            require(is_timing_key(key),
                    f"{cwhere}.{key}: throughput/speedup fields must live "
                    f"under 'timing'")
        check_timing_utilization(c.get("timing"), f"{cwhere}.timing")
    require(configs[0]["workers"] == 1,
            f"{where}.configs must start with the sequential baseline "
            f"(workers=1)")


FAULT_COUNTERS = ("injected", "hangs", "transport_errors", "reboots",
                  "kasan_reboots", "retries", "lost_execs")


def check_fault_recovery(fr, where="fault_recovery"):
    """Fault-recovery section written by bench_fault_recovery.

    Content contract: the seeded fault schedule makes every rate
    configuration deterministic, and the faulty campaigns lose no bugs
    against the fault-free baseline at the same budget. Recovery latency
    is virtual (deterministic) time and therefore content; wall-clock
    throughput lives under per-config "timing" objects.
    """
    require(isinstance(fr, dict), f"{where} must be an object")
    for key in ("devices", "execs_per_device", "slice"):
        require(isinstance(fr.get(key), int) and fr[key] > 0,
                f"{where}.{key} must be a positive int")
    require(fr.get("deterministic") is True,
            f"{where}.deterministic must be true: the fault schedule is a "
            f"seeded plan, so per-rate results must be bit-identical")
    require(isinstance(fr.get("budget_saturated"), bool),
            f"{where}.budget_saturated must be a bool")
    require(isinstance(fr.get("lost_bugs"), int) and fr["lost_bugs"] >= 0,
            f"{where}.lost_bugs must be a non-negative int")
    if fr["budget_saturated"]:
        require(fr["lost_bugs"] == 0,
                f"{where}.lost_bugs must be 0 at a saturation budget: "
                f"faults may cost throughput but never bugs")
    configs = fr.get("configs")
    require(isinstance(configs, list) and configs,
            f"{where}.configs must be a non-empty array")
    last = -1
    for i, c in enumerate(configs):
        cwhere = f"{where}.configs[{i}]"
        require(isinstance(c, dict), f"{cwhere} must be an object")
        ppm = c.get("fault_rate_ppm")
        require(isinstance(ppm, int) and ppm >= 0,
                f"{cwhere}.fault_rate_ppm must be a non-negative int")
        require(ppm > last,
                f"{cwhere}.fault_rate_ppm must be strictly increasing")
        last = ppm
        require(isinstance(c.get("bugs"), int) and c["bugs"] >= 0,
                f"{cwhere}.bugs must be a non-negative int")
        faults = c.get("faults")
        require(isinstance(faults, dict), f"{cwhere}.faults must be an object")
        for key in FAULT_COUNTERS:
            require(isinstance(faults.get(key), int) and faults[key] >= 0,
                    f"{cwhere}.faults.{key} must be a non-negative int")
        require(faults["reboots"] >= faults["hangs"],
                f"{cwhere}.faults: every hang forces a reboot, so reboots "
                f"must be >= hangs")
        recovery = c.get("recovery")
        require(isinstance(recovery, dict),
                f"{cwhere}.recovery must be an object")
        for key in ("virtual_us", "mean_us_per_event"):
            require(isinstance(recovery.get(key), int) and recovery[key] >= 0,
                    f"{cwhere}.recovery.{key} must be a non-negative int")
        if ppm == 0:
            require(all(faults[key] == 0 for key in FAULT_COUNTERS)
                    and recovery["virtual_us"] == 0,
                    f"{cwhere}: the fault-free baseline cannot report "
                    f"injected faults or recovery time")
        require(isinstance(c.get("timing"), dict),
                f"{cwhere}.timing must carry the wall-clock throughput")
        check_timing_utilization(c["timing"], f"{cwhere}.timing")
        for key in c:
            if key in ("fault_rate_ppm", "bugs", "faults", "recovery"):
                continue
            require(is_timing_key(key),
                    f"{cwhere}.{key}: throughput fields must live under "
                    f"'timing'")
    require(configs[0]["fault_rate_ppm"] == 0,
            f"{where}.configs must start with the fault-free baseline "
            f"(fault_rate_ppm=0)")


SNAPSHOT_COUNTERS = ("captures", "restores", "forks", "fault_recoveries",
                     "prefix_execs_saved", "prefix_calls_saved",
                     "sections_total", "sections_shared", "bytes_total",
                     "bytes_shared")
SNAPSHOT_MICRO_TIMING = ("capture_us", "restore_us", "reestablish_us",
                         "restore_speedup")


def check_snapshot_micro(sn, where):
    """bench_micro shape: one captured snapshot's size plus the
    capture / restore / full-reestablish latency probe."""
    require(isinstance(sn.get("device"), str) and sn["device"],
            f"{where}.device must be a non-empty string")
    for key in ("snapshot_bytes", "snapshot_sections"):
        require(isinstance(sn.get(key), int) and sn[key] > 0,
                f"{where}.{key} must be a positive int")
    for key in sn:
        if key in ("device", "snapshot_bytes", "snapshot_sections"):
            continue
        require(is_timing_key(key),
                f"{where}.{key}: snapshot latencies must live under "
                f"'timing'")
    timing = sn.get("timing")
    require(isinstance(timing, dict),
            f"{where}.timing must carry the latency probe")
    for key in SNAPSHOT_MICRO_TIMING:
        require(isinstance(timing.get(key), (int, float)) and timing[key] > 0,
                f"{where}.timing.{key} must be a positive number")
    want = timing["reestablish_us"] / timing["restore_us"]
    require(abs(timing["restore_speedup"] - want) <= 0.01 * want,
            f"{where}.timing.restore_speedup must equal reestablish_us / "
            f"restore_us ({want:.2f})")


def check_snapshot_campaign(sn, where):
    """bench_fleet_parallel / bench_fault_recovery shape: summed
    SnapshotStats counters plus the snapshots-on-vs-off comparison.

    The counters and the useful-throughput fields derive from seeded
    execution counts, so they are content; only the raw wall rates live
    under "timing". Counter identities come from the engine: every restore
    is either a frontier fork or a fault recovery, and the delta-sharing
    stats can never exceed their totals.
    """
    for key in SNAPSHOT_COUNTERS:
        require(isinstance(sn.get(key), int) and sn[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    require(sn["restores"] == sn["forks"] + sn["fault_recoveries"],
            f"{where}: restores ({sn['restores']}) must equal forks + "
            f"fault_recoveries ({sn['forks'] + sn['fault_recoveries']})")
    require(sn["sections_shared"] <= sn["sections_total"],
            f"{where}.sections_shared cannot exceed sections_total")
    require(sn["bytes_shared"] <= sn["bytes_total"],
            f"{where}.bytes_shared cannot exceed bytes_total")
    require(isinstance(sn.get("off_deterministic"), bool),
            f"{where}.off_deterministic must be a bool")
    require(sn["off_deterministic"] is True,
            f"{where}.off_deterministic must be true: the snapshots-off "
            f"trajectory must also be bit-identical across reps")
    content_keys = set(SNAPSHOT_COUNTERS) | {"off_deterministic"}
    if "replay_execs_on" in sn:  # bench_fault_recovery extras
        for key in ("fault_rate_ppm", "replay_execs_on", "replay_execs_off"):
            require(isinstance(sn.get(key), int) and sn[key] >= 0,
                    f"{where}.{key} must be a non-negative int")
        for key in ("useful_fraction_on", "useful_fraction_off"):
            require(isinstance(sn.get(key), (int, float))
                    and 0 <= sn[key] <= 1,
                    f"{where}.{key} must be a number in [0, 1]")
        require(isinstance(sn.get("useful_uplift_percent"), (int, float)),
                f"{where}.useful_uplift_percent must be a number")
        if sn["useful_fraction_off"] > 0:
            want = 100.0 * (sn["useful_fraction_on"]
                            / sn["useful_fraction_off"] - 1.0)
            require(abs(sn["useful_uplift_percent"] - want) <= 1e-4
                    + 0.01 * abs(want),
                    f"{where}.useful_uplift_percent must equal "
                    f"100 * (useful_fraction_on / useful_fraction_off - 1) "
                    f"({want:.4f})")
        content_keys |= {"fault_rate_ppm", "replay_execs_on",
                         "replay_execs_off", "useful_fraction_on",
                         "useful_fraction_off", "useful_uplift_percent"}
    for key in sn:
        if key in content_keys:
            continue
        require(is_timing_key(key),
                f"{where}.{key}: snapshot wall rates must live under "
                f"'timing'")
    timing = sn.get("timing")
    require(isinstance(timing, dict),
            f"{where}.timing must carry the on-vs-off wall rates")
    for key in ("on_execs_per_sec", "off_execs_per_sec"):
        require(isinstance(timing.get(key), (int, float)) and timing[key] > 0,
                f"{where}.timing.{key} must be a positive number")
    require(isinstance(timing.get("execs_per_sec_uplift_percent"),
                       (int, float)),
            f"{where}.timing.execs_per_sec_uplift_percent must be a number")


def check_snapshot(sn, where="snapshot"):
    """Snapshot-layer section (DESIGN.md §13), micro or campaign shape."""
    require(isinstance(sn, dict), f"{where} must be an object")
    if "snapshot_bytes" in sn:
        check_snapshot_micro(sn, where)
    else:
        check_snapshot_campaign(sn, where)


SERVICE_TIMING = ("preempted_wall_seconds", "uninterrupted_wall_seconds",
                  "jobs_per_hour", "preemption_overhead_percent",
                  "queue_wait_p50_ms", "queue_wait_p90_ms",
                  "queue_wait_max_ms")


def check_service(sv, where="service"):
    """Campaign-service scheduling section written by
    bench_service_throughput (DESIGN.md §14).

    Content contract: the preempting scheduler is deterministic — every
    job's result document matched its uninterrupted reference — and the
    per-job preemption counts sum to the reported total. Tick counts are
    content (scheduler passes, not wall clock); jobs/hour, preemption
    overhead, and millisecond wait percentiles live under "timing".
    """
    require(isinstance(sv, dict), f"{where} must be an object")
    for key in ("jobs", "workers", "quantum_barriers", "checkpoint_every",
                "budget_per_job"):
        require(isinstance(sv.get(key), int) and sv[key] > 0,
                f"{where}.{key} must be a positive int")
    require(sv.get("deterministic") is True,
            f"{where}.deterministic must be true: every preempted job must "
            f"reproduce its uninterrupted reference byte-for-byte")
    for key in ("scheduler_ticks", "preemptions_total"):
        require(isinstance(sv.get(key), int) and sv[key] >= 0,
                f"{where}.{key} must be a non-negative int")
    require(sv["scheduler_ticks"] >= sv["jobs"],
            f"{where}.scheduler_ticks must be at least one quantum per job")
    waits = sv.get("wait_ticks")
    require(isinstance(waits, dict), f"{where}.wait_ticks must be an object")
    for key in ("p50", "p90", "max"):
        require(isinstance(waits.get(key), int) and waits[key] >= 0,
                f"{where}.wait_ticks.{key} must be a non-negative int")
    require(waits["p50"] <= waits["p90"] <= waits["max"],
            f"{where}.wait_ticks percentiles must be ordered "
            f"(p50 <= p90 <= max)")
    per_job = sv.get("per_job")
    require(isinstance(per_job, list) and len(per_job) == sv["jobs"],
            f"{where}.per_job must have one entry per job ({sv['jobs']})")
    last_id = 0
    preemptions = 0
    for i, j in enumerate(per_job):
        jwhere = f"{where}.per_job[{i}]"
        require(isinstance(j, dict), f"{jwhere} must be an object")
        require(isinstance(j.get("id"), int) and j["id"] > last_id,
                f"{jwhere}.id must be a strictly increasing positive int")
        last_id = j["id"]
        require(isinstance(j.get("device"), str) and j["device"],
                f"{jwhere}.device must be a non-empty string")
        for key in ("seed", "priority", "preemptions", "wait_ticks"):
            require(isinstance(j.get(key), int) and j[key] >= 0,
                    f"{jwhere}.{key} must be a non-negative int")
        preemptions += j["preemptions"]
    require(preemptions == sv["preemptions_total"],
            f"{where}.preemptions_total must equal the per-job sum "
            f"({preemptions})")
    content_keys = {"jobs", "workers", "quantum_barriers", "checkpoint_every",
                    "budget_per_job", "deterministic", "scheduler_ticks",
                    "preemptions_total", "wait_ticks", "per_job"}
    for key in sv:
        if key in content_keys:
            continue
        require(is_timing_key(key),
                f"{where}.{key}: scheduler wall rates must live under "
                f"'timing'")
    timing = sv.get("timing")
    require(isinstance(timing, dict),
            f"{where}.timing must carry the throughput and wait latencies")
    for key in SERVICE_TIMING:
        require(isinstance(timing.get(key), (int, float)),
                f"{where}.timing.{key} must be a number")
    require(timing["jobs_per_hour"] >= 0,
            f"{where}.timing.jobs_per_hour must be non-negative")


def check_fleet(fleet, where="fleet"):
    """Campaign-level fleet section (--workers in fleet_campaign)."""
    require(isinstance(fleet, dict), f"{where} must be an object")
    for key in ("workers", "devices"):
        require(isinstance(fleet.get(key), int) and fleet[key] > 0,
                f"{where}.{key} must be a positive int")
    for key in fleet:
        if key in ("workers", "devices"):
            continue
        require(is_timing_key(key),
                f"{where}.{key}: wall-dependent fleet fields must live "
                f"under 'timing'")
    check_timing_utilization(fleet.get("timing"), f"{where}.timing")


def check_bench_doc(doc):
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    require(isinstance(doc.get("seed"), int), "seed must be an int")
    require(isinstance(doc.get("reps"), int) and doc["reps"] > 0,
            "reps must be a positive int")
    series = doc.get("series")
    require(isinstance(series, list) and series,
            "series must be a non-empty array")
    for i, entry in enumerate(series):
        check_series_entry(i, entry)
    if "metrics" in doc:
        check_metrics(doc["metrics"])
    if "fleet_parallel" in doc:
        check_fleet_parallel(doc["fleet_parallel"])
    if "fault_recovery" in doc:
        check_fault_recovery(doc["fault_recovery"])
    if "snapshot" in doc:
        check_snapshot(doc["snapshot"])
    if "service" in doc:
        check_service(doc["service"])
    if "velocity" in doc:
        check_velocity(doc["velocity"])
    if "bugs" in doc:
        check_bug_list(doc["bugs"], "bugs")
    if "syzkaller_bugs" in doc:
        check_bug_list(doc["syzkaller_bugs"], "syzkaller_bugs")
    check_build(doc.get("build"))
    timing = doc.get("timing")
    require(isinstance(timing, dict)
            and isinstance(timing.get("wall_seconds"), (int, float)),
            "timing.wall_seconds must be a number")


def check_campaign_doc(doc):
    campaign = doc.get("campaign")
    require(isinstance(campaign, dict), "campaign must be an object")
    require(isinstance(campaign.get("example"), str) and campaign["example"],
            "campaign.example must be a non-empty string")
    require(isinstance(campaign.get("seed"), int),
            "campaign.seed must be an int")
    check_stats(doc.get("stats"))
    if "fleet" in doc:
        check_fleet(doc["fleet"])
    if "velocity" in doc:
        check_velocity(doc["velocity"])
    if "analytics" in doc:
        check_device_analytics(doc["analytics"])
    if "build" in doc:
        check_build(doc["build"])
    if "metrics" in doc:
        check_metrics(doc["metrics"])
    if "events" in doc:
        check_events(doc["events"])


def check_chrome_trace(doc):
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events,
            "traceEvents must be a non-empty array")
    span_ids = set()
    parents = []
    last_ts = {}
    complete = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        require(isinstance(ev, dict), f"{where} must be an object")
        ph = ev.get("ph")
        require(ph in ("M", "X"), f"{where}.ph must be 'M' or 'X', got {ph!r}")
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}.name must be a non-empty string")
        for key in ("pid", "tid"):
            require(isinstance(ev.get(key), int) and ev[key] >= 0,
                    f"{where}.{key} must be a non-negative int")
        args = ev.get("args")
        require(isinstance(args, dict), f"{where}.args must be an object")
        if ph == "M":
            require(ev["name"] in ("process_name", "thread_name"),
                    f"{where}: metadata event must name a process or thread")
            require(isinstance(args.get("name"), str) and args["name"],
                    f"{where}.args.name must be a non-empty string")
            continue
        complete += 1
        for key in ("ts", "dur"):
            require(isinstance(ev.get(key), int) and ev[key] >= 0,
                    f"{where}.{key} must be a non-negative int")
        # The exporter sorts by (tid, ts): timestamps are monotone per track.
        tid = ev["tid"]
        require(ev["ts"] >= last_ts.get(tid, 0),
                f"{where}: ts must be non-decreasing within tid {tid}")
        last_ts[tid] = ev["ts"]
        span_id = args.get("id")
        require(isinstance(span_id, int) and span_id > 0,
                f"{where}.args.id must be a positive int")
        require(span_id not in span_ids,
                f"{where}.args.id {span_id} duplicated")
        span_ids.add(span_id)
        require(isinstance(args.get("parent"), int) and args["parent"] >= 0,
                f"{where}.args.parent must be a non-negative int")
        require(isinstance(args.get("exec"), int) and args["exec"] >= 0,
                f"{where}.args.exec must be a non-negative int")
        parents.append((where, args["parent"]))
    require(complete > 0, "trace must contain at least one complete span")
    for where, parent in parents:
        require(parent == 0 or parent in span_ids,
                f"{where}: parent {parent} does not match any span id "
                f"(incomplete span tree)")


def check_crash_doc(doc):
    crash = doc.get("crash")
    require(isinstance(crash, dict), "crash must be an object")
    for key in ("title", "component", "origin", "bug_class"):
        require(isinstance(crash.get(key), str) and crash[key],
                f"crash.{key} must be a non-empty string")
    h = crash.get("hash")
    require(isinstance(h, str) and len(h) == 16
            and all(c in "0123456789abcdef" for c in h),
            "crash.hash must be 16 lowercase hex digits")
    for key in ("first_exec", "dup_count"):
        require(isinstance(crash.get(key), int) and crash[key] >= 0,
                f"crash.{key} must be a non-negative int")
    campaign = doc.get("campaign")
    require(isinstance(campaign, dict), "campaign must be an object")
    require(isinstance(campaign.get("device"), str) and campaign["device"],
            "campaign.device must be a non-empty string")
    for key in ("seed", "exec"):
        require(isinstance(campaign.get(key), int),
                f"campaign.{key} must be an int")
    repro = doc.get("repro")
    require(isinstance(repro, dict), "repro must be an object")
    require(isinstance(repro.get("calls"), int) and repro["calls"] > 0,
            "repro.calls must be a positive int")
    require(isinstance(repro.get("dsl"), str) and repro["dsl"].strip(),
            "repro.dsl must be a non-empty program")
    check_lineage_chain(doc.get("lineage"), "lineage")
    check_state_coverage(doc.get("driver_states"), "driver_states")
    kasan = doc.get("kasan_context")
    require(isinstance(kasan, dict), "kasan_context must be an object")
    for key in ("kernel_reports", "hal_crashes"):
        arr = kasan.get(key)
        require(isinstance(arr, list)
                and all(isinstance(s, str) and s for s in arr),
                f"kasan_context.{key} must be an array of strings")
    require(kasan["kernel_reports"] or kasan["hal_crashes"],
            "kasan_context must carry at least one report")
    flight = doc.get("flight_recorder")
    require(isinstance(flight, dict), "flight_recorder must be an object")
    require(isinstance(flight.get("capacity"), int) and flight["capacity"] > 0,
            "flight_recorder.capacity must be a positive int")
    require(isinstance(flight.get("recorded"), int)
            and flight["recorded"] > 0,
            "flight_recorder.recorded must be a positive int")
    records = flight.get("records")
    require(isinstance(records, list) and records,
            "flight_recorder.records must be a non-empty array")
    for i, rec in enumerate(records):
        rwhere = f"flight_recorder.records[{i}]"
        require(isinstance(rec, dict), f"{rwhere} must be an object")
        require(isinstance(rec.get("exec"), int) and rec["exec"] >= 0,
                f"{rwhere}.exec must be a non-negative int")
        require(isinstance(rec.get("program"), str) and rec["program"],
                f"{rwhere}.program must be a non-empty string")
        require(isinstance(rec.get("rets"), list),
                f"{rwhere}.rets must be an array")
        for key in ("states_before", "states_after"):
            require(isinstance(rec.get(key), dict),
                    f"{rwhere}.{key} must be an object")


def check_lint_doc(doc):
    lint = doc.get("lint")
    require(isinstance(lint, dict), "lint must be an object")
    for key in ("tool", "device"):
        require(isinstance(lint.get(key), str) and lint[key],
                f"lint.{key} must be a non-empty string")
    files = lint.get("files")
    require(isinstance(files, list) and files,
            "lint.files must be a non-empty array")
    total_findings = 0
    total_errors = 0
    total_warnings = 0
    for i, f in enumerate(files):
        fwhere = f"lint.files[{i}]"
        require(isinstance(f, dict), f"{fwhere} must be an object")
        require(isinstance(f.get("path"), str) and f["path"],
                f"{fwhere}.path must be a non-empty string")
        require(isinstance(f.get("calls"), int) and f["calls"] >= 0,
                f"{fwhere}.calls must be a non-negative int")
        require(isinstance(f.get("parse_error"), str),
                f"{fwhere}.parse_error must be a string")
        require(isinstance(f.get("repairable"), bool),
                f"{fwhere}.repairable must be a bool")
        findings = f.get("findings")
        require(isinstance(findings, list),
                f"{fwhere}.findings must be an array")
        if "dataflow" in f:
            check_lint_dataflow(f["dataflow"], f"{fwhere}.dataflow")
        for j, fd in enumerate(findings):
            dwhere = f"{fwhere}.findings[{j}]"
            require(isinstance(fd, dict), f"{dwhere} must be an object")
            require(fd.get("pass") in LINT_PASSES,
                    f"{dwhere}.pass must be one of {LINT_PASSES}")
            require(fd.get("severity") in LINT_SEVERITIES,
                    f"{dwhere}.severity must be 'error' or 'warning'")
            require(isinstance(fd.get("call"), int) and fd["call"] >= 0,
                    f"{dwhere}.call must be a non-negative int")
            require(isinstance(fd.get("arg"), int) and fd["arg"] >= -1,
                    f"{dwhere}.arg must be an int >= -1")
            require(isinstance(fd.get("message"), str) and fd["message"],
                    f"{dwhere}.message must be a non-empty string")
            total_findings += 1
            if fd["severity"] == "error":
                total_errors += 1
            else:
                total_warnings += 1
    summary = lint.get("summary")
    require(isinstance(summary, dict), "lint.summary must be an object")
    for key in ("files", "programs", "findings", "errors", "warnings",
                "repaired", "rejected"):
        require(isinstance(summary.get(key), int) and summary[key] >= 0,
                f"lint.summary.{key} must be a non-negative int")
    require(summary["files"] == len(files),
            f"lint.summary.files must equal len(files) ({len(files)})")
    require(summary["findings"] == total_findings,
            f"lint.summary.findings must equal the per-file finding count "
            f"({total_findings})")
    require(summary["errors"] == total_errors
            and summary["warnings"] == total_warnings,
            f"lint.summary errors/warnings must match the per-file counts "
            f"({total_errors}/{total_warnings})")
    plans = lint.get("plans")
    require(isinstance(plans, list), "lint.plans must be an array")
    for i, p in enumerate(plans):
        pwhere = f"lint.plans[{i}]"
        require(isinstance(p, dict), f"{pwhere} must be an object")
        require(isinstance(p.get("driver"), str) and p["driver"],
                f"{pwhere}.driver must be a non-empty string")
        states = p.get("states")
        require(isinstance(states, list) and states
                and all(isinstance(s, str) and s for s in states),
                f"{pwhere}.states must be a non-empty array of names")
        entries = p.get("plans")
        require(isinstance(entries, list) and len(entries) == len(states),
                f"{pwhere}.plans must have one entry per state")
        for j, e in enumerate(entries):
            ewhere = f"{pwhere}.plans[{j}]"
            require(isinstance(e, dict), f"{ewhere} must be an object")
            require(e.get("state") == j,
                    f"{ewhere}.state must be the state index {j}")
            require(e.get("name") == states[j],
                    f"{ewhere}.name must match states[{j}]")
            require(isinstance(e.get("reachable"), bool),
                    f"{ewhere}.reachable must be a bool")
            require(isinstance(e.get("calls"), int) and e["calls"] >= 0,
                    f"{ewhere}.calls must be a non-negative int")
            if not e["reachable"]:
                require(e["calls"] == 0,
                        f"{ewhere}: unreachable state cannot carry a plan")


def check_explain_doc(doc):
    report = doc.get("report")
    require(isinstance(report, dict), "report must be an object")
    require(isinstance(report.get("example"), str) and report["example"],
            "report.example must be a non-empty string")
    require(isinstance(report.get("seed"), int), "report.seed must be an int")
    require(isinstance(report.get("execs_per_device"), int)
            and report["execs_per_device"] > 0,
            "report.execs_per_device must be a positive int")
    devices = doc.get("devices")
    require(isinstance(devices, list) and devices,
            "devices must be a non-empty array")
    require(report.get("devices") == len(devices),
            f"report.devices must equal len(devices) ({len(devices)})")
    for i, dev in enumerate(devices):
        dwhere = f"devices[{i}]"
        require(isinstance(dev, dict), f"{dwhere} must be an object")
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        check_analytics(dev.get("analytics"), f"{dwhere}.analytics")
    check_build(doc.get("build"))


def check_document(doc):
    if "bench" in doc:
        check_bench_doc(doc)
    elif "traceEvents" in doc:
        check_chrome_trace(doc)
    elif "crash" in doc:
        check_crash_doc(doc)
    elif "campaign" in doc:
        check_campaign_doc(doc)
    elif "lint" in doc:
        check_lint_doc(doc)
    elif "report" in doc:
        check_explain_doc(doc)
    elif "distill" in doc:
        check_distill_doc(doc)
    else:
        raise CheckError("unknown document: expected a 'bench', "
                         "'traceEvents', 'crash', 'campaign', 'lint', "
                         "'report', or 'distill' top-level key")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate_file(path):
    try:
        doc = load(path)
        check_document(doc)
    except (OSError, json.JSONDecodeError, CheckError) as e:
        print(f"FAIL {path}: {e}")
        return False
    print(f"OK   {path}")
    return True


def compare_files(path_a, path_b):
    if not (validate_file(path_a) and validate_file(path_b)):
        return False
    a = strip_timing(load(path_a))
    b = strip_timing(load(path_b))
    if a != b:
        print(f"FAIL {path_a} vs {path_b}: documents differ after "
              f"stripping timing fields")
        return False
    print(f"OK   {path_a} == {path_b} (modulo timing)")
    return True


# --- self-test ---------------------------------------------------------------

def _bench_fixture():
    return {
        "bench": "fig4_coverage", "seed": 1, "reps": 1,
        "series": [{
            "device": "A1", "config": "droidfuzz", "rep": 0,
            "executions": [0, 100], "kernel_coverage": [0, 40],
            "total_coverage": [0, 50], "corpus": [0, 4], "bugs": [0, 1],
            "timing": {"secs": [0.0, 0.5]},
        }],
        "metrics": {
            "counters": [{"name": "engine.executions", "label": "A1",
                          "value": 100}],
            "gauges": [],
            "histograms": [{"name": "phase.execute", "label": "A1",
                            "count": 100, "sum_ns": 5, "p50_ns": 1}],
        },
        "build": _build_fixture(),
        "timing": {"wall_seconds": 0.5},
    }


def _build_fixture():
    return {
        "compiler": "gcc", "compiler_version": "13.2.0",
        "build_type": "Release", "sanitizer": "", "flags": "-O2",
        "cxx_standard": 202002, "assertions": False,
        "schema": {"checkpoint": 3, "analytics": 2},
    }


def _operator_row(origin, attempts=0, total_calls=0, accepts=0,
                  new_features=0, new_states=0, bugs=0):
    mean = total_calls / attempts if attempts else 0
    return {"origin": origin, "attempts": attempts,
            "total_calls": total_calls, "accepts": accepts,
            "new_features": new_features, "new_states": new_states,
            "bugs": bugs, "mean_cost": mean}


def _analytics_fixture():
    ops = [_operator_row(o) for o in ORIGINS]
    ops[0] = _operator_row("generate", attempts=100, total_calls=420,
                           accepts=20, new_features=80, new_states=3,
                           bugs=1)
    ops[7] = _operator_row("plan_injected", attempts=4, total_calls=12,
                           accepts=4, new_states=4)
    return {
        "schema_version": 2,
        "operators": ops,
        "lineage": {
            "seeds": 5, "roots": 2, "max_depth": 2,
            "depth_histogram": [2, 2, 1],
            "top_ancestors": [{"hash": "00000000deadbeef", "exec_index": 3,
                               "descendants": 3,
                               "subtree_new_features": 40}],
        },
        "frontier": {
            "states_total": 6, "states_visited": 3,
            "unvisited": [
                {"driver": "rt1711_i2c", "state": "error",
                 "state_index": 3, "class": "unreachable-from-frontier",
                 "plan_length": 0, "plans_injected": 0,
                 "materialize_failed": 0, "executed_no_visit": 0},
                {"driver": "rt1711_i2c", "state": "pd_contract",
                 "state_index": 4, "class": "planned-but-failed",
                 "plan_length": 3, "plans_injected": 2,
                 "materialize_failed": 0, "executed_no_visit": 2},
                {"driver": "rt1711_i2c", "state": "alerting",
                 "state_index": 5, "class": "never-attempted",
                 "plan_length": 2, "plans_injected": 0,
                 "materialize_failed": 0, "executed_no_visit": 0},
            ],
        },
        "series": [
            {"executions": 0, "kernel_coverage": 0, "total_coverage": 0,
             "corpus_size": 0, "unique_bugs": 0, "states_visited": 0,
             "timing": {"secs": 0.0}},
            {"executions": 100, "kernel_coverage": 40, "total_coverage": 50,
             "corpus_size": 4, "unique_bugs": 1, "states_visited": 3,
             "timing": {"secs": 0.5}},
        ],
    }


def _lineage_chain_fixture():
    return [
        {"hash": "0000000000001234", "origin": "generate",
         "exec_index": 7, "depth": 0},
        {"hash": "000000000000abcd", "origin": "mutate_arg",
         "exec_index": 120, "depth": 1},
    ]


def _explain_fixture():
    return {
        "report": {"example": "df_explain", "seed": 3,
                   "execs_per_device": 4000, "devices": 1},
        "devices": [{"device": "A1", "analytics": _analytics_fixture()}],
        "build": _build_fixture(),
    }


def _state_coverage_fixture():
    return [{
        "driver": "rt1711_i2c",
        "states": ["idle", "attached", "alerting"],
        "current": "attached",
        "visits": [3, 2, 0],
        "matrix": [[0, 2, 0], [1, 0, 0], [0, 0, 0]],
        "states_visited": 2,
        "transitions_observed": 2,
    }]


def _chrome_fixture():
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "droidfuzz"}},
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
             "args": {"name": "A1"}},
            {"name": "campaign", "cat": "droidfuzz", "ph": "X", "pid": 1,
             "tid": 1, "ts": 0, "dur": 90,
             "args": {"id": 1, "parent": 0, "exec": 0}},
            {"name": "iteration", "cat": "droidfuzz", "ph": "X", "pid": 1,
             "tid": 1, "ts": 10, "dur": 40,
             "args": {"id": 2, "parent": 1, "exec": 1}},
            {"name": "phase:execute", "cat": "droidfuzz", "ph": "X", "pid": 1,
             "tid": 1, "ts": 12, "dur": 20,
             "args": {"id": 3, "parent": 2, "exec": 1}},
        ],
    }


def _crash_fixture():
    return {
        "crash": {"title": "KASAN: use-after-free in ion_free",
                  "hash": "00c0ffee00c0ffee", "component": "Kernel",
                  "origin": "ion", "bug_class": "KASAN",
                  "first_exec": 40, "dup_count": 1},
        "campaign": {"device": "A1", "seed": 3, "exec": 40},
        "repro": {"calls": 2, "dsl": "r0 = openat$ion()\nclose(r0)\n"},
        "lineage": _lineage_chain_fixture(),
        "driver_states": _state_coverage_fixture(),
        "kasan_context": {
            "kernel_reports": ["KASAN: use-after-free in ion_free | ..."],
            "hal_crashes": [],
        },
        "flight_recorder": {
            "capacity": 16, "recorded": 1,
            "records": [{"exec": 40, "program": "r0 = openat$ion()\n",
                         "rets": [3], "new_features": 0,
                         "kernel_bug": "KASAN: use-after-free in ion_free",
                         "hal_crash": "",
                         "states_before": {"ion": "empty"},
                         "states_after": {"ion": "allocated"}}],
        },
    }


def _fleet_parallel_fixture():
    return {
        "devices": 7, "execs_per_device": 4000, "slice": 256,
        "hardware_concurrency": 4, "deterministic": True,
        "configs": [
            {"workers": 1, "timing": {"wall_seconds": 0.4,
                                      "execs_per_sec": 70000.0,
                                      "speedup_vs_sequential": 1.0}},
            {"workers": 2, "timing": {"wall_seconds": 0.22,
                                      "execs_per_sec": 127000.0,
                                      "speedup_vs_sequential": 1.8}},
            {"workers": 4, "timing": {"wall_seconds": 0.13,
                                      "execs_per_sec": 215000.0,
                                      "speedup_vs_sequential": 3.1}},
        ],
    }


def _fault_recovery_fixture():
    def config(ppm, bugs, injected, hangs, transport, reboots, retries,
               lost, virtual_us):
        events = reboots + retries
        return {
            "fault_rate_ppm": ppm, "bugs": bugs,
            "faults": {"injected": injected, "hangs": hangs,
                       "transport_errors": transport, "reboots": reboots,
                       "kasan_reboots": 0, "retries": retries,
                       "lost_execs": lost},
            "recovery": {"virtual_us": virtual_us,
                         "mean_us_per_event":
                             virtual_us // events if events else 0},
            "timing": {"wall_seconds": 0.4, "execs_per_sec": 70000.0},
        }
    return {
        "devices": 7, "execs_per_device": 30000, "slice": 256,
        "deterministic": True, "budget_saturated": True, "lost_bugs": 0,
        "configs": [
            config(0, 10, 0, 0, 0, 0, 0, 0, 0),
            config(1000, 11, 222, 62, 113, 109, 113, 109, 30361300),
            config(10000, 11, 2573, 644, 1312, 1261, 1312, 1261, 347581800),
        ],
    }


def _service_fixture():
    def job(jid, device, seed, priority, preemptions, wait_ticks):
        return {"id": jid, "device": device, "seed": seed,
                "priority": priority, "preemptions": preemptions,
                "wait_ticks": wait_ticks}
    return {
        "jobs": 3, "workers": 1, "quantum_barriers": 1,
        "checkpoint_every": 256, "budget_per_job": 2560,
        "deterministic": True, "scheduler_ticks": 30,
        "preemptions_total": 27,
        "wait_ticks": {"p50": 10, "p90": 19, "max": 21},
        "per_job": [
            job(1, "A1", 1, 0, 9, 10),
            job(2, "B", 2, 3, 9, 19),
            job(3, "C1", 3, 1, 9, 21),
        ],
        "timing": {"preempted_wall_seconds": 0.8,
                   "uninterrupted_wall_seconds": 0.7,
                   "jobs_per_hour": 13500.0,
                   "preemption_overhead_percent": 14.3,
                   "queue_wait_p50_ms": 266.0,
                   "queue_wait_p90_ms": 506.0,
                   "queue_wait_max_ms": 560.0},
    }


def _snapshot_micro_fixture():
    return {
        "device": "A1", "snapshot_bytes": 2502, "snapshot_sections": 24,
        "timing": {"capture_us": 11.2, "restore_us": 4.3,
                   "reestablish_us": 70.0, "restore_speedup": 70.0 / 4.3},
    }


def _snapshot_campaign_fixture(fault=False):
    sn = {
        "captures": 25, "restores": 150, "forks": 49,
        "fault_recoveries": 101, "prefix_execs_saved": 150,
        "prefix_calls_saved": 600, "sections_total": 600,
        "sections_shared": 420, "bytes_total": 62550,
        "bytes_shared": 40000, "off_deterministic": True,
        "timing": {"on_execs_per_sec": 66000.0, "off_execs_per_sec": 75000.0,
                   "execs_per_sec_uplift_percent": -12.0},
    }
    if fault:
        sn.update({
            "fault_rate_ppm": 10000, "replay_execs_on": 40,
            "replay_execs_off": 4870, "useful_fraction_on": 0.9998,
            "useful_fraction_off": 0.9768,
            "useful_uplift_percent": 100.0 * (0.9998 / 0.9768 - 1.0),
        })
    return sn


def _velocity_fixture():
    def milestones(scale):
        return [
            {"fraction": f, "target_coverage": int(50 * f * scale) or 1,
             "executions": int(100 * f * scale),
             "timing": {"secs": 0.1 * f}}
            for f in (0.25, 0.5, 0.75, 0.9, 1.0)
        ]
    rates = {"execs_per_sec": 1000.0, "features_per_sec": 12.0,
             "kernel_features_per_sec": 9.0, "states_per_sec": 0.5,
             "crashes_per_sec": 0.01}
    return {
        "half_life_secs": 30.0,
        "devices": [{"device": "A1",
                     "time_to_coverage": milestones(1),
                     "timing": dict(rates)}],
        "aggregate": {"time_to_coverage": milestones(1),
                      "timing": dict(rates)},
    }


def _utilization_fixture():
    return [
        {"worker": 0, "rounds": 8, "busy_ms": 120.0, "idle_ms": 3.0,
         "barrier_ms": 1.5},
        {"worker": 1, "rounds": 8, "busy_ms": 118.0, "idle_ms": 5.0,
         "barrier_ms": 1.4},
    ]


def _campaign_fixture():
    return {
        "campaign": {"example": "fleet_campaign", "seed": 3},
        "stats": {
            "sample_every": 512,
            "devices": [{
                "device": "A1",
                "executions": [0, 512], "kernel_coverage": [0, 10],
                "total_coverage": [0, 12], "corpus": [0, 2], "bugs": [0, 0],
                "relation_edges": [0, 3], "reboots": [0, 0],
            }],
            "aggregate": {"executions": [0, 512], "kernel_coverage": [0, 10],
                          "total_coverage": [0, 12], "corpus": [0, 2],
                          "bugs": [0, 0], "reboots": [0, 0]},
        },
        "events": [{"event": "bug", "device": "A1", "exec": 40}],
    }


def _lint_fixture():
    return {
        "lint": {
            "tool": "df_lint", "device": "A1",
            "files": [{
                "path": "tests/fixtures/lint/use_after_close.dsl",
                "calls": 3, "parse_error": "",
                "dataflow": {
                    "arg_classes": {"guard_relevant": 1, "shape_relevant": 2,
                                    "dead": 0},
                    "lifetimes": {"live": 0, "closed": 1, "leaked": 0},
                    "stale_uses": 1,
                },
                "repairable": True,
                "findings": [{
                    "pass": "use-after-close", "severity": "error",
                    "call": 2, "arg": 0,
                    "message": "use of r0 after close$rt1711 at call #1",
                }],
            }],
            "summary": {"files": 1, "programs": 1, "findings": 1,
                        "errors": 1, "warnings": 0, "repaired": 1,
                        "rejected": 0},
            "plans": [{
                "driver": "rt1711_i2c",
                "states": ["idle", "attached", "alerting"],
                "plans": [
                    {"state": 0, "name": "idle", "reachable": True,
                     "calls": 0},
                    {"state": 1, "name": "attached", "reachable": True,
                     "calls": 1},
                    {"state": 2, "name": "alerting", "reachable": True,
                     "calls": 2},
                ],
            }],
        },
    }


def _distill_stats(dry_run=None):
    d = {"before": 12, "after": 7, "dropped_static": 3, "dropped_covered": 2,
         "footprint_union": 41, "fraction_dropped": 5 / 12,
         "verified": True}
    if dry_run is not None:
        d["dry_run"] = dry_run
    return d


def _distill_fixture():
    dev = _distill_stats()
    dev.update({"device": "A1", "executions": 600})
    return {"distill": {"tool": "df_distill", "seed": 1, "execs": 600,
                        "devices": [dev]}}


def self_test():
    cases = []

    def expect_ok(name, doc):
        cases.append((name, doc, True))

    def expect_fail(name, doc):
        cases.append((name, doc, False))

    expect_ok("valid bench doc", _bench_fixture())
    expect_ok("valid campaign doc", _campaign_fixture())

    doc = _bench_fixture()
    del doc["series"][0]["kernel_coverage"]
    expect_fail("missing series array", doc)

    doc = _bench_fixture()
    doc["series"][0]["executions"] = [100, 0]
    expect_fail("non-monotone executions", doc)

    doc = _bench_fixture()
    doc["series"][0]["corpus"] = [0]
    expect_fail("array length mismatch", doc)

    doc = _bench_fixture()
    doc["metrics"]["histograms"][0]["p50"] = 7
    expect_fail("histogram wall field without _ns suffix", doc)

    doc = _campaign_fixture()
    doc["stats"]["aggregate"]["executions"] = [0, 999]
    expect_fail("aggregate not the device sum", doc)

    doc = _bench_fixture()
    doc["series"][0]["state_coverage"] = _state_coverage_fixture()
    expect_ok("bench series with state coverage", doc)

    doc = _bench_fixture()
    doc["series"][0]["state_coverage"] = _state_coverage_fixture()
    doc["series"][0]["state_coverage"][0]["matrix"][0] = [0, 2]
    expect_fail("ragged transition matrix", doc)

    doc = _bench_fixture()
    doc["series"][0]["state_coverage"] = _state_coverage_fixture()
    doc["series"][0]["state_coverage"][0]["states_visited"] = 3
    expect_fail("states_visited inconsistent with visits", doc)

    doc = _campaign_fixture()
    doc["stats"]["devices"][0]["state_coverage"] = _state_coverage_fixture()
    expect_ok("campaign stats with state coverage", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    expect_ok("bench doc with fleet_parallel section", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    doc["fleet_parallel"]["deterministic"] = False
    expect_fail("non-deterministic fleet run", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    doc["fleet_parallel"]["configs"] = []
    expect_fail("fleet_parallel without configs", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    doc["fleet_parallel"]["configs"][0]["workers"] = 2
    expect_fail("fleet_parallel missing the sequential baseline", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    doc["fleet_parallel"]["configs"][2]["workers"] = 2
    expect_fail("fleet_parallel workers not strictly increasing", doc)

    doc = _bench_fixture()
    doc["fleet_parallel"] = _fleet_parallel_fixture()
    doc["fleet_parallel"]["configs"][1]["speedup"] = 1.8
    expect_fail("fleet_parallel speedup outside 'timing'", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    expect_ok("bench doc with fault_recovery section", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["deterministic"] = False
    expect_fail("non-deterministic fault campaign", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["lost_bugs"] = 2
    expect_fail("saturated fault campaign losing bugs", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["budget_saturated"] = False
    doc["fault_recovery"]["lost_bugs"] = 2
    expect_ok("unsaturated smoke budget may report lost bugs", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["configs"][0]["fault_rate_ppm"] = 500
    expect_fail("fault_recovery missing the fault-free baseline", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["configs"][2]["fault_rate_ppm"] = 1000
    expect_fail("fault_recovery rates not strictly increasing", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["configs"][0]["faults"]["reboots"] = 3
    expect_fail("fault-free baseline reporting injected faults", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["configs"][1]["faults"]["reboots"] = 1
    expect_fail("fewer reboots than hangs", doc)

    doc = _bench_fixture()
    doc["fault_recovery"] = _fault_recovery_fixture()
    doc["fault_recovery"]["configs"][1]["throughput"] = 70000.0
    expect_fail("fault_recovery throughput outside 'timing'", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    expect_ok("bench doc with service section", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["deterministic"] = False
    expect_fail("non-deterministic service scheduler", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["per_job"].pop()
    expect_fail("service per_job not covering every job", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["preemptions_total"] = 5
    expect_fail("service preemptions_total not the per-job sum", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["wait_ticks"]["p90"] = 25
    expect_fail("service wait percentiles out of order", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["jobs_per_hour"] = 13500.0
    expect_fail("service throughput outside 'timing'", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    del doc["service"]["timing"]["jobs_per_hour"]
    expect_fail("service timing missing jobs_per_hour", doc)

    doc = _bench_fixture()
    doc["service"] = _service_fixture()
    doc["service"]["scheduler_ticks"] = 2
    expect_fail("service with fewer ticks than jobs", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_micro_fixture()
    expect_ok("bench doc with micro snapshot section", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_micro_fixture()
    doc["snapshot"]["timing"]["restore_speedup"] = 2.0
    expect_fail("snapshot restore_speedup inconsistent with latencies", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_micro_fixture()
    del doc["snapshot"]["timing"]["restore_us"]
    expect_fail("micro snapshot missing restore latency", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_micro_fixture()
    doc["snapshot"]["capture_us"] = 11.2
    expect_fail("snapshot latency outside 'timing'", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture()
    expect_ok("bench doc with campaign snapshot section", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture(fault=True)
    expect_ok("bench doc with fault-recovery snapshot section", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture()
    doc["snapshot"]["restores"] = 151
    expect_fail("snapshot restores not forks + fault_recoveries", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture()
    doc["snapshot"]["bytes_shared"] = doc["snapshot"]["bytes_total"] + 1
    expect_fail("snapshot bytes_shared exceeding bytes_total", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture()
    doc["snapshot"]["off_deterministic"] = False
    expect_fail("non-deterministic snapshots-off trajectory", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture()
    doc["snapshot"]["on_rate"] = 66000.0
    expect_fail("snapshot wall rate outside 'timing'", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture(fault=True)
    doc["snapshot"]["useful_fraction_on"] = 1.5
    expect_fail("snapshot useful fraction outside [0, 1]", doc)

    doc = _bench_fixture()
    doc["snapshot"] = _snapshot_campaign_fixture(fault=True)
    doc["snapshot"]["useful_uplift_percent"] = 99.0
    expect_fail("snapshot useful uplift inconsistent with fractions", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 4, "devices": 7,
                    "timing": {"wall_ms": 130.0, "execs_per_sec": 215000.0}}
    expect_ok("campaign doc with fleet section", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 0, "devices": 7}
    expect_fail("campaign fleet with zero workers", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 4, "devices": 7, "wall_ms": 130.0}
    expect_fail("campaign fleet wall-clock outside 'timing'", doc)

    doc = _bench_fixture()
    doc["velocity"] = _velocity_fixture()
    expect_ok("bench doc with velocity section", doc)

    doc = _campaign_fixture()
    doc["velocity"] = _velocity_fixture()
    expect_ok("campaign doc with velocity section", doc)

    doc = _bench_fixture()
    doc["velocity"] = _velocity_fixture()
    doc["velocity"]["devices"][0]["execs_per_hour"] = 9.0
    expect_fail("velocity device rate outside 'timing'", doc)

    doc = _bench_fixture()
    doc["velocity"] = _velocity_fixture()
    doc["velocity"]["devices"][0]["time_to_coverage"][2]["executions"] = 1
    expect_fail("velocity milestone executions not monotone", doc)

    doc = _bench_fixture()
    doc["velocity"] = _velocity_fixture()
    doc["velocity"]["aggregate"]["time_to_coverage"][1]["fraction"] = 0.25
    expect_fail("velocity milestone fractions not strictly increasing", doc)

    doc = _bench_fixture()
    doc["velocity"] = _velocity_fixture()
    del doc["velocity"]["half_life_secs"]
    expect_fail("velocity without half_life_secs", doc)

    doc = _bench_fixture()
    doc["metrics"]["counters"].append(
        {"name": "fleet.worker.busy_ns", "label": "w0", "value_ns": 120})
    doc["metrics"]["gauges"].append(
        {"name": "fleet.worker.imbalance_ns", "value_ns": 2.0})
    expect_ok("wall-dependent metric under its suffixed value key", doc)

    doc = _bench_fixture()
    doc["metrics"]["counters"].append(
        {"name": "fleet.worker.busy_ns", "label": "w0", "value": 120})
    expect_fail("counter named *_ns hiding under plain 'value'", doc)

    doc = _bench_fixture()
    doc["metrics"]["counters"][0]["value_ns"] = 120
    del doc["metrics"]["counters"][0]["value"]
    expect_fail("unsuffixed counter under 'value_ns'", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 2, "devices": 7,
                    "timing": {"wall_ms": 130.0, "execs_per_sec": 2e5,
                               "utilization": _utilization_fixture(),
                               "busy_imbalance_ms": 2.0}}
    expect_ok("campaign fleet with worker utilization", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 2, "devices": 7,
                    "timing": {"utilization": _utilization_fixture(),
                               "busy_imbalance_ms": 2.0}}
    doc["fleet"]["timing"]["utilization"][1]["worker"] = 7
    expect_fail("utilization worker ids out of order", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 2, "devices": 7,
                    "timing": {"utilization": _utilization_fixture(),
                               "busy_imbalance_ms": 2.0}}
    del doc["fleet"]["timing"]["utilization"][0]["busy_ms"]
    expect_fail("utilization entry missing busy_ms", doc)

    doc = _campaign_fixture()
    doc["fleet"] = {"workers": 2, "devices": 7,
                    "timing": {"utilization": _utilization_fixture()}}
    expect_fail("utilization without busy_imbalance_ms", doc)

    expect_ok("valid chrome trace", _chrome_fixture())

    doc = _chrome_fixture()
    doc["traceEvents"][4]["ts"] = 5
    expect_fail("non-monotone ts within a track", doc)

    doc = _chrome_fixture()
    doc["traceEvents"][4]["args"]["parent"] = 99
    expect_fail("dangling span parent", doc)

    doc = _chrome_fixture()
    del doc["traceEvents"][3]["dur"]
    expect_fail("complete span without dur", doc)

    doc = _chrome_fixture()
    doc["traceEvents"] = doc["traceEvents"][:2]
    expect_fail("metadata-only trace", doc)

    expect_ok("valid crash provenance doc", _crash_fixture())

    doc = _crash_fixture()
    doc["crash"]["hash"] = "xyz"
    expect_fail("malformed crash hash", doc)

    doc = _crash_fixture()
    doc["repro"]["dsl"] = ""
    expect_fail("empty reproducer", doc)

    doc = _crash_fixture()
    doc["flight_recorder"]["records"] = []
    expect_fail("crash report without flight records", doc)

    doc = _crash_fixture()
    doc["kasan_context"]["kernel_reports"] = []
    expect_fail("crash report without any kernel/HAL context", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    expect_ok("bench series with analytics snapshot", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["schema_version"] = 99
    expect_fail("analytics schema version mismatch", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["operators"].pop()
    expect_fail("operator table missing a row", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    ops = doc["series"][0]["analytics"]["operators"]
    ops[1], ops[2] = ops[2], ops[1]
    expect_fail("operator rows out of enum order", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["operators"][0]["accepts"] = 999
    expect_fail("operator accepts exceeding attempts", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["lineage"]["depth_histogram"] = [1, 1, 1]
    expect_fail("lineage histogram not summing to seeds", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["lineage"]["roots"] = 9
    expect_fail("lineage roots exceeding seeds", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["frontier"]["unvisited"][0]["class"] = \
        "lost-in-space"
    expect_fail("unknown frontier class", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["frontier"]["unvisited"].pop()
    expect_fail("frontier not classifying every unvisited state", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["frontier"]["unvisited"][2][
        "plans_injected"] = 1
    expect_fail("never-attempted state carrying plan attempts", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["frontier"]["unvisited"][1][
        "plans_injected"] = 0
    doc["series"][0]["analytics"]["frontier"]["unvisited"][1][
        "executed_no_visit"] = 0
    expect_fail("planned-but-failed state without attempt counters", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["series"][1]["executions"] = 0
    doc["series"][0]["analytics"]["series"][0]["executions"] = 100
    expect_fail("analytics series executions not monotone", doc)

    doc = _bench_fixture()
    doc["series"][0]["analytics"] = _analytics_fixture()
    doc["series"][0]["analytics"]["series"][0]["timing"]["secs"] = 9.0
    expect_fail("analytics series timestamps not monotone", doc)

    doc = _bench_fixture()
    del doc["build"]
    expect_fail("bench doc without build block", doc)

    doc = _bench_fixture()
    doc["build"]["compiler"] = ""
    expect_fail("build block with empty compiler", doc)

    doc = _bench_fixture()
    doc["build"]["schema"]["analytics"] = 0
    expect_fail("build schema version below 1", doc)

    doc = _bench_fixture()
    doc["bugs"] = [{"device": "A1", "title": "KASAN: uaf", "component":
                    "Kernel", "origin": "ion", "class": "KASAN",
                    "first_exec": 40, "dup_count": 0,
                    "lineage": _lineage_chain_fixture()}]
    expect_ok("bench bug list with lineage chains", doc)

    doc = _bench_fixture()
    doc["bugs"] = [{"device": "A1", "title": "KASAN: uaf", "component":
                    "Kernel", "origin": "ion", "class": "KASAN",
                    "first_exec": 40, "dup_count": 0, "lineage": []}]
    expect_fail("bench bug without a lineage chain", doc)

    doc = _campaign_fixture()
    doc["analytics"] = {"devices": [{"device": "A1",
                                     "analytics": _analytics_fixture()}]}
    doc["build"] = _build_fixture()
    expect_ok("campaign doc with analytics and build sections", doc)

    doc = _campaign_fixture()
    doc["analytics"] = {"devices": []}
    expect_fail("campaign analytics without devices", doc)

    expect_ok("valid explain report", _explain_fixture())

    doc = _explain_fixture()
    doc["report"]["devices"] = 7
    expect_fail("explain report device count mismatch", doc)

    doc = _explain_fixture()
    del doc["build"]
    expect_fail("explain report without build block", doc)

    doc = _crash_fixture()
    doc["lineage"][1]["depth"] = 0
    expect_fail("crash lineage depths not increasing", doc)

    doc = _crash_fixture()
    doc["lineage"][0]["origin"] = "teleported"
    expect_fail("crash lineage with unknown origin", doc)

    expect_ok("valid lint report", _lint_fixture())

    doc = _lint_fixture()
    doc["lint"]["files"][0]["findings"][0]["pass"] = "bad-pass"
    expect_fail("unknown lint pass name", doc)

    doc = _lint_fixture()
    doc["lint"]["summary"]["findings"] = 9
    expect_fail("lint summary inconsistent with findings", doc)

    doc = _lint_fixture()
    doc["lint"]["plans"][0]["plans"][2] = {"state": 2, "name": "alerting",
                                           "reachable": False, "calls": 2}
    expect_fail("unreachable state carrying a plan", doc)

    doc = _lint_fixture()
    doc["lint"]["plans"][0]["plans"].pop()
    expect_fail("lint plans missing a state entry", doc)

    doc = _lint_fixture()
    doc["lint"]["files"][0]["dataflow"]["stale_uses"] = -1
    expect_fail("lint dataflow with negative stale_uses", doc)

    doc = _lint_fixture()
    del doc["lint"]["files"][0]["dataflow"]["lifetimes"]
    expect_fail("lint dataflow missing lifetimes", doc)

    doc = _bench_fixture()
    doc["series"][0]["distill"] = _distill_stats(dry_run=True)
    expect_ok("bench series with distill stats", doc)

    doc = _bench_fixture()
    doc["series"][0]["distill"] = _distill_stats(dry_run=True)
    doc["series"][0]["distill"]["dropped_static"] = 4
    expect_fail("distill counts not summing to before", doc)

    doc = _bench_fixture()
    doc["series"][0]["distill"] = _distill_stats(dry_run=True)
    doc["series"][0]["distill"]["fraction_dropped"] = 0.25
    expect_fail("distill fraction inconsistent with counts", doc)

    doc = _bench_fixture()
    doc["series"][0]["distill"] = _distill_stats(dry_run=True)
    doc["series"][0]["distill"]["footprint_union"] = 0
    expect_fail("verified distill with empty footprint union", doc)

    doc = _bench_fixture()
    doc["series"][0]["distill"] = _distill_stats()
    expect_fail("bench distill stats without dry_run flag", doc)

    expect_ok("valid distill report", _distill_fixture())

    doc = _distill_fixture()
    doc["distill"]["devices"][0]["verified"] = False
    expect_fail("distill report breaking the replay contract", doc)

    doc = _distill_fixture()
    doc["distill"]["devices"] = []
    expect_fail("distill report without devices", doc)

    doc = _distill_fixture()
    doc["distill"]["tool"] = "df_lint"
    expect_fail("distill report from the wrong tool", doc)

    expect_fail("unknown shape", {"something": 1})

    failures = 0
    for name, doc, want_ok in cases:
        try:
            check_document(doc)
            got_ok = True
        except CheckError:
            got_ok = False
        status = "ok" if got_ok == want_ok else "FAIL"
        if got_ok != want_ok:
            failures += 1
        print(f"  [{status}] {name}")

    a, b = _bench_fixture(), _bench_fixture()
    b["timing"]["wall_seconds"] = 99.0
    b["series"][0]["timing"]["secs"] = [0.0, 123.0]
    b["metrics"]["histograms"][0]["sum_ns"] = 12345
    if strip_timing(a) != strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must erase wall-clock differences")
    else:
        print("  [ok] strip_timing erases wall-clock differences")
    b["series"][0]["kernel_coverage"] = [0, 41]
    if strip_timing(a) == strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must preserve content differences")
    else:
        print("  [ok] strip_timing preserves content differences")

    a, b = _chrome_fixture(), _chrome_fixture()
    for ev in b["traceEvents"]:
        if ev["ph"] == "X":
            ev["ts"] += 1000
            ev["dur"] += 7
    if strip_timing(a) != strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must erase chrome ts/dur differences")
    else:
        print("  [ok] strip_timing erases chrome ts/dur differences")
    b["traceEvents"][3]["name"] = "other"
    if strip_timing(a) == strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must preserve span-name differences")
    else:
        print("  [ok] strip_timing preserves span-name differences")

    print(f"self-test: {'PASS' if failures == 0 else 'FAIL'}")
    return failures == 0


def main(argv):
    if len(argv) >= 1 and argv[0] == "--self-test":
        return 0 if self_test() else 1
    if len(argv) >= 1 and argv[0] == "--compare":
        if len(argv) != 3:
            print("usage: check_bench_json.py --compare A B")
            return 2
        return 0 if compare_files(argv[1], argv[2]) else 1
    if not argv:
        print(__doc__)
        return 2
    ok = all([validate_file(p) for p in argv])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
