#!/usr/bin/env python3
"""Validate DroidFuzz telemetry JSON and compare runs for determinism.

Two document shapes are understood:

  BENCH_*.json           (written by the bench binaries via write_bench_json)
      {"bench": ..., "seed": ..., "reps": ..., "series": [...],
       "metrics": {...}, ..., "timing": {...}}

  campaign stats export  (written by examples via --stats-json)
      {"campaign": {...}, "stats": {...}, "metrics": {...}, "events": [...]}

Usage:
  check_bench_json.py FILE...            validate each document
  check_bench_json.py --compare A B      validate, then require A == B after
                                         stripping wall-clock fields
  check_bench_json.py --self-test        run the built-in unit checks

Determinism contract (DESIGN.md "Observability"): everything wall-dependent
lives under keys named "timing", "wall_seconds", "secs", or ending in "_ns"
or "_per_sec". Stripping those keys must make two identically-seeded runs
byte-identical.
"""

import json
import sys

TIMING_KEYS = {"timing", "wall_seconds", "secs"}
TIMING_SUFFIXES = ("_ns", "_per_sec")

SERIES_ARRAYS = ("executions", "kernel_coverage", "total_coverage",
                 "corpus", "bugs")
STATS_ARRAYS = SERIES_ARRAYS[:2] + ("total_coverage", "corpus", "bugs",
                                    "relation_edges", "reboots")


def is_timing_key(key):
    return key in TIMING_KEYS or key.endswith(TIMING_SUFFIXES)


def strip_timing(doc):
    """Recursively drop wall-clock fields; returns a new structure."""
    if isinstance(doc, dict):
        return {k: strip_timing(v) for k, v in doc.items()
                if not is_timing_key(k)}
    if isinstance(doc, list):
        return [strip_timing(v) for v in doc]
    return doc


class CheckError(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise CheckError(msg)


def check_monotone(name, values):
    require(all(b >= a for a, b in zip(values, values[1:])),
            f"{name} must be non-decreasing, got {values}")


def check_series_entry(i, entry):
    where = f"series[{i}]"
    require(isinstance(entry, dict), f"{where} must be an object")
    for key in ("device", "config"):
        require(isinstance(entry.get(key), str) and entry[key],
                f"{where}.{key} must be a non-empty string")
    lengths = set()
    for key in SERIES_ARRAYS:
        arr = entry.get(key)
        require(isinstance(arr, list) and arr,
                f"{where}.{key} must be a non-empty array")
        require(all(isinstance(v, int) and v >= 0 for v in arr),
                f"{where}.{key} must hold non-negative integers")
        lengths.add(len(arr))
    require(len(lengths) == 1,
            f"{where}: all series arrays must share one length, got {lengths}")
    for key in ("executions", "kernel_coverage", "total_coverage", "bugs"):
        check_monotone(f"{where}.{key}", entry[key])


def check_metrics(metrics, where="metrics"):
    require(isinstance(metrics, dict), f"{where} must be an object")
    for section in ("counters", "gauges", "histograms"):
        require(isinstance(metrics.get(section), list),
                f"{where}.{section} must be an array")
    for i, c in enumerate(metrics["counters"]):
        require(isinstance(c.get("name"), str) and c["name"],
                f"{where}.counters[{i}].name must be a non-empty string")
        require(isinstance(c.get("value"), int) and c["value"] >= 0,
                f"{where}.counters[{i}].value must be a non-negative int")
    for i, h in enumerate(metrics["histograms"]):
        require(isinstance(h.get("name"), str) and h["name"],
                f"{where}.histograms[{i}].name must be a non-empty string")
        require(isinstance(h.get("count"), int) and h["count"] >= 0,
                f"{where}.histograms[{i}].count must be a non-negative int")
        for key in h:
            if key in ("name", "label", "count"):
                continue
            require(is_timing_key(key),
                    f"{where}.histograms[{i}].{key}: wall-dependent "
                    f"histogram fields must be *_ns")


def check_stats(stats, where="stats"):
    require(isinstance(stats, dict), f"{where} must be an object")
    require(isinstance(stats.get("sample_every"), int)
            and stats["sample_every"] > 0,
            f"{where}.sample_every must be a positive int")
    devices = stats.get("devices")
    require(isinstance(devices, list) and devices,
            f"{where}.devices must be a non-empty array")
    for i, dev in enumerate(devices):
        dwhere = f"{where}.devices[{i}]"
        require(isinstance(dev.get("device"), str) and dev["device"],
                f"{dwhere}.device must be a non-empty string")
        lengths = set()
        for key in STATS_ARRAYS:
            arr = dev.get(key)
            require(isinstance(arr, list),
                    f"{dwhere}.{key} must be an array")
            lengths.add(len(arr))
        require(len(lengths) == 1,
                f"{dwhere}: array length mismatch {lengths}")
        check_monotone(f"{dwhere}.executions", dev["executions"])
    agg = stats.get("aggregate")
    require(isinstance(agg, dict), f"{where}.aggregate must be an object")
    n = min(len(d["executions"]) for d in devices)
    require(len(agg.get("executions", [])) == n,
            f"{where}.aggregate.executions must have {n} points "
            f"(shortest device series)")
    for i in range(n):
        want = sum(d["executions"][i] for d in devices)
        require(agg["executions"][i] == want,
                f"{where}.aggregate.executions[{i}] = "
                f"{agg['executions'][i]}, expected sum {want}")


def check_events(events, where="events"):
    require(isinstance(events, list), f"{where} must be an array")
    for i, ev in enumerate(events):
        require(isinstance(ev, dict), f"{where}[{i}] must be an object")
        require(isinstance(ev.get("event"), str) and ev["event"],
                f"{where}[{i}].event must be a non-empty string")
        require(isinstance(ev.get("exec"), int) and ev["exec"] >= 0,
                f"{where}[{i}].exec must be a non-negative int")


def check_bench_doc(doc):
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    require(isinstance(doc.get("seed"), int), "seed must be an int")
    require(isinstance(doc.get("reps"), int) and doc["reps"] > 0,
            "reps must be a positive int")
    series = doc.get("series")
    require(isinstance(series, list) and series,
            "series must be a non-empty array")
    for i, entry in enumerate(series):
        check_series_entry(i, entry)
    if "metrics" in doc:
        check_metrics(doc["metrics"])
    timing = doc.get("timing")
    require(isinstance(timing, dict)
            and isinstance(timing.get("wall_seconds"), (int, float)),
            "timing.wall_seconds must be a number")


def check_campaign_doc(doc):
    campaign = doc.get("campaign")
    require(isinstance(campaign, dict), "campaign must be an object")
    require(isinstance(campaign.get("example"), str) and campaign["example"],
            "campaign.example must be a non-empty string")
    require(isinstance(campaign.get("seed"), int),
            "campaign.seed must be an int")
    check_stats(doc.get("stats"))
    if "metrics" in doc:
        check_metrics(doc["metrics"])
    if "events" in doc:
        check_events(doc["events"])


def check_document(doc):
    if "bench" in doc:
        check_bench_doc(doc)
    elif "campaign" in doc:
        check_campaign_doc(doc)
    else:
        raise CheckError("unknown document: expected a 'bench' or "
                         "'campaign' top-level key")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate_file(path):
    try:
        doc = load(path)
        check_document(doc)
    except (OSError, json.JSONDecodeError, CheckError) as e:
        print(f"FAIL {path}: {e}")
        return False
    print(f"OK   {path}")
    return True


def compare_files(path_a, path_b):
    if not (validate_file(path_a) and validate_file(path_b)):
        return False
    a = strip_timing(load(path_a))
    b = strip_timing(load(path_b))
    if a != b:
        print(f"FAIL {path_a} vs {path_b}: documents differ after "
              f"stripping timing fields")
        return False
    print(f"OK   {path_a} == {path_b} (modulo timing)")
    return True


# --- self-test ---------------------------------------------------------------

def _bench_fixture():
    return {
        "bench": "fig4_coverage", "seed": 1, "reps": 1,
        "series": [{
            "device": "A1", "config": "droidfuzz", "rep": 0,
            "executions": [0, 100], "kernel_coverage": [0, 40],
            "total_coverage": [0, 50], "corpus": [0, 4], "bugs": [0, 1],
            "timing": {"secs": [0.0, 0.5]},
        }],
        "metrics": {
            "counters": [{"name": "engine.executions", "label": "A1",
                          "value": 100}],
            "gauges": [],
            "histograms": [{"name": "phase.execute", "label": "A1",
                            "count": 100, "sum_ns": 5, "p50_ns": 1}],
        },
        "timing": {"wall_seconds": 0.5},
    }


def _campaign_fixture():
    return {
        "campaign": {"example": "fleet_campaign", "seed": 3},
        "stats": {
            "sample_every": 512,
            "devices": [{
                "device": "A1",
                "executions": [0, 512], "kernel_coverage": [0, 10],
                "total_coverage": [0, 12], "corpus": [0, 2], "bugs": [0, 0],
                "relation_edges": [0, 3], "reboots": [0, 0],
            }],
            "aggregate": {"executions": [0, 512], "kernel_coverage": [0, 10],
                          "total_coverage": [0, 12], "corpus": [0, 2],
                          "bugs": [0, 0], "reboots": [0, 0]},
        },
        "events": [{"event": "bug", "device": "A1", "exec": 40}],
    }


def self_test():
    cases = []

    def expect_ok(name, doc):
        cases.append((name, doc, True))

    def expect_fail(name, doc):
        cases.append((name, doc, False))

    expect_ok("valid bench doc", _bench_fixture())
    expect_ok("valid campaign doc", _campaign_fixture())

    doc = _bench_fixture()
    del doc["series"][0]["kernel_coverage"]
    expect_fail("missing series array", doc)

    doc = _bench_fixture()
    doc["series"][0]["executions"] = [100, 0]
    expect_fail("non-monotone executions", doc)

    doc = _bench_fixture()
    doc["series"][0]["corpus"] = [0]
    expect_fail("array length mismatch", doc)

    doc = _bench_fixture()
    doc["metrics"]["histograms"][0]["p50"] = 7
    expect_fail("histogram wall field without _ns suffix", doc)

    doc = _campaign_fixture()
    doc["stats"]["aggregate"]["executions"] = [0, 999]
    expect_fail("aggregate not the device sum", doc)

    expect_fail("unknown shape", {"something": 1})

    failures = 0
    for name, doc, want_ok in cases:
        try:
            check_document(doc)
            got_ok = True
        except CheckError:
            got_ok = False
        status = "ok" if got_ok == want_ok else "FAIL"
        if got_ok != want_ok:
            failures += 1
        print(f"  [{status}] {name}")

    a, b = _bench_fixture(), _bench_fixture()
    b["timing"]["wall_seconds"] = 99.0
    b["series"][0]["timing"]["secs"] = [0.0, 123.0]
    b["metrics"]["histograms"][0]["sum_ns"] = 12345
    if strip_timing(a) != strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must erase wall-clock differences")
    else:
        print("  [ok] strip_timing erases wall-clock differences")
    b["series"][0]["kernel_coverage"] = [0, 41]
    if strip_timing(a) == strip_timing(b):
        failures += 1
        print("  [FAIL] strip_timing must preserve content differences")
    else:
        print("  [ok] strip_timing preserves content differences")

    print(f"self-test: {'PASS' if failures == 0 else 'FAIL'}")
    return failures == 0


def main(argv):
    if len(argv) >= 1 and argv[0] == "--self-test":
        return 0 if self_test() else 1
    if len(argv) >= 1 and argv[0] == "--compare":
        if len(argv) != 3:
            print("usage: check_bench_json.py --compare A B")
            return 2
        return 0 if compare_files(argv[1], argv[2]) else 1
    if not argv:
        print(__doc__)
        return 2
    ok = all([validate_file(p) for p in argv])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
