#!/usr/bin/env bash
# clang-tidy over the static-analysis and DSL layers (the .clang-tidy
# profile at the repo root: bugprone-*, performance-*, readability-container
# checks, warnings-as-errors).
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# Needs a configured build dir for compile_commands.json (the top-level
# CMakeLists exports it unconditionally). Exits 0 when clang-tidy is not
# installed so the optional ctest never hard-fails on lean toolchains.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no $build_dir/compile_commands.json — configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 2
fi

mapfile -t sources < <(ls src/analysis/*.cc src/dsl/*.cc)
echo "clang-tidy over ${#sources[@]} files (src/analysis, src/dsl)"
clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "clang-tidy clean"
