#!/usr/bin/env bash
# clang-tidy over the static-analysis and DSL layers (the .clang-tidy
# profile at the repo root: bugprone-*, performance-*, readability-container
# checks, warnings-as-errors).
#
#   scripts/run_clang_tidy.sh [build-dir]              # src/analysis + src/dsl
#   scripts/run_clang_tidy.sh [build-dir] --changed [base-ref]
#
# --changed lints only the in-repo .cc files touched since base-ref
# (default: origin/main, falling back to HEAD~1) — the mode the CI lint job
# uses so a PR pays for its own diff, not the whole tree.
#
# Needs a configured build dir for compile_commands.json (the top-level
# CMakeLists exports it unconditionally). Exits 0 when clang-tidy is not
# installed so the optional ctest never hard-fails on lean toolchains.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
mode="${2:-}"
base_ref="${3:-}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping"
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no $build_dir/compile_commands.json — configure first:" >&2
  echo "  cmake -B $build_dir -S ." >&2
  exit 2
fi

if [ "$mode" = "--changed" ]; then
  if [ -z "$base_ref" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      base_ref=origin/main
    else
      base_ref=HEAD~1
    fi
  fi
  # Only files clang-tidy has compile commands for: sources under src/.
  mapfile -t sources < <(git diff --name-only --diff-filter=d \
                           "$base_ref"...HEAD -- 'src/*.cc' || true)
  if [ ${#sources[@]} -eq 0 ]; then
    echo "clang-tidy: no changed src/*.cc files vs $base_ref"
    exit 0
  fi
  echo "clang-tidy over ${#sources[@]} changed files (vs $base_ref)"
else
  mapfile -t sources < <(ls src/analysis/*.cc src/dsl/*.cc)
  echo "clang-tidy over ${#sources[@]} files (src/analysis, src/dsl)"
fi

clang-tidy -p "$build_dir" --quiet "${sources[@]}"
echo "clang-tidy clean"
