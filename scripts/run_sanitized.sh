#!/usr/bin/env bash
# Build and run the full test suite under each sanitizer.
#
#   scripts/run_sanitized.sh [address|undefined]...
#
# With no arguments both sanitizers run in sequence. Each sanitizer gets its
# own build tree (build-asan / build-ubsan) so the instrumented objects never
# mix with the regular build/ directory.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    *)
      echo "unknown sanitizer '$san' (want: address, undefined)" >&2
      exit 2
      ;;
  esac
  echo "== $san sanitizer ($dir) =="
  cmake -B "$dir" -S . -DDF_SANITIZE="$san" -DDF_WERROR=ON >/dev/null
  cmake --build "$dir" -j "$(nproc)"
  # halt_on_error makes UBSan findings fail the test run instead of logging.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir "$dir" --output-on-failure
done
