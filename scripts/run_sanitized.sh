#!/usr/bin/env bash
# Build and run the full test suite under each sanitizer.
#
#   scripts/run_sanitized.sh [address|undefined|thread]...
#
# With no arguments address and undefined run in sequence (thread is opt-in:
# TSan instrumented binaries are ~5-10x slower, so the race gate for the
# parallel fleet executor is requested explicitly). Each sanitizer gets its
# own build tree (build-asan / build-ubsan / build-tsan) so the instrumented
# objects never mix with the regular build/ directory.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

# Optional compiler launcher (CI sets DF_CMAKE_LAUNCHER=ccache so the
# instrumented rebuilds hit the per-sanitizer cache); empty means none.
launcher_args=()
if [ -n "${DF_CMAKE_LAUNCHER:-}" ]; then
  launcher_args=(
    -DCMAKE_C_COMPILER_LAUNCHER="$DF_CMAKE_LAUNCHER"
    -DCMAKE_CXX_COMPILER_LAUNCHER="$DF_CMAKE_LAUNCHER"
  )
fi

for san in "${sanitizers[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread) dir=build-tsan ;;
    *)
      echo "unknown sanitizer '$san' (want: address, undefined, thread)" >&2
      exit 2
      ;;
  esac
  echo "== $san sanitizer ($dir) =="
  cmake -B "$dir" -S . -DDF_SANITIZE="$san" -DDF_WERROR=ON \
    "${launcher_args[@]}" >/dev/null
  cmake --build "$dir" -j "$(nproc)"
  # halt_on_error makes sanitizer findings fail the test run instead of
  # logging; any TSan race report aborts the parallel daemon tests.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
  TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
    ctest --test-dir "$dir" --output-on-failure
done
