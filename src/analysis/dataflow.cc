#include "analysis/dataflow.h"

#include <algorithm>

#include "kernel/driver.h"

namespace df::analysis {

using dsl::ArgKind;
using dsl::CallDesc;
using dsl::ParamDesc;
using dsl::Program;
using dsl::Value;

std::string_view lifetime_name(Lifetime l) {
  switch (l) {
    case Lifetime::kLive:
      return "live";
    case Lifetime::kClosed:
      return "closed";
    case Lifetime::kLeaked:
      return "leaked";
    case Lifetime::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string_view arg_class_name(ArgClass c) {
  switch (c) {
    case ArgClass::kGuardRelevant:
      return "guard";
    case ArgClass::kShapeRelevant:
      return "shape";
    case ArgClass::kDead:
      return "dead";
  }
  return "?";
}

size_t destroyed_arg(const CallDesc& d) {
  for (size_t a = 0; a < d.params.size(); ++a) {
    if (d.params[a].kind == ArgKind::kHandle &&
        d.params[a].handle_type == d.destroys) {
      return a;
    }
  }
  return kNoIndex;
}

ProgramDataflow::ProgramDataflow(const Program& prog) {
  const size_t n = prog.calls.size();
  def_index_.assign(n, -1);
  uses_.resize(n);
  // closed_site[j]: the call index that destroyed producer j, or kNoIndex.
  std::vector<size_t> closed_site(n, kNoIndex);

  for (size_t i = 0; i < n; ++i) {
    const dsl::Call& c = prog.calls[i];
    const CallDesc* d = c.desc;
    if (d != nullptr && !d->produces.empty()) {
      def_index_[i] = static_cast<int32_t>(defs_.size());
      DefInfo info;
      info.call = i;
      info.type = d->produces;
      defs_.push_back(std::move(info));
    }
    if (d == nullptr || c.args.size() != d->params.size()) {
      continue;  // arity rot: no per-arg facts (lint rejects the call whole)
    }
    uses_[i].resize(c.args.size());

    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = d->params[a];
      if (p.kind != ArgKind::kHandle) continue;
      UseFact& u = uses_[i][a];
      u.is_handle = true;
      const Value& v = c.args[a];
      if (v.ref == Value::kNoRef) {
        u.unresolved = true;
        continue;
      }
      const auto ref = static_cast<size_t>(v.ref);
      const CallDesc* producer =
          v.ref >= 0 && ref < n ? prog.calls[ref].desc : nullptr;
      u.structural_ok = v.ref >= 0 && ref < i && producer != nullptr &&
                        producer->produces == p.handle_type;
      if (!u.structural_ok) continue;
      u.def = ref;
      DefInfo& def = defs_[static_cast<size_t>(def_index_[ref])];
      if (closed_site[ref] != kNoIndex) {
        u.after_close = true;
        u.close_site = closed_site[ref];
        u.second_destroy = !d->destroys.empty() && destroyed_arg(*d) == a;
        def.stale_uses.push_back(i);
        ++stale_uses_;
      } else {
        def.uses.push_back(i);
      }
    }

    // Record the destroy *after* the call's own args, so closing a live
    // resource reads as a legal (final) use of it.
    if (!d->destroys.empty()) {
      const size_t a = destroyed_arg(*d);
      if (a != kNoIndex && a < c.args.size()) {
        const int32_t ref = c.args[a].ref;
        if (ref >= 0 && static_cast<size_t>(ref) < n &&
            closed_site[static_cast<size_t>(ref)] == kNoIndex) {
          closed_site[static_cast<size_t>(ref)] = i;
          if (def_index_[static_cast<size_t>(ref)] >= 0) {
            defs_[static_cast<size_t>(def_index_[static_cast<size_t>(ref)])]
                .destroyed_at = i;
          }
        }
      }
    }
  }

  for (DefInfo& def : defs_) {
    if (prog.calls[def.call].desc == nullptr) {
      def.end_state = Lifetime::kUnknown;
    } else if (def.destroyed_at != kNoIndex) {
      def.end_state = Lifetime::kClosed;
    } else if (!def.uses.empty() || !def.stale_uses.empty()) {
      def.end_state = Lifetime::kLive;
    } else {
      def.end_state = Lifetime::kLeaked;
    }
  }
}

const DefInfo* ProgramDataflow::def(size_t call) const {
  if (call >= def_index_.size() || def_index_[call] < 0) return nullptr;
  return &defs_[static_cast<size_t>(def_index_[call])];
}

const UseFact& ProgramDataflow::use(size_t call, size_t arg) const {
  static const UseFact kEmpty;
  if (call >= uses_.size() || arg >= uses_[call].size()) return kEmpty;
  return uses_[call][arg];
}

ScalarFact ProgramDataflow::scalar_fact(const CallDesc& d, size_t arg) {
  if (arg >= d.params.size()) return ScalarFact::kFree;
  const ParamDesc& p = d.params[arg];
  if (p.kind == ArgKind::kHandle) return ScalarFact::kResultDerived;
  switch (p.kind) {
    case ArgKind::kU8:
    case ArgKind::kU16:
    case ArgKind::kU32:
    case ArgKind::kU64:
      return p.min == p.max ? ScalarFact::kConstant : ScalarFact::kFree;
    case ArgKind::kEnum:
    case ArgKind::kFlags:
      return p.choices.size() == 1 ? ScalarFact::kConstant : ScalarFact::kFree;
    default:
      return ScalarFact::kFree;
  }
}

void GuardIndex::add_driver(const kernel::Driver& drv) {
  for (const kernel::DeclaredTransition& t : drv.declared_transitions()) {
    for (const kernel::PlanCall& step : t.steps) {
      for (const kernel::TransitionHint& hint : step.hints) {
        auto& values = index_[{step.call, hint.param}];
        if (std::find(values.begin(), values.end(), hint.value) ==
            values.end()) {
          values.push_back(hint.value);
        }
      }
    }
  }
  for (auto& [key, values] : index_) std::sort(values.begin(), values.end());
}

bool GuardIndex::guard_relevant(std::string_view call,
                                std::string_view param) const {
  return index_.find({std::string(call), std::string(param)}) != index_.end();
}

const std::vector<uint64_t>& GuardIndex::hint_values(
    std::string_view call, std::string_view param) const {
  static const std::vector<uint64_t> kEmpty;
  const auto it = index_.find({std::string(call), std::string(param)});
  return it != index_.end() ? it->second : kEmpty;
}

ArgClass GuardIndex::classify_arg(const CallDesc& d, size_t arg) const {
  if (arg >= d.params.size()) return ArgClass::kDead;
  const ParamDesc& p = d.params[arg];
  if (ProgramDataflow::scalar_fact(d, arg) == ScalarFact::kConstant) {
    return ArgClass::kDead;  // nothing to vary
  }
  if (guard_relevant(d.name, p.name)) return ArgClass::kGuardRelevant;
  if (p.kind == ArgKind::kHandle || p.kind == ArgKind::kString ||
      p.kind == ArgKind::kBlob || p.slot == dsl::Slot::kSize ||
      p.slot == dsl::Slot::kFd) {
    return ArgClass::kShapeRelevant;
  }
  return ArgClass::kDead;
}

}  // namespace df::analysis
