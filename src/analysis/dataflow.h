// Forward dataflow analysis over DSL programs.
//
// ProgramDataflow runs one forward pass over a dsl::Program and computes
// the per-call facts every other analysis in this directory consumes:
//  * def-use chains — for each producing call, every later call that
//    references its result (split into pre-close and stale uses),
//  * a handle-lifetime lattice — each produced resource ends the program
//    live (never destroyed but consumed), closed (a CallDesc::destroys call
//    consumed it), leaked (produced, never destroyed, never consumed), or
//    unknown (structural rot: missing description or unresolvable ref),
//  * scalar-argument facts — constant (the description admits exactly one
//    value), result-derived (the value is an earlier call's result, i.e. a
//    handle ref), or free.
//
// GuardIndex joins those facts against the drivers' statically declared
// transition guards (kernel::Driver::declared_transitions()): an argument
// is *guard-relevant* when some declared transition pins that exact
// (call, param) to a hint value — mutating it can flip a protocol-state
// guard. classify_arg() folds everything into the three-way split the
// mutator biases on: guard-relevant, shape-relevant, or dead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dsl/prog.h"

namespace df::kernel {
class Driver;
}

namespace df::analysis {

// End-of-program lattice value for a produced resource.
enum class Lifetime {
  kLive,     // produced, consumed, never destroyed
  kClosed,   // a destroying call consumed it
  kLeaked,   // produced but neither destroyed nor consumed
  kUnknown,  // structural rot (no description / invalid producer ref)
};

enum class ScalarFact {
  kConstant,       // the description admits exactly one value
  kResultDerived,  // the value is an earlier call's result (a handle ref)
  kFree,           // anything the mutator may choose
};

enum class ArgClass {
  kGuardRelevant,  // pinned by a declared transition guard
  kShapeRelevant,  // handles, buffers, sizes: controls program shape
  kDead,           // constant or guard-free scalar padding
};

std::string_view lifetime_name(Lifetime l);
std::string_view arg_class_name(ArgClass c);

// The argument index whose handle a call destroys: the first handle param
// of the declared `destroys` type, or kNoIndex when the call destroys
// nothing it takes as an argument.
inline constexpr size_t kNoIndex = static_cast<size_t>(-1);
size_t destroyed_arg(const dsl::CallDesc& d);

// Per-producing-call def record.
struct DefInfo {
  size_t call = kNoIndex;        // producing call index
  std::string type;              // produced resource type
  std::vector<size_t> uses;      // pre-close consumers (incl. the destroy)
  std::vector<size_t> stale_uses;  // consumers after the destroy
  size_t destroyed_at = kNoIndex;  // destroying call index, or kNoIndex
  Lifetime end_state = Lifetime::kUnknown;
};

// Per-(call, arg) handle-use record.
struct UseFact {
  bool is_handle = false;
  bool unresolved = false;   // ref == kNoRef
  bool structural_ok = false;  // earlier producer of the right type
  size_t def = kNoIndex;     // producing call index when structural_ok
  bool after_close = false;  // the def was destroyed before this use
  size_t close_site = kNoIndex;  // destroying call index when after_close
  bool second_destroy = false;   // this use is itself another destroy
};

class ProgramDataflow {
 public:
  explicit ProgramDataflow(const dsl::Program& prog);

  size_t size() const { return uses_.size(); }
  // Def record for call `i`, or nullptr when call `i` produces nothing.
  const DefInfo* def(size_t call) const;
  // Use record for (call, arg); zero-value UseFact for non-handle args.
  const UseFact& use(size_t call, size_t arg) const;
  // All defs, in producing-call order.
  const std::vector<DefInfo>& defs() const { return defs_; }
  // Total stale (after-close) uses in the program.
  size_t stale_use_count() const { return stale_uses_; }

  // Scalar fact for (call, arg) of `prog` (stateless: derived from the
  // description and arg kind alone, so it needs no stored state).
  static ScalarFact scalar_fact(const dsl::CallDesc& d, size_t arg);

 private:
  std::vector<DefInfo> defs_;           // dense, producing calls only
  std::vector<int32_t> def_index_;      // call -> index into defs_, or -1
  std::vector<std::vector<UseFact>> uses_;  // [call][arg]
  size_t stale_uses_ = 0;
};

// Index of statically declared transition guards across a device's
// drivers: (call name, param name) -> the pinned hint values. Built once
// per engine at setup; lookups are cold-path (mutation bias and reports).
class GuardIndex {
 public:
  void add_driver(const kernel::Driver& drv);

  bool empty() const { return index_.empty(); }
  size_t size() const { return index_.size(); }

  // True when some declared transition pins (call, param).
  bool guard_relevant(std::string_view call, std::string_view param) const;
  // The pinned values for (call, param), ascending; empty when none.
  const std::vector<uint64_t>& hint_values(std::string_view call,
                                           std::string_view param) const;

  // Folds dataflow + guard facts into the mutator-facing classification.
  ArgClass classify_arg(const dsl::CallDesc& d, size_t arg) const;

 private:
  std::map<std::pair<std::string, std::string>, std::vector<uint64_t>> index_;
};

}  // namespace df::analysis
