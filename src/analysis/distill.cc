#include "analysis/distill.h"

#include <algorithm>

#include "util/hash.h"

namespace df::analysis {

using dsl::Call;
using dsl::Program;
using dsl::Value;

size_t canonicalize(Program& prog) {
  size_t elided = 0;
  // Fixpoint: dropping a dead consumer can orphan the producer it was the
  // only reference to.
  for (;;) {
    const size_t n = prog.calls.size();
    std::vector<bool> referenced(n, false);
    for (const Call& c : prog.calls) {
      for (const Value& v : c.args) {
        if (v.ref >= 0 && static_cast<size_t>(v.ref) < n) {
          referenced[static_cast<size_t>(v.ref)] = true;
        }
      }
    }
    std::vector<bool> drop(n, false);
    size_t dropped = 0;
    for (size_t i = 0; i < n; ++i) {
      const Call& c = prog.calls[i];
      // Dead: produces a resource nothing references, destroys nothing.
      // Calls without a produced resource are kept — they have effects.
      if (c.desc != nullptr && !c.desc->produces.empty() &&
          c.desc->destroys.empty() && !referenced[i]) {
        drop[i] = true;
        ++dropped;
      }
    }
    if (dropped == 0) break;
    prog.remove_calls(drop);
    elided += dropped;
  }
  return elided;
}

std::vector<uint64_t> static_footprint(const Program& prog) {
  Program canon = prog;
  canonicalize(canon);
  std::vector<uint64_t> tokens;
  tokens.reserve(canon.calls.size() * 2);
  uint64_t prev = 0;
  for (size_t i = 0; i < canon.calls.size(); ++i) {
    const uint64_t name =
        util::fnv1a(canon.calls[i].desc ? canon.calls[i].desc->name : "?");
    tokens.push_back(name);
    if (i > 0) tokens.push_back(util::hash_combine(prev, name));
    prev = name;
  }
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

bool subsumes(const std::vector<uint64_t>& small,
              const std::vector<uint64_t>& big) {
  // Two-pointer merge over sorted multisets.
  size_t j = 0;
  for (const uint64_t t : small) {
    while (j < big.size() && big[j] < t) ++j;
    if (j >= big.size() || big[j] != t) return false;
    ++j;
  }
  return true;
}

}  // namespace df::analysis
