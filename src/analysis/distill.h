// Program canonicalization and semantic subsumption for corpus distillation.
//
// canonicalize() rewrites a program into a stable normal form: dead calls
// (producers whose result nothing consumes and that destroy nothing) are
// elided to a fixpoint, and the surviving handle refs are renumbered by the
// deterministic bulk-removal remapping (dsl::Program::remove_calls). On a
// program with no dead producers it is the identity, so canonical forms are
// structural-hash stable.
//
// static_footprint() abstracts a canonical program into a sorted multiset
// of call and adjacent-pair tokens; subsumes(A, B) is multiset inclusion —
// canon(A) ⊑ canon(B) when every call and call-pair of A also appears in B
// at least as often. This is the static half of Corpus::distill()'s
// subsumption rule; the dynamic half (replayed coverage footprints) is the
// Engine's job because only it owns an executor.
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/prog.h"

namespace df::analysis {

// Dead-call elision + ref renumbering, in place. Returns calls elided.
// Identity (returns 0, program bit-unchanged) when nothing is dead.
size_t canonicalize(dsl::Program& prog);

// Sorted token multiset of canon(prog): one token per call name, one per
// adjacent call pair. Canonicalizes a copy; `prog` is not modified.
std::vector<uint64_t> static_footprint(const dsl::Program& prog);

// Multiset inclusion over sorted token vectors: every token of `small`
// appears in `big` with at least the same multiplicity.
bool subsumes(const std::vector<uint64_t>& small,
              const std::vector<uint64_t>& big);

}  // namespace df::analysis
