#include "analysis/reachability.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

namespace df::analysis {

using dsl::ArgKind;
using dsl::CallDesc;
using dsl::ParamDesc;
using dsl::Value;
using kernel::DeclaredTransition;
using kernel::PlanCall;
using kernel::TransitionHint;

StateGraph graph_of(const kernel::Driver& d) {
  StateGraph g;
  g.driver = std::string(d.name());
  g.states = d.state_names();
  g.transitions = d.declared_transitions();
  return g;
}

ReachabilityPlanner::ReachabilityPlanner(StateGraph g) : graph_(std::move(g)) {
  const size_t n = graph_.states.size();
  plans_.resize(n);
  for (size_t s = 0; s < n; ++s) {
    plans_[s].state = s;
    plans_[s].state_name = graph_.states[s];
  }
  if (n == 0) return;

  // Uniform-cost search on total call count (edges can be multi-call
  // combos). State counts are tiny (<= 8), so Bellman-Ford-style
  // relaxation to a fixpoint is the simplest deterministic solver.
  constexpr size_t kInf = std::numeric_limits<size_t>::max();
  std::vector<size_t> dist(n, kInf);
  // best incoming edge index per state, for path reconstruction
  std::vector<size_t> via(n, kInf);
  dist[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t e = 0; e < graph_.transitions.size(); ++e) {
      const DeclaredTransition& t = graph_.transitions[e];
      if (t.from >= n || t.to >= n || dist[t.from] == kInf) continue;
      const size_t cand = dist[t.from] + std::max<size_t>(t.steps.size(), 1);
      if (cand < dist[t.to]) {
        dist[t.to] = cand;
        via[t.to] = e;
        changed = true;
      }
    }
  }

  for (size_t s = 0; s < n; ++s) {
    if (dist[s] == kInf) continue;
    plans_[s].reachable = true;
    // Walk predecessor edges back to state 0, then emit steps in order.
    std::vector<size_t> edges;
    size_t cur = s;
    while (cur != 0 && via[cur] != kInf) {
      edges.push_back(via[cur]);
      cur = graph_.transitions[via[cur]].from;
    }
    std::reverse(edges.begin(), edges.end());
    for (size_t e : edges) {
      const DeclaredTransition& t = graph_.transitions[e];
      plans_[s].steps.insert(plans_[s].steps.end(), t.steps.begin(),
                             t.steps.end());
    }
  }
}

std::vector<StatePlan> ReachabilityPlanner::unvisited(
    const std::vector<uint64_t>& visits) const {
  std::vector<StatePlan> out;
  for (const StatePlan& p : plans_) {
    const uint64_t v = p.state < visits.size() ? visits[p.state] : 0;
    if (v == 0) out.push_back(p);
  }
  return out;
}

namespace {

Value default_value(const ParamDesc& p) {
  Value v;
  switch (p.kind) {
    case ArgKind::kU8:
    case ArgKind::kU16:
    case ArgKind::kU32:
    case ArgKind::kU64:
      v.scalar = p.min;
      break;
    case ArgKind::kEnum:
      v.scalar = p.choices.empty() ? 0 : p.choices.front();
      break;
    case ArgKind::kFlags:
    case ArgKind::kBool:
      v.scalar = 0;
      break;
    case ArgKind::kString:
    case ArgKind::kBlob:
      break;  // empty
    case ArgKind::kHandle:
      v.ref = Value::kNoRef;
      break;
  }
  return v;
}

void apply_hint(const ParamDesc& p, const TransitionHint& h, Value& v) {
  if (p.kind == ArgKind::kString || p.kind == ArgKind::kBlob) {
    if (!h.bytes.empty()) {
      v.bytes = h.bytes;
    } else {
      v.bytes.assign(static_cast<size_t>(h.value), 0);
    }
  } else if (p.kind != ArgKind::kHandle) {
    v.scalar = h.value;
  }
}

// Deterministic producer choice for a handle type: prefer pure producers
// (no handle params of their own — socket/open over accept-style), then
// fewest params, then name. Returns nullptr when nothing produces `type`.
const CallDesc* pick_producer(const dsl::CallTable& table,
                              const std::string& type) {
  const auto consumes_handle = [](const CallDesc* d) {
    for (const ParamDesc& p : d->params) {
      if (p.kind == ArgKind::kHandle) return true;
    }
    return false;
  };
  const CallDesc* best = nullptr;
  for (const CallDesc* d : table.all()) {
    if (d->produces != type) continue;
    if (best == nullptr ||
        std::make_tuple(consumes_handle(d), d->params.size(),
                        std::string_view(d->name)) <
            std::make_tuple(consumes_handle(best), best->params.size(),
                            std::string_view(best->name))) {
      best = d;
    }
  }
  return best;
}

dsl::Call default_call(const CallDesc* d) {
  dsl::Call c;
  c.desc = d;
  c.args.reserve(d->params.size());
  for (const ParamDesc& p : d->params) c.args.push_back(default_value(p));
  return c;
}

}  // namespace

std::optional<dsl::Program> materialize_plan(const StatePlan& plan,
                                             const dsl::CallTable& table,
                                             std::string* err) {
  dsl::Program prog;
  // (handle type, plan instance) -> index of its producer call in prog.
  std::map<std::pair<std::string, size_t>, int32_t> producers;
  for (const PlanCall& step : plan.steps) {
    const CallDesc* d = table.find(step.call);
    if (d == nullptr) {
      if (err != nullptr) *err = "unknown call in plan: " + step.call;
      return std::nullopt;
    }
    dsl::Call c = default_call(d);
    bool leading = true;
    for (size_t a = 0; a < d->params.size(); ++a) {
      const ParamDesc& p = d->params[a];
      if (p.kind != ArgKind::kHandle) continue;
      if (leading) {
        // The step's subject resource: one shared producer per declared
        // instance, inserted on first use.
        leading = false;
        const auto key = std::make_pair(p.handle_type, step.instance);
        auto it = producers.find(key);
        if (it == producers.end()) {
          const CallDesc* prod = pick_producer(table, p.handle_type);
          if (prod != nullptr) {
            prog.calls.push_back(default_call(prod));
            it = producers
                     .emplace(key,
                              static_cast<int32_t>(prog.calls.size() - 1))
                     .first;
          }
        }
        if (it != producers.end()) c.args[a].ref = it->second;
      } else {
        // Secondary handles (kernel-id resources like a GPU context) bind
        // to the nearest prior in-program producer of their type.
        for (size_t j = prog.calls.size(); j-- > 0;) {
          if (prog.calls[j].desc != nullptr &&
              prog.calls[j].desc->produces == p.handle_type) {
            c.args[a].ref = static_cast<int32_t>(j);
            break;
          }
        }
      }
    }
    for (const TransitionHint& h : step.hints) {
      for (size_t a = 0; a < d->params.size(); ++a) {
        if (d->params[a].name == h.param) {
          apply_hint(d->params[a], h, c.args[a]);
          break;
        }
      }
    }
    prog.calls.push_back(std::move(c));
  }
  return prog;
}

}  // namespace df::analysis
