// Driver-state reachability planning.
//
// PR 2 gave every gated driver an observed state machine (visit counts and
// a transition matrix); this module consumes the *statically declared*
// counterpart (kernel::Driver::declared_transitions) and computes, without
// any execution, the shortest call sequence from the boot state to every
// protocol state. The engine uses the plans as seed-splice hints for states
// a campaign has never visited — the stateful-model-guided half of the
// paper's deep-state argument, versus pure model-free exploration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dsl/descr.h"
#include "dsl/prog.h"
#include "kernel/driver.h"

namespace df::analysis {

// A driver's declared graph, detached from the live driver object.
struct StateGraph {
  std::string driver;
  std::vector<std::string> states;
  std::vector<kernel::DeclaredTransition> transitions;

  bool empty() const { return transitions.empty(); }
};

StateGraph graph_of(const kernel::Driver& d);

// Shortest declared route from state 0 to `state`, flattened to the call
// sequence that takes it (multi-call edges contribute all their steps).
struct StatePlan {
  size_t state = 0;
  std::string state_name;
  bool reachable = false;
  std::vector<kernel::PlanCall> steps;
};

class ReachabilityPlanner {
 public:
  explicit ReachabilityPlanner(StateGraph g);

  const StateGraph& graph() const { return graph_; }
  // One plan per state, index == state id. State 0 is trivially reachable
  // with an empty plan; states with no declared route have reachable=false.
  const std::vector<StatePlan>& plans() const { return plans_; }

  // Diagnostics: plans for every state whose campaign visit count is zero
  // (visits indexed like state_names; shorter vectors count as zero).
  std::vector<StatePlan> unvisited(const std::vector<uint64_t>& visits) const;

 private:
  StateGraph graph_;
  std::vector<StatePlan> plans_;
};

// Instantiates a plan as an executable program against `table`: one call
// per step, scalar/blob params pinned by the transition hints, everything
// else at its minimal valid default. The leading handle arg of each step
// is bound to a deterministically chosen pure producer (open/socket)
// inserted once per PlanCall::instance, so multi-resource plans use
// distinct resources; later handle args bind to the nearest prior
// in-program producer of their type. Anything still unresolved is left
// for Generator::resolve_producers. Returns nullopt (with `err`) when a
// step names a call the table does not have (e.g. a HAL-only table).
std::optional<dsl::Program> materialize_plan(const StatePlan& plan,
                                             const dsl::CallTable& table,
                                             std::string* err = nullptr);

}  // namespace df::analysis
