#include "analysis/semantic.h"

#include <algorithm>
#include <cstdio>

namespace df::analysis {

namespace {

using dsl::ArgKind;
using dsl::CallDesc;
using dsl::ParamDesc;
using dsl::Program;
using dsl::Value;

uint64_t kind_width_mask(ArgKind k) {
  switch (k) {
    case ArgKind::kU8:
      return 0xffull;
    case ArgKind::kU16:
      return 0xffffull;
    case ArgKind::kU32:
      return 0xffffffffull;
    default:
      return ~0ull;
  }
}

const char* kind_label(ArgKind k) {
  switch (k) {
    case ArgKind::kU8:
      return "u8";
    case ArgKind::kU16:
      return "u16";
    case ArgKind::kU32:
      return "u32";
    case ArgKind::kU64:
      return "u64";
    case ArgKind::kEnum:
      return "enum";
    case ArgKind::kFlags:
      return "flags";
    case ArgKind::kBool:
      return "bool";
    case ArgKind::kString:
      return "string";
    case ArgKind::kBlob:
      return "blob";
    case ArgKind::kHandle:
      return "handle";
  }
  return "?";
}

uint64_t flags_mask(const ParamDesc& p) {
  uint64_t m = 0;
  for (uint64_t c : p.choices) m |= c;
  return m;
}

bool is_scalar_kind(ArgKind k) {
  return k == ArgKind::kU8 || k == ArgKind::kU16 || k == ArgKind::kU32 ||
         k == ArgKind::kU64;
}

std::string hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// The argument index whose handle the call destroys: the first handle param
// of the declared `destroys` type.
size_t destroyed_arg(const CallDesc& d) {
  for (size_t a = 0; a < d.params.size(); ++a) {
    if (d.params[a].kind == ArgKind::kHandle &&
        d.params[a].handle_type == d.destroys) {
      return a;
    }
  }
  return Finding::kNoArg;
}

// Producer indices destroyed before statement `upto` (exclusive).
std::vector<bool> closed_before(const Program& prog, size_t upto) {
  std::vector<bool> closed(prog.calls.size(), false);
  for (size_t i = 0; i < upto && i < prog.calls.size(); ++i) {
    const CallDesc* d = prog.calls[i].desc;
    if (d == nullptr || d->destroys.empty()) continue;
    const size_t a = destroyed_arg(*d);
    if (a == Finding::kNoArg || a >= prog.calls[i].args.size()) continue;
    const int32_t ref = prog.calls[i].args[a].ref;
    if (ref >= 0 && static_cast<size_t>(ref) < prog.calls.size() &&
        !closed[static_cast<size_t>(ref)]) {
      closed[static_cast<size_t>(ref)] = true;
    }
  }
  return closed;
}

}  // namespace

std::string_view pass_name(Pass p) {
  switch (p) {
    case Pass::kUseAfterClose:
      return "use-after-close";
    case Pass::kDanglingRef:
      return "dangling-ref";
    case Pass::kTypeWidth:
      return "type-width";
    case Pass::kDeadStatement:
      return "dead-statement";
  }
  return "?";
}

std::string_view severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

size_t LintReport::errors() const {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

size_t LintReport::warnings() const { return findings.size() - errors(); }

bool LintReport::has(Pass p) const {
  return std::any_of(findings.begin(), findings.end(),
                     [p](const Finding& f) { return f.pass == p; });
}

LintReport ProgramLint::analyze(const Program& prog) const {
  LintReport rep;
  const size_t n = prog.calls.size();

  // Live-resource tracking for the use-after-close pass: closed[j] is set
  // once a destroying call has consumed producer j.
  std::vector<bool> closed(n, false);
  // consumed[j]: some later call references producer j (dead-statement pass).
  std::vector<bool> consumed(n, false);

  auto add = [&rep](Pass pass, Severity sev, size_t call, size_t arg,
                    std::string msg) {
    Finding f;
    f.pass = pass;
    f.severity = sev;
    f.call = call;
    f.arg = arg;
    f.message = std::move(msg);
    rep.findings.push_back(std::move(f));
  };

  for (size_t i = 0; i < n; ++i) {
    const dsl::Call& c = prog.calls[i];
    const CallDesc* d = c.desc;
    if (d == nullptr) {
      if (opts_.dangling_refs) {
        add(Pass::kDanglingRef, Severity::kError, i, Finding::kNoArg,
            "statement has no call description");
      }
      continue;
    }
    if (c.args.size() != d->params.size()) {
      if (opts_.dangling_refs) {
        add(Pass::kDanglingRef, Severity::kError, i, Finding::kNoArg,
            d->name + ": arity mismatch (" + std::to_string(c.args.size()) +
                " args, " + std::to_string(d->params.size()) + " params)");
      }
      continue;
    }

    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = d->params[a];
      const Value& v = c.args[a];

      if (p.kind == ArgKind::kHandle) {
        if (v.ref == Value::kNoRef) {
          if (opts_.dangling_refs) {
            add(Pass::kDanglingRef, Severity::kWarning, i, a,
                d->name + "." + p.name + ": unresolved " + p.handle_type +
                    " handle (executor will substitute an invalid one)");
          }
          continue;
        }
        const auto ref = static_cast<size_t>(v.ref);
        const CallDesc* producer =
            v.ref >= 0 && ref < n ? prog.calls[ref].desc : nullptr;
        const bool structurally_ok = v.ref >= 0 && ref < i &&
                                     producer != nullptr &&
                                     producer->produces == p.handle_type;
        if (!structurally_ok) {
          if (opts_.dangling_refs) {
            add(Pass::kDanglingRef, Severity::kError, i, a,
                d->name + "." + p.name + ": dangling result reference r" +
                    std::to_string(v.ref) +
                    (producer != nullptr && ref < i
                         ? " (produces " + producer->produces + ", needs " +
                               p.handle_type + ")"
                         : " (no earlier producer at that index)"));
          }
          continue;
        }
        if (opts_.use_after_close && closed[ref]) {
          const bool is_second_destroy =
              !d->destroys.empty() && destroyed_arg(*d) == a;
          add(Pass::kUseAfterClose, Severity::kError, i, a,
              d->name + "." + p.name + ": " +
                  (is_second_destroy ? "double close of r" : "use of r") +
                  std::to_string(v.ref) + " after " + producer->produces +
                  " was destroyed");
          continue;
        }
        consumed[ref] = true;
        continue;
      }

      if (!opts_.type_width) continue;
      if (is_scalar_kind(p.kind)) {
        const uint64_t mask = kind_width_mask(p.kind);
        if ((v.scalar & ~mask) != 0) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " exceeds " + kind_label(p.kind) + " width");
        } else if (v.scalar < p.min || v.scalar > p.max) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " outside declared range [" + hex(p.min) + ", " +
                  hex(p.max) + "]");
        }
      } else if (p.kind == ArgKind::kEnum) {
        if (std::find(p.choices.begin(), p.choices.end(), v.scalar) ==
            p.choices.end()) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " is not one of the " + std::to_string(p.choices.size()) +
                  " declared enum choices");
        }
      } else if (p.kind == ArgKind::kFlags) {
        const uint64_t mask = flags_mask(p);
        if ((v.scalar & ~mask) != 0) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " sets bits outside the declared flag mask " + hex(mask));
        }
      } else if (p.kind == ArgKind::kBool) {
        if (v.scalar > 1) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " is not a bool");
        }
      } else if (p.kind == ArgKind::kString || p.kind == ArgKind::kBlob) {
        if (v.bytes.size() > p.max_len) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": " +
                  std::to_string(v.bytes.size()) + " bytes exceeds max_len " +
                  std::to_string(p.max_len));
        }
      }
    }

    // Record the destroy *after* checking the call's own args, so closing a
    // live resource is legal but anything later touching it is flagged.
    if (!d->destroys.empty()) {
      const size_t a = destroyed_arg(*d);
      if (a != Finding::kNoArg && a < c.args.size()) {
        const int32_t ref = c.args[a].ref;
        if (ref >= 0 && static_cast<size_t>(ref) < n) {
          closed[static_cast<size_t>(ref)] = true;
        }
      }
    }
  }

  if (opts_.dead_statements) {
    for (size_t i = 0; i < n; ++i) {
      const CallDesc* d = prog.calls[i].desc;
      if (d == nullptr || d->produces.empty()) continue;
      if (!consumed[i]) {
        add(Pass::kDeadStatement, Severity::kWarning, i, Finding::kNoArg,
            d->name + ": produced " + d->produces +
                " is never consumed by a later call");
      }
    }
  }
  return rep;
}

size_t ProgramLint::repair(Program& prog) const {
  // Structural rot first — repair_refs rebinds to the nearest earlier
  // producer and clears hopeless refs, which the passes below build on.
  size_t fixes = prog.repair_refs();
  const size_t n = prog.calls.size();

  for (size_t i = 0; i < n; ++i) {
    dsl::Call& c = prog.calls[i];
    const CallDesc* d = c.desc;
    if (d == nullptr) continue;
    // Arity rot is not repairable here (we cannot invent values for params
    // we know nothing about the position of); leave for rejection.
    if (c.args.size() != d->params.size()) continue;
    const std::vector<bool> closed = closed_before(prog, i);

    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = d->params[a];
      Value& v = c.args[a];

      if (p.kind == ArgKind::kHandle) {
        if (v.ref == Value::kNoRef) continue;
        const auto ref = static_cast<size_t>(v.ref);
        if (ref >= n || !closed[ref]) continue;
        // Use after close: rebind to the nearest *live* earlier producer of
        // the same type, else fall back to unresolved.
        int32_t live = Value::kNoRef;
        for (size_t j = 0; j < i; ++j) {
          if (closed[j]) continue;
          const CallDesc* pd = prog.calls[j].desc;
          if (pd != nullptr && pd->produces == p.handle_type) {
            live = static_cast<int32_t>(j);
          }
        }
        v.ref = live;
        ++fixes;
        continue;
      }

      if (is_scalar_kind(p.kind)) {
        uint64_t want = v.scalar & kind_width_mask(p.kind);
        if (p.min <= p.max) want = std::clamp(want, p.min, p.max);
        if (want != v.scalar) {
          v.scalar = want;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kEnum) {
        if (!p.choices.empty() &&
            std::find(p.choices.begin(), p.choices.end(), v.scalar) ==
                p.choices.end()) {
          v.scalar = p.choices.front();
          ++fixes;
        }
      } else if (p.kind == ArgKind::kFlags) {
        const uint64_t mask = flags_mask(p);
        if ((v.scalar & ~mask) != 0) {
          v.scalar &= mask;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kBool) {
        if (v.scalar > 1) {
          v.scalar = 1;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kString || p.kind == ArgKind::kBlob) {
        if (v.bytes.size() > p.max_len) {
          v.bytes.resize(p.max_len);
          ++fixes;
        }
      }
    }
  }
  return fixes;
}

}  // namespace df::analysis
