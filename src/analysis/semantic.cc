#include "analysis/semantic.h"

#include <algorithm>
#include <cstdio>

#include "analysis/dataflow.h"

namespace df::analysis {

namespace {

using dsl::ArgKind;
using dsl::CallDesc;
using dsl::ParamDesc;
using dsl::Program;
using dsl::Value;

uint64_t kind_width_mask(ArgKind k) {
  switch (k) {
    case ArgKind::kU8:
      return 0xffull;
    case ArgKind::kU16:
      return 0xffffull;
    case ArgKind::kU32:
      return 0xffffffffull;
    default:
      return ~0ull;
  }
}

const char* kind_label(ArgKind k) {
  switch (k) {
    case ArgKind::kU8:
      return "u8";
    case ArgKind::kU16:
      return "u16";
    case ArgKind::kU32:
      return "u32";
    case ArgKind::kU64:
      return "u64";
    case ArgKind::kEnum:
      return "enum";
    case ArgKind::kFlags:
      return "flags";
    case ArgKind::kBool:
      return "bool";
    case ArgKind::kString:
      return "string";
    case ArgKind::kBlob:
      return "blob";
    case ArgKind::kHandle:
      return "handle";
  }
  return "?";
}

uint64_t flags_mask(const ParamDesc& p) {
  uint64_t m = 0;
  for (uint64_t c : p.choices) m |= c;
  return m;
}

bool is_scalar_kind(ArgKind k) {
  return k == ArgKind::kU8 || k == ArgKind::kU16 || k == ArgKind::kU32 ||
         k == ArgKind::kU64;
}

std::string hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// Producer indices destroyed before statement `upto` (exclusive), using
// the shared destroyed_arg() convention from the dataflow engine.
std::vector<bool> closed_before(const Program& prog, size_t upto) {
  std::vector<bool> closed(prog.calls.size(), false);
  for (size_t i = 0; i < upto && i < prog.calls.size(); ++i) {
    const CallDesc* d = prog.calls[i].desc;
    if (d == nullptr || d->destroys.empty()) continue;
    const size_t a = destroyed_arg(*d);
    if (a == kNoIndex || a >= prog.calls[i].args.size()) continue;
    const int32_t ref = prog.calls[i].args[a].ref;
    if (ref >= 0 && static_cast<size_t>(ref) < prog.calls.size() &&
        !closed[static_cast<size_t>(ref)]) {
      closed[static_cast<size_t>(ref)] = true;
    }
  }
  return closed;
}

}  // namespace

std::string_view pass_name(Pass p) {
  switch (p) {
    case Pass::kUseAfterClose:
      return "use-after-close";
    case Pass::kDanglingRef:
      return "dangling-ref";
    case Pass::kTypeWidth:
      return "type-width";
    case Pass::kDeadStatement:
      return "dead-statement";
  }
  return "?";
}

std::string_view severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

size_t LintReport::errors() const {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

size_t LintReport::warnings() const { return findings.size() - errors(); }

bool LintReport::has(Pass p) const {
  return std::any_of(findings.begin(), findings.end(),
                     [p](const Finding& f) { return f.pass == p; });
}

LintReport ProgramLint::analyze(const Program& prog) const {
  LintReport rep;
  const size_t n = prog.calls.size();

  // One forward dataflow pass computes the def-use/lifetime facts; the
  // four passes below are pure clients reading them off in program order.
  const ProgramDataflow flow(prog);
  // After-close uses seen so far, for the stale-handle allowance.
  size_t stale_seen = 0;

  auto add = [&rep](Pass pass, Severity sev, size_t call, size_t arg,
                    std::string msg) {
    Finding f;
    f.pass = pass;
    f.severity = sev;
    f.call = call;
    f.arg = arg;
    f.message = std::move(msg);
    rep.findings.push_back(std::move(f));
  };

  for (size_t i = 0; i < n; ++i) {
    const dsl::Call& c = prog.calls[i];
    const CallDesc* d = c.desc;
    if (d == nullptr) {
      if (opts_.dangling_refs) {
        add(Pass::kDanglingRef, Severity::kError, i, Finding::kNoArg,
            "statement has no call description");
      }
      continue;
    }
    if (c.args.size() != d->params.size()) {
      if (opts_.dangling_refs) {
        add(Pass::kDanglingRef, Severity::kError, i, Finding::kNoArg,
            d->name + ": arity mismatch (" + std::to_string(c.args.size()) +
                " args, " + std::to_string(d->params.size()) + " params)");
      }
      continue;
    }

    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = d->params[a];
      const Value& v = c.args[a];

      if (p.kind == ArgKind::kHandle) {
        const UseFact& u = flow.use(i, a);
        if (u.unresolved) {
          if (opts_.dangling_refs) {
            add(Pass::kDanglingRef, Severity::kWarning, i, a,
                d->name + "." + p.name + ": unresolved " + p.handle_type +
                    " handle (executor will substitute an invalid one)");
          }
          continue;
        }
        if (!u.structural_ok) {
          if (opts_.dangling_refs) {
            const auto ref = static_cast<size_t>(v.ref);
            const CallDesc* producer =
                v.ref >= 0 && ref < n ? prog.calls[ref].desc : nullptr;
            add(Pass::kDanglingRef, Severity::kError, i, a,
                d->name + "." + p.name + ": dangling result reference r" +
                    std::to_string(v.ref) +
                    (producer != nullptr && ref < i
                         ? " (produces " + producer->produces + ", needs " +
                               p.handle_type + ")"
                         : " (no earlier producer at that index)"));
          }
          continue;
        }
        if (u.after_close) {
          ++stale_seen;
          if (opts_.use_after_close) {
            // The first `stale_handle_allowance` stale uses are advisory
            // probes; anything beyond is an error.
            const Severity sev = stale_seen <= opts_.stale_handle_allowance
                                     ? Severity::kWarning
                                     : Severity::kError;
            add(Pass::kUseAfterClose, sev, i, a,
                d->name + "." + p.name + ": " +
                    (u.second_destroy ? "double close of r" : "use of r") +
                    std::to_string(v.ref) + " after " +
                    prog.calls[u.def].desc->produces + " was destroyed");
          }
          continue;
        }
        continue;
      }

      if (!opts_.type_width) continue;
      if (is_scalar_kind(p.kind)) {
        const uint64_t mask = kind_width_mask(p.kind);
        if ((v.scalar & ~mask) != 0) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " exceeds " + kind_label(p.kind) + " width");
        } else if (v.scalar < p.min || v.scalar > p.max) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " outside declared range [" + hex(p.min) + ", " +
                  hex(p.max) + "]");
        }
      } else if (p.kind == ArgKind::kEnum) {
        if (std::find(p.choices.begin(), p.choices.end(), v.scalar) ==
            p.choices.end()) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " is not one of the " + std::to_string(p.choices.size()) +
                  " declared enum choices");
        }
      } else if (p.kind == ArgKind::kFlags) {
        const uint64_t mask = flags_mask(p);
        if ((v.scalar & ~mask) != 0) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " sets bits outside the declared flag mask " + hex(mask));
        }
      } else if (p.kind == ArgKind::kBool) {
        if (v.scalar > 1) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": value " + hex(v.scalar) +
                  " is not a bool");
        }
      } else if (p.kind == ArgKind::kString || p.kind == ArgKind::kBlob) {
        if (v.bytes.size() > p.max_len) {
          add(Pass::kTypeWidth, Severity::kError, i, a,
              d->name + "." + p.name + ": " +
                  std::to_string(v.bytes.size()) + " bytes exceeds max_len " +
                  std::to_string(p.max_len));
        }
      }
    }

  }

  if (opts_.dead_statements) {
    // Dead-statement pass off the lifetime lattice: a def nothing consumed.
    // When the use-after-close pass is off, stale uses count as consumption
    // (the historical relaxed-gate behaviour).
    for (const DefInfo& def : flow.defs()) {
      const bool consumed =
          !def.uses.empty() ||
          (!opts_.use_after_close && !def.stale_uses.empty());
      if (consumed) continue;
      const CallDesc* d = prog.calls[def.call].desc;
      add(Pass::kDeadStatement, Severity::kWarning, def.call, Finding::kNoArg,
          d->name + ": produced " + d->produces +
              " is never consumed by a later call");
    }
  }
  return rep;
}

size_t ProgramLint::repair(Program& prog) const {
  // Structural rot first — repair_refs rebinds to the nearest earlier
  // producer and clears hopeless refs, which the passes below build on.
  // Unresolved refs stay unresolved: the stale-use pass below severs to
  // kNoRef as its fallback, and rebinding those here would undo that fix on
  // the next repair() call (breaking idempotence).
  size_t fixes = prog.repair_refs(/*rebind_unresolved=*/false);
  const size_t n = prog.calls.size();
  // Stale uses kept as probes under the allowance (in program order, the
  // same order analyze() grants warnings in — repair and analyze agree on
  // which uses survive, which is what makes repair idempotent).
  size_t stale_kept = 0;

  for (size_t i = 0; i < n; ++i) {
    dsl::Call& c = prog.calls[i];
    const CallDesc* d = c.desc;
    if (d == nullptr) continue;
    // Arity rot is not repairable here (we cannot invent values for params
    // we know nothing about the position of); leave for rejection.
    if (c.args.size() != d->params.size()) continue;
    const std::vector<bool> closed = closed_before(prog, i);

    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = d->params[a];
      Value& v = c.args[a];

      if (p.kind == ArgKind::kHandle) {
        if (v.ref == Value::kNoRef) continue;
        const auto ref = static_cast<size_t>(v.ref);
        if (ref >= n || !closed[ref]) continue;
        if (stale_kept < opts_.stale_handle_allowance) {
          ++stale_kept;  // keep this stale use as a probe
          continue;
        }
        // Use after close: rebind to the nearest *live* earlier producer of
        // the same type, else fall back to unresolved.
        int32_t live = Value::kNoRef;
        for (size_t j = 0; j < i; ++j) {
          if (closed[j]) continue;
          const CallDesc* pd = prog.calls[j].desc;
          if (pd != nullptr && pd->produces == p.handle_type) {
            live = static_cast<int32_t>(j);
          }
        }
        v.ref = live;
        ++fixes;
        continue;
      }

      if (is_scalar_kind(p.kind)) {
        uint64_t want = v.scalar & kind_width_mask(p.kind);
        if (p.min <= p.max) want = std::clamp(want, p.min, p.max);
        if (want != v.scalar) {
          v.scalar = want;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kEnum) {
        if (!p.choices.empty() &&
            std::find(p.choices.begin(), p.choices.end(), v.scalar) ==
                p.choices.end()) {
          v.scalar = p.choices.front();
          ++fixes;
        }
      } else if (p.kind == ArgKind::kFlags) {
        const uint64_t mask = flags_mask(p);
        if ((v.scalar & ~mask) != 0) {
          v.scalar &= mask;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kBool) {
        if (v.scalar > 1) {
          v.scalar = 1;
          ++fixes;
        }
      } else if (p.kind == ArgKind::kString || p.kind == ArgKind::kBlob) {
        if (v.bytes.size() > p.max_len) {
          v.bytes.resize(p.max_len);
          ++fixes;
        }
      }
    }
  }
  return fixes;
}

}  // namespace df::analysis
