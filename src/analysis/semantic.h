// Static semantic analysis of DSL programs (lint + repair).
//
// The generator, mutator and minimizer manipulate programs structurally
// (dsl::Program::valid / repair_refs), but structural validity still admits
// programs that are *semantically* dead on arrival: an ioctl on an fd that
// an earlier close already destroyed, a scalar outside the width or range
// its description declares, a producer whose result nothing ever consumes.
// Each such program wastes one device execution on a guaranteed error path.
//
// ProgramLint runs four passes over a program as clients of the forward
// dataflow engine (analysis/dataflow.h): def-use chains and the
// handle-lifetime lattice are computed once per program, and each pass
// reads facts off it. The engine counts the outcomes as analysis.rejected /
// analysis.repaired.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dataflow.h"
#include "dsl/prog.h"

namespace df::analysis {

enum class Pass {
  kUseAfterClose,  // handle used (or re-closed) after its destroy call
  kDanglingRef,    // structural ref rot or unresolved handle
  kTypeWidth,      // scalar outside kind width / declared range / choices
  kDeadStatement,  // produced resource never consumed
};

enum class Severity { kWarning, kError };

// Stable string ids used in JSON reports ("use-after-close", ...).
std::string_view pass_name(Pass p);
std::string_view severity_name(Severity s);

struct Finding {
  Pass pass = Pass::kDanglingRef;
  Severity severity = Severity::kError;
  size_t call = 0;    // statement index
  size_t arg = kNoArg;  // argument index, or kNoArg for whole-call findings
  std::string message;

  static constexpr size_t kNoArg = static_cast<size_t>(-1);
};

struct LintReport {
  std::vector<Finding> findings;

  size_t errors() const;
  size_t warnings() const;
  // A clean program has no error-severity findings (warnings are advisory:
  // unresolved handles and dead statements are legal, just low-value).
  bool clean() const { return errors() == 0; }
  bool has(Pass p) const;
};

struct LintOptions {
  bool use_after_close = true;
  bool dangling_refs = true;
  bool type_width = true;
  bool dead_statements = true;
  // Stale-handle allowance for the use-after-close pass: the first N
  // after-close uses (in program order) are warnings, not errors, and
  // repair() leaves them in place. Operating on one destroyed handle is a
  // deliberate probe — stale-handle error paths are where use-after-free
  // bugs live (bt_accept_unlink) — while a pile of them is just a rotten
  // program. 0 (the default) flags every stale use as an error.
  size_t stale_handle_allowance = 0;
};

class ProgramLint {
 public:
  ProgramLint() = default;
  explicit ProgramLint(LintOptions opts) : opts_(opts) {}

  LintReport analyze(const dsl::Program& prog) const;

  // Deterministic repair: rebinds stale/closed handle refs to live
  // producers (clearing to kNoRef when none exists), clamps scalars into
  // their declared width/range/choices, truncates oversized buffers.
  // Dead statements are left in place (removal is the minimizer's job).
  // Returns the number of individual fixes applied.
  size_t repair(dsl::Program& prog) const;

  const LintOptions& options() const { return opts_; }

 private:
  LintOptions opts_;
};

}  // namespace df::analysis
