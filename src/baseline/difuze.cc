#include "baseline/difuze.h"

#include "core/descriptions.h"
#include "kernel/syscall.h"

namespace df::baseline {

DifuzeFuzzer::DifuzeFuzzer(device::Device& dev, uint64_t seed)
    : dev_(dev), rng_(seed) {}

size_t DifuzeFuzzer::setup() {
  if (broker_ != nullptr) return ioctls_.size();
  core::add_syscall_descriptions(table_, dev_);
  spec_ = core::make_spec_table(table_);
  broker_ = std::make_unique<core::Broker>(dev_, spec_);

  // "Static analysis": group ioctl descriptions under their fd producer.
  std::map<std::string, Iface> by_type;
  for (const dsl::CallDesc* d : table_.all()) {
    if (static_cast<kernel::Sys>(d->sys_nr) == kernel::Sys::kOpenAt &&
        !d->produces.empty()) {
      by_type[d->produces].open = d;
    }
  }
  for (const dsl::CallDesc* d : table_.all()) {
    if (static_cast<kernel::Sys>(d->sys_nr) != kernel::Sys::kIoctl) continue;
    if (d->params.empty() || d->params[0].kind != dsl::ArgKind::kHandle) {
      continue;
    }
    auto it = by_type.find(d->params[0].handle_type);
    if (it == by_type.end() || it->second.open == nullptr) continue;
    it->second.ioctls.push_back(d);
    ioctls_.push_back(d);
  }
  for (auto& [type, iface] : by_type) {
    if (iface.open != nullptr && !iface.ioctls.empty()) {
      nodes_.push_back(iface);
    }
  }
  return ioctls_.size();
}

dsl::Program DifuzeFuzzer::generate() {
  dsl::Program prog;
  if (nodes_.empty()) return prog;
  const Iface& iface = nodes_[rng_.below(nodes_.size())];

  // open(node); then a burst of spec-conformant random ioctls on that fd.
  dsl::Call open_call;
  open_call.desc = iface.open;
  for (const auto& p : iface.open->params) {
    open_call.args.push_back(dsl::random_value(p, rng_));
  }
  prog.calls.push_back(std::move(open_call));

  const size_t burst = 1 + rng_.below(8);
  for (size_t i = 0; i < burst; ++i) {
    const dsl::CallDesc* d = iface.ioctls[rng_.below(iface.ioctls.size())];
    dsl::Call c;
    c.desc = d;
    for (const auto& p : d->params) {
      dsl::Value v = dsl::random_value(p, rng_);
      if (p.kind == dsl::ArgKind::kHandle) {
        // Difuze knows the fd dependency from extraction; other kernel-id
        // arguments it guesses numerically (no runtime tracking).
        if (p.slot == dsl::Slot::kFd) {
          v.ref = 0;  // the open call
        } else {
          v.ref = dsl::Value::kNoRef;
          v.scalar = rng_.below(4);
        }
      }
      c.args.push_back(std::move(v));
    }
    prog.calls.push_back(std::move(c));
  }
  return prog;
}

void DifuzeFuzzer::step() {
  if (broker_ == nullptr) setup();
  const dsl::Program prog = generate();
  if (prog.empty()) return;
  ++exec_count_;
  core::ExecOptions opt;
  opt.collect_cov = true;     // measurement only; never guides generation
  opt.hal_directional = false;
  opt.reboot_on_bug = true;
  const core::ExecResult res = broker_->execute(prog, opt);
  for (uint64_t f : res.features) {
    if (!trace::is_hal_feature(f)) kernel_features_.insert(f);
  }
  for (const auto& rep : res.kernel_reports) {
    crash_log_.record_kernel(rep, prog, exec_count_);
  }
}

void DifuzeFuzzer::run(uint64_t executions) {
  for (uint64_t i = 0; i < executions; ++i) step();
}

}  // namespace df::baseline
