// Difuze baseline (paper §V-C2, commit 3290997 + MangoFuzz on real
// hardware).
//
// Interface-aware but *generation-based and feedback-free*: a static
// "analysis" pass extracts each driver's ioctl interface (command codes and
// argument structures — here, the same ground-truth the authored
// descriptions encode), and the MangoFuzz-style executor then replays
// random well-formed ioctl invocations against the device nodes. No
// coverage guidance, no corpus, no HAL access. Coverage is recorded purely
// for measurement, mirroring how the paper plots Difuze in Fig. 5.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exec/broker.h"
#include "core/fuzz/crash.h"
#include "device/device.h"
#include "dsl/descr.h"

namespace df::baseline {

class DifuzeFuzzer {
 public:
  DifuzeFuzzer(device::Device& dev, uint64_t seed);

  // Static interface extraction. Returns the number of ioctl interfaces
  // recovered (the paper reports 285 / 232 for devices A1 / A2 with the
  // original tooling; our simulated drivers expose fewer).
  size_t setup();

  void run(uint64_t executions);
  void step();

  uint64_t executions() const { return exec_count_; }
  size_t kernel_coverage() const { return kernel_features_.size(); }
  size_t extracted_interfaces() const { return ioctls_.size(); }
  const core::CrashLog& crashes() const { return crash_log_; }

 private:
  dsl::Program generate();

  device::Device& dev_;
  util::Rng rng_;
  dsl::CallTable table_;
  trace::SpecTable spec_;
  std::unique_ptr<core::Broker> broker_;
  // Extraction output: open call + its ioctl set, per device node.
  struct Iface {
    const dsl::CallDesc* open = nullptr;
    std::vector<const dsl::CallDesc*> ioctls;
  };
  std::vector<Iface> nodes_;
  std::vector<const dsl::CallDesc*> ioctls_;  // flat extraction list
  std::unordered_set<uint64_t> kernel_features_;
  core::CrashLog crash_log_;
  uint64_t exec_count_ = 0;
};

}  // namespace df::baseline
