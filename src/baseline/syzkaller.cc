#include "baseline/syzkaller.h"

namespace df::baseline {

core::EngineConfig SyzkallerFuzzer::config(uint64_t seed) {
  core::EngineConfig cfg;
  cfg.seed = seed;
  cfg.probe_hal = false;       // no HAL interface model at all
  cfg.hal_feedback = false;    // kcov only
  cfg.learn_relations = false; // no relation table; static choice weights
  cfg.gen.use_relations = false;
  cfg.gen.use_hal = false;
  // Syzkaller's generation is slightly longer-programs-happy than
  // DroidFuzz's walk; keep the same caps for a fair budget comparison.
  cfg.gen.random_continue = 0.55;
  cfg.minimize_new_seeds = true;  // syzkaller also minimizes corpus entries
  // DroidFuzz-only additions stay off: syzkaller has neither a semantic
  // lint gate nor a driver protocol-state model to plan against.
  cfg.lint_programs = false;
  cfg.use_reachability_plans = false;
  // No declared-transition model either: dataflow-targeted mutation stays
  // off so the baseline keeps its historical uniform arg choice.
  cfg.gen.dataflow_bias = false;
  cfg.distill_at_checkpoint = false;
  // No snapshot/fork execution model: syzkaller re-materializes state by
  // re-running programs (the cost DESIGN.md §13 removes for DroidFuzz).
  cfg.use_snapshots = false;
  return cfg;
}

SyzkallerFuzzer::SyzkallerFuzzer(device::Device& dev, uint64_t seed)
    : engine_(std::make_unique<core::Engine>(dev, config(seed))) {}

}  // namespace df::baseline
