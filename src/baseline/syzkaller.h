// Syzkaller baseline (paper §V, commit fb88827 on real hardware).
//
// A coverage-guided, description-based *syscall-only* fuzzer: same authored
// syscall descriptions and kcov feedback as DroidFuzz, but no HAL probing,
// no HAL invocations, no directional HAL coverage, and no relation
// learning — the capability gap the paper's comparison isolates.
// Implemented as a fixed configuration of the core engine so both fuzzers
// share executors and measurement plumbing.
#pragma once

#include <memory>

#include "core/fuzz/engine.h"

namespace df::baseline {

class SyzkallerFuzzer {
 public:
  SyzkallerFuzzer(device::Device& dev, uint64_t seed);

  void setup() { engine_->setup(); }
  void run(uint64_t executions) { engine_->run(executions); }
  core::StepStats step() { return engine_->step(); }

  uint64_t executions() const { return engine_->executions(); }
  size_t kernel_coverage() const { return engine_->kernel_coverage(); }
  const core::CrashLog& crashes() const { return engine_->crashes(); }
  core::Engine& engine() { return *engine_; }

  // The exact config this baseline runs with (exposed for tests/ablations).
  static core::EngineConfig config(uint64_t seed);

 private:
  std::unique_ptr<core::Engine> engine_;
};

}  // namespace df::baseline
