#include "core/descriptions.h"

#include "kernel/drivers/audio_pcm.h"
#include "kernel/drivers/bt_hci.h"
#include "kernel/drivers/drm_gpu.h"
#include "kernel/drivers/gpu_mali.h"
#include "kernel/drivers/ion_alloc.h"
#include "kernel/drivers/l2cap.h"
#include "kernel/drivers/rt1711_i2c.h"
#include "kernel/drivers/sensor_hub.h"
#include "kernel/drivers/tcpc_core.h"
#include "kernel/drivers/v4l2_cam.h"
#include "kernel/drivers/wifi_rate.h"
#include "kernel/kernel.h"

namespace df::core {

namespace drv = kernel::drivers;
using dsl::ArgKind;
using dsl::CallClass;
using dsl::CallDesc;
using dsl::CallTable;
using dsl::ParamDesc;
using dsl::ProduceFrom;
using dsl::Slot;
using kernel::Sys;

namespace {

// --- ParamDesc shorthand ----------------------------------------------------

ParamDesc fd_param(std::string type) {
  ParamDesc p;
  p.kind = ArgKind::kHandle;
  p.name = "fd";
  p.handle_type = std::move(type);
  p.slot = Slot::kFd;
  return p;
}

ParamDesc handle_u32(std::string name, std::string type) {
  ParamDesc p;
  p.kind = ArgKind::kHandle;
  p.name = std::move(name);
  p.handle_type = std::move(type);
  return p;
}

ParamDesc u8p(std::string name, uint64_t min, uint64_t max) {
  ParamDesc p;
  p.kind = ArgKind::kU8;
  p.name = std::move(name);
  p.min = min;
  p.max = max;
  return p;
}

ParamDesc u32p(std::string name, uint64_t min, uint64_t max) {
  ParamDesc p;
  p.kind = ArgKind::kU32;
  p.name = std::move(name);
  p.min = min;
  p.max = max;
  return p;
}

ParamDesc u64p(std::string name, uint64_t min, uint64_t max) {
  ParamDesc p;
  p.kind = ArgKind::kU64;
  p.name = std::move(name);
  p.min = min;
  p.max = max;
  return p;
}

ParamDesc cst(std::string name, uint64_t v) { return u32p(std::move(name), v, v); }

ParamDesc enum_p(std::string name, std::vector<uint64_t> choices) {
  ParamDesc p;
  p.kind = ArgKind::kEnum;
  p.name = std::move(name);
  p.choices = std::move(choices);
  return p;
}

ParamDesc flags_p(std::string name, std::vector<uint64_t> choices) {
  ParamDesc p;
  p.kind = ArgKind::kFlags;
  p.name = std::move(name);
  p.choices = std::move(choices);
  return p;
}

ParamDesc blob_p(std::string name, size_t max_len) {
  ParamDesc p;
  p.kind = ArgKind::kBlob;
  p.name = std::move(name);
  p.max_len = max_len;
  return p;
}

ParamDesc size_p(uint64_t min, uint64_t max) {
  ParamDesc p;
  p.kind = ArgKind::kU64;
  p.name = "size";
  p.min = min;
  p.max = max;
  p.slot = Slot::kSize;
  return p;
}

// --- CallDesc builders --------------------------------------------------------

CallDesc open_call(std::string name, std::string path, std::string res) {
  CallDesc d;
  d.name = std::move(name);
  d.cls = CallClass::kSyscall;
  d.sys_nr = static_cast<uint32_t>(Sys::kOpenAt);
  d.path = std::move(path);
  d.produces = std::move(res);
  d.produce_from = ProduceFrom::kRet;
  d.weight = 1.5;
  return d;
}

CallDesc close_call(std::string name, std::string res) {
  CallDesc d;
  d.name = std::move(name);
  d.cls = CallClass::kSyscall;
  d.sys_nr = static_cast<uint32_t>(Sys::kClose);
  d.destroys = res;
  d.params = {fd_param(std::move(res))};
  d.weight = 0.3;
  return d;
}

// Marks a call as invalidating the resource bound to its handle param
// (non-close destructors: ION_FREE, MALI_CTX_DESTROY, DRM_DESTROY_BO).
CallDesc destroying(CallDesc d, std::string res) {
  d.destroys = std::move(res);
  return d;
}

CallDesc ioctl_call(std::string name, std::string res, uint64_t req,
                    std::vector<ParamDesc> payload,
                    std::string produces = "",
                    ProduceFrom from = ProduceFrom::kNone) {
  CallDesc d;
  d.name = std::move(name);
  d.cls = CallClass::kSyscall;
  d.sys_nr = static_cast<uint32_t>(Sys::kIoctl);
  d.fixed_arg = req;
  d.params = {fd_param(std::move(res))};
  for (auto& p : payload) d.params.push_back(std::move(p));
  d.produces = std::move(produces);
  d.produce_from = from;
  return d;
}

CallDesc simple_fd_call(std::string name, Sys nr, std::string res,
                        std::vector<ParamDesc> extra) {
  CallDesc d;
  d.name = std::move(name);
  d.cls = CallClass::kSyscall;
  d.sys_nr = static_cast<uint32_t>(nr);
  d.params = {fd_param(std::move(res))};
  for (auto& p : extra) d.params.push_back(std::move(p));
  d.weight = 0.8;
  return d;
}

CallDesc socket_call(std::string name, uint64_t family, uint64_t type,
                     uint64_t proto, std::string res) {
  CallDesc d;
  d.name = std::move(name);
  d.cls = CallClass::kSyscall;
  d.sys_nr = static_cast<uint32_t>(Sys::kSocket);
  d.fixed_arg = family;
  d.fixed_arg2 = type;
  d.fixed_arg3 = proto;
  d.produces = std::move(res);
  d.produce_from = ProduceFrom::kRet;
  d.weight = 1.5;
  return d;
}

// HCI command header as one const u32: [0x01][op lo][op hi][plen].
uint64_t hci_hdr(uint16_t opcode, uint8_t plen) {
  return 0x01ull | (static_cast<uint64_t>(opcode & 0xff) << 8) |
         (static_cast<uint64_t>(opcode >> 8) << 16) |
         (static_cast<uint64_t>(plen) << 24);
}

// --- per-driver description sets ---------------------------------------------

void describe_rt1711(CallTable& t) {
  const std::string fd = "fd_rt1711";
  t.add(open_call("openat$rt1711", "/dev/rt1711", fd));
  t.add(ioctl_call("ioctl$RT1711_ATTACH", fd, drv::Rt1711Driver::kIocAttach,
                   {enum_p("mode", {0, 1, 2, 3})}));
  t.add(ioctl_call("ioctl$RT1711_DETACH", fd, drv::Rt1711Driver::kIocDetach,
                   {}));
  t.add(ioctl_call("ioctl$RT1711_RESET", fd, drv::Rt1711Driver::kIocReset,
                   {}));
  t.add(ioctl_call("ioctl$RT1711_GET_STATUS", fd,
                   drv::Rt1711Driver::kIocGetStatus, {}));
  t.add(ioctl_call("ioctl$RT1711_SET_CC", fd, drv::Rt1711Driver::kIocSetCc,
                   {u32p("cc1", 0, 15), u32p("cc2", 0, 15)}));
  t.add(ioctl_call("ioctl$RT1711_VBUS", fd, drv::Rt1711Driver::kIocVbus,
                   {u32p("mv", 0, 1 << 20)}));
  t.add(ioctl_call("ioctl$RT1711_ALERT", fd, drv::Rt1711Driver::kIocAlert,
                   {flags_p("mask", {1, 2, 4, 8, 16, 32, 64, 128})}));
  t.add(simple_fd_call("read$rt1711", Sys::kRead, fd, {size_p(0, 64)}));
  t.add(close_call("close$rt1711", fd));
}

void describe_tcpc(CallTable& t) {
  const std::string fd = "fd_tcpc";
  t.add(open_call("openat$tcpc", "/dev/tcpc", fd));
  t.add(ioctl_call("ioctl$TCPC_INIT", fd, drv::TcpcDriver::kIocInit, {}));
  t.add(ioctl_call("ioctl$TCPC_SET_MODE", fd, drv::TcpcDriver::kIocSetMode,
                   {enum_p("mode", {0, 1, 2})}));
  t.add(ioctl_call("ioctl$TCPC_CONNECT", fd, drv::TcpcDriver::kIocConnect,
                   {enum_p("partner", {0, 1, 2, 3})}));
  t.add(ioctl_call("ioctl$TCPC_PD_NEGOTIATE", fd,
                   drv::TcpcDriver::kIocPdNegotiate,
                   {enum_p("mv", {5000, 9000, 15000, 20000}),
                    u32p("ma", 0, 65535)}));
  t.add(ioctl_call("ioctl$TCPC_ROLE_SWAP", fd, drv::TcpcDriver::kIocRoleSwap,
                   {enum_p("role", {0, 1})}));
  t.add(ioctl_call("ioctl$TCPC_DISCONNECT", fd,
                   drv::TcpcDriver::kIocDisconnect, {}));
  t.add(ioctl_call("ioctl$TCPC_GET_STATE", fd, drv::TcpcDriver::kIocGetState,
                   {}));
  t.add(ioctl_call("ioctl$TCPC_SET_ALERT", fd, drv::TcpcDriver::kIocSetAlert,
                   {flags_p("mask", {1, 2, 4, 8, 16, 32})}));
  t.add(close_call("close$tcpc", fd));
}

void describe_mali(CallTable& t) {
  const std::string fd = "fd_mali";
  t.add(open_call("openat$mali", "/dev/mali0", fd));
  t.add(ioctl_call("ioctl$MALI_CTX_CREATE", fd, drv::MaliDriver::kIocCtxCreate,
                   {}, "mali_ctx", ProduceFrom::kOutU32));
  t.add(destroying(ioctl_call("ioctl$MALI_CTX_DESTROY", fd,
                              drv::MaliDriver::kIocCtxDestroy,
                              {handle_u32("ctx", "mali_ctx")}),
                   "mali_ctx"));
  t.add(ioctl_call("ioctl$MALI_MEM_POOL", fd, drv::MaliDriver::kIocMemPool,
                   {handle_u32("ctx", "mali_ctx"), u32p("pages", 0, 1 << 20)}));
  t.add(ioctl_call("ioctl$MALI_JOB_SUBMIT", fd, drv::MaliDriver::kIocJobSubmit,
                   {handle_u32("ctx", "mali_ctx"), u32p("njobs", 1, 32),
                    blob_p("jobs", 64)}));
  t.add(ioctl_call("ioctl$MALI_JOB_WAIT", fd, drv::MaliDriver::kIocJobWait,
                   {handle_u32("ctx", "mali_ctx")}));
  t.add(ioctl_call("ioctl$MALI_GET_VERSION", fd,
                   drv::MaliDriver::kIocGetVersion, {}));
  t.add(ioctl_call("ioctl$MALI_FLUSH", fd, drv::MaliDriver::kIocFlush,
                   {handle_u32("ctx", "mali_ctx")}));
  t.add(close_call("close$mali", fd));
}

void describe_sensor_hub(CallTable& t) {
  const std::string fd = "fd_hub";
  t.add(open_call("openat$sensor_hub", "/dev/sensor_hub", fd));
  t.add(ioctl_call("ioctl$SENS_LIST", fd, drv::SensorHubDriver::kIocList, {}));
  t.add(ioctl_call("ioctl$SENS_ENABLE", fd, drv::SensorHubDriver::kIocEnable,
                   {u32p("id", 0, 255)}));
  t.add(ioctl_call("ioctl$SENS_DISABLE", fd, drv::SensorHubDriver::kIocDisable,
                   {u32p("id", 0, 255)}));
  t.add(ioctl_call("ioctl$SENS_SET_RATE", fd,
                   drv::SensorHubDriver::kIocSetRate,
                   {u32p("id", 0, 255), u32p("hz", 0, 10000)}));
  t.add(ioctl_call("ioctl$SENS_BATCH", fd, drv::SensorHubDriver::kIocBatch,
                   {u32p("id", 0, 255), u32p("depth", 0, 4096),
                    u32p("nesting", 0, 255)}));
  t.add(ioctl_call("ioctl$SENS_SELFTEST", fd,
                   drv::SensorHubDriver::kIocSelfTest, {u32p("id", 0, 255)}));
  t.add(simple_fd_call("read$sensor_hub", Sys::kRead, fd, {size_p(0, 256)}));
  t.add(close_call("close$sensor_hub", fd));
}

void describe_wifi(CallTable& t) {
  const std::string fd = "fd_wifi";
  t.add(open_call("openat$wifi", "/dev/wifi0", fd));
  t.add(ioctl_call("ioctl$WIFI_SCAN", fd, drv::WifiRateDriver::kIocScan, {}));
  t.add(ioctl_call("ioctl$WIFI_SET_RATES", fd,
                   drv::WifiRateDriver::kIocSetRates,
                   {u32p("count", 0, 64), blob_p("rates", 32)}));
  t.add(ioctl_call("ioctl$WIFI_ASSOC", fd, drv::WifiRateDriver::kIocAssoc,
                   {u32p("bss", 0, 63)}));
  t.add(ioctl_call("ioctl$WIFI_DISASSOC", fd,
                   drv::WifiRateDriver::kIocDisassoc, {}));
  t.add(ioctl_call("ioctl$WIFI_SET_POWER", fd,
                   drv::WifiRateDriver::kIocSetPower, {u32p("mode", 0, 3)}));
  t.add(ioctl_call("ioctl$WIFI_GET_LINK", fd, drv::WifiRateDriver::kIocGetLink,
                   {}));
  t.add(close_call("close$wifi", fd));
}

void describe_v4l2(CallTable& t) {
  const std::string fd = "fd_video";
  t.add(open_call("openat$video", "/dev/video0", fd));
  t.add(ioctl_call("ioctl$VIDIOC_QUERYCAP", fd,
                   drv::V4l2CamDriver::kIocQuerycap, {}));
  t.add(ioctl_call("ioctl$VIDIOC_ENUM_FMT", fd, drv::V4l2CamDriver::kIocEnumFmt,
                   {u32p("index", 0, 4)}));
  t.add(ioctl_call(
      "ioctl$VIDIOC_S_FMT", fd, drv::V4l2CamDriver::kIocSetFmt,
      {enum_p("fourcc",
              {drv::V4l2CamDriver::kFmtYuyv, drv::V4l2CamDriver::kFmtNv12,
               drv::V4l2CamDriver::kFmtMjpg, drv::V4l2CamDriver::kFmtVraw}),
       u32p("width", 0, 65535), u32p("height", 0, 65535)}));
  t.add(ioctl_call("ioctl$VIDIOC_REQBUFS", fd, drv::V4l2CamDriver::kIocReqbufs,
                   {u32p("count", 0, 255)}));
  t.add(ioctl_call("ioctl$VIDIOC_QBUF", fd, drv::V4l2CamDriver::kIocQbuf,
                   {u32p("index", 0, 255)}));
  t.add(ioctl_call("ioctl$VIDIOC_DQBUF", fd, drv::V4l2CamDriver::kIocDqbuf,
                   {}));
  t.add(ioctl_call("ioctl$VIDIOC_STREAMON", fd,
                   drv::V4l2CamDriver::kIocStreamOn, {}));
  t.add(ioctl_call("ioctl$VIDIOC_STREAMOFF", fd,
                   drv::V4l2CamDriver::kIocStreamOff, {}));
  t.add(simple_fd_call("read$video", Sys::kRead, fd, {size_p(0, 4096)}));
  t.add(simple_fd_call("mmap$video", Sys::kMmap, fd, {size_p(0, 1 << 20)}));
  t.add(close_call("close$video", fd));
}

void describe_audio(CallTable& t) {
  const std::string fd = "fd_pcm";
  t.add(open_call("openat$pcm", "/dev/snd_pcm", fd));
  t.add(ioctl_call("ioctl$PCM_HW_PARAMS", fd, drv::AudioPcmDriver::kIocHwParams,
                   {enum_p("rate", {8000, 16000, 44100, 48000, 96000}),
                    u32p("channels", 0, 255), u32p("format", 0, 15)}));
  t.add(ioctl_call("ioctl$PCM_PREPARE", fd, drv::AudioPcmDriver::kIocPrepare,
                   {}));
  t.add(ioctl_call("ioctl$PCM_START", fd, drv::AudioPcmDriver::kIocStart, {}));
  t.add(ioctl_call("ioctl$PCM_DRAIN", fd, drv::AudioPcmDriver::kIocDrain, {}));
  t.add(ioctl_call("ioctl$PCM_PAUSE", fd, drv::AudioPcmDriver::kIocPause,
                   {u32p("on", 0, 1)}));
  t.add(ioctl_call("ioctl$PCM_STATUS", fd, drv::AudioPcmDriver::kIocStatus,
                   {}));
  t.add(simple_fd_call("write$pcm", Sys::kWrite, fd, {blob_p("frames", 1024)}));
  t.add(simple_fd_call("mmap$pcm", Sys::kMmap, fd, {size_p(0, 1 << 18)}));
  t.add(close_call("close$pcm", fd));
}

void describe_drm(CallTable& t) {
  const std::string fd = "fd_dri";
  t.add(open_call("openat$dri", "/dev/dri_card0", fd));
  t.add(ioctl_call("ioctl$DRM_GET_CAP", fd, drv::DrmGpuDriver::kIocGetCap,
                   {u32p("cap", 0, 13)}));
  t.add(ioctl_call("ioctl$DRM_CREATE_BO", fd, drv::DrmGpuDriver::kIocCreateBo,
                   {u32p("pages", 0, 16384)}, "drm_bo", ProduceFrom::kOutU32));
  t.add(ioctl_call("ioctl$DRM_MAP_BO", fd, drv::DrmGpuDriver::kIocMapBo,
                   {handle_u32("bo", "drm_bo")}));
  t.add(destroying(ioctl_call("ioctl$DRM_DESTROY_BO", fd,
                              drv::DrmGpuDriver::kIocDestroyBo,
                              {handle_u32("bo", "drm_bo")}),
                   "drm_bo"));
  t.add(ioctl_call("ioctl$DRM_SUBMIT", fd, drv::DrmGpuDriver::kIocSubmit,
                   {u32p("pipe", 0, 2), cst("n", 1),
                    handle_u32("bo", "drm_bo")}));
  t.add(ioctl_call("ioctl$DRM_WAIT", fd, drv::DrmGpuDriver::kIocWait,
                   {u32p("fence", 0, 64)}));
  t.add(simple_fd_call("mmap$dri", Sys::kMmap, fd, {size_p(0, 1 << 20)}));
  t.add(close_call("close$dri", fd));
}

void describe_ion(CallTable& t) {
  const std::string fd = "fd_ion";
  t.add(open_call("openat$ion", "/dev/ion", fd));
  t.add(ioctl_call("ioctl$ION_ALLOC", fd, drv::IonDriver::kIocAlloc,
                   {u32p("len", 0, 0xffffffff), flags_p("heap", {1, 2, 4, 8})},
                   "ion_buf", ProduceFrom::kOutU32));
  t.add(destroying(ioctl_call("ioctl$ION_FREE", fd, drv::IonDriver::kIocFree,
                              {handle_u32("buf", "ion_buf")}),
                   "ion_buf"));
  t.add(ioctl_call("ioctl$ION_SHARE", fd, drv::IonDriver::kIocShare,
                   {handle_u32("buf", "ion_buf")}));
  t.add(ioctl_call("ioctl$ION_QUERY", fd, drv::IonDriver::kIocQuery, {}));
  t.add(close_call("close$ion", fd));
}

void describe_bt_hci(CallTable& t) {
  const std::string fd = "sock_hci";
  t.add(socket_call("socket$hci", kernel::kAfBluetooth, kernel::kSockRaw,
                    kernel::kBtProtoHci, fd));
  t.add(simple_fd_call("bind$hci", Sys::kBind, fd, {u8p("dev", 0, 1)}));
  t.add(ioctl_call("ioctl$HCIDEVUP", fd, drv::BtHciDriver::kIocDevUp, {}));
  t.add(ioctl_call("ioctl$HCIDEVDOWN", fd, drv::BtHciDriver::kIocDevDown, {}));
  t.add(ioctl_call("ioctl$HCIDEVRESET", fd, drv::BtHciDriver::kIocDevReset,
                   {}));
  t.add(ioctl_call("ioctl$HCIGETDEVINFO", fd, drv::BtHciDriver::kIocDevInfo,
                   {}));
  t.add(simple_fd_call(
      "sendmsg$HCI_RESET", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpReset, 0))}));
  t.add(simple_fd_call(
      "sendmsg$HCI_SET_EVENT_MASK", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpSetEventMask, 8)),
       u64p("mask", 0, 0xffffffffffffffffull)}));
  t.add(simple_fd_call(
      "sendmsg$HCI_READ_LOCAL_VERSION", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpReadLocalVersion, 0))}));
  t.add(simple_fd_call(
      "sendmsg$HCI_READ_BD_ADDR", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpReadBdAddr, 0))}));
  t.add(simple_fd_call(
      "sendmsg$HCI_INQUIRY", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpInquiry, 5)),
       blob_p("lap", 8)}));
  t.add(simple_fd_call(
      "sendmsg$HCI_VS_SET_CODEC_TABLE", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpVsSetCodecTable, 1)),
       u8p("count", 0, 255)}));
  t.add(simple_fd_call(
      "sendmsg$HCI_VS_SET_BAUDRATE", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpVsSetBaudrate, 4)),
       u32p("baud", 0, 4000000)}));
  t.add(simple_fd_call(
      "sendmsg$HCI_READ_CODECS", Sys::kSendmsg, fd,
      {cst("hdr", hci_hdr(drv::BtHciDriver::kOpReadCodecs, 0))}));
  t.add(simple_fd_call("sendmsg$hci_raw", Sys::kSendmsg, fd,
                       {blob_p("pkt", 64)}));
  t.add(simple_fd_call("recvmsg$hci", Sys::kRecvmsg, fd, {size_p(0, 128)}));
  t.add(close_call("close$hci", fd));
}

void describe_l2cap(CallTable& t) {
  const std::string fd = "sock_l2cap";
  t.add(socket_call("socket$l2cap", kernel::kAfBluetooth,
                    kernel::kSockSeqpacket, kernel::kBtProtoL2cap, fd));
  {
    // Well-known PSM constants, as a syzlang description would list them.
    ParamDesc psm = enum_p("psm", {1, 3, 5, 15, 17, 19, 23, 25, 4097});
    t.add(simple_fd_call("bind$l2cap", Sys::kBind, fd, {psm}));
    t.add(simple_fd_call("connect$l2cap", Sys::kConnect, fd, {psm}));
  }
  {
    CallDesc d;
    d.name = "listen$l2cap";
    d.cls = CallClass::kSyscall;
    d.sys_nr = static_cast<uint32_t>(Sys::kListen);
    d.params = {fd_param(fd)};
    ParamDesc backlog = u32p("backlog", 0, 8);
    backlog.slot = Slot::kArg;
    d.params.push_back(backlog);
    t.add(std::move(d));
  }
  {
    CallDesc d;
    d.name = "accept$l2cap";
    d.cls = CallClass::kSyscall;
    d.sys_nr = static_cast<uint32_t>(Sys::kAccept);
    d.params = {fd_param(fd)};
    d.produces = fd;  // accepted child is another l2cap socket
    d.produce_from = ProduceFrom::kRet;
    t.add(std::move(d));
  }
  {
    CallDesc d;
    d.name = "setsockopt$l2cap_mtu";
    d.cls = CallClass::kSyscall;
    d.sys_nr = static_cast<uint32_t>(Sys::kSetsockopt);
    d.fixed_arg = 6;   // SOL_L2CAP
    d.fixed_arg2 = 1;  // L2CAP_OPTIONS (mtu)
    d.params = {fd_param(fd), u32p("mtu", 0, 70000)};
    t.add(std::move(d));
  }
  {
    CallDesc d;
    d.name = "setsockopt$l2cap_mode";
    d.cls = CallClass::kSyscall;
    d.sys_nr = static_cast<uint32_t>(Sys::kSetsockopt);
    d.fixed_arg = 6;
    d.fixed_arg2 = 2;
    d.params = {fd_param(fd), u32p("mode", 0, 4)};
    t.add(std::move(d));
  }
  t.add(simple_fd_call("sendmsg$l2cap_config", Sys::kSendmsg, fd,
                       {u8p("op", drv::L2capDriver::kCtlConfigReq,
                            drv::L2capDriver::kCtlConfigReq),
                        u32p("mtu", 0, 70000)}));
  t.add(simple_fd_call("sendmsg$l2cap_disconn", Sys::kSendmsg, fd,
                       {u8p("op", drv::L2capDriver::kCtlDisconnReq,
                            drv::L2capDriver::kCtlDisconnReq)}));
  t.add(simple_fd_call("sendmsg$l2cap_echo", Sys::kSendmsg, fd,
                       {u8p("op", drv::L2capDriver::kCtlEchoReq,
                            drv::L2capDriver::kCtlEchoReq),
                        blob_p("payload", 32)}));
  t.add(simple_fd_call("sendmsg$l2cap_data", Sys::kSendmsg, fd,
                       {u8p("tag", 0x10, 0x10), blob_p("data", 128)}));
  t.add(simple_fd_call("recvmsg$l2cap", Sys::kRecvmsg, fd, {size_p(0, 128)}));
  t.add(close_call("close$l2cap", fd));
}

}  // namespace

void add_syscall_descriptions(dsl::CallTable& table, device::Device& dev) {
  for (const auto& drv_ptr : dev.kernel().drivers()) {
    const std::string_view name = drv_ptr->name();
    if (name == "rt1711_i2c") describe_rt1711(table);
    else if (name == "tcpc_core") describe_tcpc(table);
    else if (name == "gpu_mali") describe_mali(table);
    else if (name == "sensor_hub") describe_sensor_hub(table);
    else if (name == "wifi_rate") describe_wifi(table);
    else if (name == "v4l2_cam") describe_v4l2(table);
    else if (name == "audio_pcm") describe_audio(table);
    else if (name == "drm_gpu") describe_drm(table);
    else if (name == "ion_alloc") describe_ion(table);
    else if (name == "bt_hci") describe_bt_hci(table);
    else if (name == "l2cap") describe_l2cap(table);
  }
}

std::string service_alias(std::string_view service_name) {
  // "android.hardware.graphics.composer@sim" -> "graphics"
  constexpr std::string_view kPrefix = "android.hardware.";
  std::string_view s = service_name;
  if (s.substr(0, kPrefix.size()) == kPrefix) s.remove_prefix(kPrefix.size());
  const size_t dot = s.find_first_of(".@");
  if (dot != std::string_view::npos) s = s.substr(0, dot);
  return std::string(s);
}

void add_hal_interface(dsl::CallTable& table, std::string_view service_name,
                       const hal::InterfaceDesc& iface,
                       const std::vector<std::pair<uint32_t, double>>&
                           method_weights) {
  const std::string alias = service_alias(service_name);
  // Normalized occurrences are per-service probabilities (sum ~1). Rescale
  // them onto the syscall vertex-weight scale (~1.0 per call) so HAL
  // interfaces compete fairly as base invocations while keeping the probed
  // ranking *within* each service.
  auto weight_of = [&](uint32_t code) {
    for (const auto& [c, w] : method_weights) {
      if (c == code) return 0.3 + 3.0 * w;
    }
    return 0.3;  // probed but never seen in the app workload
  };
  for (const auto& m : iface.methods) {
    CallDesc d;
    d.name = "hal$" + alias + "." + m.name;
    d.cls = CallClass::kHal;
    d.service = std::string(service_name);
    d.method_code = m.code;
    d.weight = weight_of(m.code);
    if (!m.returns_handle.empty()) {
      d.produces = "hal_" + alias + "_" + m.returns_handle;
      d.produce_from = ProduceFrom::kReplyU32;
    }
    for (const auto& a : m.args) {
      ParamDesc p;
      p.name = a.name;
      p.min = a.min;
      p.max = a.max;
      p.choices = a.choices;
      p.max_len = a.max_len;
      switch (a.kind) {
        case hal::ArgKind::kU32: p.kind = ArgKind::kU32; break;
        case hal::ArgKind::kU64: p.kind = ArgKind::kU64; break;
        case hal::ArgKind::kEnum: p.kind = ArgKind::kEnum; break;
        case hal::ArgKind::kFlags: p.kind = ArgKind::kFlags; break;
        case hal::ArgKind::kBool: p.kind = ArgKind::kBool; break;
        case hal::ArgKind::kString: p.kind = ArgKind::kString; break;
        case hal::ArgKind::kBlob: p.kind = ArgKind::kBlob; break;
        case hal::ArgKind::kHandle:
          p.kind = ArgKind::kHandle;
          p.handle_type = "hal_" + alias + "_" + a.handle_type;
          break;
      }
      d.params.push_back(std::move(p));
    }
    table.add(std::move(d));
  }
}

trace::SpecTable make_spec_table(const dsl::CallTable& table) {
  trace::SpecTable spec;
  for (const CallDesc* d : table.all()) {
    if (d->is_hal()) continue;
    const auto nr = static_cast<Sys>(d->sys_nr);
    switch (nr) {
      case Sys::kIoctl:
        spec.add(nr, d->fixed_arg);
        break;
      case Sys::kSetsockopt:
      case Sys::kGetsockopt:
        spec.add(nr, (d->fixed_arg << 32) | (d->fixed_arg2 & 0xffffffffull));
        break;
      case Sys::kSocket:
        spec.add(nr, (d->fixed_arg << 32) | (d->fixed_arg3 & 0xffffffffull));
        break;
      default:
        spec.add_plain(nr);
        break;
    }
  }
  // Plain forms for every syscall so unknown specializations degrade
  // gracefully instead of overflowing.
  for (uint32_t i = 0; i < static_cast<uint32_t>(Sys::kCount); ++i) {
    spec.add_plain(static_cast<Sys>(i));
  }
  return spec;
}

}  // namespace df::core
