// Call-description construction.
//
// Syscall descriptions are authored here per driver, the way the paper
// borrows syzkaller's Syzlang descriptions for the kernel surface. HAL
// descriptions are NOT authored — they are discovered by the probing pass
// (core/probe) and converted to DSL form by add_hal_descriptions().
#pragma once

#include "device/device.h"
#include "dsl/descr.h"
#include "hal/binder.h"
#include "trace/syscall_trace.h"

namespace df::core {

// Adds descriptions for every syscall surface of the drivers present on the
// device (resource-producing opens, per-command ioctls, socket ops, ...).
void add_syscall_descriptions(dsl::CallTable& table, device::Device& dev);

// Converts one probed HAL interface into DSL calls named
// "hal$<short>.<method>". `weight` scales all of the interface's vertex
// weights (per-method weights come from the probe's occurrence counts).
void add_hal_interface(dsl::CallTable& table, std::string_view service_name,
                       const hal::InterfaceDesc& iface,
                       const std::vector<std::pair<uint32_t, double>>&
                           method_weights);

// Compiles the specialized-syscall lookup table (paper §IV-D) from all
// registered descriptions.
trace::SpecTable make_spec_table(const dsl::CallTable& table);

// Short service alias used in DSL names:
// "android.hardware.graphics.composer@sim" -> "graphics".
std::string service_alias(std::string_view service_name);

}  // namespace df::core
