#include "core/exec/backend.h"

namespace df::core {

ExecResult InProcessBackend::run(const dsl::Program& prog,
                                 const ExecOptions& opt) {
  return broker_.execute_attempt(prog, opt);
}

device::StateSnapshot InProcessBackend::capture(
    const device::StateSnapshot* parent) {
  return device::capture_snapshot(broker_.device(), broker_.native_task(),
                                  parent);
}

bool InProcessBackend::restore(const device::StateSnapshot& snap,
                               std::string* error) {
  return device::restore_snapshot(broker_.device(), broker_.native_task(),
                                  snap, error);
}

ExecResult SnapshotForkBackend::run(const dsl::Program& prog,
                                    const ExecOptions& opt) {
  ++forks_;
  if (std::string err; !inner_.restore(base_, &err)) {
    // A shape mismatch means the base snapshot is unusable; surface the
    // run as a lost execution rather than running from an undefined state.
    ExecResult out;
    out.transport_error = true;
    return out;
  }
  return inner_.run(prog, opt);
}

}  // namespace df::core
