// Execution backend seam (DESIGN.md §13).
//
// The Broker routes every *attempt* (the unit below the fault-injection
// retry loop) through an ExecBackend, so the mechanism that materializes a
// program's effects on the device is swappable: the default InProcessBackend
// dispatches straight into the simulated kernel, while SnapshotForkBackend
// rewinds the device to a captured StateSnapshot before every run — the
// "fork from a deep state" execution model. The seam also owns snapshot
// capture/restore so callers never reach around the Broker to the device.
#pragma once

#include <string>
#include <string_view>

#include "core/exec/broker.h"
#include "device/snapshot.h"

namespace df::core {

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  virtual std::string_view name() const = 0;
  // One reliable-transport execution of `prog` on the device.
  virtual ExecResult run(const dsl::Program& prog, const ExecOptions& opt) = 0;
  // Captures the device's live state (COW against `parent` when non-null).
  virtual device::StateSnapshot capture(
      const device::StateSnapshot* parent) = 0;
  // Rewinds the device to `snap`. False (+ `error`) on shape mismatch.
  virtual bool restore(const device::StateSnapshot& snap,
                       std::string* error) = 0;
};

// Dispatches directly into the simulated kernel + HAL (the classic path).
class InProcessBackend final : public ExecBackend {
 public:
  explicit InProcessBackend(Broker& broker) : broker_(broker) {}

  std::string_view name() const override { return "in-process"; }
  ExecResult run(const dsl::Program& prog, const ExecOptions& opt) override;
  device::StateSnapshot capture(const device::StateSnapshot* parent) override;
  bool restore(const device::StateSnapshot& snap, std::string* error) override;

 private:
  Broker& broker_;
};

// Rewinds the device to `base` before every run, so each program executes
// from the same deep state without re-running the establishing prefix.
class SnapshotForkBackend final : public ExecBackend {
 public:
  SnapshotForkBackend(ExecBackend& inner, device::StateSnapshot base)
      : inner_(inner), base_(std::move(base)) {}

  std::string_view name() const override { return "snapshot-forked"; }
  ExecResult run(const dsl::Program& prog, const ExecOptions& opt) override;
  device::StateSnapshot capture(const device::StateSnapshot* parent) override {
    return inner_.capture(parent);
  }
  bool restore(const device::StateSnapshot& snap,
               std::string* error) override {
    return inner_.restore(snap, error);
  }

  const device::StateSnapshot& base() const { return base_; }
  uint64_t forks() const { return forks_; }

 private:
  ExecBackend& inner_;
  device::StateSnapshot base_;
  uint64_t forks_ = 0;
};

}  // namespace df::core
