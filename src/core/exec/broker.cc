#include "core/exec/broker.h"

#include "core/exec/backend.h"
#include "hal/parcel.h"
#include "kernel/driver.h"

namespace df::core {

using dsl::ArgKind;
using dsl::CallClass;
using dsl::ProduceFrom;
using dsl::Slot;
using kernel::Sys;

Broker::Broker(device::Device& dev, const trace::SpecTable& spec)
    : dev_(dev), tracer_(dev.kernel(), spec) {
  native_task_ =
      dev_.kernel().create_task(kernel::TaskOrigin::kNative, "df_executor");
  backend_ = std::make_unique<InProcessBackend>(*this);
}

Broker::~Broker() { dev_.kernel().exit_task(native_task_); }

void Broker::set_backend(std::unique_ptr<ExecBackend> backend) {
  backend_ = backend != nullptr ? std::move(backend)
                                : std::make_unique<InProcessBackend>(*this);
}

device::StateSnapshot Broker::capture_snapshot(
    const device::StateSnapshot* parent) {
  return backend_->capture(parent);
}

bool Broker::restore_snapshot(const device::StateSnapshot& snap,
                              std::string* error) {
  return backend_->restore(snap, error);
}

void Broker::attach_observability(obs::Observability* o,
                                  std::string_view label) {
  obs_ = o;
  label_ = std::string(label);
  spans_ = (o != nullptr && o->spans.enabled()) ? &o->spans : nullptr;
  if (o == nullptr) {
    h_execute_ = nullptr;
    c_programs_ = c_calls_ = c_reboots_ = nullptr;
    dev_.kernel().set_driver_op_hook(nullptr);
    return;
  }
  h_execute_ = &o->registry.histogram("phase.execute", label);
  c_programs_ = &o->registry.counter("broker.programs", label);
  c_calls_ = &o->registry.counter("broker.calls", label);
  c_reboots_ = &o->registry.counter("broker.reboots", label);
  if (spans_ != nullptr) {
    // Driver-handler spans: the kernel cannot link obs, so it calls back
    // into the broker, which owns the open-span id stack for nested ops.
    dev_.kernel().set_driver_op_hook(
        [this](std::string_view driver, const char* op, bool enter) {
          if (enter) {
            std::string name = "driver:";
            name += driver;
            name += '.';
            name += op;
            op_spans_.push_back(spans_->begin(name, label_, executions_));
          } else if (!op_spans_.empty()) {
            spans_->end(op_spans_.back());
            op_spans_.pop_back();
          }
        });
  } else {
    dev_.kernel().set_driver_op_hook(nullptr);
  }
}

uint64_t Broker::resolve(const std::vector<uint64_t>& results,
                         const dsl::Value& v) {
  if (v.ref == dsl::Value::kNoRef) return 0;
  const auto idx = static_cast<size_t>(v.ref);
  return idx < results.size() ? results[idx] : 0;
}

int64_t Broker::run_syscall(const dsl::Call& call,
                            const std::vector<uint64_t>& results,
                            uint64_t& produced) {
  const dsl::CallDesc& d = *call.desc;
  kernel::SyscallReq req;
  req.nr = static_cast<Sys>(d.sys_nr);
  req.arg = d.fixed_arg;
  req.arg2 = d.fixed_arg2;
  req.arg3 = d.fixed_arg3;
  req.path = d.path;
  req.fd = -1;

  for (size_t i = 0; i < call.args.size() && i < d.params.size(); ++i) {
    const dsl::ParamDesc& p = d.params[i];
    const dsl::Value& v = call.args[i];
    switch (p.slot) {
      case Slot::kFd: {
        const uint64_t fd = resolve(results, v);
        req.fd = v.ref == dsl::Value::kNoRef ? -1
                                             : static_cast<int32_t>(fd);
        break;
      }
      case Slot::kSize:
        req.size = static_cast<size_t>(v.scalar);
        break;
      case Slot::kArg:
        req.arg = v.scalar;
        break;
      case Slot::kPayload:
        switch (p.kind) {
          case ArgKind::kU8:
            req.data.push_back(static_cast<uint8_t>(v.scalar));
            break;
          case ArgKind::kU16:
            kernel::put_u16(req.data, static_cast<uint16_t>(v.scalar));
            break;
          case ArgKind::kU32:
          case ArgKind::kEnum:
          case ArgKind::kFlags:
          case ArgKind::kBool:
            kernel::put_u32(req.data, static_cast<uint32_t>(v.scalar));
            break;
          case ArgKind::kU64:
            kernel::put_u64(req.data, v.scalar);
            break;
          case ArgKind::kString:
          case ArgKind::kBlob:
            req.data.insert(req.data.end(), v.bytes.begin(), v.bytes.end());
            break;
          case ArgKind::kHandle:
            kernel::put_u32(req.data,
                            static_cast<uint32_t>(resolve(results, v)));
            break;
        }
        break;
    }
  }

  const kernel::SyscallRes res = dev_.kernel().syscall(native_task_, req);
  switch (d.produce_from) {
    case ProduceFrom::kRet:
      produced = res.ret >= 0 ? static_cast<uint64_t>(res.ret) : 0;
      break;
    case ProduceFrom::kOutU32:
      produced = res.out.size() >= 4 ? kernel::le_u32(res.out, 0) : 0;
      break;
    default:
      break;
  }
  return res.ret;
}

int64_t Broker::run_hal(const dsl::Call& call,
                        const std::vector<uint64_t>& results,
                        uint64_t& produced) {
  const dsl::CallDesc& d = *call.desc;
  hal::Parcel parcel;
  for (size_t i = 0; i < call.args.size() && i < d.params.size(); ++i) {
    const dsl::ParamDesc& p = d.params[i];
    const dsl::Value& v = call.args[i];
    switch (p.kind) {
      case ArgKind::kU8:
      case ArgKind::kU16:
      case ArgKind::kU32:
      case ArgKind::kEnum:
      case ArgKind::kFlags:
      case ArgKind::kBool:
        parcel.write_u32(static_cast<uint32_t>(v.scalar));
        break;
      case ArgKind::kU64:
        parcel.write_u64(v.scalar);
        break;
      case ArgKind::kString:
        parcel.write_string(std::string_view(
            reinterpret_cast<const char*>(v.bytes.data()), v.bytes.size()));
        break;
      case ArgKind::kBlob:
        parcel.write_blob(v.bytes);
        break;
      case ArgKind::kHandle:
        parcel.write_u32(static_cast<uint32_t>(resolve(results, v)));
        break;
    }
  }
  hal::TxResult res =
      dev_.service_manager().call(d.service, d.method_code, parcel);
  if (res.status == hal::kStatusOk &&
      d.produce_from == ProduceFrom::kReplyU32) {
    res.reply.rewind();
    const uint32_t h = res.reply.read_u32();
    if (res.reply.ok()) produced = h;
  }
  return res.status;
}

std::vector<obs::DriverStateCoverage> snapshot_driver_states(
    const kernel::Kernel& k) {
  std::vector<obs::DriverStateCoverage> out;
  for (const auto& d : k.drivers()) {
    obs::DriverStateCoverage c;
    c.driver = std::string(d->name());
    c.states = d->state_names();
    c.current = d->current_state();
    c.visits = d->state_visits();
    c.matrix = d->state_matrix();
    out.push_back(std::move(c));
  }
  return out;
}

ExecResult Broker::execute(const dsl::Program& prog, const ExecOptions& opt) {
  if (fault_ == nullptr) return backend_->run(prog, opt);

  // Resilient transport loop: one fault decision per attempt. Transport
  // errors are retried with exponential (virtual) backoff up to the policy
  // bound; hangs blow the per-call deadline and spontaneous reboots kill
  // the device outright — both wipe kernel + HAL state, invalidate fds,
  // reset coverage buffers, and lose the execution.
  FaultTotals& t = fault_->totals();
  for (uint32_t attempt = 0;; ++attempt) {
    const device::FaultKind f = fault_->plan().next();
    if (f == device::FaultKind::kNone) {
      ExecResult out = backend_->run(prog, opt);
      out.retries = attempt;
      if (attempt > 0) out.fault = device::FaultKind::kTransportError;
      return out;
    }
    ++t.injected;
    if (f == device::FaultKind::kTransportError &&
        attempt < fault_->policy().max_retries) {
      ++t.transport_errors;
      ++t.retries;
      t.recovery_virtual_us += fault_->backoff_us(attempt);
      continue;
    }
    // Lost execution: retries exhausted, or the device died under us.
    ExecResult out;
    out.fault = f;
    out.transport_error = true;
    out.retries = attempt;
    ++t.lost_execs;
    if (f == device::FaultKind::kTransportError) {
      ++t.transport_errors;
    } else {
      if (f == device::FaultKind::kHang) {
        ++t.hangs;
        t.recovery_virtual_us += fault_->policy().hang_timeout_us;
      }
      ++t.reboots;
      t.recovery_virtual_us += fault_->policy().reboot_cost_us;
      dev_.reboot();
      out.rebooted = true;
      if (obs_ != nullptr) c_reboots_->inc();
    }
    return out;
  }
}

ExecResult Broker::execute_attempt(const dsl::Program& prog,
                                   const ExecOptions& opt) {
  const obs::ScopedTimer timer(h_execute_);
  ExecResult out;
  ++executions_;
  const obs::ScopedSpan exec_span(spans_, "phase:execute", label_,
                                  executions_);
  auto& k = dev_.kernel();

  // Arm feedback collection.
  tracer_.begin_execution();
  if (opt.collect_cov) {
    k.kcov_enable(native_task_);
    for (const auto& svc : dev_.services()) k.kcov_enable(svc->task());
  }
  const uint64_t dmesg_from = k.dmesg().next_seq();
  for (const auto& svc : dev_.services()) {
    crash_marks_[svc.get()] = svc->crashes().size();
  }

  // Run the sequence. Runtime resource values are indexed by call position.
  std::vector<uint64_t> results(prog.calls.size(), 0);
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    const dsl::Call& call = prog.calls[i];
    if (call.desc == nullptr) continue;
    uint64_t produced = 0;
    const obs::ScopedSpan call_span(spans_, call.desc->name, label_,
                                    executions_);
    const int64_t ret = call.desc->is_hal()
                            ? run_hal(call, results, produced)
                            : run_syscall(call, results, produced);
    results[i] = produced;
    out.rets.push_back(ret);
    ++out.calls_executed;
    CallStat& cs = call_stats_[call.desc->name];
    ++cs.count;
    if (ret >= 0) ++cs.ok;
    if (k.panicked()) break;  // device is wedged; stop the program
  }

  // Collect bonded feedback. The append-into variant drains every task's
  // kcov straight into out.features — one buffer, no per-task vectors.
  if (opt.collect_cov) {
    k.kcov_collect_into(native_task_, out.features);
    for (const auto& svc : dev_.services()) {
      k.kcov_collect_into(svc->task(), out.features);
      k.kcov_disable(svc->task());
    }
    k.kcov_disable(native_task_);
  }
  if (opt.hal_directional) {
    auto dir = tracer_.take_features();
    out.features.insert(out.features.end(), dir.begin(), dir.end());
  } else {
    tracer_.begin_execution();  // discard
  }

  out.kernel_reports = k.dmesg().since(dmesg_from);
  out.kernel_bug = !out.kernel_reports.empty();
  for (const auto& svc : dev_.services()) {
    const auto& cs = svc->crashes();
    for (size_t i = crash_marks_[svc.get()]; i < cs.size(); ++i) {
      out.hal_crashes.push_back(cs[i]);
      out.hal_crash = true;
    }
  }

  // The reboot-after-KASAN policy (fault layer): on a real device a KASAN
  // splat wedges the kernel, so the harness reboots even when the fuzzer's
  // own reboot_on_bug is off.
  bool kasan_reboot = false;
  if (fault_ != nullptr && fault_->reboot_on_kasan() &&
      !(opt.reboot_on_bug && out.any_bug())) {
    for (const auto& rep : out.kernel_reports) {
      if (rep.kind == kernel::ReportKind::kKasan) {
        kasan_reboot = true;
        break;
      }
    }
  }
  if ((opt.reboot_on_bug && out.any_bug()) || kasan_reboot ||
      k.panicked()) {
    // Snapshot crash-time driver states before the reboot wipes them —
    // crash_<hash>.json must record where the state machines *were*, not
    // the post-boot reset.
    out.states_at_crash = snapshot_driver_states(k);
    dev_.reboot();
    out.rebooted = true;
    if (kasan_reboot && fault_ != nullptr) {
      FaultTotals& t = fault_->totals();
      ++t.kasan_reboots;
      ++t.reboots;
      t.recovery_virtual_us += fault_->policy().reboot_cost_us;
    }
  } else if (out.hal_crash) {
    // At minimum restore a usable state.
    dev_.restart_dead_services();
  }
  if (obs_ != nullptr) {
    c_programs_->inc();
    c_calls_->inc(out.calls_executed);
    if (out.rebooted) c_reboots_->inc();
  }
  return out;
}

}  // namespace df::core
