// Execution Broker (paper §IV-A): reliably executes DSL programs on a
// device, dispatching each element of the sequence to the Native executor
// (syscalls) or the HAL executor (Binder transactions), then bonds kernel
// kcov, HAL directional coverage, dmesg reports and HAL crash records into
// one uniform feedback statistic for the fuzzing engine.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exec/faults.h"
#include "device/device.h"
#include "device/snapshot.h"
#include "dsl/prog.h"
#include "kernel/dmesg.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "trace/syscall_trace.h"

namespace df::core {

class ExecBackend;

struct ExecOptions {
  bool collect_cov = true;
  // Collect HAL directional syscall coverage (off for DF-NoHCov).
  bool hal_directional = true;
  // Reboot the device on any bug (kernel report or HAL crash) — the
  // paper's harness configuration.
  bool reboot_on_bug = true;
};

struct ExecResult {
  std::vector<uint64_t> features;  // uniform kernel + HAL feature ids
  std::vector<kernel::Report> kernel_reports;
  std::vector<hal::CrashRecord> hal_crashes;
  std::vector<int64_t> rets;  // per executed call (syscall ret / binder status)
  size_t calls_executed = 0;
  bool kernel_bug = false;  // any dmesg report during this execution
  bool hal_crash = false;
  bool rebooted = false;

  // Fault-injection outcome (device::FaultKind::kNone without an injector).
  // transport_error marks a *lost* execution: the program never completed
  // and produced no feedback (retries exhausted, hang, or reboot).
  device::FaultKind fault = device::FaultKind::kNone;
  bool transport_error = false;
  uint32_t retries = 0;
  // Driver-state coverage captured *before* any reboot policy ran, so crash
  // provenance records crash-time states instead of wiped post-reboot ones.
  // Empty when the execution did not reboot the device.
  std::vector<obs::DriverStateCoverage> states_at_crash;

  bool any_bug() const { return kernel_bug || hal_crash; }
};

class Broker {
 public:
  Broker(device::Device& dev, const trace::SpecTable& spec);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  ExecResult execute(const dsl::Program& prog, const ExecOptions& opt = {});

  // Fault injection (null = reliable transport, the default). With an
  // injector attached, execute() becomes the resilient transport loop:
  // per-attempt fault decision, bounded retry with exponential backoff on
  // transport errors, forced reboot on hangs/spontaneous reboots, and the
  // reboot-after-KASAN policy. At plan rate 0 the loop is bit-identical to
  // the reliable path. The injector must outlive the broker.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() { return fault_; }

  // Attach/detach campaign telemetry (null = off). Caches metric pointers
  // (phase.execute latency, broker.programs/calls/reboots counters labeled
  // with `label`) so execute() pays only null-checks when detached. When the
  // bundle's span tracer is enabled, also emits phase:execute + per-syscall
  // spans and installs the kernel driver-op hook for driver-handler spans.
  void attach_observability(obs::Observability* o, std::string_view label);

  device::Device& device() { return dev_; }
  uint64_t executions() const { return executions_; }
  kernel::TaskId native_task() const { return native_task_; }

  // --- ExecBackend seam + snapshots (DESIGN.md §13) -------------------------
  // Every execution attempt (the unit below the fault retry loop) routes
  // through the backend; the default InProcessBackend dispatches into the
  // simulated kernel. Swapping in a SnapshotForkBackend makes each attempt
  // run from a rewound deep state. The backend must keep targeting this
  // broker's device.
  ExecBackend& backend() { return *backend_; }
  void set_backend(std::unique_ptr<ExecBackend> backend);
  // Snapshot capture/restore of this broker's device, keyed to its native
  // task (routed through the backend).
  device::StateSnapshot capture_snapshot(
      const device::StateSnapshot* parent = nullptr);
  bool restore_snapshot(const device::StateSnapshot& snap,
                        std::string* error = nullptr);

  // Per-description execution statistics: (times executed, times ret >= 0).
  struct CallStat {
    uint64_t count = 0;
    uint64_t ok = 0;
  };
  const std::map<std::string, CallStat>& call_stats() const {
    return call_stats_;
  }

 private:
  friend class CampaignCheckpoint;
  friend class InProcessBackend;

  // One reliable-transport execution (the pre-fault-layer execute()).
  ExecResult execute_attempt(const dsl::Program& prog,
                             const ExecOptions& opt);
  // Resolves a handle arg to its runtime value (0 when unresolved).
  static uint64_t resolve(const std::vector<uint64_t>& results,
                          const dsl::Value& v);
  int64_t run_syscall(const dsl::Call& call,
                      const std::vector<uint64_t>& results,
                      uint64_t& produced);
  int64_t run_hal(const dsl::Call& call, const std::vector<uint64_t>& results,
                  uint64_t& produced);

  device::Device& dev_;
  trace::DirectionalTracer tracer_;
  std::unique_ptr<ExecBackend> backend_;
  FaultInjector* fault_ = nullptr;
  kernel::TaskId native_task_ = 0;
  std::map<const hal::HalService*, size_t> crash_marks_;
  std::map<std::string, CallStat> call_stats_;
  uint64_t executions_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::Histogram* h_execute_ = nullptr;
  obs::Counter* c_programs_ = nullptr;
  obs::Counter* c_calls_ = nullptr;
  obs::Counter* c_reboots_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;  // cached only when enabled at attach
  std::string label_;
  std::vector<uint64_t> op_spans_;  // open driver-handler span ids
};

// Driver-state coverage matrices for every kernel driver, in registration
// order — the crash-provenance snapshot shape (Engine::state_coverage
// delegates here).
std::vector<obs::DriverStateCoverage> snapshot_driver_states(
    const kernel::Kernel& k);

}  // namespace df::core
