#include "core/exec/faults.h"

namespace df::core {

// Fault streams must be independent of the engine's generation stream (a
// zero-rate plan must not shift generation, and enabling faults must not
// re-seed the generator), so the plan seed is *derived* from the engine
// seed by a splitmix64 step rather than drawn from the engine Rng.
uint64_t derive_fault_seed(uint64_t engine_seed) {
  uint64_t z = engine_seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return (z ^ (z >> 31)) ^ 0x5fa3ull;
}

}  // namespace df::core
