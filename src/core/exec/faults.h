// Broker-side fault handling (paper §V harness robustness): wraps a
// device::FaultPlan with the transport policy a real campaign runner needs
// — a per-call deadline for hangs, bounded retry with exponential backoff
// for transport errors, and the accounting the engine surfaces as
// campaign.reboots / campaign.retries / campaign.lost_execs.
//
// Time here is *virtual*: the in-process device has no real transport, so
// deadlines, backoff waits, and reboot latency are modeled as deterministic
// microsecond charges (recovery_virtual_us). That keeps fault campaigns
// replayable while still producing a meaningful recovery-latency number
// for BENCH_fault_recovery.json.
#pragma once

#include <cstdint>

#include "device/fault_plan.h"

namespace df::core {

struct TransportPolicy {
  uint32_t max_retries = 3;           // transport-error retries per execute()
  uint64_t backoff_base_us = 100;     // first retry wait; doubles per retry
  uint64_t hang_timeout_us = 50000;   // per-call deadline before forced reboot
  uint64_t reboot_cost_us = 250000;   // modeled device reboot latency
};

struct FaultTotals {
  uint64_t injected = 0;          // fault decisions that fired
  uint64_t hangs = 0;             // deadline expiries (each forces a reboot)
  uint64_t transport_errors = 0;  // dropped attempts (retried or lost)
  uint64_t reboots = 0;           // fault-induced reboots (hang + spontaneous)
  uint64_t kasan_reboots = 0;     // reboot-after-KASAN policy firings
  uint64_t retries = 0;           // attempts re-sent after a transport error
  uint64_t lost_execs = 0;        // executions that produced no feedback
  uint64_t recovery_virtual_us = 0;  // modeled time spent recovering
};

class FaultInjector {
 public:
  explicit FaultInjector(device::FaultPlan plan, TransportPolicy policy = {})
      : plan_(std::move(plan)), policy_(policy) {}

  device::FaultPlan& plan() { return plan_; }
  const device::FaultPlan& plan() const { return plan_; }
  const TransportPolicy& policy() const { return policy_; }
  bool reboot_on_kasan() const { return plan_.reboot_on_kasan(); }

  // Backoff wait (virtual us) before retry number `retry` (0-based).
  uint64_t backoff_us(uint32_t retry) const {
    return policy_.backoff_base_us << retry;
  }

  FaultTotals& totals() { return totals_; }
  const FaultTotals& totals() const { return totals_; }

 private:
  device::FaultPlan plan_;
  TransportPolicy policy_;
  FaultTotals totals_;
};

// Deterministic per-engine fault-plan seed, derived (not drawn) from the
// engine seed so attaching a fault plan never perturbs generation.
uint64_t derive_fault_seed(uint64_t engine_seed);

}  // namespace df::core
