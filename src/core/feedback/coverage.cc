#include "core/feedback/coverage.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/distill.h"

namespace df::core {

std::vector<uint64_t> FeatureSet::add_new(
    const std::vector<uint64_t>& features) {
  std::vector<uint64_t> fresh;
  for (uint64_t f : features) {
    if (set_.insert(f)) {
      fresh.push_back(f);
      if (!trace::is_hal_feature(f)) ++kernel_count_;
    }
  }
  return fresh;
}

bool Corpus::add(Seed seed) {
  const uint64_t h = dsl::program_hash(seed.prog);
  if (!hashes_.insert(h)) return false;
  seed.hash = h;
  // Generation depth derives from the parent edge rather than being caller
  // supplied, so checkpoint restore (which replays adds in insertion order)
  // reproduces it exactly.
  if (seed.parent_hash != 0) {
    if (const Seed* parent = find_by_hash(seed.parent_hash);
        parent != nullptr) {
      seed.depth = parent->depth + 1;
    } else {
      seed.parent_hash = 0;  // parent never made the corpus: a root
    }
  }
  seeds_.push_back(std::move(seed));
  return true;
}

const Seed* Corpus::find_by_hash(uint64_t hash) const {
  if (hash == 0) return nullptr;
  for (const Seed& s : seeds_) {
    if (s.hash == hash) return &s;
  }
  return nullptr;
}

std::vector<obs::LineageLink> Corpus::ancestor_chain(uint64_t hash) const {
  std::vector<obs::LineageLink> chain;
  const Seed* s = find_by_hash(hash);
  while (s != nullptr) {
    obs::LineageLink link;
    link.hash = s->hash;
    link.origin = s->origin;
    link.exec_index = s->exec_index;
    link.depth = s->depth;
    chain.push_back(link);
    if (s->parent_hash == 0 || chain.size() > static_cast<size_t>(s->depth)) {
      break;  // root reached (or inconsistent edges: stop, never loop)
    }
    s = find_by_hash(s->parent_hash);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

obs::LineageSummary Corpus::lineage_summary(size_t top_n) const {
  obs::LineageSummary out;
  out.seeds = seeds_.size();
  // Root index by hash, in insertion order (the deterministic tie-break).
  std::vector<obs::AncestorYield> roots;
  std::vector<uint64_t> root_hashes;
  for (const Seed& s : seeds_) {
    out.max_depth = std::max<uint64_t>(out.max_depth, s.depth);
    if (s.depth >= out.depth_histogram.size()) {
      out.depth_histogram.resize(s.depth + 1, 0);
    }
    ++out.depth_histogram[s.depth];
    // Walk to the root, bounded by the recorded depth.
    const Seed* cur = &s;
    for (uint32_t hop = 0; hop < s.depth && cur->parent_hash != 0; ++hop) {
      const Seed* parent = find_by_hash(cur->parent_hash);
      if (parent == nullptr) break;
      cur = parent;
    }
    size_t idx = root_hashes.size();
    for (size_t i = 0; i < root_hashes.size(); ++i) {
      if (root_hashes[i] == cur->hash) {
        idx = i;
        break;
      }
    }
    if (idx == root_hashes.size()) {
      root_hashes.push_back(cur->hash);
      obs::AncestorYield a;
      a.hash = cur->hash;
      a.exec_index = cur->exec_index;
      roots.push_back(a);
    }
    ++roots[idx].descendants;  // counts the root itself as generation 0
    roots[idx].subtree_new_features += s.new_features;
  }
  out.roots = roots.size();
  std::stable_sort(roots.begin(), roots.end(),
                   [](const obs::AncestorYield& a,
                      const obs::AncestorYield& b) {
                     return a.subtree_new_features > b.subtree_new_features;
                   });
  if (roots.size() > top_n) roots.resize(top_n);
  out.top_ancestors = std::move(roots);
  return out;
}

DistillStats Corpus::distill(const FootprintFn& footprint, bool dry_run) {
  DistillStats stats;
  stats.before = seeds_.size();
  stats.dry_run = dry_run;
  const size_t n = seeds_.size();
  if (n == 0) {
    stats.after = 0;
    return stats;
  }

  // Static canonical footprints drive the greedy order; dynamic replay
  // footprints (when an oracle is given) are the coverage ground truth.
  std::vector<std::vector<uint64_t>> stat(n);
  std::vector<std::vector<uint64_t>> dyn(n);
  for (size_t i = 0; i < n; ++i) {
    stat[i] = analysis::static_footprint(seeds_[i].prog);
    if (footprint) {
      dyn[i] = footprint(seeds_[i].prog);
      std::sort(dyn[i].begin(), dyn[i].end());
      dyn[i].erase(std::unique(dyn[i].begin(), dyn[i].end()), dyn[i].end());
    }
  }
  // Largest canonical footprint first; insertion order breaks ties, so the
  // result is a pure function of corpus content.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return stat[a].size() > stat[b].size();
  });

  util::U64Set covered;
  std::vector<size_t> kept_idx;
  std::vector<bool> drop(n, false);
  for (const size_t i : order) {
    bool redundant = false;
    bool statically_subsumed = false;
    for (const size_t k : kept_idx) {
      if (analysis::subsumes(stat[i], stat[k])) {
        statically_subsumed = true;
        break;
      }
    }
    if (footprint) {
      redundant = std::all_of(dyn[i].begin(), dyn[i].end(), [&](uint64_t f) {
        return covered.contains(f);
      });
    } else {
      redundant = statically_subsumed;
    }
    if (redundant) {
      drop[i] = true;
      if (statically_subsumed) {
        ++stats.dropped_static;
      } else {
        ++stats.dropped_covered;
      }
    } else {
      kept_idx.push_back(i);
      for (const uint64_t f : dyn[i]) covered.insert(f);
    }
  }
  stats.after = n - stats.dropped_static - stats.dropped_covered;
  if (footprint) {
    stats.footprint_union = covered.size();
    // The hard contract, re-checked end to end: replaying the kept seeds a
    // second time must reproduce the full union bit-identically.
    util::U64Set replayed;
    for (const size_t k : kept_idx) {
      for (const uint64_t f : footprint(seeds_[k].prog)) replayed.insert(f);
    }
    const std::vector<uint64_t> union_values = covered.values();
    stats.verified =
        replayed.size() == covered.size() &&
        std::all_of(union_values.begin(), union_values.end(),
                    [&](uint64_t f) { return replayed.contains(f); });
  }

  if (!dry_run && stats.after < n) {
    std::vector<Seed> kept;
    kept.reserve(stats.after);
    for (size_t i = 0; i < n; ++i) {
      if (!drop[i]) kept.push_back(std::move(seeds_[i]));
    }
    seeds_ = std::move(kept);
  }
  return stats;
}

double Corpus::energy(const Seed& s) const {
  // Richer seeds carry more energy; repeated picking cools them down.
  const double richness = std::log2(2.0 + static_cast<double>(s.new_features));
  const double fatigue = 1.0 + 0.1 * static_cast<double>(s.hits);
  return richness / fatigue;
}

const Seed& Corpus::pick(util::Rng& rng) {
  ++picks_;
  std::vector<double> w;
  w.reserve(seeds_.size());
  for (const Seed& s : seeds_) w.push_back(energy(s));
  Seed& chosen = seeds_[rng.weighted(w)];
  ++chosen.hits;
  return chosen;
}

}  // namespace df::core
