#include "core/feedback/coverage.h"

#include <algorithm>
#include <cmath>

namespace df::core {

std::vector<uint64_t> FeatureSet::add_new(
    const std::vector<uint64_t>& features) {
  std::vector<uint64_t> fresh;
  for (uint64_t f : features) {
    if (set_.insert(f)) {
      fresh.push_back(f);
      if (!trace::is_hal_feature(f)) ++kernel_count_;
    }
  }
  return fresh;
}

bool Corpus::add(Seed seed) {
  const uint64_t h = dsl::program_hash(seed.prog);
  if (!hashes_.insert(h)) return false;
  seed.hash = h;
  // Generation depth derives from the parent edge rather than being caller
  // supplied, so checkpoint restore (which replays adds in insertion order)
  // reproduces it exactly.
  if (seed.parent_hash != 0) {
    if (const Seed* parent = find_by_hash(seed.parent_hash);
        parent != nullptr) {
      seed.depth = parent->depth + 1;
    } else {
      seed.parent_hash = 0;  // parent never made the corpus: a root
    }
  }
  seeds_.push_back(std::move(seed));
  return true;
}

const Seed* Corpus::find_by_hash(uint64_t hash) const {
  if (hash == 0) return nullptr;
  for (const Seed& s : seeds_) {
    if (s.hash == hash) return &s;
  }
  return nullptr;
}

std::vector<obs::LineageLink> Corpus::ancestor_chain(uint64_t hash) const {
  std::vector<obs::LineageLink> chain;
  const Seed* s = find_by_hash(hash);
  while (s != nullptr) {
    obs::LineageLink link;
    link.hash = s->hash;
    link.origin = s->origin;
    link.exec_index = s->exec_index;
    link.depth = s->depth;
    chain.push_back(link);
    if (s->parent_hash == 0 || chain.size() > static_cast<size_t>(s->depth)) {
      break;  // root reached (or inconsistent edges: stop, never loop)
    }
    s = find_by_hash(s->parent_hash);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

obs::LineageSummary Corpus::lineage_summary(size_t top_n) const {
  obs::LineageSummary out;
  out.seeds = seeds_.size();
  // Root index by hash, in insertion order (the deterministic tie-break).
  std::vector<obs::AncestorYield> roots;
  std::vector<uint64_t> root_hashes;
  for (const Seed& s : seeds_) {
    out.max_depth = std::max<uint64_t>(out.max_depth, s.depth);
    if (s.depth >= out.depth_histogram.size()) {
      out.depth_histogram.resize(s.depth + 1, 0);
    }
    ++out.depth_histogram[s.depth];
    // Walk to the root, bounded by the recorded depth.
    const Seed* cur = &s;
    for (uint32_t hop = 0; hop < s.depth && cur->parent_hash != 0; ++hop) {
      const Seed* parent = find_by_hash(cur->parent_hash);
      if (parent == nullptr) break;
      cur = parent;
    }
    size_t idx = root_hashes.size();
    for (size_t i = 0; i < root_hashes.size(); ++i) {
      if (root_hashes[i] == cur->hash) {
        idx = i;
        break;
      }
    }
    if (idx == root_hashes.size()) {
      root_hashes.push_back(cur->hash);
      obs::AncestorYield a;
      a.hash = cur->hash;
      a.exec_index = cur->exec_index;
      roots.push_back(a);
    }
    ++roots[idx].descendants;  // counts the root itself as generation 0
    roots[idx].subtree_new_features += s.new_features;
  }
  out.roots = roots.size();
  std::stable_sort(roots.begin(), roots.end(),
                   [](const obs::AncestorYield& a,
                      const obs::AncestorYield& b) {
                     return a.subtree_new_features > b.subtree_new_features;
                   });
  if (roots.size() > top_n) roots.resize(top_n);
  out.top_ancestors = std::move(roots);
  return out;
}

double Corpus::energy(const Seed& s) const {
  // Richer seeds carry more energy; repeated picking cools them down.
  const double richness = std::log2(2.0 + static_cast<double>(s.new_features));
  const double fatigue = 1.0 + 0.1 * static_cast<double>(s.hits);
  return richness / fatigue;
}

const Seed& Corpus::pick(util::Rng& rng) {
  ++picks_;
  std::vector<double> w;
  w.reserve(seeds_.size());
  for (const Seed& s : seeds_) w.push_back(energy(s));
  Seed& chosen = seeds_[rng.weighted(w)];
  ++chosen.hits;
  return chosen;
}

}  // namespace df::core
