#include "core/feedback/coverage.h"

#include <cmath>

namespace df::core {

std::vector<uint64_t> FeatureSet::add_new(
    const std::vector<uint64_t>& features) {
  std::vector<uint64_t> fresh;
  for (uint64_t f : features) {
    if (set_.insert(f)) {
      fresh.push_back(f);
      if (!trace::is_hal_feature(f)) ++kernel_count_;
    }
  }
  return fresh;
}

bool Corpus::add(Seed seed) {
  const uint64_t h = dsl::program_hash(seed.prog);
  if (!hashes_.insert(h)) return false;
  seeds_.push_back(std::move(seed));
  return true;
}

double Corpus::energy(const Seed& s) const {
  // Richer seeds carry more energy; repeated picking cools them down.
  const double richness = std::log2(2.0 + static_cast<double>(s.new_features));
  const double fatigue = 1.0 + 0.1 * static_cast<double>(s.hits);
  return richness / fatigue;
}

const Seed& Corpus::pick(util::Rng& rng) {
  ++picks_;
  std::vector<double> w;
  w.reserve(seeds_.size());
  for (const Seed& s : seeds_) w.push_back(energy(s));
  Seed& chosen = seeds_[rng.weighted(w)];
  ++chosen.hits;
  return chosen;
}

}  // namespace df::core
