// Cross-boundary execution state feedback (paper §IV-D).
//
// One uniform 64-bit feature space holds both kinds of signal:
//  * kcov kernel edges — (driver_id << 48) | block,
//  * HAL directional syscall coverage — pseudo-driver 0xffff features from
//    trace::DirectionalTracer.
// The FeatureSet and Corpus below therefore never distinguish the two: the
// paper's "analysis logic for both types of coverage remains the same".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dsl/prog.h"
#include "obs/analytics.h"
#include "trace/syscall_trace.h"
#include "util/rng.h"
#include "util/u64_set.h"

namespace df::core {

// Cumulative feature set on the feedback hot path: every execution's
// collected features funnel through add_new(), so the store is the flat
// open-addressing util::U64Set rather than std::unordered_set (see
// BM_FeatureSetAddNew in bench_micro.cc for the measured difference).
class FeatureSet {
 public:
  // Inserts all features; returns the ones that were new.
  std::vector<uint64_t> add_new(const std::vector<uint64_t>& features);
  bool contains(uint64_t f) const { return set_.contains(f); }

  size_t size() const { return set_.size(); }
  // Kernel-only count (excludes HAL directional features) — the paper's
  // "kernel coverage" metric for Figs. 4/5 and Table III.
  size_t kernel_size() const { return kernel_count_; }
  size_t hal_size() const { return set_.size() - kernel_count_; }

  // Checkpoint support: every stored feature, ascending. Feeding the result
  // back through add_new() reproduces this set exactly (the underlying
  // U64Set layout is value-dependent, not insertion-order-dependent).
  std::vector<uint64_t> values() const { return set_.values(); }

 private:
  util::U64Set set_;
  size_t kernel_count_ = 0;
};

struct Seed {
  dsl::Program prog;
  size_t new_features = 0;   // features this seed contributed when added
  uint64_t exec_index = 0;   // when it was found (for recency weighting)
  uint64_t hits = 0;         // times picked for mutation
  // --- lineage (DESIGN.md §11) --------------------------------------------
  uint64_t hash = 0;         // dsl::program_hash(prog); filled by Corpus::add
  uint64_t parent_hash = 0;  // hash of the corpus seed it mutated (0 = root)
  uint32_t depth = 0;        // generations from a root; derived by add()
  obs::ProgramOrigin origin = obs::ProgramOrigin::kGenerate;
};

// Outcome of one Corpus::distill() run (exported to BENCH_*.json and
// /status as the "distill" block).
struct DistillStats {
  size_t before = 0;           // seeds before distillation
  size_t after = 0;            // seeds kept
  size_t dropped_static = 0;   // statically subsumed by a single kept seed
  size_t dropped_covered = 0;  // replay footprint covered by the kept union
  size_t footprint_union = 0;  // distinct replay features+transitions (0 =
                               // static-only mode, no replay oracle given)
  bool verified = false;       // kept-set re-replay reproduced the union
                               // bit-identically (always false static-only)
  bool dry_run = false;

  double fraction_dropped() const {
    return before == 0
               ? 0.0
               : static_cast<double>(before - after) /
                     static_cast<double>(before);
  }
};

// Seed corpus with energy-weighted selection: fresh, feature-rich seeds are
// mutated more; stale, over-fuzzed seeds fade. Every seed carries its
// lineage (parent edge, origin, generation depth) so campaigns can explain
// where coverage came from.
class Corpus {
 public:
  // Adds a seed if its program hash is unseen. Returns true when added.
  // Fills seed.hash and derives seed.depth from the parent (parent edges
  // pointing outside the corpus make the seed a root).
  bool add(Seed seed);
  bool empty() const { return seeds_.empty(); }
  size_t size() const { return seeds_.size(); }

  // Energy-weighted pick; increments the seed's hit counter.
  const Seed& pick(util::Rng& rng);
  const Seed& at(size_t i) const { return seeds_[i]; }

  // Lineage lookups. find_by_hash is a linear scan — adds are rare relative
  // to executions, and callers are on cold paths (crash triage, export).
  const Seed* find_by_hash(uint64_t hash) const;
  // Root-first derivation chain ending at the seed with `hash` (empty when
  // the hash is not in the corpus). Bounded by the recorded depths, so a
  // corrupted parent edge cannot loop.
  std::vector<obs::LineageLink> ancestor_chain(uint64_t hash) const;
  // Corpus-wide digest: depth histogram plus the `top_n` ancestors ranked
  // by subtree feature yield (deterministic tie-break on insertion order).
  obs::LineageSummary lineage_summary(size_t top_n = 5) const;

  // --- subsumption-based distillation (DESIGN.md §12) ----------------------
  // Replay oracle: the seed's dynamic coverage footprint (features plus
  // driver state-transition tokens), replayed on a scratch device so the
  // campaign is untouched. Must be deterministic per program.
  using FootprintFn =
      std::function<std::vector<uint64_t>(const dsl::Program&)>;

  // Drops semantically redundant seeds. Seeds are processed in a
  // deterministic greedy order (static canonical-footprint size descending,
  // insertion order as the tie-break) and a seed is dropped only when it
  // cannot contribute coverage the kept set does not already have:
  //  * with a `footprint` oracle, when its replayed footprint is a subset
  //    of the kept seeds' union — so union(kept) == union(all) and a full
  //    replay of the distilled corpus reproduces bit-identical coverage
  //    (re-verified by a second replay of the kept set; `verified`);
  //  * without one (static-only mode), only when a single kept seed's
  //    canonical footprint subsumes its own (analysis::subsumes).
  // `dry_run` computes the stats without erasing anything. Hashes of
  // dropped seeds stay registered, so re-encountering a distilled-away
  // program never re-adds it.
  DistillStats distill(const FootprintFn& footprint, bool dry_run = false);

  uint64_t total_picks() const { return picks_; }
  // Checkpoint support: restores the cumulative pick counter (it feeds the
  // recency term of energy(), so a resumed run must not restart it at 0).
  void restore_picks(uint64_t picks) { picks_ = picks; }

 private:
  double energy(const Seed& s) const;

  std::vector<Seed> seeds_;
  util::U64Set hashes_;
  uint64_t picks_ = 0;
};

}  // namespace df::core
