#include "core/fuzz/checkpoint.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/fuzz/daemon.h"
#include "device/snapshot.h"
#include "dsl/fmt.h"
#include "kernel/snapshot.h"
#include "dsl/parse.h"
#include "obs/analytics.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "util/log.h"

namespace df::core {

namespace {

// 64-bit values (RNG words, cursors, double bit patterns) are stored as
// "0x..." strings: JsonWriter prints doubles with %.6g, which does not
// round-trip, and u64 cursors can exceed the 2^53 double-exact range.
std::string hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string bits_of(double d) { return hex64(std::bit_cast<uint64_t>(d)); }

// Snapshot byte images travel as lowercase hex strings: JSON has no byte
// type, and base64 would need a decoder json_parse.h does not have.
std::string hex_bytes(const std::vector<uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

bool bytes_from_hex(const std::string& hex, std::vector<uint8_t>* out) {
  if (hex.size() % 2 != 0) return false;
  const auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nib(hex[i]);
    const int lo = nib(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return true;
}

void write_rng(obs::JsonWriter& w, std::string_view key,
               const util::RngState& st) {
  w.key(key).begin_array();
  for (uint64_t word : st.s) w.value(hex64(word));
  w.end_array();
}

// --- restore-side accessors: every miss is a hard, described error --------

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = "checkpoint: " + what;
  return false;
}

const obs::JsonValue* member(const obs::JsonValue& obj, const char* key) {
  return obj.is_object() ? obj.find(key) : nullptr;
}

bool get_u64(const obs::JsonValue& obj, const char* key, uint64_t* out,
             std::string* error, const char* ctx) {
  const obs::JsonValue* v = member(obj, key);
  if (v == nullptr || (!v->is_number() && !v->is_string())) {
    return fail(error, std::string(ctx) + ": missing field '" + key + "'");
  }
  *out = v->as_u64();
  return true;
}

bool get_str(const obs::JsonValue& obj, const char* key, std::string* out,
             std::string* error, const char* ctx) {
  const obs::JsonValue* v = member(obj, key);
  if (v == nullptr || !v->is_string()) {
    return fail(error, std::string(ctx) + ": missing field '" + key + "'");
  }
  *out = v->scalar;
  return true;
}

bool get_rng(const obs::JsonValue& obj, const char* key, util::RngState* out,
             std::string* error, const char* ctx) {
  const obs::JsonValue* v = member(obj, key);
  if (v == nullptr || !v->is_array() || v->items.size() != 4) {
    return fail(error,
                std::string(ctx) + ": field '" + key + "' is not rng[4]");
  }
  for (size_t i = 0; i < 4; ++i) out->s[i] = v->items[i].as_u64();
  return true;
}

bool get_u64_array(const obs::JsonValue& obj, const char* key,
                   std::vector<uint64_t>* out, std::string* error,
                   const char* ctx) {
  const obs::JsonValue* v = member(obj, key);
  if (v == nullptr || !v->is_array()) {
    return fail(error,
                std::string(ctx) + ": field '" + key + "' is not an array");
  }
  out->clear();
  out->reserve(v->items.size());
  for (const auto& item : v->items) out->push_back(item.as_u64());
  return true;
}

}  // namespace

// --- per-device serialization ---------------------------------------------

void CampaignCheckpoint::serialize_device(obs::JsonWriter& w,
                                          const std::string& id,
                                          Engine& eng) {
  device::Device& dev = eng.dev_;
  kernel::Kernel& k = dev.kernel();

  w.begin_object();
  w.field("id", id);
  w.field("exec_count", eng.exec_count_);
  write_rng(w, "rng", eng.rng_.state());

  const kernel::Kernel::Cursors kc = k.cursors();
  w.key("kernel").begin_object();
  write_rng(w, "rng", kc.rng);
  w.field("reboots", kc.reboot_count);
  w.field("syscalls", kc.syscall_count);
  w.field("next_map", hex64(kc.next_map));
  w.field("next_task", static_cast<uint64_t>(kc.next_task));
  w.field("heap_next", hex64(kc.heap_next));
  w.end_object();

  w.key("broker").begin_object();
  w.field("executions", eng.broker_->executions_);
  const kernel::Task* nt = k.task(eng.broker_->native_task_);
  w.field("next_fd",
          static_cast<uint64_t>(nt != nullptr ? nt->fds.next_fd() : 3));
  w.end_object();

  if (eng.fault_ != nullptr) {
    const FaultTotals& t = eng.fault_->totals();
    w.key("fault").begin_object();
    write_rng(w, "rng", eng.fault_->plan().rng_state());
    w.field("decisions", eng.fault_->plan().decisions());
    w.field("injected", t.injected);
    w.field("hangs", t.hangs);
    w.field("transport_errors", t.transport_errors);
    w.field("reboots", t.reboots);
    w.field("kasan_reboots", t.kasan_reboots);
    w.field("retries", t.retries);
    w.field("lost_execs", t.lost_execs);
    w.field("recovery_virtual_us", t.recovery_virtual_us);
    w.end_object();
  }

  w.key("features").begin_array();
  for (uint64_t f : eng.features_.values()) w.value(hex64(f));
  w.end_array();

  w.key("corpus").begin_object();
  w.field("picks", eng.corpus_.total_picks());
  w.key("seeds").begin_array();
  for (size_t i = 0; i < eng.corpus_.size(); ++i) {
    const Seed& s = eng.corpus_.at(i);
    w.begin_object();
    w.field("prog", dsl::format_program(s.prog));
    w.field("new_features", static_cast<uint64_t>(s.new_features));
    w.field("exec_index", s.exec_index);
    w.field("hits", s.hits);
    w.field("origin", std::string(obs::origin_name(s.origin)));
    w.field("parent", hex64(s.parent_hash));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("relations").begin_array();
  for (const RelationGraph::Edge& e : eng.rel_.edges()) {
    w.begin_array();
    w.value(static_cast<uint64_t>(e.from));
    w.value(static_cast<uint64_t>(e.to));
    w.value(bits_of(e.weight));
    w.end_array();
  }
  w.end_array();

  w.key("bugs").begin_object();
  w.field("total_reports", eng.crash_log_.total_reports());
  w.key("records").begin_array();
  for (const BugRecord& b : eng.crash_log_.bugs()) {
    w.begin_object();
    w.field("title", b.title);
    w.field("component", b.component);
    w.field("origin", b.origin);
    w.field("bug_class", b.bug_class);
    w.field("first_exec", b.first_exec);
    w.field("dup_count", b.dup_count);
    w.field("repro", b.repro_text);
    w.key("lineage").begin_array();
    for (const obs::LineageLink& l : b.lineage) {
      w.begin_object();
      w.field("hash", hex64(l.hash));
      w.field("origin", std::string(obs::origin_name(l.origin)));
      w.field("exec", l.exec_index);
      w.field("depth", l.depth);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("plan_queue").begin_array();
  for (const Engine::QueuedProgram& q : eng.plan_queue_) {
    w.begin_object();
    w.field("prog", dsl::format_program(q.prog));
    w.field("origin", std::string(obs::origin_name(q.origin)));
    w.field("parent", hex64(q.parent_hash));
    w.field("has_target", q.has_target);
    w.field("target_driver", static_cast<uint64_t>(q.target_driver));
    w.field("target_state", static_cast<uint64_t>(q.target_state));
    w.field("snapshot", q.snapshot != nullptr ? q.snapshot->seq : 0);
    w.end_object();
  }
  w.end_array();

  // Live snapshot state (DESIGN.md §13): every distinct snapshot referenced
  // by the COW pool, the fault-recovery anchor, or a queued fork, keyed by
  // capture sequence id (seq 0 is reserved for "none"). Byte images re-own
  // their sections on restore — delta sharing is a capture-time
  // optimization, so flattening it here changes nothing observable.
  std::map<uint64_t, const device::StateSnapshot*> images;
  for (const auto& s : eng.snap_pool_) {
    if (s != nullptr) images[s->seq] = s.get();
  }
  if (eng.last_good_ != nullptr) images[eng.last_good_->seq] =
      eng.last_good_.get();
  for (const Engine::QueuedProgram& q : eng.plan_queue_) {
    if (q.snapshot != nullptr) images[q.snapshot->seq] = q.snapshot.get();
  }
  w.key("snapshots").begin_object();
  // Config that shapes the snapshot trajectory: a resume-side engine with a
  // different toggle or cadence would fork/capture on a different schedule
  // and silently diverge from the author's continuation, so both are
  // validated on restore (like the fault configuration).
  w.field("enabled", static_cast<uint64_t>(eng.cfg_.use_snapshots ? 1 : 0));
  w.field("every", eng.cfg_.snapshot_every);
  w.field("seq", eng.snap_seq_);
  const SnapshotStats& st = eng.snap_stats_;
  w.key("stats").begin_array();
  w.value(st.captures);
  w.value(st.restores);
  w.value(st.forks);
  w.value(st.fault_recoveries);
  w.value(st.prefix_execs_saved);
  w.value(st.prefix_calls_saved);
  w.value(st.sections_total);
  w.value(st.sections_shared);
  w.value(st.bytes_total);
  w.value(st.bytes_shared);
  w.end_array();
  w.key("images").begin_array();
  for (const auto& [seq, snap] : images) {
    w.value(hex_bytes(device::snapshot_to_bytes(*snap)));
  }
  w.end_array();
  w.key("pool").begin_array();
  for (const auto& s : eng.snap_pool_) w.value(s != nullptr ? s->seq : 0);
  w.end_array();
  w.field("last_good", eng.last_good_ != nullptr ? eng.last_good_->seq : 0);
  w.end_object();

  // Per-operator yield table, rows in ProgramOrigin enum order, each row
  // [attempts, total_calls, accepts, new_features, new_states, bugs].
  w.key("attribution").begin_array();
  for (size_t i = 0; i < obs::kProgramOriginCount; ++i) {
    const obs::OperatorYield& y =
        eng.attribution_.row(static_cast<obs::ProgramOrigin>(i));
    w.begin_array();
    w.value(y.attempts);
    w.value(y.total_calls);
    w.value(y.accepts);
    w.value(y.new_features);
    w.value(y.new_states);
    w.value(y.bugs);
    w.end_array();
  }
  w.end_array();

  // std::map iteration order is sorted, so this block is deterministic.
  w.key("plan_attempts").begin_array();
  for (const auto& [key, pa] : eng.plan_attempts_) {
    w.begin_object();
    w.field("driver", static_cast<uint64_t>(key.first));
    w.field("state", static_cast<uint64_t>(key.second));
    w.field("injected", pa.injected);
    w.field("materialize_failed", pa.materialize_failed);
    w.field("executed_no_visit", pa.executed_no_visit);
    w.end_object();
  }
  w.end_array();

  // Campaign-cumulative state-machine tallies, in driver registration order
  // (they survive the barrier reboot on the save side, so they must be
  // carried over the fresh boot on the resume side). The live-state blob
  // rides along too: reboot-persistent fields (rt1711's probe counter)
  // influence coverage emitted on later boots, and a fresh restore-side
  // boot would re-derive them from zero instead of the campaign's history.
  w.key("drivers").begin_array();
  for (const auto& d : k.drivers()) {
    w.begin_object();
    w.field("current", static_cast<uint64_t>(d->current_state()));
    w.key("visits").begin_array();
    for (uint64_t v : d->state_visits()) w.value(v);
    w.end_array();
    w.key("matrix").begin_array();
    for (uint64_t v : d->state_matrix()) w.value(v);
    w.end_array();
    kernel::StateBuf sb;
    d->save_state(sb);
    w.field("state", hex_bytes(sb.bytes()));
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

namespace {

bool parse_program_field(const obs::JsonValue& obj, const char* key,
                         Engine& eng, dsl::Program* out, std::string* error,
                         const char* ctx) {
  std::string text;
  if (!get_str(obj, key, &text, error, ctx)) return false;
  auto prog = dsl::parse_program(text, eng.calls());
  if (!prog.has_value()) {
    return fail(error, std::string(ctx) + ": unparsable program");
  }
  *out = std::move(*prog);
  return true;
}

}  // namespace

bool CampaignCheckpoint::restore_device(const obs::JsonValue& d,
                                        const std::string& id, Engine& eng,
                                        std::string* error) {
  const std::string ctx = "device " + id;
  device::Device& dev = eng.dev_;
  kernel::Kernel& k = dev.kernel();

  // Mirror the save-side sequence: a fully set-up engine on a freshly
  // barrier-rebooted device, then overwrite every cursor/stream.
  eng.setup();
  dev.reboot();

  if (!get_u64(d, "exec_count", &eng.exec_count_, error, ctx.c_str())) {
    return false;
  }
  util::RngState rng;
  if (!get_rng(d, "rng", &rng, error, ctx.c_str())) return false;
  eng.rng_.set_state(rng);

  const obs::JsonValue* kv = member(d, "kernel");
  if (kv == nullptr) return fail(error, ctx + ": missing 'kernel'");
  kernel::Kernel::Cursors kc;
  uint64_t next_task = 0;
  if (!get_rng(*kv, "rng", &kc.rng, error, ctx.c_str()) ||
      !get_u64(*kv, "reboots", &kc.reboot_count, error, ctx.c_str()) ||
      !get_u64(*kv, "syscalls", &kc.syscall_count, error, ctx.c_str()) ||
      !get_u64(*kv, "next_map", &kc.next_map, error, ctx.c_str()) ||
      !get_u64(*kv, "next_task", &next_task, error, ctx.c_str()) ||
      !get_u64(*kv, "heap_next", &kc.heap_next, error, ctx.c_str())) {
    return false;
  }
  kc.next_task = static_cast<uint32_t>(next_task);
  k.restore_cursors(kc);

  const obs::JsonValue* bv = member(d, "broker");
  if (bv == nullptr) return fail(error, ctx + ": missing 'broker'");
  uint64_t next_fd = 0;
  if (!get_u64(*bv, "executions", &eng.broker_->executions_, error,
               ctx.c_str()) ||
      !get_u64(*bv, "next_fd", &next_fd, error, ctx.c_str())) {
    return false;
  }
  if (kernel::Task* nt = k.task(eng.broker_->native_task_)) {
    nt->fds.set_next_fd(static_cast<int32_t>(next_fd));
  }

  const obs::JsonValue* fv = member(d, "fault");
  if ((fv != nullptr) != (eng.fault_ != nullptr)) {
    return fail(error, ctx + ": fault configuration mismatch");
  }
  if (fv != nullptr) {
    util::RngState frng;
    uint64_t decisions = 0;
    FaultTotals& t = eng.fault_->totals();
    if (!get_rng(*fv, "rng", &frng, error, ctx.c_str()) ||
        !get_u64(*fv, "decisions", &decisions, error, ctx.c_str()) ||
        !get_u64(*fv, "injected", &t.injected, error, ctx.c_str()) ||
        !get_u64(*fv, "hangs", &t.hangs, error, ctx.c_str()) ||
        !get_u64(*fv, "transport_errors", &t.transport_errors, error,
                 ctx.c_str()) ||
        !get_u64(*fv, "reboots", &t.reboots, error, ctx.c_str()) ||
        !get_u64(*fv, "kasan_reboots", &t.kasan_reboots, error,
                 ctx.c_str()) ||
        !get_u64(*fv, "retries", &t.retries, error, ctx.c_str()) ||
        !get_u64(*fv, "lost_execs", &t.lost_execs, error, ctx.c_str()) ||
        !get_u64(*fv, "recovery_virtual_us", &t.recovery_virtual_us, error,
                 ctx.c_str())) {
      return false;
    }
    eng.fault_->plan().restore(frng, decisions);
  }

  std::vector<uint64_t> features;
  if (!get_u64_array(d, "features", &features, error, ctx.c_str())) {
    return false;
  }
  eng.features_.add_new(features);

  const obs::JsonValue* cv = member(d, "corpus");
  if (cv == nullptr) return fail(error, ctx + ": missing 'corpus'");
  uint64_t picks = 0;
  if (!get_u64(*cv, "picks", &picks, error, ctx.c_str())) return false;
  const obs::JsonValue* seeds = member(*cv, "seeds");
  if (seeds == nullptr || !seeds->is_array()) {
    return fail(error, ctx + ": missing 'corpus.seeds'");
  }
  for (const auto& sv : seeds->items) {
    Seed seed;
    uint64_t nf = 0;
    std::string origin;
    if (!parse_program_field(sv, "prog", eng, &seed.prog, error,
                             ctx.c_str()) ||
        !get_u64(sv, "new_features", &nf, error, ctx.c_str()) ||
        !get_u64(sv, "exec_index", &seed.exec_index, error, ctx.c_str()) ||
        !get_u64(sv, "hits", &seed.hits, error, ctx.c_str()) ||
        !get_str(sv, "origin", &origin, error, ctx.c_str()) ||
        !get_u64(sv, "parent", &seed.parent_hash, error, ctx.c_str())) {
      return false;
    }
    const auto o = obs::origin_from_name(origin);
    if (!o.has_value()) {
      return fail(error, ctx + ": unknown seed origin '" + origin + "'");
    }
    seed.origin = *o;
    seed.new_features = static_cast<size_t>(nf);
    // Corpus::add recomputes hash and generation depth; seeds restore in
    // insertion order, so every parent is present before its children and
    // the derived depths match the saved campaign exactly.
    eng.corpus_.add(std::move(seed));
  }
  eng.corpus_.restore_picks(picks);

  const obs::JsonValue* rv = member(d, "relations");
  if (rv == nullptr || !rv->is_array()) {
    return fail(error, ctx + ": missing 'relations'");
  }
  for (const auto& ev : rv->items) {
    if (!ev.is_array() || ev.items.size() != 3) {
      return fail(error, ctx + ": malformed relation edge");
    }
    eng.rel_.restore_edge(
        static_cast<size_t>(ev.items[0].as_u64()),
        static_cast<size_t>(ev.items[1].as_u64()),
        std::bit_cast<double>(ev.items[2].as_u64()));
  }

  const obs::JsonValue* bugs = member(d, "bugs");
  if (bugs == nullptr) return fail(error, ctx + ": missing 'bugs'");
  uint64_t total_reports = 0;
  if (!get_u64(*bugs, "total_reports", &total_reports, error, ctx.c_str())) {
    return false;
  }
  const obs::JsonValue* records = member(*bugs, "records");
  if (records == nullptr || !records->is_array()) {
    return fail(error, ctx + ": missing 'bugs.records'");
  }
  for (const auto& bv2 : records->items) {
    BugRecord b;
    if (!get_str(bv2, "title", &b.title, error, ctx.c_str()) ||
        !get_str(bv2, "component", &b.component, error, ctx.c_str()) ||
        !get_str(bv2, "origin", &b.origin, error, ctx.c_str()) ||
        !get_str(bv2, "bug_class", &b.bug_class, error, ctx.c_str()) ||
        !get_u64(bv2, "first_exec", &b.first_exec, error, ctx.c_str()) ||
        !get_u64(bv2, "dup_count", &b.dup_count, error, ctx.c_str()) ||
        !get_str(bv2, "repro", &b.repro_text, error, ctx.c_str())) {
      return false;
    }
    auto prog = dsl::parse_program(b.repro_text, eng.calls());
    if (!prog.has_value()) {
      return fail(error, ctx + ": unparsable bug reproducer");
    }
    b.repro = std::move(*prog);
    const obs::JsonValue* lv = member(bv2, "lineage");
    if (lv == nullptr || !lv->is_array()) {
      return fail(error, ctx + ": bug record without 'lineage'");
    }
    for (const auto& linkv : lv->items) {
      obs::LineageLink l;
      std::string oname;
      if (!get_u64(linkv, "hash", &l.hash, error, ctx.c_str()) ||
          !get_str(linkv, "origin", &oname, error, ctx.c_str()) ||
          !get_u64(linkv, "exec", &l.exec_index, error, ctx.c_str()) ||
          !get_u64(linkv, "depth", &l.depth, error, ctx.c_str())) {
        return false;
      }
      const auto lo = obs::origin_from_name(oname);
      if (!lo.has_value()) {
        return fail(error, ctx + ": unknown lineage origin '" + oname + "'");
      }
      l.origin = *lo;
      b.lineage.push_back(l);
    }
    eng.crash_log_.restore_bug(std::move(b));
  }
  eng.crash_log_.set_total_reports(total_reports);

  // Snapshots first: plan_queue entries reference them by seq.
  const obs::JsonValue* snv = member(d, "snapshots");
  if (snv == nullptr) return fail(error, ctx + ": missing 'snapshots'");
  uint64_t snap_enabled = 0;
  uint64_t snap_every = 0;
  if (!get_u64(*snv, "enabled", &snap_enabled, error, ctx.c_str()) ||
      !get_u64(*snv, "every", &snap_every, error, ctx.c_str())) {
    return false;
  }
  if ((snap_enabled != 0) != eng.cfg_.use_snapshots ||
      (snap_enabled != 0 && snap_every != eng.cfg_.snapshot_every)) {
    return fail(error, ctx +
                           ": snapshot configuration mismatch (checkpoint "
                           "enabled=" +
                           std::to_string(snap_enabled) + " every=" +
                           std::to_string(snap_every) + ", engine enabled=" +
                           std::to_string(eng.cfg_.use_snapshots ? 1 : 0) +
                           " every=" +
                           std::to_string(eng.cfg_.snapshot_every) + ")");
  }
  if (!get_u64(*snv, "seq", &eng.snap_seq_, error, ctx.c_str())) {
    return false;
  }
  const obs::JsonValue* stats = member(*snv, "stats");
  if (stats == nullptr || !stats->is_array() || stats->items.size() != 10) {
    return fail(error, ctx + ": missing or malformed 'snapshots.stats'");
  }
  SnapshotStats& st = eng.snap_stats_;
  st.captures = stats->items[0].as_u64();
  st.restores = stats->items[1].as_u64();
  st.forks = stats->items[2].as_u64();
  st.fault_recoveries = stats->items[3].as_u64();
  st.prefix_execs_saved = stats->items[4].as_u64();
  st.prefix_calls_saved = stats->items[5].as_u64();
  st.sections_total = stats->items[6].as_u64();
  st.sections_shared = stats->items[7].as_u64();
  st.bytes_total = stats->items[8].as_u64();
  st.bytes_shared = stats->items[9].as_u64();
  const obs::JsonValue* imgs = member(*snv, "images");
  if (imgs == nullptr || !imgs->is_array()) {
    return fail(error, ctx + ": missing 'snapshots.images'");
  }
  // Rebuild shared_ptr identity by seq: the pool, the fault-recovery
  // anchor, and queue entries that referenced the same snapshot on the
  // save side share one object again after restore.
  std::map<uint64_t, std::shared_ptr<const device::StateSnapshot>> by_seq;
  for (const auto& iv : imgs->items) {
    if (!iv.is_string()) {
      return fail(error, ctx + ": snapshot image is not a hex string");
    }
    std::vector<uint8_t> bytes;
    if (!bytes_from_hex(iv.scalar, &bytes)) {
      return fail(error, ctx + ": snapshot image is not valid hex");
    }
    device::StateSnapshot snap;
    std::string snap_error;
    if (!device::snapshot_from_bytes(bytes, &snap, &snap_error)) {
      return fail(error, ctx + ": snapshot image (" + snap_error + ")");
    }
    const uint64_t seq = snap.seq;
    by_seq[seq] =
        std::make_shared<const device::StateSnapshot>(std::move(snap));
  }
  std::vector<uint64_t> pool_seqs;
  if (!get_u64_array(*snv, "pool", &pool_seqs, error, ctx.c_str())) {
    return false;
  }
  for (uint64_t seq : pool_seqs) {
    const auto it = by_seq.find(seq);
    if (it == by_seq.end()) {
      return fail(error, ctx + ": pool references missing snapshot " +
                             std::to_string(seq));
    }
    eng.snap_pool_.push_back(it->second);
  }
  uint64_t last_good = 0;
  if (!get_u64(*snv, "last_good", &last_good, error, ctx.c_str())) {
    return false;
  }
  if (last_good != 0) {
    const auto it = by_seq.find(last_good);
    if (it == by_seq.end()) {
      return fail(error, ctx + ": last_good references missing snapshot " +
                             std::to_string(last_good));
    }
    eng.last_good_ = it->second;
  }

  const obs::JsonValue* pq = member(d, "plan_queue");
  if (pq == nullptr || !pq->is_array()) {
    return fail(error, ctx + ": missing 'plan_queue'");
  }
  for (const auto& pv : pq->items) {
    Engine::QueuedProgram q;
    std::string oname;
    uint64_t td = 0;
    uint64_t ts = 0;
    uint64_t qsnap = 0;
    const obs::JsonValue* ht = member(pv, "has_target");
    if (!parse_program_field(pv, "prog", eng, &q.prog, error, ctx.c_str()) ||
        !get_str(pv, "origin", &oname, error, ctx.c_str()) ||
        !get_u64(pv, "parent", &q.parent_hash, error, ctx.c_str()) ||
        !get_u64(pv, "target_driver", &td, error, ctx.c_str()) ||
        !get_u64(pv, "target_state", &ts, error, ctx.c_str()) ||
        !get_u64(pv, "snapshot", &qsnap, error, ctx.c_str())) {
      return false;
    }
    if (ht == nullptr) {
      return fail(error, ctx + ": plan_queue entry without 'has_target'");
    }
    const auto qo = obs::origin_from_name(oname);
    if (!qo.has_value()) {
      return fail(error, ctx + ": unknown plan_queue origin '" + oname + "'");
    }
    q.origin = *qo;
    q.has_target = ht->boolean;
    q.target_driver = static_cast<size_t>(td);
    q.target_state = static_cast<size_t>(ts);
    if (qsnap != 0) {
      const auto it = by_seq.find(qsnap);
      if (it == by_seq.end()) {
        return fail(error, ctx + ": plan_queue references missing snapshot " +
                               std::to_string(qsnap));
      }
      q.snapshot = it->second;
    }
    eng.plan_queue_.push_back(std::move(q));
  }

  const obs::JsonValue* av = member(d, "attribution");
  if (av == nullptr || !av->is_array() ||
      av->items.size() != obs::kProgramOriginCount) {
    return fail(error, ctx + ": missing or malformed 'attribution'");
  }
  for (size_t i = 0; i < av->items.size(); ++i) {
    const obs::JsonValue& rowv = av->items[i];
    if (!rowv.is_array() || rowv.items.size() != 6) {
      return fail(error, ctx + ": malformed attribution row");
    }
    obs::OperatorYield y;
    y.attempts = rowv.items[0].as_u64();
    y.total_calls = rowv.items[1].as_u64();
    y.accepts = rowv.items[2].as_u64();
    y.new_features = rowv.items[3].as_u64();
    y.new_states = rowv.items[4].as_u64();
    y.bugs = rowv.items[5].as_u64();
    eng.attribution_.restore_row(static_cast<obs::ProgramOrigin>(i), y);
  }

  const obs::JsonValue* pav = member(d, "plan_attempts");
  if (pav == nullptr || !pav->is_array()) {
    return fail(error, ctx + ": missing 'plan_attempts'");
  }
  for (const auto& pv : pav->items) {
    uint64_t di = 0;
    uint64_t st = 0;
    Engine::PlanAttempt pa;
    if (!get_u64(pv, "driver", &di, error, ctx.c_str()) ||
        !get_u64(pv, "state", &st, error, ctx.c_str()) ||
        !get_u64(pv, "injected", &pa.injected, error, ctx.c_str()) ||
        !get_u64(pv, "materialize_failed", &pa.materialize_failed, error,
                 ctx.c_str()) ||
        !get_u64(pv, "executed_no_visit", &pa.executed_no_visit, error,
                 ctx.c_str())) {
      return false;
    }
    eng.plan_attempts_[{static_cast<size_t>(di), static_cast<size_t>(st)}] =
        pa;
  }

  const obs::JsonValue* dv = member(d, "drivers");
  if (dv == nullptr || !dv->is_array() ||
      dv->items.size() != k.drivers().size()) {
    return fail(error, ctx + ": driver tally count mismatch");
  }
  for (size_t i = 0; i < dv->items.size(); ++i) {
    const obs::JsonValue& tv = dv->items[i];
    uint64_t cur = 0;
    std::vector<uint64_t> visits;
    std::vector<uint64_t> matrix;
    std::string state_hex;
    if (!get_u64(tv, "current", &cur, error, ctx.c_str()) ||
        !get_u64_array(tv, "visits", &visits, error, ctx.c_str()) ||
        !get_u64_array(tv, "matrix", &matrix, error, ctx.c_str()) ||
        !get_str(tv, "state", &state_hex, error, ctx.c_str())) {
      return false;
    }
    std::vector<uint8_t> state_bytes;
    if (!bytes_from_hex(state_hex, &state_bytes)) {
      return fail(error, ctx + ": driver state blob is not valid hex");
    }
    // Overwrites the post-reboot live fields with the save side's — both
    // sides are freshly barrier-rebooted here, so only the
    // reboot-persistent fields actually change.
    kernel::StateReader sr(state_bytes);
    k.drivers()[i]->load_state(sr);
    if (!sr.done()) {
      return fail(error, ctx + ": driver state blob does not match driver");
    }
    k.drivers()[i]->restore_state_tallies(static_cast<size_t>(cur),
                                          std::move(visits),
                                          std::move(matrix));
  }
  return true;
}

// --- observability serialization ------------------------------------------

namespace {

void serialize_obs(obs::JsonWriter& w, const obs::Observability& o) {
  const obs::Snapshot snap = o.registry.snapshot();
  w.key("obs").begin_object();
  w.key("counters").begin_array();
  for (const auto& c : snap.counters) {
    w.begin_object();
    w.field("name", c.name);
    w.field("label", c.label);
    w.field("value", c.value);
    w.end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& g : snap.gauges) {
    w.begin_object();
    w.field("name", g.name);
    w.field("label", g.label);
    w.field("bits", bits_of(g.value));
    w.end_object();
  }
  w.end_array();
  w.key("histogram_counts").begin_array();
  for (const auto& h : snap.histograms) {
    w.begin_object();
    w.field("name", h.name);
    w.field("label", h.label);
    w.field("count", h.count);
    w.end_object();
  }
  w.end_array();
  w.field("emitted", o.trace.emitted());
  w.key("events").begin_array();
  const size_t n = o.trace.size();
  for (size_t i = 0; i < n; ++i) {
    const obs::TraceEvent& ev = o.trace.at(i);
    w.begin_object();
    w.field("kind", obs::kind_name(ev.kind));
    w.field("device", ev.device);
    w.field("exec", ev.exec_index);
    w.key("fields").begin_array();
    for (const auto& f : ev.fields) {
      w.begin_object();
      w.field("k", f.key);
      if (f.is_num) {
        w.field("n", hex64(f.num));
      } else {
        w.field("s", f.str);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool restore_obs(const obs::JsonValue& ov, obs::Observability& o,
                 std::string* error) {
  const char* ctx = "obs";
  const obs::JsonValue* counters = member(ov, "counters");
  if (counters == nullptr || !counters->is_array()) {
    return fail(error, "obs: missing 'counters'");
  }
  for (const auto& cv : counters->items) {
    std::string name;
    std::string label;
    uint64_t value = 0;
    if (!get_str(cv, "name", &name, error, ctx) ||
        !get_str(cv, "label", &label, error, ctx) ||
        !get_u64(cv, "value", &value, error, ctx)) {
      return false;
    }
    obs::Counter& c = o.registry.counter(name, label);
    c.reset();
    c.inc(value);
  }
  const obs::JsonValue* gauges = member(ov, "gauges");
  if (gauges == nullptr || !gauges->is_array()) {
    return fail(error, "obs: missing 'gauges'");
  }
  for (const auto& gv : gauges->items) {
    std::string name;
    std::string label;
    uint64_t bits = 0;
    if (!get_str(gv, "name", &name, error, ctx) ||
        !get_str(gv, "label", &label, error, ctx) ||
        !get_u64(gv, "bits", &bits, error, ctx)) {
      return false;
    }
    o.registry.gauge(name, label).set(std::bit_cast<double>(bits));
  }
  const obs::JsonValue* hists = member(ov, "histogram_counts");
  if (hists == nullptr || !hists->is_array()) {
    return fail(error, "obs: missing 'histogram_counts'");
  }
  for (const auto& hv : hists->items) {
    std::string name;
    std::string label;
    uint64_t count = 0;
    if (!get_str(hv, "name", &name, error, ctx) ||
        !get_str(hv, "label", &label, error, ctx) ||
        !get_u64(hv, "count", &count, error, ctx)) {
      return false;
    }
    o.registry.histogram(name, label).restore_count(count);
  }

  const obs::JsonValue* events = member(ov, "events");
  if (events == nullptr || !events->is_array()) {
    return fail(error, "obs: missing 'events'");
  }
  uint64_t emitted = 0;
  if (!get_u64(ov, "emitted", &emitted, error, ctx)) return false;
  const uint64_t replayed = events->items.size();
  o.trace.reset_retained(emitted >= replayed ? emitted - replayed : 0);
  for (const auto& ev : events->items) {
    obs::TraceEvent out;
    std::string kind;
    if (!get_str(ev, "kind", &kind, error, ctx) ||
        !get_str(ev, "device", &out.device, error, ctx) ||
        !get_u64(ev, "exec", &out.exec_index, error, ctx)) {
      return false;
    }
    if (!obs::kind_from_name(kind, &out.kind)) {
      return fail(error, "obs: unknown event kind '" + kind + "'");
    }
    const obs::JsonValue* fields = member(ev, "fields");
    if (fields == nullptr || !fields->is_array()) {
      return fail(error, "obs: event without 'fields'");
    }
    for (const auto& f : fields->items) {
      std::string key;
      if (!get_str(f, "k", &key, error, ctx)) return false;
      if (const obs::JsonValue* num = member(f, "n")) {
        out.with(std::move(key), num->as_u64());
      } else if (const obs::JsonValue* str = member(f, "s")) {
        out.with(std::move(key), str->scalar);
      } else {
        return fail(error, "obs: event field without value");
      }
    }
    o.trace.emit(std::move(out));
  }
  return true;
}

// --- reporter serialization ------------------------------------------------

void serialize_reporter(obs::JsonWriter& w, const obs::StatsReporter& r) {
  w.key("reporter").begin_object();
  w.key("devices").begin_array();
  for (const std::string& dev : r.devices()) {
    w.begin_object();
    w.field("device", dev);
    w.key("points").begin_array();
    for (const obs::StatsReporter::Point& p : r.series(dev)) {
      w.begin_object();
      w.field("executions", p.sample.executions);
      w.field("kernel_coverage", p.sample.kernel_coverage);
      w.field("total_coverage", p.sample.total_coverage);
      w.field("corpus", p.sample.corpus_size);
      w.field("bugs", p.sample.unique_bugs);
      w.field("relation_edges", p.sample.relation_edges);
      w.field("reboots", p.sample.reboots);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("watch").begin_array();
  for (const auto& ws : r.watch_states()) {
    w.begin_object();
    w.field("device", ws.device);
    w.field("best_coverage", ws.best_coverage);
    w.field("last_progress_exec", ws.last_progress_exec);
    w.field("seeded", ws.seeded);
    w.field("stalled", ws.stalled);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool restore_reporter(const obs::JsonValue& rv, obs::StatsReporter& r,
                      std::string* error) {
  const char* ctx = "reporter";
  const obs::JsonValue* devices = member(rv, "devices");
  if (devices == nullptr || !devices->is_array()) {
    return fail(error, "reporter: missing 'devices'");
  }
  for (const auto& dv : devices->items) {
    std::string device;
    if (!get_str(dv, "device", &device, error, ctx)) return false;
    const obs::JsonValue* points = member(dv, "points");
    if (points == nullptr || !points->is_array()) {
      return fail(error, "reporter: device without 'points'");
    }
    for (const auto& pv : points->items) {
      obs::StatsReporter::Point p;
      // secs is wall-dependent and excluded from determinism comparisons;
      // restored points restart the timing axis at 0.
      if (!get_u64(pv, "executions", &p.sample.executions, error, ctx) ||
          !get_u64(pv, "kernel_coverage", &p.sample.kernel_coverage, error,
                   ctx) ||
          !get_u64(pv, "total_coverage", &p.sample.total_coverage, error,
                   ctx) ||
          !get_u64(pv, "corpus", &p.sample.corpus_size, error, ctx) ||
          !get_u64(pv, "bugs", &p.sample.unique_bugs, error, ctx) ||
          !get_u64(pv, "relation_edges", &p.sample.relation_edges, error,
                   ctx) ||
          !get_u64(pv, "reboots", &p.sample.reboots, error, ctx)) {
        return false;
      }
      r.restore_point(device, p);
    }
  }
  const obs::JsonValue* watch = member(rv, "watch");
  if (watch == nullptr || !watch->is_array()) {
    return fail(error, "reporter: missing 'watch'");
  }
  for (const auto& wv : watch->items) {
    obs::StatsReporter::WatchState ws;
    const obs::JsonValue* sv = member(wv, "seeded");
    const obs::JsonValue* tv = member(wv, "stalled");
    if (!get_str(wv, "device", &ws.device, error, ctx) ||
        !get_u64(wv, "best_coverage", &ws.best_coverage, error, ctx) ||
        !get_u64(wv, "last_progress_exec", &ws.last_progress_exec, error,
                 ctx) ||
        sv == nullptr || tv == nullptr) {
      return fail(error, "reporter: malformed watch entry");
    }
    ws.seeded = sv->boolean;
    ws.stalled = tv->boolean;
    r.restore_watch(ws);
  }
  return true;
}

}  // namespace

std::string CampaignCheckpoint::serialize(Daemon& daemon) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("checkpoint").begin_object();
  w.field("version", kVersion);
  w.field("seed", hex64(daemon.cfg_.seed));
  w.field("progress", daemon.progress_);
  w.field("pending_sample", daemon.pending_sample_);
  w.key("devices").begin_array();
  for (auto& slot : daemon.engines_) {
    serialize_device(w, slot.id, *slot.eng);
  }
  w.end_array();
  if (daemon.obs_ != nullptr) serialize_obs(w, *daemon.obs_);
  if (daemon.reporter_ != nullptr) serialize_reporter(w, *daemon.reporter_);
  w.end_object();
  w.end_object();
  return w.take();
}

bool CampaignCheckpoint::restore(Daemon& daemon, const std::string& json,
                                 std::string* error) {
  std::string parse_error;
  auto doc = obs::json_parse(json, &parse_error);
  if (!doc.has_value()) {
    return fail(error, "malformed JSON (" + parse_error + ")");
  }
  const obs::JsonValue* cp = member(*doc, "checkpoint");
  if (cp == nullptr) return fail(error, "not a checkpoint document");
  uint64_t version = 0;
  uint64_t seed = 0;
  if (!get_u64(*cp, "version", &version, error, "header") ||
      !get_u64(*cp, "seed", &seed, error, "header") ||
      !get_u64(*cp, "progress", &daemon.progress_, error, "header") ||
      !get_u64(*cp, "pending_sample", &daemon.pending_sample_, error,
               "header")) {
    return false;
  }
  if (version != kVersion) {
    return fail(error, "unsupported version " + std::to_string(version));
  }
  if (seed != daemon.cfg_.seed) {
    return fail(error, "seed mismatch (checkpoint " + hex64(seed) +
                           ", daemon " + hex64(daemon.cfg_.seed) + ")");
  }
  const obs::JsonValue* devices = member(*cp, "devices");
  if (devices == nullptr || !devices->is_array() ||
      devices->items.size() != daemon.engines_.size()) {
    return fail(error, "device set mismatch");
  }
  for (size_t i = 0; i < devices->items.size(); ++i) {
    std::string id;
    if (!get_str(devices->items[i], "id", &id, error, "device")) return false;
    if (id != daemon.engines_[i].id) {
      return fail(error, "device order mismatch: checkpoint has '" + id +
                             "', daemon has '" + daemon.engines_[i].id + "'");
    }
    if (!restore_device(devices->items[i], id, *daemon.engines_[i].eng,
                        error)) {
      return false;
    }
  }
  // Observability restore comes last: the per-device setup()+reboot() above
  // bumped probe/reboot metrics and emitted events, all of which the saved
  // snapshot overwrites.
  if (daemon.obs_ != nullptr) {
    if (const obs::JsonValue* ov = member(*cp, "obs")) {
      if (!restore_obs(*ov, *daemon.obs_, error)) return false;
    }
  }
  if (daemon.reporter_ != nullptr) {
    if (const obs::JsonValue* rv = member(*cp, "reporter")) {
      if (!restore_reporter(*rv, *daemon.reporter_, error)) return false;
    }
  }
  DF_CLOG("checkpoint", kInfo)
      << "resumed campaign at " << daemon.progress_
      << " executions/device across " << daemon.engines_.size() << " devices";
  return true;
}

bool CampaignCheckpoint::write_file(const std::string& path,
                                    const std::string& json,
                                    std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) {
    fs::create_directories(p.parent_path(), ec);  // best effort
  }
  const fs::path tmp = p.string() + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
    if (!f.is_open()) {
      return fail(error, "cannot open " + tmp.string() + " for writing");
    }
    f << json;
    f.flush();
    if (!f.good()) return fail(error, "short write to " + tmp.string());
  }
  fs::rename(tmp, p, ec);
  if (ec) {
    return fail(error, "rename " + tmp.string() + " -> " + p.string() +
                           " failed: " + ec.message());
  }
  return true;
}

bool CampaignCheckpoint::read_file(const std::string& path, std::string* out,
                                   std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return fail(error, "cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace df::core
