// Campaign checkpoint/resume (DESIGN.md §9): periodically serializes a
// whole fleet campaign — per-device RNG streams, corpora, feature sets,
// relation graphs, crash logs, kernel cursors, fault-plan positions, the
// metrics registry, the trace rings, and the stats-reporter series — into
// one versioned JSON document, and restores it into a freshly constructed
// Daemon for bit-identical continuation.
//
// The serialization point is a *barrier reboot*: the device's current live
// kernel/HAL state (open fds, driver protocol positions, heap contents) is
// deliberately not serialized. Instead the daemon reboots every device
// immediately before checkpointing, so both the saved and the resumed
// campaign continue from the same freshly booted substrate plus the
// restored campaign-cumulative state. Captured StateSnapshots (DESIGN.md
// §13) are campaign assets, not live state: they ride along as flat byte
// images so fault recovery and snapshot forks continue identically after
// a resume. The determinism contract is therefore: a run that checkpoints at
// execution K, is killed, and resumes produces per-device results
// bit-identical to the same-seed run that checkpoints at K and keeps going
// (check_bench_json.py --compare on the stats export). With checkpointing
// disabled nothing here runs and campaigns behave exactly as before.
//
// Corrupted or truncated checkpoint files are rejected with a descriptive
// error (obs/json_parse.h), never a crash.
#pragma once

#include <cstdint>
#include <string>

namespace df::obs {
class JsonWriter;
struct JsonValue;
}  // namespace df::obs

namespace df::core {

class Daemon;
class Engine;

class CampaignCheckpoint {
 public:
  // Bump when the schema changes; restore() rejects other versions.
  // v2: seed lineage (origin/parent), attributed plan-queue entries,
  // per-operator yield table, plan-attempt counters, bug lineage chains.
  // v3: live snapshot state (DESIGN.md §13) — snapshot byte images, the
  // COW pool, the fault-recovery anchor, snapshot-forked queue entries,
  // and the SnapshotStats counters; plus the snapshot_fork operator row.
  // v4: per-driver live-state blob (save_state image). Reboot-persistent
  // driver fields (rt1711's probe counter) shape coverage emitted on later
  // boots, so a resume that re-derives them from a fresh boot diverges
  // from the uninterrupted run when it resumes early in a campaign.
  static constexpr uint64_t kVersion = 4;

  // Serializes `daemon` right now. The caller must have barrier-rebooted
  // every device first (Daemon::checkpoint_json does both).
  static std::string serialize(Daemon& daemon);

  // Restores a document produced by serialize() into `daemon`, which must
  // have been constructed with the same seed and the same add_device()
  // sequence (observability/reporter attached as in the original run).
  // Returns false and fills `error` (if non-null) on malformed input,
  // version/seed/device mismatch, or unparsable programs.
  static bool restore(Daemon& daemon, const std::string& json,
                      std::string* error);

  // Atomic-ish file write: temp file + rename, creating the directory if
  // needed. Returns false and fills `error` on I/O failure.
  static bool write_file(const std::string& path, const std::string& json,
                         std::string* error);
  // Whole-file read; returns false and fills `error` when unreadable.
  static bool read_file(const std::string& path, std::string* out,
                        std::string* error);

 private:
  // Per-device halves; private members so the Engine/Broker friend grants
  // apply (checkpoint.cc).
  static void serialize_device(obs::JsonWriter& w, const std::string& id,
                               Engine& eng);
  static bool restore_device(const obs::JsonValue& d, const std::string& id,
                             Engine& eng, std::string* error);
};

}  // namespace df::core
