#include "core/fuzz/crash.h"

#include <cctype>

#include "core/descriptions.h"

namespace df::core {

std::string normalize_title(std::string_view raw) {
  // Drop everything after a ": <number>" tail or a " (" parenthetical —
  // those carry instance data (subclass ids, lock names, addresses).
  std::string out(raw);
  if (const size_t paren = out.find(" ("); paren != std::string::npos) {
    out.resize(paren);
  }
  // Trim a trailing ": 123" style suffix.
  size_t colon = out.rfind(": ");
  if (colon != std::string::npos && colon + 2 < out.size()) {
    bool all_digits = true;
    for (size_t i = colon + 2; i < out.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(out[i])) == 0) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) out.resize(colon);
  }
  return out;
}

std::string hal_crash_title(std::string_view service_descriptor) {
  std::string alias = service_alias(service_descriptor);
  if (!alias.empty()) {
    alias[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(alias[0])));
  }
  return "Native crash in " + alias + " HAL";
}

BugRecord* CrashLog::upsert(std::string title, const dsl::Program& repro,
                            uint64_t exec_index, bool& fresh) {
  ++total_;
  if (BugRecord* existing = find_mutable(title)) {
    ++existing->dup_count;
    fresh = false;
    return existing;
  }
  BugRecord rec;
  rec.title = std::move(title);
  rec.first_exec = exec_index;
  rec.dup_count = 1;
  rec.repro = repro;
  rec.repro_text = dsl::format_program(repro);
  bugs_.push_back(std::move(rec));
  fresh = true;
  return &bugs_.back();
}

bool CrashLog::record_kernel(const kernel::Report& report,
                             const dsl::Program& repro, uint64_t exec_index) {
  bool fresh = false;
  BugRecord* rec = upsert(normalize_title(report.title), repro, exec_index,
                          fresh);
  if (fresh) {
    rec->component = "Kernel";
    rec->origin = report.driver;
    rec->bug_class = kernel::report_kind_name(report.kind);
  }
  return fresh;
}

bool CrashLog::record_hal(const hal::CrashRecord& crash,
                          const dsl::Program& repro, uint64_t exec_index) {
  bool fresh = false;
  BugRecord* rec =
      upsert(hal_crash_title(crash.service), repro, exec_index, fresh);
  if (fresh) {
    rec->component = "HAL";
    rec->origin = crash.service;
    rec->bug_class = crash.signal;
  }
  return fresh;
}

const BugRecord* CrashLog::find(std::string_view title) const {
  for (const auto& b : bugs_) {
    if (b.title == title) return &b;
  }
  return nullptr;
}

BugRecord* CrashLog::find_mutable(std::string_view title) {
  for (auto& b : bugs_) {
    if (b.title == title) return &b;
  }
  return nullptr;
}

}  // namespace df::core
