#include "core/fuzz/crash.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "core/descriptions.h"
#include "obs/json.h"
#include "util/hash.h"

namespace df::core {

std::string normalize_title(std::string_view raw) {
  // Drop everything after a ": <number>" tail or a " (" parenthetical —
  // those carry instance data (subclass ids, lock names, addresses).
  std::string out(raw);
  if (const size_t paren = out.find(" ("); paren != std::string::npos) {
    out.resize(paren);
  }
  // Trim a trailing ": 123" style suffix.
  size_t colon = out.rfind(": ");
  if (colon != std::string::npos && colon + 2 < out.size()) {
    bool all_digits = true;
    for (size_t i = colon + 2; i < out.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(out[i])) == 0) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) out.resize(colon);
  }
  return out;
}

std::string hal_crash_title(std::string_view service_descriptor) {
  std::string alias = service_alias(service_descriptor);
  if (!alias.empty()) {
    alias[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(alias[0])));
  }
  return "Native crash in " + alias + " HAL";
}

BugRecord* CrashLog::upsert(std::string title, const dsl::Program& repro,
                            uint64_t exec_index, bool& fresh) {
  ++total_;
  if (BugRecord* existing = find_mutable(title)) {
    ++existing->dup_count;
    fresh = false;
    return existing;
  }
  BugRecord rec;
  rec.title = std::move(title);
  rec.first_exec = exec_index;
  rec.dup_count = 1;
  rec.repro = repro;
  rec.repro_text = dsl::format_program(repro);
  bugs_.push_back(std::move(rec));
  fresh = true;
  return &bugs_.back();
}

bool CrashLog::record_kernel(const kernel::Report& report,
                             const dsl::Program& repro, uint64_t exec_index) {
  bool fresh = false;
  BugRecord* rec = upsert(normalize_title(report.title), repro, exec_index,
                          fresh);
  if (fresh) {
    rec->component = "Kernel";
    rec->origin = report.driver;
    rec->bug_class = kernel::report_kind_name(report.kind);
  }
  return fresh;
}

bool CrashLog::record_hal(const hal::CrashRecord& crash,
                          const dsl::Program& repro, uint64_t exec_index) {
  bool fresh = false;
  BugRecord* rec =
      upsert(hal_crash_title(crash.service), repro, exec_index, fresh);
  if (fresh) {
    rec->component = "HAL";
    rec->origin = crash.service;
    rec->bug_class = crash.signal;
  }
  return fresh;
}

std::string CrashLog::title_hash(std::string_view title) {
  static constexpr char kHex[] = "0123456789abcdef";
  const uint64_t h = util::fnv1a(title);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(h >> (4 * i)) & 0xf];
  }
  return out;
}

namespace {

// Decodes a flight-record state snapshot against the per-driver coverage
// entries (registration order). Emits {"driver": "state"} for every driver
// that exposes a state machine.
void write_state_snapshot(obs::JsonWriter& w, const std::vector<uint8_t>& snap,
                          const std::vector<obs::DriverStateCoverage>& cov) {
  w.begin_object();
  for (size_t i = 0; i < cov.size() && i < snap.size(); ++i) {
    if (cov[i].states.empty()) continue;
    w.key(cov[i].driver);
    const size_t s = snap[i];
    if (s < cov[i].states.size()) {
      w.value(cov[i].states[s]);
    } else {
      w.value(std::to_string(s));
    }
  }
  w.end_object();
}

void write_flight_record(obs::JsonWriter& w, const obs::ExecutionRecord& rec,
                         const CrashContext& ctx) {
  w.begin_object();
  w.field("exec", rec.exec_index);
  const auto* prog = static_cast<const dsl::Program*>(rec.program.get());
  w.field("program", prog != nullptr ? dsl::format_program(*prog) : "");
  w.key("rets").begin_array();
  for (int64_t r : rec.rets) w.value(r);
  w.end_array();
  w.field("new_features", rec.new_features);
  w.field("kernel_bug", rec.kernel_bug);
  w.field("hal_crash", rec.hal_crash);
  // Only present when set, keeping fault-free reports byte-stable.
  if (rec.transport_fault) w.field("transport_fault", true);
  w.key("states_before");
  write_state_snapshot(w, rec.states_before, ctx.state_coverage);
  w.key("states_after");
  write_state_snapshot(w, rec.states_after, ctx.state_coverage);
  w.end_object();
}

}  // namespace

std::string CrashLog::provenance_json(const BugRecord& bug,
                                      const CrashContext& ctx) {
  obs::JsonWriter w;
  w.begin_object();

  w.key("crash").begin_object();
  w.field("title", bug.title);
  w.field("hash", title_hash(bug.title));
  w.field("component", bug.component);
  w.field("origin", bug.origin);
  w.field("bug_class", bug.bug_class);
  w.field("first_exec", bug.first_exec);
  w.field("dup_count", bug.dup_count);
  w.end_object();

  w.key("campaign").begin_object();
  w.field("device", ctx.device);
  w.field("seed", ctx.seed);
  w.field("exec", ctx.exec_index);
  w.end_object();

  w.key("repro").begin_object();
  w.field("calls", static_cast<uint64_t>(bug.repro.calls.size()));
  w.field("dsl", bug.repro_text);
  w.end_object();

  // Seed ancestry of the triggering program (root first). Empty only for
  // records restored from pre-analytics artifacts.
  w.key("lineage");
  obs::write_lineage_json(w, bug.lineage);

  w.key("driver_states").begin_array();
  for (const auto& c : ctx.state_coverage) {
    if (c.states.empty()) continue;
    c.write_json(w);
  }
  w.end_array();

  w.key("kasan_context").begin_object();
  w.key("kernel_reports").begin_array();
  for (const auto& line : ctx.kernel_context) w.value(line);
  w.end_array();
  w.key("hal_crashes").begin_array();
  for (const auto& line : ctx.hal_context) w.value(line);
  w.end_array();
  w.end_object();

  w.key("flight_recorder").begin_object();
  const obs::FlightRecorder* fr = ctx.flight;
  w.field("capacity", static_cast<uint64_t>(fr != nullptr ? fr->capacity() : 0));
  w.field("recorded", fr != nullptr ? fr->recorded() : 0);
  w.key("records").begin_array();
  if (fr != nullptr) {
    // snapshot(): the ring is shared across fleet workers, so iterate a
    // consistent copy rather than live at() references another engine's
    // push could overwrite mid-dump.
    for (const auto& rec : fr->snapshot()) {
      write_flight_record(w, rec, ctx);
    }
  }
  w.end_array();
  w.end_object();

  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

std::string CrashLog::write_provenance(const BugRecord& bug,
                                       const CrashContext& ctx) {
  if (!provenance_enabled()) return {};
  // Process-wide: the report path is derived from the *title* hash, so two
  // devices hitting the same deduped bug on different fleet workers target
  // the same file — serialize so neither sees a torn report.
  static std::mutex write_mu;
  std::lock_guard<std::mutex> lock(write_mu);
  std::error_code ec;
  std::filesystem::create_directories(provenance_dir_, ec);
  const std::string path =
      provenance_dir_ + "/crash_" + title_hash(bug.title) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return {};
  out << provenance_json(bug, ctx);
  out.close();
  if (!out.good()) return {};
  bool seen = false;
  for (const auto& p : provenance_files_) seen = seen || p == path;
  if (!seen) provenance_files_.push_back(path);
  return path;
}

const BugRecord* CrashLog::find(std::string_view title) const {
  for (const auto& b : bugs_) {
    if (b.title == title) return &b;
  }
  return nullptr;
}

BugRecord* CrashLog::find_mutable(std::string_view title) {
  for (auto& b : bugs_) {
    if (b.title == title) return &b;
  }
  return nullptr;
}

}  // namespace df::core
