// Crash triage: dedup, normalization, and reproducer bookkeeping for kernel
// reports and HAL native crashes (the post-processing §V-B describes:
// "initially minimized, deduplicated, and reproduced").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/fmt.h"
#include "dsl/prog.h"
#include "hal/hal_service.h"
#include "kernel/dmesg.h"

namespace df::core {

struct BugRecord {
  std::string title;      // normalized dedup title
  std::string component;  // "Kernel" or "HAL"
  std::string origin;     // driver/subsystem name or HAL service
  std::string bug_class;  // WARNING / BUG / KASAN / HANG / SIGSEGV / ...
  uint64_t first_exec = 0;
  uint64_t dup_count = 0;
  dsl::Program repro;       // first (optionally minimized) reproducer
  std::string repro_text;   // DSL text of the reproducer
};

// Strips instance-specific suffixes so equivalent reports dedup together
// (e.g. "BUG: looking up invalid subclass: 12 (lock ...)" ->
//  "BUG: looking up invalid subclass").
std::string normalize_title(std::string_view raw);

// Table-II-style display title for a HAL crash:
// "android.hardware.graphics.composer@sim" -> "Native crash in Graphics HAL".
std::string hal_crash_title(std::string_view service_descriptor);

class CrashLog {
 public:
  // Returns true when the report is new (first occurrence).
  bool record_kernel(const kernel::Report& report, const dsl::Program& repro,
                     uint64_t exec_index);
  bool record_hal(const hal::CrashRecord& crash, const dsl::Program& repro,
                  uint64_t exec_index);

  const std::vector<BugRecord>& bugs() const { return bugs_; }
  const BugRecord* find(std::string_view title) const;
  BugRecord* find_mutable(std::string_view title);
  size_t unique_bugs() const { return bugs_.size(); }
  uint64_t total_reports() const { return total_; }

 private:
  BugRecord* upsert(std::string title, const dsl::Program& repro,
                    uint64_t exec_index, bool& fresh);

  std::vector<BugRecord> bugs_;
  uint64_t total_ = 0;
};

}  // namespace df::core
