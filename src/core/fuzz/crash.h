// Crash triage: dedup, normalization, and reproducer bookkeeping for kernel
// reports and HAL native crashes (the post-processing §V-B describes:
// "initially minimized, deduplicated, and reproduced"), plus self-contained
// crash_<hash>.json provenance reports bundling the reproducer, the flight-
// recorder window, and the driver-state snapshot at crash time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/fmt.h"
#include "dsl/prog.h"
#include "hal/hal_service.h"
#include "kernel/dmesg.h"
#include "obs/analytics.h"
#include "obs/flight_recorder.h"
#include "obs/stats_reporter.h"

namespace df::core {

struct BugRecord {
  std::string title;      // normalized dedup title
  std::string component;  // "Kernel" or "HAL"
  std::string origin;     // driver/subsystem name or HAL service
  std::string bug_class;  // WARNING / BUG / KASAN / HANG / SIGSEGV / ...
  uint64_t first_exec = 0;
  uint64_t dup_count = 0;
  dsl::Program repro;       // first (optionally minimized) reproducer
  std::string repro_text;   // DSL text of the reproducer
  // Derivation chain of the triggering program, root corpus seed first and
  // the triggering execution last (DESIGN.md §11). Filled by the engine
  // when the bug is first recorded; always ends in the triggering program,
  // so a recorded bug's chain is never empty.
  std::vector<obs::LineageLink> lineage;
};

// Strips instance-specific suffixes so equivalent reports dedup together
// (e.g. "BUG: looking up invalid subclass: 12 (lock ...)" ->
//  "BUG: looking up invalid subclass").
std::string normalize_title(std::string_view raw);

// Table-II-style display title for a HAL crash:
// "android.hardware.graphics.composer@sim" -> "Native crash in Graphics HAL".
std::string hal_crash_title(std::string_view service_descriptor);

// Execution-provenance context captured by the engine when a crash fires.
// `flight` may be null (recorder disabled); `state_coverage` entries are in
// kernel driver registration order so flight-record state snapshots decode
// against them.
struct CrashContext {
  std::string device;
  uint64_t seed = 0;
  uint64_t exec_index = 0;
  const obs::FlightRecorder* flight = nullptr;
  std::vector<obs::DriverStateCoverage> state_coverage;
  std::vector<std::string> kernel_context;  // dmesg lines of the crashing exec
  std::vector<std::string> hal_context;     // HAL crash records of the exec
};

class CrashLog {
 public:
  // Returns true when the report is new (first occurrence).
  bool record_kernel(const kernel::Report& report, const dsl::Program& repro,
                     uint64_t exec_index);
  bool record_hal(const hal::CrashRecord& crash, const dsl::Program& repro,
                  uint64_t exec_index);

  const std::vector<BugRecord>& bugs() const { return bugs_; }
  // Mutable access for post-record enrichment (the engine attaches the
  // lineage chain right after a fresh record_kernel/record_hal).
  std::vector<BugRecord>& bugs_mutable() { return bugs_; }
  const BugRecord* find(std::string_view title) const;
  BugRecord* find_mutable(std::string_view title);
  size_t unique_bugs() const { return bugs_.size(); }
  uint64_t total_reports() const { return total_; }

  // --- crash provenance reports -------------------------------------------
  // Directory for crash_<hash>.json reports; "" (the default) disables.
  // The directory is created on the first write.
  void set_provenance_dir(std::string dir) { provenance_dir_ = std::move(dir); }
  bool provenance_enabled() const { return !provenance_dir_.empty(); }
  const std::vector<std::string>& provenance_files() const {
    return provenance_files_;
  }
  // Writes the self-contained report for `bug` and returns its path ("" on
  // I/O failure or when disabled). One report per bug title: a repeat of an
  // already-reported title overwrites the same file.
  std::string write_provenance(const BugRecord& bug, const CrashContext& ctx);
  // The report body (one JSON document; exposed for golden-file tests).
  static std::string provenance_json(const BugRecord& bug,
                                     const CrashContext& ctx);
  // The 16-hex-digit filename hash of a normalized title.
  static std::string title_hash(std::string_view title);

  // --- checkpoint support -------------------------------------------------
  // Re-adds a bug record verbatim and restores the raw report tally
  // (core/fuzz/checkpoint.h resume path). Provenance files are not
  // restored: a resumed campaign re-writes reports only for new bugs.
  void restore_bug(BugRecord bug) { bugs_.push_back(std::move(bug)); }
  void set_total_reports(uint64_t n) { total_ = n; }

 private:
  BugRecord* upsert(std::string title, const dsl::Program& repro,
                    uint64_t exec_index, bool& fresh);

  std::vector<BugRecord> bugs_;
  uint64_t total_ = 0;
  std::string provenance_dir_;
  std::vector<std::string> provenance_files_;
};

}  // namespace df::core
