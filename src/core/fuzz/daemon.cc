#include "core/fuzz/daemon.h"

#include <algorithm>

#include "core/fuzz/checkpoint.h"
#include "core/fuzz/fleet.h"
#include "dsl/fmt.h"
#include "dsl/parse.h"
#include "util/log.h"

namespace df::core {

Daemon::Daemon(DaemonConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

bool Daemon::add_device(std::string_view id) {
  auto dev = device::make_device(id, rng_.next());
  if (dev == nullptr) return false;
  Slot slot;
  slot.id = std::string(id);
  slot.dev = std::move(dev);
  EngineConfig ec = cfg_.engine;
  ec.seed = rng_.next();
  slot.eng = std::make_unique<Engine>(*slot.dev, ec);
  if (obs_ != nullptr) slot.eng->attach_observability(obs_);
  if (!cfg_.crash_dir.empty()) slot.eng->set_crash_dir(cfg_.crash_dir);
  engines_.push_back(std::move(slot));
  return true;
}

void Daemon::set_crash_dir(std::string dir) {
  cfg_.crash_dir = std::move(dir);
  for (auto& s : engines_) s.eng->set_crash_dir(cfg_.crash_dir);
}

void Daemon::attach_observability(obs::Observability* o) {
  obs_ = o;
  for (auto& s : engines_) s.eng->attach_observability(o);
}

void Daemon::attach_reporter(obs::StatsReporter* reporter) {
  reporter_ = reporter;
}

void Daemon::sample_stats() {
  if (reporter_ == nullptr) return;
  for (auto& s : engines_) {
    reporter_->set_state_coverage(s.id, s.eng->state_coverage());
    reporter_->record(s.id, s.eng->sample());
  }
}

void Daemon::run(uint64_t executions_per_device, uint64_t slice) {
  if (slice == 0) slice = 1;
  // Campaign root span (one per run() round).
  obs::SpanTracer* spans =
      obs_ != nullptr && obs_->spans.enabled() ? &obs_->spans : nullptr;
  const obs::ScopedSpan campaign_span(spans, "campaign");
  // Setup stays on the daemon thread regardless of worker count, so probe
  // events and probe-created metrics keep a deterministic order.
  for (auto& s : engines_) s.eng->setup();
  // Baseline stats point for a fresh campaign (skipped when resuming so a
  // second run() does not duplicate the previous final point).
  if (reporter_ != nullptr && reporter_->empty()) sample_stats();
  std::vector<Engine*> engines;
  engines.reserve(engines_.size());
  for (auto& s : engines_) engines.push_back(s.eng.get());
  // Resume offset: a restored campaign already ran progress_ executions per
  // device; run() completes the remaining budget with the same slice grid.
  if (executions_per_device <= progress_) return;
  const uint64_t base = progress_;
  const uint64_t remaining = executions_per_device - base;
  const bool checkpointing =
      !cfg_.checkpoint_dir.empty() && cfg_.checkpoint_every != 0;
  // The slice callback runs between rounds — at the barrier, while every
  // worker is parked, in parallel mode — preserving the exact sampling
  // cadence of the historical sequential loop. Checkpoints piggyback on the
  // same barrier: sampling first (a checkpoint captures any point taken at
  // its own barrier), then the barrier reboot + serialization.
  uint64_t last_done = 0;
  uint64_t since_sample = pending_sample_;
  uint64_t since_checkpoint = 0;
  FleetExecutor::run(
      engines, remaining, slice, cfg_.workers,
      [&](uint64_t done) {
        since_sample += done - last_done;
        since_checkpoint += done - last_done;
        last_done = done;
        if (reporter_ != nullptr && since_sample >= reporter_->interval()) {
          sample_stats();
          since_sample = 0;
        }
        if (checkpointing && since_checkpoint >= cfg_.checkpoint_every &&
            done < remaining) {
          since_checkpoint = 0;
          progress_ = base + done;
          pending_sample_ = since_sample;
          const std::string path = cfg_.checkpoint_dir + "/checkpoint.json";
          std::string error;
          if (CampaignCheckpoint::write_file(path, checkpoint_json(),
                                             &error)) {
            checkpoints_written_.push_back(path);
          } else {
            DF_CLOG("daemon", kWarn) << error;
          }
        }
      });
  progress_ = base + remaining;
  pending_sample_ = since_sample;
  if (reporter_ != nullptr && since_sample > 0) {
    sample_stats();
    pending_sample_ = 0;
  }
}

std::string Daemon::checkpoint_json() {
  // Barrier reboot: live kernel/HAL state is not serializable, so every
  // device restarts from a fresh boot on both the save and the resume side
  // (core/fuzz/checkpoint.h). Campaign-cumulative state survives in the
  // checkpoint itself.
  for (auto& s : engines_) s.dev->reboot();
  return CampaignCheckpoint::serialize(*this);
}

bool Daemon::resume(const std::string& json, std::string* error) {
  return CampaignCheckpoint::restore(*this, json, error);
}

Engine* Daemon::engine(std::string_view device_id) {
  for (auto& s : engines_) {
    if (s.id == device_id) return s.eng.get();
  }
  return nullptr;
}

std::vector<const Daemon::Slot*> Daemon::slots_by_id() const {
  std::vector<const Slot*> out;
  out.reserve(engines_.size());
  for (const auto& s : engines_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Slot* a, const Slot* b) { return a->id < b->id; });
  return out;
}

std::vector<CampaignBug> Daemon::all_bugs() const {
  std::vector<CampaignBug> out;
  for (const Slot* s : slots_by_id()) {
    for (const auto& b : s->eng->crashes().bugs()) {
      out.push_back({s->id, b});
    }
  }
  return out;
}

size_t Daemon::total_kernel_coverage() const {
  size_t total = 0;
  for (const auto& s : engines_) total += s.eng->kernel_coverage();
  return total;
}

uint64_t Daemon::total_executions() const {
  uint64_t total = 0;
  for (const auto& s : engines_) total += s.eng->executions();
  return total;
}

std::string Daemon::save_corpus() const {
  std::string out;
  for (const Slot* s : slots_by_id()) {
    const Corpus& corpus = s->eng->corpus();
    for (size_t i = 0; i < corpus.size(); ++i) {
      out += "# device " + s->id + "\n";
      out += dsl::format_program(corpus.at(i).prog);
      out += "# end\n";
    }
  }
  return out;
}

size_t Daemon::load_corpus(const std::string& text) {
  size_t loaded = 0;
  std::string cur_device;
  std::string cur_prog;
  size_t begin = 0;
  auto flush = [&]() {
    if (cur_device.empty() || cur_prog.empty()) return;
    Engine* eng = engine(cur_device);
    if (eng != nullptr) {
      eng->setup();
      auto prog = dsl::parse_program(cur_prog, eng->calls());
      if (prog.has_value()) {
        // Replay through the engine's broker so features and corpus update.
        Seed seed;
        seed.prog = std::move(*prog);
        seed.new_features = 1;
        if (eng->corpus_mutable().add(std::move(seed))) ++loaded;
      }
    }
    cur_prog.clear();
  };
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.rfind("# device ", 0) == 0) {
      flush();
      cur_device = line.substr(9);
    } else if (line == "# end") {
      flush();
    } else if (!line.empty()) {
      cur_prog += line;
      cur_prog += '\n';
    }
    if (begin > text.size()) break;
  }
  flush();
  DF_CLOG("daemon", kInfo) << "loaded " << loaded << " corpus programs";
  return loaded;
}

}  // namespace df::core
