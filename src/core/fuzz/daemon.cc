#include "core/fuzz/daemon.h"

#include <algorithm>

#include "core/exec/faults.h"
#include "core/fuzz/checkpoint.h"
#include "core/fuzz/fleet.h"
#include "dsl/fmt.h"
#include "dsl/parse.h"
#include "obs/buildinfo.h"
#include "obs/json.h"
#include "obs/prom.h"
#include "util/log.h"

namespace df::core {

Daemon::Daemon(DaemonConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.serve_port >= 0) start_server();
}

bool Daemon::add_device(std::string_view id) {
  auto dev = device::make_device(id, rng_.next());
  if (dev == nullptr) return false;
  Slot slot;
  slot.id = std::string(id);
  slot.dev = std::move(dev);
  EngineConfig ec = cfg_.engine;
  ec.seed = rng_.next();
  slot.eng = std::make_unique<Engine>(*slot.dev, ec);
  if (obs_ != nullptr) slot.eng->attach_observability(obs_);
  if (!cfg_.crash_dir.empty()) slot.eng->set_crash_dir(cfg_.crash_dir);
  engines_.push_back(std::move(slot));
  return true;
}

void Daemon::set_crash_dir(std::string dir) {
  cfg_.crash_dir = std::move(dir);
  for (auto& s : engines_) s.eng->set_crash_dir(cfg_.crash_dir);
}

void Daemon::attach_observability(obs::Observability* o) {
  obs_ = o;
  if (introspect_ != nullptr) {
    // The /metrics handler reads the mirror from the server thread.
    std::lock_guard<std::mutex> lock(introspect_->mu);
    introspect_->obs = o;
  }
  for (auto& s : engines_) s.eng->attach_observability(o);
}

void Daemon::attach_reporter(obs::StatsReporter* reporter) {
  reporter_ = reporter;
  if (server_ != nullptr) publish_introspection();
}

void Daemon::sample_stats() {
  if (reporter_ == nullptr) return;
  for (auto& s : engines_) {
    reporter_->set_state_coverage(s.id, s.eng->state_coverage());
    const obs::EngineSample sample = s.eng->sample();
    reporter_->record(s.id, sample);
    velocity_.observe(s.id, sample);
  }
  if (server_ != nullptr) publish_introspection();
}

void Daemon::run(uint64_t executions_per_device, uint64_t slice) {
  if (slice == 0) slice = 1;
  // Campaign root span (one per run() round).
  obs::SpanTracer* spans =
      obs_ != nullptr && obs_->spans.enabled() ? &obs_->spans : nullptr;
  const obs::ScopedSpan campaign_span(spans, "campaign");
  // Setup stays on the daemon thread regardless of worker count, so probe
  // events and probe-created metrics keep a deterministic order.
  for (auto& s : engines_) s.eng->setup();
  // Baseline stats point for a fresh campaign (skipped when resuming so a
  // second run() does not duplicate the previous final point).
  if (reporter_ != nullptr && reporter_->empty()) sample_stats();
  std::vector<Engine*> engines;
  engines.reserve(engines_.size());
  for (auto& s : engines_) engines.push_back(s.eng.get());
  // Resume offset: a restored campaign already ran progress_ executions per
  // device; run() completes the remaining budget with the same slice grid.
  if (executions_per_device <= progress_) return;
  const uint64_t base = progress_;
  const uint64_t remaining = executions_per_device - base;
  const bool checkpointing =
      !cfg_.checkpoint_dir.empty() && cfg_.checkpoint_every != 0;
  // The slice callback runs between rounds — at the barrier, while every
  // worker is parked, in parallel mode — preserving the exact sampling
  // cadence of the historical sequential loop. Checkpoints piggyback on the
  // same barrier: sampling first (a checkpoint captures any point taken at
  // its own barrier), then the barrier reboot + serialization.
  uint64_t last_done = 0;
  uint64_t since_sample = pending_sample_;
  uint64_t since_checkpoint = 0;
  FleetUtilization run_util;
  FleetExecutor::run(
      engines, remaining, slice, cfg_.workers,
      [&](uint64_t done) {
        since_sample += done - last_done;
        since_checkpoint += done - last_done;
        last_done = done;
        if (reporter_ != nullptr && since_sample >= reporter_->interval()) {
          sample_stats();
          since_sample = 0;
        }
        if (checkpointing && since_checkpoint >= cfg_.checkpoint_every &&
            done < remaining) {
          since_checkpoint = 0;
          progress_ = base + done;
          pending_sample_ = since_sample;
          const std::string path = cfg_.checkpoint_dir + "/checkpoint.json";
          std::string error;
          if (CampaignCheckpoint::write_file(path, checkpoint_json(),
                                             &error)) {
            checkpoints_written_.push_back(path);
          } else {
            DF_CLOG("daemon", kWarn) << error;
          }
        }
      },
      obs_, &run_util);
  util_.merge(run_util);
  progress_ = base + remaining;
  pending_sample_ = since_sample;
  if (reporter_ != nullptr && since_sample > 0) {
    sample_stats();
    pending_sample_ = 0;
  }
  if (server_ != nullptr) publish_introspection();
}

void Daemon::start_server() {
  introspect_ = std::make_shared<IntrospectionState>();
  introspect_->obs = obs_;
  server_ = std::make_unique<obs::HttpServer>();
  const std::shared_ptr<IntrospectionState> st = introspect_;
  server_->handle("/metrics", [st] {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    obs::Observability* o = nullptr;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      o = st->obs;
    }
    r.body = o != nullptr ? obs::render_prometheus(o->registry.snapshot())
                          : "# no metrics registry attached\n";
    return r;
  });
  server_->handle("/status", [st] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    std::lock_guard<std::mutex> lock(st->mu);
    r.body = st->status;
    return r;
  });
  server_->handle("/coverage", [st] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    std::lock_guard<std::mutex> lock(st->mu);
    r.body = st->coverage;
    return r;
  });
  server_->handle("/frontier", [st] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    std::lock_guard<std::mutex> lock(st->mu);
    r.body = st->frontier;
    return r;
  });
  // Build provenance is process-constant: render once, serve forever.
  server_->handle("/buildz", [body = obs::build_json(
                                 {{"checkpoint", CampaignCheckpoint::kVersion},
                                  {"analytics",
                                   obs::kAnalyticsSchemaVersion}})] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = body;
    return r;
  });
  server_->handle("/healthz", [st] {
    obs::HttpResponse r;
    std::lock_guard<std::mutex> lock(st->mu);
    r.status = st->healthy ? 200 : 503;
    r.body = st->healthy ? "ok\n" : "stalled: " + st->health_detail + "\n";
    return r;
  });
  std::string error;
  if (!server_->start(static_cast<uint16_t>(cfg_.serve_port), &error)) {
    DF_CLOG("daemon", kWarn) << "serve_port " << cfg_.serve_port
                             << " unavailable: " << error;
    server_.reset();
    return;
  }
  publish_introspection();
}

std::string Daemon::build_status_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("campaign").begin_object();
  w.field("seed", cfg_.seed);
  w.field("devices", static_cast<uint64_t>(engines_.size()));
  w.field("workers",
          static_cast<uint64_t>(FleetExecutor::resolve_workers(cfg_.workers)));
  w.field("progress", progress_);
  w.field("checkpoint_epoch",
          static_cast<uint64_t>(checkpoints_written_.size()));
  w.end_object();
  w.key("devices").begin_array();
  for (const auto& s : engines_) {
    const obs::EngineSample sample = s.eng->sample();
    w.begin_object();
    w.field("device", s.id);
    w.field("executions", sample.executions);
    w.field("kernel_coverage", sample.kernel_coverage);
    w.field("total_coverage", sample.total_coverage);
    w.field("corpus", sample.corpus_size);
    w.field("bugs", sample.unique_bugs);
    w.field("relation_edges", sample.relation_edges);
    w.field("reboots", sample.reboots);
    w.field("states_visited", sample.states_visited);
    w.field("stalled", reporter_ != nullptr && reporter_->stalled(s.id));
    if (const FaultInjector* f = s.eng->fault_injector(); f != nullptr) {
      const FaultTotals& t = f->totals();
      w.key("faults").begin_object();
      w.field("injected", t.injected);
      w.field("reboots", t.reboots);
      w.field("retries", t.retries);
      w.field("lost_execs", t.lost_execs);
      w.end_object();
    }
    const obs::VelocityRates r = velocity_.rates(s.id);
    w.key("timing").begin_object();
    w.field("execs_per_sec", r.execs_per_sec);
    w.field("features_per_sec", r.features_per_sec);
    w.field("crashes_per_sec", r.crashes_per_sec);
    w.end_object();
    w.key("analytics");
    const std::vector<obs::StatsReporter::Point>* series =
        reporter_ != nullptr ? &reporter_->series(s.id) : nullptr;
    s.eng->analytics_snapshot().write_json(w, series);
    if (s.eng->has_distill_stats()) {
      const DistillStats& d = s.eng->distill_stats();
      w.key("distill").begin_object();
      w.field("before", static_cast<uint64_t>(d.before));
      w.field("after", static_cast<uint64_t>(d.after));
      w.field("dropped_static", static_cast<uint64_t>(d.dropped_static));
      w.field("dropped_covered", static_cast<uint64_t>(d.dropped_covered));
      w.field("footprint_union", static_cast<uint64_t>(d.footprint_union));
      w.field("fraction_dropped", d.fraction_dropped());
      w.field("verified", d.verified);
      w.field("dry_run", d.dry_run);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.key("fleet").begin_object();
  w.field("workers", static_cast<uint64_t>(util_.workers.size()));
  w.key("timing").begin_object();
  w.key("utilization").begin_array();
  for (size_t i = 0; i < util_.workers.size(); ++i) {
    const WorkerUtilization& u = util_.workers[i];
    w.begin_object();
    w.field("worker", static_cast<uint64_t>(i));
    w.field("rounds", u.rounds);
    w.field("busy_ms", static_cast<double>(u.busy_ns) / 1e6);
    w.field("idle_ms", static_cast<double>(u.idle_ns) / 1e6);
    w.field("barrier_ms", static_cast<double>(u.barrier_ns) / 1e6);
    w.end_object();
  }
  w.end_array();
  w.field("busy_imbalance_ms",
          static_cast<double>(util_.busy_imbalance_ns()) / 1e6);
  w.end_object();
  w.end_object();
  w.key("velocity");
  velocity_.write_json(w, reporter_);
  const bool healthy = reporter_ == nullptr || !reporter_->any_stalled();
  w.field("healthy", healthy);
  w.key("stalled_devices").begin_array();
  if (reporter_ != nullptr) {
    for (const auto& dev : reporter_->stalled_devices()) w.value(dev);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Daemon::build_coverage_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("devices").begin_array();
  for (const auto& s : engines_) {
    w.begin_object();
    w.field("device", s.id);
    w.key("state_coverage").begin_array();
    for (const auto& d : s.eng->state_coverage()) {
      if (!d.states.empty()) d.write_json(w);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Daemon::build_frontier_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("devices").begin_array();
  for (const auto& s : engines_) {
    w.begin_object();
    w.field("device", s.id);
    w.key("frontier");
    s.eng->frontier_report().write_json(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Daemon::publish_introspection() {
  if (introspect_ == nullptr) return;
  std::string status = build_status_json();
  std::string coverage = build_coverage_json();
  std::string frontier = build_frontier_json();
  std::string detail;
  if (reporter_ != nullptr) {
    for (const auto& dev : reporter_->stalled_devices()) {
      if (!detail.empty()) detail += ' ';
      detail += dev;
    }
  }
  std::lock_guard<std::mutex> lock(introspect_->mu);
  introspect_->status = std::move(status);
  introspect_->coverage = std::move(coverage);
  introspect_->frontier = std::move(frontier);
  introspect_->healthy = detail.empty();
  introspect_->health_detail = std::move(detail);
}

std::string Daemon::checkpoint_json() {
  // Dry-run distill stats at the checkpoint boundary: purely observational
  // (scratch-device replay; no campaign state is touched), surfaced through
  // the /status "distill" blocks and bench exports.
  if (cfg_.engine.distill_at_checkpoint) {
    for (auto& s : engines_) s.eng->distill_corpus(/*dry_run=*/true);
  }
  // Barrier reboot: live kernel/HAL state is not serializable, so every
  // device restarts from a fresh boot on both the save and the resume side
  // (core/fuzz/checkpoint.h). Campaign-cumulative state survives in the
  // checkpoint itself.
  for (auto& s : engines_) s.dev->reboot();
  return CampaignCheckpoint::serialize(*this);
}

std::vector<std::pair<std::string, DistillStats>> Daemon::distill_corpora(
    bool dry_run) {
  std::vector<std::pair<std::string, DistillStats>> out;
  for (const Slot* s : slots_by_id()) {
    out.emplace_back(s->id, s->eng->distill_corpus(dry_run));
  }
  if (server_ != nullptr) publish_introspection();
  return out;
}

bool Daemon::resume(const std::string& json, std::string* error) {
  return CampaignCheckpoint::restore(*this, json, error);
}

Engine* Daemon::engine(std::string_view device_id) {
  for (auto& s : engines_) {
    if (s.id == device_id) return s.eng.get();
  }
  return nullptr;
}

std::vector<const Daemon::Slot*> Daemon::slots_by_id() const {
  std::vector<const Slot*> out;
  out.reserve(engines_.size());
  for (const auto& s : engines_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Slot* a, const Slot* b) { return a->id < b->id; });
  return out;
}

std::vector<CampaignBug> Daemon::all_bugs() const {
  std::vector<CampaignBug> out;
  for (const Slot* s : slots_by_id()) {
    for (const auto& b : s->eng->crashes().bugs()) {
      out.push_back({s->id, b});
    }
  }
  return out;
}

size_t Daemon::total_kernel_coverage() const {
  size_t total = 0;
  for (const auto& s : engines_) total += s.eng->kernel_coverage();
  return total;
}

uint64_t Daemon::total_executions() const {
  uint64_t total = 0;
  for (const auto& s : engines_) total += s.eng->executions();
  return total;
}

std::string Daemon::save_corpus() const {
  std::string out;
  for (const Slot* s : slots_by_id()) {
    const Corpus& corpus = s->eng->corpus();
    for (size_t i = 0; i < corpus.size(); ++i) {
      out += "# device " + s->id + "\n";
      out += dsl::format_program(corpus.at(i).prog);
      out += "# end\n";
    }
  }
  return out;
}

size_t Daemon::load_corpus(const std::string& text) {
  size_t loaded = 0;
  std::string cur_device;
  std::string cur_prog;
  size_t begin = 0;
  auto flush = [&]() {
    if (cur_device.empty() || cur_prog.empty()) return;
    Engine* eng = engine(cur_device);
    if (eng != nullptr) {
      eng->setup();
      auto prog = dsl::parse_program(cur_prog, eng->calls());
      if (prog.has_value()) {
        // Replay through the engine's broker so features and corpus update.
        Seed seed;
        seed.prog = std::move(*prog);
        seed.new_features = 1;
        if (eng->corpus_mutable().add(std::move(seed))) ++loaded;
      }
    }
    cur_prog.clear();
  };
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.rfind("# device ", 0) == 0) {
      flush();
      cur_device = line.substr(9);
    } else if (line == "# end") {
      flush();
    } else if (!line.empty()) {
      cur_prog += line;
      cur_prog += '\n';
    }
    if (begin > text.size()) break;
  }
  flush();
  DF_CLOG("daemon", kInfo) << "loaded " << loaded << " corpus programs";
  return loaded;
}

}  // namespace df::core
