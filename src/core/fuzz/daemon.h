// The DroidFuzz Daemon (paper §IV-A): the root process. Spawns one Fuzzing
// Engine per target device, coordinates their progress in slice-sized
// rounds — sequentially by default, or on one worker thread per device via
// FleetExecutor (DaemonConfig::workers, DESIGN.md §8) — and maintains the
// persistent data: seed corpus snapshots, overall coverage statistics, and
// the relation table. Per-device results are bit-identical across worker
// counts for the same seed; aggregation (all_bugs/save_corpus) is ordered
// by device id, never by completion order.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/fuzz/engine.h"
#include "core/fuzz/fleet.h"
#include "device/catalog.h"
#include "obs/obs.h"
#include "obs/serve.h"
#include "obs/stats_reporter.h"
#include "obs/velocity.h"

namespace df::core {

struct DaemonConfig {
  uint64_t seed = 1;
  EngineConfig engine;  // template applied to every device engine
  // Directory for crash_<hash>.json provenance reports ("" disables).
  // Applied to every engine, present and future.
  std::string crash_dir;
  // Fleet worker threads for run(): 1 (default) = the historical sequential
  // path, 0 = hardware_concurrency, N = at most N threads (capped at the
  // device count). Engines are partitioned statically across workers, so
  // per-device results do not depend on this value.
  size_t workers = 1;
  // Campaign checkpointing ("" / 0 disables, the default — a campaign
  // without it behaves exactly as before). Every `checkpoint_every`
  // per-device executions run() barrier-reboots the whole fleet at a slice
  // boundary and writes a versioned checkpoint to
  // <checkpoint_dir>/checkpoint.json (core/fuzz/checkpoint.h).
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 0;
  // Live introspection HTTP server on 127.0.0.1 (DESIGN.md §10): -1 (the
  // default) disables, 0 binds a free ephemeral port (Daemon::serve_port()
  // reports it), otherwise the given port. Serving is read-only and does
  // not affect per-device results.
  int serve_port = -1;
};

struct CampaignBug {
  std::string device_id;
  BugRecord bug;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig cfg);

  // Builds the device and its engine. Returns false for unknown ids.
  bool add_device(std::string_view id);

  // Runs every engine up to `executions_per_device` total campaign
  // executions, interleaving in `slice`-sized rounds (the daemon's
  // synchronization granularity) across `cfg.workers` threads. A resumed
  // daemon (resume()) completes only the remaining budget. Reporter
  // sampling happens between rounds — at the slice barrier in parallel
  // mode — on the reporter's execution interval (plus a baseline point and
  // a final point), so the sampling cadence is identical for every worker
  // count. With checkpointing configured, every `checkpoint_every`
  // executions the fleet is barrier-rebooted and serialized at the same
  // kind of barrier.
  void run(uint64_t executions_per_device, uint64_t slice = 256);

  // --- aggregated observability ----------------------------------------------
  // Attach campaign telemetry to every engine, present and future (null
  // detaches).
  void attach_observability(obs::Observability* o);
  // Attach the campaign stats reporter run() samples into (null detaches).
  void attach_reporter(obs::StatsReporter* reporter);
  // Records one stats point per device right now, refreshing each device's
  // driver-state coverage matrices in the reporter.
  void sample_stats();
  // Re-points every engine's provenance output ("" disables).
  void set_crash_dir(std::string dir);

  // --- live introspection (DESIGN.md §10) ------------------------------------
  // The embedded HTTP server (null when cfg.serve_port < 0 or bind failed).
  const obs::HttpServer* server() const { return server_.get(); }
  // Bound port, or -1 when not serving.
  int serve_port() const {
    return server_ != nullptr ? static_cast<int>(server_->port()) : -1;
  }
  // Rebuilds the /status, /coverage, /frontier, and /healthz documents from
  // current engine state and swaps them in under the publish lock. Must run while
  // no worker owns the engines — run() calls it at every sample barrier and
  // at campaign end; call it manually after out-of-band mutations. The
  // /metrics endpoint needs no publishing: it renders live from the
  // (thread-safe) registry.
  void publish_introspection();
  // The same rendered documents publish_introspection() swaps into the
  // embedded server, for callers that serve them from their own endpoint
  // (the campaign service re-exposes them per job under /jobs/<id>/...).
  // Must run while no worker owns the engines — between run() calls.
  std::string status_json() const { return build_status_json(); }
  std::string coverage_json() const { return build_coverage_json(); }
  std::string frontier_json() const { return build_frontier_json(); }
  // Coverage-velocity analytics fed at the sampling cadence.
  const obs::VelocityTracker& velocity() const { return velocity_; }
  // Accumulated per-worker busy/idle/barrier accounting across run() calls.
  const FleetUtilization& utilization() const { return util_; }
  size_t device_count() const { return engines_.size(); }
  Engine* engine(std::string_view device_id);
  // Stably ordered by device id (not insertion or completion order).
  std::vector<CampaignBug> all_bugs() const;
  size_t total_kernel_coverage() const;
  uint64_t total_executions() const;

  // --- corpus distillation (DESIGN.md §12) -----------------------------------
  // Runs Engine::distill_corpus on every engine, ordered by device id, and
  // refreshes the introspection documents (/status "distill" blocks).
  // dry_run=true only reports what distillation would drop — the mode the
  // checkpoint boundary uses (see EngineConfig::distill_at_checkpoint).
  // dry_run=false destructively shrinks each corpus; do that at campaign
  // end, not mid-run (it changes corpus pick indices and therefore the
  // remaining trajectory).
  std::vector<std::pair<std::string, DistillStats>> distill_corpora(
      bool dry_run = false);

  // Persistent corpus: serialize every engine's corpus as DSL text
  // ("# device <id>" sections, ordered by device id), and reload it into
  // fresh engines.
  std::string save_corpus() const;
  size_t load_corpus(const std::string& text);

  // --- checkpoint/resume ----------------------------------------------------
  // Serializes the campaign right now: barrier-reboots every device, then
  // returns the versioned checkpoint document (core/fuzz/checkpoint.h).
  std::string checkpoint_json();
  // Restores a checkpoint into this daemon. Must be called on a freshly
  // constructed daemon with the same seed and add_device() sequence,
  // observability/reporter already attached, before run(). Returns false
  // and fills `error` (if non-null) on malformed or mismatched input.
  bool resume(const std::string& json, std::string* error = nullptr);
  // Per-device executions already completed (restored by resume(); run()
  // executes only the remaining budget).
  uint64_t progress() const { return progress_; }
  // Checkpoint files written by run(), in order.
  const std::vector<std::string>& checkpoints_written() const {
    return checkpoints_written_;
  }

 private:
  friend class CampaignCheckpoint;
  struct Slot {
    std::string id;
    std::unique_ptr<device::Device> dev;
    std::unique_ptr<Engine> eng;
  };

  // Slots sorted by device id — the stable aggregation order.
  std::vector<const Slot*> slots_by_id() const;

  void start_server();
  std::string build_status_json() const;
  std::string build_coverage_json() const;
  std::string build_frontier_json() const;

  DaemonConfig cfg_;
  util::Rng rng_;
  std::vector<Slot> engines_;
  obs::Observability* obs_ = nullptr;
  obs::StatsReporter* reporter_ = nullptr;
  uint64_t progress_ = 0;        // per-device executions completed so far
  uint64_t pending_sample_ = 0;  // sampling remainder carried across resume
  std::vector<std::string> checkpoints_written_;

  obs::VelocityTracker velocity_;
  FleetUtilization util_;
  // Engine state is single-threaded; the server thread only ever sees the
  // pre-rendered documents below, swapped in by publish_introspection().
  // Heap-allocated and captured by the handlers as a shared_ptr so the
  // Daemon stays movable and handler lifetimes are independent of it.
  struct IntrospectionState {
    std::mutex mu;
    obs::Observability* obs = nullptr;  // mirror of obs_ for /metrics
    std::string status = "{}";
    std::string coverage = "{}";
    std::string frontier = "{}";
    bool healthy = true;
    std::string health_detail;
  };
  std::shared_ptr<IntrospectionState> introspect_;
  std::unique_ptr<obs::HttpServer> server_;
};

}  // namespace df::core
