#include "core/fuzz/engine.h"

#include <algorithm>
#include <unordered_set>

#include "core/descriptions.h"
#include "core/gen/minimize.h"
#include "device/catalog.h"
#include "util/log.h"

namespace df::core {

Engine::Engine(device::Device& dev, EngineConfig cfg)
    : dev_(dev), cfg_(cfg), rng_(cfg.seed) {}

ExecOptions Engine::exec_options() const {
  ExecOptions opt;
  opt.collect_cov = true;
  opt.hal_directional = cfg_.hal_feedback;
  opt.reboot_on_bug = cfg_.reboot_on_bug;
  return opt;
}

void Engine::setup() {
  if (ready()) return;

  // Kernel surface: authored syscall descriptions (syzkaller-style).
  add_syscall_descriptions(table_, dev_);

  // HAL surface: pre-testing probing (§IV-B) discovers interfaces, argument
  // types, and normalized-occurrence weights.
  if (cfg_.probe_hal) {
    HalProber prober(dev_, rng_.next(), obs_);
    probed_ = prober.probe();
    std::unordered_set<std::string> done;
    for (const auto& pm : probed_->methods) {
      if (!pm.responsive) continue;
      if (!done.insert(pm.service).second) continue;
      const hal::InterfaceDesc* iface =
          dev_.service_manager().get_interface(pm.service);
      if (iface != nullptr) {
        add_hal_interface(table_, pm.service, *iface,
                          probed_->method_weights_for(pm.service));
      }
    }
  }

  // Specialized-syscall lookup table (§IV-D), compiled at initialization.
  spec_ = make_spec_table(table_);

  // Relation graph (§IV-C): vertices carry description/probe weights,
  // E starts empty.
  for (const dsl::CallDesc* d : table_.all()) rel_.add_vertex(d, d->weight);

  broker_ = std::make_unique<Broker>(dev_, spec_);
  if (obs_ != nullptr) broker_->attach_observability(obs_, dev_.spec().id);
  if (cfg_.fault.rate > 0) {
    device::FaultPlan plan(cfg_.fault, derive_fault_seed(cfg_.seed));
    fault_ = std::make_unique<FaultInjector>(std::move(plan),
                                             cfg_.transport);
    broker_->set_fault_injector(fault_.get());
  }
  gen_ = std::make_unique<Generator>(table_, rel_, corpus_, rng_,
                                     cfg_.gen);
  if (cfg_.lint_programs) {
    gen_->set_lint(&lint_, c_lint_rejected_, c_lint_repaired_);
  }
  // Dataflow-targeted mutation: index every driver's declared transition
  // guards once; the mutator biases arg edits toward guard-relevant
  // parameters. Baselines set gen.dataflow_bias = false and keep the
  // historical uniform arg choice (and RNG stream).
  if (cfg_.gen.dataflow_bias) {
    for (const auto& d : dev_.kernel().drivers()) guards_.add_driver(*d);
    if (!guards_.empty()) gen_->set_guard_index(&guards_);
  }

  // Reachability planners over each driver's declared transition graph
  // (drivers without one contribute nothing).
  const auto& drvs = dev_.kernel().drivers();
  for (size_t i = 0; i < drvs.size(); ++i) {
    analysis::StateGraph g = analysis::graph_of(*drvs[i]);
    if (g.empty()) continue;
    planners_.emplace_back(i, analysis::ReachabilityPlanner(std::move(g)));
  }
  DF_CLOG("engine", kInfo) << "engine[" << dev_.spec().id << "]: "
                           << table_.size() << " calls, " << spec_.size()
                           << " specialized ids, " << planners_.size()
                           << " state planners";
}

void Engine::attach_observability(obs::Observability* o) {
  obs_ = o;
  if (o == nullptr) {
    spans_ = nullptr;
    flight_ = nullptr;
    h_generate_ = h_analyze_ = h_minimize_ = nullptr;
    c_execs_ = c_new_features_ = c_corpus_adds_ = c_bugs_ = nullptr;
    c_decays_ = c_min_oracle_ = c_relations_ = nullptr;
    c_lint_rejected_ = c_lint_repaired_ = c_plans_injected_ = nullptr;
    c_f_reboots_ = c_f_retries_ = c_f_lost_ = nullptr;
    if (gen_ != nullptr && cfg_.lint_programs) {
      gen_->set_lint(&lint_, nullptr, nullptr);
    }
    if (broker_ != nullptr) broker_->attach_observability(nullptr, {});
    dev_.set_reboot_hook(nullptr);
    return;
  }
  spans_ = o->spans.enabled() ? &o->spans : nullptr;
  flight_ = o->flight.enabled() ? &o->flight : nullptr;
  const std::string& id = dev_.spec().id;
  auto& reg = o->registry;
  h_generate_ = &reg.histogram("phase.generate", id);
  h_analyze_ = &reg.histogram("phase.analyze", id);
  h_minimize_ = &reg.histogram("phase.minimize", id);
  c_execs_ = &reg.counter("engine.executions", id);
  c_new_features_ = &reg.counter("engine.new_features", id);
  c_corpus_adds_ = &reg.counter("engine.corpus_adds", id);
  c_bugs_ = &reg.counter("engine.bugs", id);
  c_decays_ = &reg.counter("engine.decays", id);
  c_min_oracle_ = &reg.counter("minimize.oracle_execs", id);
  c_relations_ = &reg.counter("relation.observations", id);
  c_lint_rejected_ = &reg.counter("analysis.rejected", id);
  c_lint_repaired_ = &reg.counter("analysis.repaired", id);
  c_plans_injected_ = &reg.counter("analysis.plans_injected", id);
  if (cfg_.fault.rate > 0) {
    c_f_reboots_ = &reg.counter("campaign.reboots", id);
    c_f_retries_ = &reg.counter("campaign.retries", id);
    c_f_lost_ = &reg.counter("campaign.lost_execs", id);
  }
  // attach can run before or after setup(); re-thread the generator's lint
  // counters when it already exists.
  if (gen_ != nullptr && cfg_.lint_programs) {
    gen_->set_lint(&lint_, c_lint_rejected_, c_lint_repaired_);
  }
  if (broker_ != nullptr) broker_->attach_observability(o, id);
  dev_.set_reboot_hook([this](uint64_t reboot_count) {
    if (obs_ == nullptr) return;
    obs_->registry.counter("device.reboots", dev_.spec().id).inc();
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kReboot;
    ev.device = dev_.spec().id;
    ev.exec_index = exec_count_;
    ev.with("total_reboots", reboot_count);
    obs_->trace.emit(std::move(ev));
  });
}

std::vector<uint8_t> Engine::driver_state_snapshot() const {
  const auto& drvs = dev_.kernel().drivers();
  std::vector<uint8_t> out;
  out.reserve(drvs.size());
  for (const auto& d : drvs) {
    out.push_back(static_cast<uint8_t>(d->current_state()));
  }
  return out;
}

std::vector<obs::DriverStateCoverage> Engine::state_coverage() const {
  return snapshot_driver_states(dev_.kernel());
}

CrashContext Engine::make_crash_context(const ExecResult& res) const {
  CrashContext ctx;
  ctx.device = dev_.spec().id;
  ctx.seed = cfg_.seed;
  ctx.exec_index = exec_count_;
  ctx.flight = flight_;
  // Crash-time driver states: when the reboot policy already ran, the live
  // kernel is freshly booted and its state machines are wiped — use the
  // pre-reboot snapshot the broker took instead.
  ctx.state_coverage =
      res.states_at_crash.empty() ? state_coverage() : res.states_at_crash;
  for (const auto& rep : res.kernel_reports) {
    std::string line = rep.title;
    if (!rep.detail.empty()) {
      line += " | ";
      line += rep.detail;
    }
    ctx.kernel_context.push_back(std::move(line));
  }
  for (const auto& crash : res.hal_crashes) {
    ctx.hal_context.push_back(crash.service + " " + crash.signal + " at " +
                              crash.site);
  }
  return ctx;
}

obs::EngineSample Engine::sample() const {
  obs::EngineSample s;
  s.executions = exec_count_;
  s.kernel_coverage = features_.kernel_size();
  s.total_coverage = features_.size();
  s.corpus_size = corpus_.size();
  s.unique_bugs = crash_log_.unique_bugs();
  s.relation_edges = rel_.edge_count();
  s.reboots = dev_.kernel().reboot_count();
  for (const auto& cov : state_coverage()) {
    s.states_visited += cov.states_visited();
  }
  return s;
}

void Engine::learn_from(const dsl::Program& prog) {
  size_t observed = 0;
  for (size_t i = 0; i + 1 < prog.calls.size(); ++i) {
    rel_.observe_relation(prog.calls[i].desc, prog.calls[i + 1].desc);
    ++observed;
  }
  if (obs_ != nullptr && observed > 0) {
    c_relations_->inc(observed);
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kRelationLearn;
    ev.device = dev_.spec().id;
    ev.exec_index = exec_count_;
    ev.with("pairs", static_cast<uint64_t>(observed))
        .with("edges", static_cast<uint64_t>(rel_.edge_count()));
    obs_->trace.emit(std::move(ev));
  }
}

void Engine::record_bug(const BugRecord& bug) {
  c_bugs_->inc();
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kBug;
  ev.device = dev_.spec().id;
  ev.exec_index = exec_count_;
  ev.with("title", bug.title)
      .with("component", bug.component)
      .with("origin", bug.origin)
      .with("class", bug.bug_class)
      .with("repro_calls", static_cast<uint64_t>(bug.repro.size()));
  obs_->trace.emit(std::move(ev));
}

void Engine::record_step(const ExecResult& res, const StepStats& stats,
                         bool decayed) {
  c_execs_->inc();
  if (stats.new_features > 0) c_new_features_->inc(stats.new_features);
  if (stats.added_to_corpus) c_corpus_adds_->inc();
  if (decayed) c_decays_->inc();

  auto& tr = obs_->trace;
  const std::string& id = dev_.spec().id;
  if (tr.record_execs()) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kExec;
    ev.device = id;
    ev.exec_index = exec_count_;
    ev.with("calls", static_cast<uint64_t>(res.calls_executed))
        .with("new_features", static_cast<uint64_t>(stats.new_features))
        .with("kernel_bug", static_cast<uint64_t>(stats.kernel_bug ? 1 : 0))
        .with("hal_crash", static_cast<uint64_t>(stats.hal_crash ? 1 : 0))
        .with("rebooted", static_cast<uint64_t>(res.rebooted ? 1 : 0));
    tr.emit(std::move(ev));
  }
  if (stats.new_features > 0) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kNewCoverage;
    ev.device = id;
    ev.exec_index = exec_count_;
    ev.with("new_features", static_cast<uint64_t>(stats.new_features))
        .with("kernel_total", static_cast<uint64_t>(features_.kernel_size()))
        .with("total", static_cast<uint64_t>(features_.size()));
    tr.emit(std::move(ev));
  }
  if (stats.added_to_corpus) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kCorpusAdd;
    ev.device = id;
    ev.exec_index = exec_count_;
    ev.with("corpus_size", static_cast<uint64_t>(corpus_.size()));
    tr.emit(std::move(ev));
  }
  if (decayed) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kDecay;
    ev.device = id;
    ev.exec_index = exec_count_;
    ev.with("edges", static_cast<uint64_t>(rel_.edge_count()));
    tr.emit(std::move(ev));
  }
}

void Engine::analyze(const dsl::Program& prog, const ExecResult& res,
                     StepStats& stats) {
  // Crashes first: every report is triaged against this program.
  for (const auto& rep : res.kernel_reports) {
    if (crash_log_.record_kernel(rep, prog, exec_count_)) {
      ++stats.new_bugs;
      record_bug_lineage(prog);
      if (obs_ != nullptr) record_bug(crash_log_.bugs().back());
    }
    stats.kernel_bug = true;
  }
  for (const auto& crash : res.hal_crashes) {
    if (crash_log_.record_hal(crash, prog, exec_count_)) {
      ++stats.new_bugs;
      record_bug_lineage(prog);
      if (obs_ != nullptr) record_bug(crash_log_.bugs().back());
    }
    stats.hal_crash = true;
  }

  const std::vector<uint64_t> fresh = features_.add_new(res.features);
  stats.new_features = fresh.size();
  if (fresh.empty()) return;

  // Minimize to the essential calls (§IV-C), then learn relations from the
  // minimized program's adjacencies and keep it as a seed.
  dsl::Program seed_prog = prog;
  bool minimized = false;
  if (cfg_.minimize_new_seeds && prog.calls.size() > 1) {
    std::unordered_set<uint64_t> wanted(fresh.begin(), fresh.end());
    auto oracle = [&](const dsl::Program& cand) {
      const ExecResult r = broker_->execute(cand, exec_options());
      for (uint64_t f : r.features) {
        if (wanted.count(f) != 0) return true;
      }
      return false;
    };
    MinimizeStats mstats;
    seed_prog = minimize(prog, oracle, cfg_.minimize_budget, &mstats,
                         h_minimize_, cfg_.lint_programs ? &lint_ : nullptr);
    if (obs_ != nullptr) c_min_oracle_->inc(mstats.oracle_calls);
    minimized = mstats.calls_removed > 0 || mstats.args_simplified > 0;
    if (cfg_.analytics) {
      attribution_.record_minimize(mstats.oracle_calls, minimized);
    }
  }
  if (cfg_.learn_relations) learn_from(seed_prog);

  Seed seed;
  seed.prog = std::move(seed_prog);
  seed.new_features = fresh.size();
  seed.exec_index = exec_count_;
  // Lineage: the stored program descends from the step's corpus parent; a
  // minimizer rewrite is its own derivation step in the origin tag.
  seed.parent_hash = step_parent_hash_;
  seed.origin =
      minimized ? obs::ProgramOrigin::kMinimized : step_origin_;
  stats.added_to_corpus = corpus_.add(std::move(seed));
}

void Engine::record_bug_lineage(const dsl::Program& prog) {
  BugRecord& bug = crash_log_.bugs_mutable().back();
  bug.lineage = corpus_.ancestor_chain(step_parent_hash_);
  obs::LineageLink trigger;
  trigger.hash = dsl::program_hash(prog);
  trigger.origin = step_origin_;
  trigger.exec_index = exec_count_;
  trigger.depth = bug.lineage.empty() ? 0 : bug.lineage.back().depth + 1;
  bug.lineage.push_back(trigger);
}

StepStats Engine::step() {
  if (!ready()) setup();
  StepStats stats;
  const obs::ScopedSpan iter_span(spans_, "iteration", dev_.spec().id,
                                  exec_count_ + 1);
  // Reachability-plan injection (§ static analysis): periodically seed the
  // queue with programs that drive each driver toward states the campaign
  // has never visited; they are executed in place of generated inputs.
  if (cfg_.use_reachability_plans && cfg_.plan_every != 0 &&
      exec_count_ != 0 && exec_count_ % cfg_.plan_every == 0 &&
      plan_queue_.empty()) {
    refill_plan_queue();
  }
  // Snapshot forks (DESIGN.md §13): periodically run one generated program
  // from a restored deep-state snapshot instead of the rolling state.
  if (cfg_.use_snapshots && cfg_.snapshot_every != 0 && exec_count_ != 0 &&
      exec_count_ % cfg_.snapshot_every == 0 && !snap_pool_.empty() &&
      plan_queue_.empty()) {
    enqueue_snapshot_fork();
  }
  dsl::Program prog;
  bool step_has_target = false;
  size_t step_target_driver = 0;
  size_t step_target_state = 0;
  std::shared_ptr<const device::StateSnapshot> step_snapshot;
  {
    const obs::ScopedTimer t(h_generate_);
    const obs::ScopedSpan s(spans_, "phase:generate", dev_.spec().id,
                            exec_count_ + 1);
    if (!plan_queue_.empty()) {
      QueuedProgram q = std::move(plan_queue_.front());
      plan_queue_.pop_front();
      prog = std::move(q.prog);
      step_origin_ = q.origin;
      step_parent_hash_ = q.parent_hash;
      step_has_target = q.has_target;
      step_target_driver = q.target_driver;
      step_target_state = q.target_state;
      step_snapshot = std::move(q.snapshot);
    } else {
      Generator::Candidate cand = gen_->next_candidate();
      prog = std::move(cand.prog);
      step_origin_ = cand.origin;
      step_parent_hash_ = cand.parent_hash;
    }
  }
  if (prog.empty()) return stats;
  ++exec_count_;
  if (step_snapshot != nullptr) {
    // Rewind to the fork's deep state; the restore replaces the prefix
    // executions that established it. A shape mismatch (cannot happen for
    // same-campaign snapshots) just runs the program from the rolling state.
    if (broker_->restore_snapshot(*step_snapshot)) {
      ++snap_stats_.restores;
      ++snap_stats_.forks;
      ++snap_stats_.prefix_execs_saved;
      snap_stats_.prefix_calls_saved += step_snapshot->estab_calls;
    }
  }
  std::vector<uint8_t> states_before;
  if (flight_ != nullptr) states_before = driver_state_snapshot();
  const size_t bugs_before = crash_log_.unique_bugs();
  const uint64_t states_visited_before =
      (cfg_.analytics || cfg_.use_snapshots) ? count_states_visited() : 0;
  const ExecResult res = broker_->execute(prog, exec_options());
  stats.lost_exec = res.transport_error;
  if (!res.transport_error) {
    const obs::ScopedTimer t(h_analyze_);
    const obs::ScopedSpan s(spans_, "phase:analyze", dev_.spec().id,
                            exec_count_);
    analyze(prog, res, stats);
  }
  // Plan outcome tracking: an injected plan that ran without its target
  // state being entered is the planned-but-failed frontier signal.
  if (step_has_target) {
    const auto& drvs = dev_.kernel().drivers();
    const auto& visits = drvs[step_target_driver]->state_visits();
    if (step_target_state >= visits.size() ||
        visits[step_target_state] == 0) {
      ++plan_attempts_[{step_target_driver, step_target_state}]
            .executed_no_visit;
    }
  }
  // Operator attribution (purely observational; see DESIGN.md §11).
  if (cfg_.analytics) {
    attribution_.record_attempt(step_origin_,
                                static_cast<uint64_t>(prog.calls.size()));
    const uint64_t states_delta =
        count_states_visited() - states_visited_before;
    attribution_.credit(step_origin_,
                        static_cast<uint64_t>(stats.new_features),
                        states_delta, static_cast<uint64_t>(stats.new_bugs),
                        stats.added_to_corpus);
  }
  if (fault_ != nullptr) {
    if (obs_ != nullptr && res.retries > 0) c_f_retries_->inc(res.retries);
    if (obs_ != nullptr && res.transport_error) c_f_lost_->inc();
    if (obs_ != nullptr && res.fault != device::FaultKind::kNone) {
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kFault;
      ev.device = dev_.spec().id;
      ev.exec_index = exec_count_;
      ev.with("kind", std::string(device::fault_kind_name(res.fault)))
          .with("retries", static_cast<uint64_t>(res.retries))
          .with("lost", static_cast<uint64_t>(res.transport_error ? 1 : 0));
      obs_->trace.emit(std::move(ev));
    }
    // A fault-induced reboot wiped kernel + HAL state; recover the device
    // before the next generated input runs against it (snapshot restore
    // when the layer is on, full reestablish otherwise).
    if (res.rebooted && (res.fault == device::FaultKind::kHang ||
                         res.fault == device::FaultKind::kReboot)) {
      recover_from_fault(res);
    }
  }
  // Frontier capture (DESIGN.md §13): a clean execution that pushed the
  // driver-state frontier left the device in a state worth forking from.
  if (cfg_.use_snapshots && !res.transport_error && !res.rebooted &&
      !res.any_bug() && count_states_visited() > states_visited_before) {
    capture_frontier_snapshot(prog);
  }

  if (flight_ != nullptr) {
    obs::ExecutionRecord rec;
    rec.exec_index = exec_count_;
    rec.program = std::make_shared<const dsl::Program>(prog);
    rec.rets = res.rets;
    rec.new_features = stats.new_features;
    rec.kernel_bug = stats.kernel_bug;
    rec.hal_crash = stats.hal_crash;
    rec.transport_fault = res.transport_error;
    rec.states_before = std::move(states_before);
    // Post-reboot when the execution rebooted: the recovery state is what
    // the next execution actually starts from.
    rec.states_after = driver_state_snapshot();
    flight_->push(std::move(rec));
  }
  if (crash_log_.provenance_enabled() &&
      crash_log_.unique_bugs() > bugs_before) {
    const CrashContext ctx = make_crash_context(res);
    for (size_t i = bugs_before; i < crash_log_.unique_bugs(); ++i) {
      crash_log_.write_provenance(crash_log_.bugs()[i], ctx);
    }
  }

  bool decayed = false;
  if (cfg_.decay_every != 0 && exec_count_ % cfg_.decay_every == 0) {
    rel_.decay(cfg_.decay_factor);
    decayed = true;
  }
  if (obs_ != nullptr) record_step(res, stats, decayed);
  return stats;
}

void Engine::run(uint64_t executions) {
  if (!ready()) setup();
  for (uint64_t i = 0; i < executions; ++i) step();
}

dsl::Program Engine::minimize_crash(const BugRecord& bug, size_t budget) {
  if (!ready()) setup();
  const std::string title = bug.title;
  auto oracle = [&](const dsl::Program& cand) {
    const ExecResult r = broker_->execute(cand, exec_options());
    for (const auto& rep : r.kernel_reports) {
      if (normalize_title(rep.title) == title) return true;
    }
    for (const auto& crash : r.hal_crashes) {
      if (hal_crash_title(crash.service) == title) return true;
    }
    return false;
  };
  return minimize(bug.repro, oracle, budget, nullptr, h_minimize_,
                  cfg_.lint_programs ? &lint_ : nullptr);
}

namespace {

// One replay's coverage footprint on a scratch device: the execution's
// features plus a token per driver state-transition it exercised. The
// state matrices are campaign-cumulative (they survive the pre-replay
// reboot), so transitions are read as before/after deltas. Transition
// tokens live under pseudo-driver 0xFFFE — below the HAL 0xFFFF namespace
// and above every real driver id, so they can never collide with kcov or
// directional features.
std::vector<uint64_t> footprint_on(device::Device& scratch, Broker& broker,
                                   const ExecOptions& opt,
                                   const dsl::Program& prog) {
  scratch.reboot();
  const auto& drvs = scratch.kernel().drivers();
  std::vector<std::vector<uint64_t>> before;
  before.reserve(drvs.size());
  for (const auto& d : drvs) before.push_back(d->state_matrix());
  const ExecResult res = broker.execute(prog, opt);
  std::vector<uint64_t> fp = res.features;
  for (size_t di = 0; di < drvs.size(); ++di) {
    const auto& after = drvs[di]->state_matrix();
    const size_t n = drvs[di]->state_names().size();
    if (n == 0) continue;
    for (size_t cell = 0; cell < after.size(); ++cell) {
      const uint64_t prev =
          cell < before[di].size() ? before[di][cell] : 0;
      if (after[cell] > prev) {
        fp.push_back((0xFFFEull << 48) |
                     (static_cast<uint64_t>(di) << 32) |
                     (static_cast<uint64_t>(cell / n) << 16) |
                     static_cast<uint64_t>(cell % n));
      }
    }
  }
  return fp;
}

}  // namespace

std::vector<uint64_t> Engine::replay_footprint(const dsl::Program& prog) {
  if (!ready()) setup();
  auto scratch = device::make_device(dev_.spec().id, dev_.seed());
  Broker broker(*scratch, spec_);
  ExecOptions opt = exec_options();
  opt.reboot_on_bug = false;  // scratch state is disposable; keep replaying
  return footprint_on(*scratch, broker, opt, prog);
}

DistillStats Engine::distill_corpus(bool dry_run) {
  if (!ready()) setup();
  // A fresh scratch device per replay, not one shared across the pass:
  // drivers keep per-boot state a reboot deliberately does not erase
  // (rt1711's vendor-init retry coverage varies with its probe count), so
  // on a shared device a program's footprint would depend on its position
  // in the replay sequence — and the verification pass, which replays the
  // kept seeds at different positions, would see spurious drift. Per-replay
  // devices make the footprint a pure function of the program, which the
  // bit-identical-replay contract requires. The campaign device never sees
  // any of this.
  const DistillStats stats = corpus_.distill(
      [&](const dsl::Program& prog) { return replay_footprint(prog); },
      dry_run);
  last_distill_ = stats;
  has_distill_stats_ = true;
  if (obs_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kDistill;
    ev.device = dev_.spec().id;
    ev.exec_index = exec_count_;
    ev.with("before", static_cast<uint64_t>(stats.before))
        .with("after", static_cast<uint64_t>(stats.after))
        .with("dry_run", static_cast<uint64_t>(stats.dry_run ? 1 : 0))
        .with("verified", static_cast<uint64_t>(stats.verified ? 1 : 0));
    obs_->trace.emit(std::move(ev));
  }
  return stats;
}

uint64_t Engine::count_states_visited() const {
  uint64_t total = 0;
  for (const auto& d : dev_.kernel().drivers()) total += d->states_visited();
  return total;
}

obs::FrontierReport Engine::frontier_report() const {
  obs::FrontierReport out;
  const auto& drvs = dev_.kernel().drivers();
  for (const auto& [di, planner] : planners_) {
    const auto& visits = drvs[di]->state_visits();
    const analysis::StateGraph& g = planner.graph();
    out.states_total += g.states.size();
    for (size_t s = 0; s < g.states.size(); ++s) {
      if (s < visits.size() && visits[s] > 0) {
        ++out.states_visited;
        continue;
      }
      const analysis::StatePlan& plan = planner.plans()[s];
      obs::FrontierState f;
      f.driver = g.driver;
      f.state = g.states[s];
      f.state_index = s;
      f.plan_length = plan.steps.size();
      const auto it = plan_attempts_.find({di, s});
      if (it != plan_attempts_.end()) {
        f.plans_injected = it->second.injected;
        f.materialize_failed = it->second.materialize_failed;
        f.executed_no_visit = it->second.executed_no_visit;
      }
      // Exactly one class per unvisited state: no declared route beats
      // everything; any recorded plan attempt (queued, failed to
      // materialize, or executed without a visit) means we tried and
      // failed; otherwise the planner simply never got to it.
      if (!plan.reachable) {
        f.cls = obs::FrontierClass::kUnreachableFromFrontier;
      } else if (f.plans_injected > 0 || f.materialize_failed > 0 ||
                 f.executed_no_visit > 0) {
        f.cls = obs::FrontierClass::kPlannedButFailed;
      } else {
        f.cls = obs::FrontierClass::kNeverAttempted;
      }
      out.unvisited.push_back(std::move(f));
    }
  }
  return out;
}

obs::AnalyticsSnapshot Engine::analytics_snapshot() const {
  obs::AnalyticsSnapshot snap;
  snap.operators = attribution_;
  snap.lineage = corpus_.lineage_summary();
  snap.frontier = frontier_report();
  return snap;
}

std::vector<Engine::UnvisitedStatePlan> Engine::unvisited_state_plans()
    const {
  std::vector<UnvisitedStatePlan> out;
  const auto& drvs = dev_.kernel().drivers();
  for (const auto& [di, planner] : planners_) {
    for (analysis::StatePlan& p : planner.unvisited(drvs[di]->state_visits())) {
      UnvisitedStatePlan u;
      u.driver = std::string(drvs[di]->name());
      u.plan = std::move(p);
      out.push_back(std::move(u));
    }
  }
  return out;
}

void Engine::reestablish(const ExecResult& res) {
  // Device nodes reopen lazily (runtime fds are program-positional), so
  // re-establishment is about campaign state: replay reachability plans
  // for the wiped driver state machines, then re-warm corpus triage by
  // re-queuing the most recent seeds so the protocol state the corpus
  // encodes is re-derived on the fresh kernel.
  const size_t queued_before = plan_queue_.size();
  if (cfg_.use_reachability_plans) refill_plan_queue();
  constexpr size_t kRewarmSeeds = 4;
  const size_t n = std::min(corpus_.size(), kRewarmSeeds);
  for (size_t i = corpus_.size() - n; i < corpus_.size(); ++i) {
    QueuedProgram q;
    q.prog = corpus_.at(i).prog;
    q.origin = obs::ProgramOrigin::kReplay;
    q.parent_hash = corpus_.at(i).hash;
    plan_queue_.push_back(std::move(q));
  }
  if (obs_ != nullptr) {
    c_f_reboots_->inc();
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kRecovery;
    ev.device = dev_.spec().id;
    ev.exec_index = exec_count_;
    ev.with("cause", std::string(device::fault_kind_name(res.fault)))
        .with("replayed",
              static_cast<uint64_t>(plan_queue_.size() - queued_before));
    obs_->trace.emit(std::move(ev));
  }
}

void Engine::recover_from_fault(const ExecResult& res) {
  // Restore-from-last-good-snapshot (DESIGN.md §13): one restore call puts
  // the device back into the deepest known-good state, instead of a clean
  // boot followed by reestablish()'s plan/seed replay executions.
  if (cfg_.use_snapshots && last_good_ != nullptr &&
      broker_->restore_snapshot(*last_good_)) {
    ++snap_stats_.restores;
    ++snap_stats_.fault_recoveries;
    ++snap_stats_.prefix_execs_saved;
    snap_stats_.prefix_calls_saved += last_good_->estab_calls;
    if (obs_ != nullptr) {
      c_f_reboots_->inc();
      obs::TraceEvent ev;
      ev.kind = obs::EventKind::kRecovery;
      ev.device = dev_.spec().id;
      ev.exec_index = exec_count_;
      ev.with("cause", std::string(device::fault_kind_name(res.fault)))
          .with("mode", std::string("snapshot"))
          .with("snapshot_seq", last_good_->seq);
      obs_->trace.emit(std::move(ev));
    }
    return;
  }
  reestablish(res);
}

void Engine::capture_frontier_snapshot(const dsl::Program& prog) {
  const device::StateSnapshot* parent =
      snap_pool_.empty() ? nullptr : snap_pool_.back().get();
  auto snap =
      std::make_shared<device::StateSnapshot>(broker_->capture_snapshot(parent));
  snap->seq = ++snap_seq_;
  snap->estab_calls = static_cast<uint64_t>(prog.calls.size());
  ++snap_stats_.captures;
  snap_stats_.sections_total += snap->sections.size();
  snap_stats_.sections_shared += snap->sections_shared;
  snap_stats_.bytes_total += snap->total_bytes();
  snap_stats_.bytes_shared += snap->bytes_shared;
  snap_pool_.push_back(std::move(snap));
  if (snap_pool_.size() > cfg_.snapshot_pool) {
    snap_pool_.erase(snap_pool_.begin());
  }
  last_good_ = snap_pool_.back();
}

void Engine::enqueue_snapshot_fork() {
  // Deterministic round-robin over the pool keyed by the boundary index, so
  // the same campaign point always forks from the same snapshot.
  const size_t idx = static_cast<size_t>(
      (exec_count_ / cfg_.snapshot_every) % snap_pool_.size());
  Generator::Candidate cand = gen_->next_candidate();
  if (cand.prog.empty()) return;
  QueuedProgram q;
  q.prog = std::move(cand.prog);
  q.origin = obs::ProgramOrigin::kSnapshotFork;
  q.parent_hash = cand.parent_hash;
  q.snapshot = snap_pool_[idx];
  plan_queue_.push_back(std::move(q));
}

void Engine::refill_plan_queue() {
  constexpr size_t kMaxQueue = 64;
  const auto& drvs = dev_.kernel().drivers();
  for (const auto& [di, planner] : planners_) {
    for (const analysis::StatePlan& p :
         planner.unvisited(drvs[di]->state_visits())) {
      if (plan_queue_.size() >= kMaxQueue) return;
      if (!p.reachable || p.steps.empty()) continue;
      auto prog = analysis::materialize_plan(p, table_);
      if (!prog.has_value()) {
        // Declared route exists but this table cannot instantiate it — a
        // planned-but-failed frontier outcome.
        ++plan_attempts_[{di, p.state}].materialize_failed;
        continue;
      }
      // The plan leaves handle args unresolved; splice in producers the
      // same way generated programs get them.
      gen_->resolve_producers(*prog);
      if (c_plans_injected_ != nullptr) c_plans_injected_->inc();
      ++plan_attempts_[{di, p.state}].injected;
      QueuedProgram q;
      q.prog = std::move(*prog);
      q.origin = obs::ProgramOrigin::kPlanInjected;
      q.has_target = true;
      q.target_driver = di;
      q.target_state = p.state;
      plan_queue_.push_back(std::move(q));
    }
  }
}

}  // namespace df::core
