#include "core/fuzz/engine.h"

#include <algorithm>
#include <unordered_set>

#include "core/descriptions.h"
#include "core/gen/minimize.h"
#include "util/log.h"

namespace df::core {

Engine::Engine(device::Device& dev, EngineConfig cfg)
    : dev_(dev), cfg_(cfg), rng_(cfg.seed) {}

ExecOptions Engine::exec_options() const {
  ExecOptions opt;
  opt.collect_cov = true;
  opt.hal_directional = cfg_.hal_feedback;
  opt.reboot_on_bug = cfg_.reboot_on_bug;
  return opt;
}

void Engine::setup() {
  if (ready()) return;

  // Kernel surface: authored syscall descriptions (syzkaller-style).
  add_syscall_descriptions(table_, dev_);

  // HAL surface: pre-testing probing (§IV-B) discovers interfaces, argument
  // types, and normalized-occurrence weights.
  if (cfg_.probe_hal) {
    HalProber prober(dev_, rng_.next());
    probed_ = prober.probe();
    std::unordered_set<std::string> done;
    for (const auto& pm : probed_->methods) {
      if (!pm.responsive) continue;
      if (!done.insert(pm.service).second) continue;
      const hal::InterfaceDesc* iface =
          dev_.service_manager().get_interface(pm.service);
      if (iface != nullptr) {
        add_hal_interface(table_, pm.service, *iface,
                          probed_->method_weights_for(pm.service));
      }
    }
  }

  // Specialized-syscall lookup table (§IV-D), compiled at initialization.
  spec_ = make_spec_table(table_);

  // Relation graph (§IV-C): vertices carry description/probe weights,
  // E starts empty.
  for (const dsl::CallDesc* d : table_.all()) rel_.add_vertex(d, d->weight);

  broker_ = std::make_unique<Broker>(dev_, spec_);
  gen_ = std::make_unique<Generator>(table_, rel_, corpus_, rng_,
                                     cfg_.gen);
  DF_LOG(kInfo) << "engine[" << dev_.spec().id << "]: " << table_.size()
                << " calls, " << spec_.size() << " specialized ids";
}

void Engine::learn_from(const dsl::Program& prog) {
  for (size_t i = 0; i + 1 < prog.calls.size(); ++i) {
    rel_.observe_relation(prog.calls[i].desc, prog.calls[i + 1].desc);
  }
}

void Engine::analyze(const dsl::Program& prog, const ExecResult& res,
                     StepStats& stats) {
  // Crashes first: every report is triaged against this program.
  for (const auto& rep : res.kernel_reports) {
    if (crash_log_.record_kernel(rep, prog, exec_count_)) ++stats.new_bugs;
    stats.kernel_bug = true;
  }
  for (const auto& crash : res.hal_crashes) {
    if (crash_log_.record_hal(crash, prog, exec_count_)) ++stats.new_bugs;
    stats.hal_crash = true;
  }

  const std::vector<uint64_t> fresh = features_.add_new(res.features);
  stats.new_features = fresh.size();
  if (fresh.empty()) return;

  // Minimize to the essential calls (§IV-C), then learn relations from the
  // minimized program's adjacencies and keep it as a seed.
  dsl::Program seed_prog = prog;
  if (cfg_.minimize_new_seeds && prog.calls.size() > 1) {
    std::unordered_set<uint64_t> wanted(fresh.begin(), fresh.end());
    auto oracle = [&](const dsl::Program& cand) {
      const ExecResult r = broker_->execute(cand, exec_options());
      for (uint64_t f : r.features) {
        if (wanted.count(f) != 0) return true;
      }
      return false;
    };
    seed_prog = minimize(prog, oracle, cfg_.minimize_budget);
  }
  if (cfg_.learn_relations) learn_from(seed_prog);

  Seed seed;
  seed.prog = std::move(seed_prog);
  seed.new_features = fresh.size();
  seed.exec_index = exec_count_;
  stats.added_to_corpus = corpus_.add(std::move(seed));
}

StepStats Engine::step() {
  if (!ready()) setup();
  StepStats stats;
  const dsl::Program prog = gen_->next();
  if (prog.empty()) return stats;
  ++exec_count_;
  const ExecResult res = broker_->execute(prog, exec_options());
  analyze(prog, res, stats);

  if (cfg_.decay_every != 0 && exec_count_ % cfg_.decay_every == 0) {
    rel_.decay(cfg_.decay_factor);
  }
  return stats;
}

void Engine::run(uint64_t executions) {
  if (!ready()) setup();
  for (uint64_t i = 0; i < executions; ++i) step();
}

dsl::Program Engine::minimize_crash(const BugRecord& bug, size_t budget) {
  if (!ready()) setup();
  const std::string title = bug.title;
  auto oracle = [&](const dsl::Program& cand) {
    const ExecResult r = broker_->execute(cand, exec_options());
    for (const auto& rep : r.kernel_reports) {
      if (normalize_title(rep.title) == title) return true;
    }
    for (const auto& crash : r.hal_crashes) {
      if (hal_crash_title(crash.service) == title) return true;
    }
    return false;
  };
  return minimize(bug.repro, oracle, budget);
}

}  // namespace df::core
