// The Fuzzing Engine (paper §IV-A): one per device. Drives the full loop —
// pre-testing HAL probing, relational generation, brokered execution,
// cross-boundary feedback analysis, relation learning with minimization,
// and periodic relation decay.
//
// The ablation variants and the DROIDFUZZ-D comparison configuration are
// all expressible through EngineConfig:
//   DF-NoRel   : gen.use_relations = false, learn_relations = false
//   DF-NoHCov  : hal_feedback = false
//   DROIDFUZZ-D: gen.ioctl_only = true
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "analysis/dataflow.h"
#include "analysis/reachability.h"
#include "analysis/semantic.h"
#include "core/exec/broker.h"
#include "core/feedback/coverage.h"
#include "core/fuzz/crash.h"
#include "core/gen/generator.h"
#include "core/probe/hal_probe.h"
#include "core/relation/graph.h"
#include "device/device.h"
#include "dsl/descr.h"
#include "obs/analytics.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"

namespace df::core {

struct EngineConfig {
  uint64_t seed = 1;
  GenConfig gen;
  bool probe_hal = true;       // run §IV-B probing and fuzz HAL interfaces
  bool hal_feedback = true;    // §IV-D directional coverage (off: DF-NoHCov)
  bool learn_relations = true; // §IV-C edge learning (off: DF-NoRel)
  double decay_factor = 0.95;  // periodic edge-weight reduction
  uint64_t decay_every = 512;  // executions between decays
  bool minimize_new_seeds = true;
  size_t minimize_budget = 24;  // oracle executions per minimization
  bool reboot_on_bug = true;
  // Static analysis (src/analysis): semantic lint gate on generated
  // programs and minimization candidates (analysis.rejected / .repaired),
  // and reachability-plan injection for driver states with zero visits
  // (analysis.plans_injected) every `plan_every` executions.
  bool lint_programs = true;
  bool use_reachability_plans = true;
  uint64_t plan_every = 512;
  // Campaign analytics (DESIGN.md §11): per-operator yield attribution and
  // per-step new-state accounting. Purely observational — per-device
  // results are bit-identical with this on or off (lineage edges and plan
  // outcome counters are always recorded; they cost nothing on the hot
  // path and crash provenance depends on them).
  bool analytics = true;
  // Subsumption-based corpus distillation (DESIGN.md §12): when true, the
  // daemon computes dry-run distill stats at every checkpoint boundary and
  // exports them (BENCH_*.json "distill", /status "distill"). Dry-run only
  // — a destructive distill mid-campaign would change corpus pick indices
  // and break the checkpoint-resume == uninterrupted-run contract; use
  // Engine::distill_corpus(false) / Daemon::distill_corpora(false) for the
  // real thing at campaign end.
  bool distill_at_checkpoint = true;
  // Substrate fault injection (fault.rate == 0 disables; a disabled layer
  // is bit-identical to no layer at all). The plan's RNG stream is derived
  // from `seed` unless fault.seed overrides it.
  device::FaultPlanConfig fault;
  TransportPolicy transport;
  // Copy-on-write snapshot layer (DESIGN.md §13). When on, the engine
  // captures a snapshot whenever an execution pushes the driver-state
  // frontier (a state tally goes from zero to nonzero), keeps the most
  // recent `snapshot_pool` of them, and every `snapshot_every` executions
  // injects one generated program that runs *from a restored snapshot*
  // (origin snapshot_fork) instead of the device's rolling state. Fault
  // recovery after a hang/reboot restores the last good snapshot instead
  // of the full reestablish() replay. Per-device results stay bit-identical
  // across worker counts and checkpoint-resume for a fixed setting;
  // toggling snapshots (like lint/plans) selects a different — equally
  // deterministic — trajectory. Baselines (syzkaller/difuze) opt out.
  // snapshot_every trades exploration styles: small values fork (and thus
  // rewind the rolling device state) often, large values mostly let the
  // campaign roll and only dip back into deep states occasionally. 384
  // keeps shallow-bug discovery times close to the no-fork trajectory
  // while still forking a few hundred times per full campaign.
  bool use_snapshots = true;
  uint64_t snapshot_every = 384;
  size_t snapshot_pool = 4;
};

// Counters for the snapshot layer (exported under "snapshot" in the bench
// JSON; all zero when use_snapshots is off).
struct SnapshotStats {
  uint64_t captures = 0;
  uint64_t restores = 0;          // forks + fault recoveries
  uint64_t forks = 0;             // snapshot-forked programs executed
  uint64_t fault_recoveries = 0;  // restore-instead-of-reestablish events
  uint64_t prefix_execs_saved = 0;  // establishment executions not re-run
  uint64_t prefix_calls_saved = 0;  // calls in those establishment prefixes
  // Dirty-struct delta totals across all captures.
  uint64_t sections_total = 0;
  uint64_t sections_shared = 0;
  uint64_t bytes_total = 0;
  uint64_t bytes_shared = 0;
};

struct StepStats {
  size_t new_features = 0;
  bool added_to_corpus = false;
  bool kernel_bug = false;
  bool hal_crash = false;
  size_t new_bugs = 0;
  bool lost_exec = false;  // transport fault ate the execution
};

class Engine {
 public:
  Engine(device::Device& dev, EngineConfig cfg);

  // Builds the call table (syscall descriptions + probed HAL interfaces),
  // the spec table, the relation graph, and the broker. Must be called
  // before step()/run(); run() calls it lazily.
  void setup();
  bool ready() const { return broker_ != nullptr; }

  StepStats step();
  void run(uint64_t executions);

  // --- observability ---------------------------------------------------------
  // Attach campaign telemetry (null = off, the default). Threads the bundle
  // into the broker and probe, installs the device reboot hook, and caches
  // metric pointers (phase histograms + engine counters labeled by device
  // id) so step() pays only null-checks when detached. Span tracing and the
  // flight recorder are cached only if already enabled on the bundle —
  // enable them *before* attaching.
  void attach_observability(obs::Observability* o);
  obs::Observability* observability() const { return obs_; }
  // One stats-reporter observation of this engine's current state.
  obs::EngineSample sample() const;
  // Per-driver state-machine positions (state index per kernel driver, in
  // registration order — aligned with state_coverage() entries).
  std::vector<uint8_t> driver_state_snapshot() const;
  // State-transition coverage matrices for every kernel driver (drivers
  // without a state machine have empty `states`).
  std::vector<obs::DriverStateCoverage> state_coverage() const;
  // Directory for crash_<hash>.json provenance reports ("" disables).
  void set_crash_dir(std::string dir) {
    crash_log_.set_provenance_dir(std::move(dir));
  }

  uint64_t executions() const { return exec_count_; }
  // The paper's coverage proxy: cumulative *kernel* features.
  size_t kernel_coverage() const { return features_.kernel_size(); }
  size_t total_coverage() const { return features_.size(); }
  const CrashLog& crashes() const { return crash_log_; }
  const Corpus& corpus() const { return corpus_; }
  Corpus& corpus_mutable() { return corpus_; }
  const RelationGraph& relations() const { return rel_; }
  const dsl::CallTable& calls() const { return table_; }
  const std::optional<ProbeResult>& probe_result() const { return probed_; }
  device::Device& device() { return dev_; }
  Broker& broker() { return *broker_; }
  const EngineConfig& config() const { return cfg_; }

  // Minimizes a crash reproducer against its normalized title (extra
  // utility used by triage tooling and tests).
  dsl::Program minimize_crash(const BugRecord& bug, size_t budget = 48);

  // --- static analysis -------------------------------------------------------
  const analysis::ProgramLint& lint() const { return lint_; }
  // The guard index driving dataflow-targeted mutation (empty when
  // cfg.gen.dataflow_bias is off or no driver declares transitions).
  const analysis::GuardIndex& guard_index() const { return guards_; }

  // --- corpus distillation (DESIGN.md §12) -----------------------------------
  // Dynamic coverage footprint of `prog`, replayed on a *scratch* device
  // built from the same catalog spec and seed — the campaign device, RNG
  // and feature set are untouched. The footprint is the execution's feature
  // set plus one token per driver state-transition the replay exercised,
  // so two programs with equal footprints drive identical coverage.
  std::vector<uint64_t> replay_footprint(const dsl::Program& prog);
  // Runs Corpus::distill with the scratch-replay oracle. `dry_run` reports
  // what distillation would drop without touching the corpus (the only mode
  // safe mid-campaign; see EngineConfig::distill_at_checkpoint).
  DistillStats distill_corpus(bool dry_run = false);
  // Stats of the most recent distill_corpus() call on this engine.
  bool has_distill_stats() const { return has_distill_stats_; }
  const DistillStats& distill_stats() const { return last_distill_; }

  // Reachability diagnostics: for every driver state with zero campaign
  // visits, the declared-graph plan that would reach it (if any). This is
  // the "states never visited + a candidate plan" report from the planner.
  struct UnvisitedStatePlan {
    std::string driver;
    analysis::StatePlan plan;
  };
  std::vector<UnvisitedStatePlan> unvisited_state_plans() const;

  // --- campaign analytics (DESIGN.md §11) ------------------------------------
  // The per-operator yield table (empty rows when cfg.analytics is off).
  const obs::OperatorAttribution& attribution() const { return attribution_; }
  // Coverage-frontier explainer: every declared-but-unvisited driver state
  // classified as unreachable-from-frontier / planned-but-failed /
  // never-attempted, joined with the plan-outcome counters.
  obs::FrontierReport frontier_report() const;
  // Operators + corpus lineage digest + frontier, ready for export.
  obs::AnalyticsSnapshot analytics_snapshot() const;

  // The engine's fault injector (null when cfg.fault.rate == 0).
  FaultInjector* fault_injector() { return fault_.get(); }

  // --- snapshot layer (DESIGN.md §13) ----------------------------------------
  const SnapshotStats& snapshot_stats() const { return snap_stats_; }
  size_t snapshot_pool_size() const { return snap_pool_.size(); }
  const std::shared_ptr<const device::StateSnapshot>& last_good_snapshot()
      const {
    return last_good_;
  }

 private:
  friend class CampaignCheckpoint;

  // A queued injection-or-replay program with its attribution tag and, for
  // reachability plans, the (driver index, state) it targets so the
  // frontier report can count executed-but-no-visit outcomes.
  struct QueuedProgram {
    dsl::Program prog;
    obs::ProgramOrigin origin = obs::ProgramOrigin::kPlanInjected;
    uint64_t parent_hash = 0;
    bool has_target = false;
    size_t target_driver = 0;  // kernel driver registration index
    size_t target_state = 0;
    // Non-null for snapshot forks: the deep state to restore before
    // executing `prog` (DESIGN.md §13).
    std::shared_ptr<const device::StateSnapshot> snapshot;
  };
  // Plan outcomes per (driver index, state): how often the engine injected
  // a plan for the state, failed to materialize one, or ran one without the
  // state being entered. Feeds the planned-but-failed frontier class.
  struct PlanAttempt {
    uint64_t injected = 0;
    uint64_t materialize_failed = 0;
    uint64_t executed_no_visit = 0;
  };

  void analyze(const dsl::Program& prog, const ExecResult& res,
               StepStats& stats);
  // Attaches the derivation chain (corpus ancestry + the triggering
  // program) to the bug record just appended by the crash log.
  void record_bug_lineage(const dsl::Program& prog);
  void learn_from(const dsl::Program& prog);
  // Device re-establishment after a fault-induced reboot: replay
  // reachability plans for the wiped driver states and re-warm the corpus
  // protocol state by re-queuing the most recent seeds.
  void reestablish(const ExecResult& res);
  // Fault recovery dispatch: restore the last good snapshot when the layer
  // is on (falling back to reestablish() if none exists or it fails).
  void recover_from_fault(const ExecResult& res);
  // Captures the current device state into the snapshot pool (COW against
  // the previous capture); `prog` is the program that established it.
  void capture_frontier_snapshot(const dsl::Program& prog);
  // Enqueues one generated program to run from a pooled snapshot.
  void enqueue_snapshot_fork();
  // Materializes plans for zero-visit states into the injection queue.
  void refill_plan_queue();
  ExecOptions exec_options() const;
  CrashContext make_crash_context(const ExecResult& res) const;
  // Cold-path telemetry emitters; only called when obs_ != nullptr.
  void record_step(const ExecResult& res, const StepStats& stats,
                   bool decayed);
  void record_bug(const BugRecord& bug);

  device::Device& dev_;
  EngineConfig cfg_;
  util::Rng rng_;
  dsl::CallTable table_;
  trace::SpecTable spec_;
  RelationGraph rel_;
  FeatureSet features_;
  Corpus corpus_;
  CrashLog crash_log_;
  std::optional<ProbeResult> probed_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Generator> gen_;
  std::unique_ptr<FaultInjector> fault_;
  uint64_t exec_count_ = 0;

  // Pipeline gate: structural validity plus a *bounded* use-after-close
  // pass. The dataflow engine's lifetime lattice is precise enough to gate
  // on, but one stale-handle use per program is still allowed through —
  // operating on a destroyed handle is a core fuzzing behaviour (stale
  // error paths are exactly where use-after-free bugs live, e.g.
  // bt_accept_unlink) — while programs piling up stale uses are repaired.
  // Dead statements are advisory and left to the minimizer. df_lint keeps
  // all four passes strict (allowance 0) for offline analysis.
  static analysis::LintOptions gate_lint_options() {
    analysis::LintOptions o;
    o.use_after_close = true;
    o.stale_handle_allowance = 1;
    o.dead_statements = false;
    return o;
  }
  analysis::ProgramLint lint_{gate_lint_options()};
  // Declared-transition guard index for dataflow-targeted mutation; built
  // once in setup() when cfg.gen.dataflow_bias is on.
  analysis::GuardIndex guards_;
  // Most recent distill_corpus() outcome (for /status + bench export).
  DistillStats last_distill_;
  bool has_distill_stats_ = false;
  // (kernel driver index, planner over its declared graph)
  std::vector<std::pair<size_t, analysis::ReachabilityPlanner>> planners_;
  std::deque<QueuedProgram> plan_queue_;

  // --- snapshot layer state (DESIGN.md §13) ---------------------------------
  // Pool of frontier snapshots, oldest first; each is COW against its
  // predecessor. last_good_ is the most recent capture (fault-recovery
  // target). snap_seq_ is campaign-cumulative and survives checkpoints so
  // resumed runs mint the same sequence ids.
  std::vector<std::shared_ptr<const device::StateSnapshot>> snap_pool_;
  std::shared_ptr<const device::StateSnapshot> last_good_;
  uint64_t snap_seq_ = 0;
  SnapshotStats snap_stats_;

  // --- analytics state (DESIGN.md §11) --------------------------------------
  // Total driver states ever entered (cheap recount over visit tallies).
  uint64_t count_states_visited() const;
  obs::OperatorAttribution attribution_;
  std::map<std::pair<size_t, size_t>, PlanAttempt> plan_attempts_;
  // Attribution tag of the program the current step() is executing; set
  // before analyze() so corpus/bug bookkeeping can consume it.
  obs::ProgramOrigin step_origin_ = obs::ProgramOrigin::kGenerate;
  uint64_t step_parent_hash_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::SpanTracer* spans_ = nullptr;       // cached only when enabled
  obs::FlightRecorder* flight_ = nullptr;  // cached only when enabled
  obs::Histogram* h_generate_ = nullptr;
  obs::Histogram* h_analyze_ = nullptr;
  obs::Histogram* h_minimize_ = nullptr;
  obs::Counter* c_execs_ = nullptr;
  obs::Counter* c_new_features_ = nullptr;
  obs::Counter* c_corpus_adds_ = nullptr;
  obs::Counter* c_bugs_ = nullptr;
  obs::Counter* c_decays_ = nullptr;
  obs::Counter* c_min_oracle_ = nullptr;
  obs::Counter* c_relations_ = nullptr;
  obs::Counter* c_lint_rejected_ = nullptr;
  obs::Counter* c_lint_repaired_ = nullptr;
  obs::Counter* c_plans_injected_ = nullptr;
  // Fault-campaign counters; created only when cfg.fault.rate > 0 so a
  // fault-free campaign's metrics snapshot is byte-identical to before.
  obs::Counter* c_f_reboots_ = nullptr;
  obs::Counter* c_f_retries_ = nullptr;
  obs::Counter* c_f_lost_ = nullptr;
};

}  // namespace df::core
