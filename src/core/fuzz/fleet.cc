#include "core/fuzz/fleet.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>

#include "core/fuzz/engine.h"
#include "obs/obs.h"

namespace df::core {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return to <= from
             ? 0
             : static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(to -
                                                                        from)
                       .count());
}

// Cached per-worker utilization counters, created up-front on the caller's
// thread so registry insertion order is deterministic (w0..wN) regardless
// of worker scheduling.
struct UtilCounters {
  obs::Counter* busy = nullptr;
  obs::Counter* idle = nullptr;
  obs::Counter* barrier = nullptr;
};

std::vector<UtilCounters> make_util_counters(obs::Observability* obs,
                                             size_t workers) {
  std::vector<UtilCounters> out(workers);
  if (obs == nullptr) return out;
  for (size_t wi = 0; wi < workers; ++wi) {
    std::string label = "w";
    label += std::to_string(wi);
    out[wi].busy = &obs->registry.counter("fleet.worker.busy_ns", label);
    out[wi].idle = &obs->registry.counter("fleet.worker.idle_ns", label);
    out[wi].barrier = &obs->registry.counter("fleet.worker.barrier_ns", label);
  }
  return out;
}

void publish_round(const UtilCounters& c, uint64_t busy, uint64_t idle,
                   uint64_t barrier) {
  if (c.busy == nullptr) return;
  c.busy->inc(busy);
  c.idle->inc(idle);
  c.barrier->inc(barrier);
}

}  // namespace

uint64_t FleetUtilization::busy_imbalance_ns() const {
  if (workers.empty()) return 0;
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (const auto& w : workers) {
    lo = std::min(lo, w.busy_ns);
    hi = std::max(hi, w.busy_ns);
  }
  return hi - lo;
}

void FleetUtilization::merge(const FleetUtilization& other) {
  if (workers.size() < other.workers.size()) {
    workers.resize(other.workers.size());
  }
  for (size_t i = 0; i < other.workers.size(); ++i) {
    workers[i].busy_ns += other.workers[i].busy_ns;
    workers[i].idle_ns += other.workers[i].idle_ns;
    workers[i].barrier_ns += other.workers[i].barrier_ns;
    workers[i].rounds += other.workers[i].rounds;
  }
}

size_t FleetExecutor::resolve_workers(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void FleetExecutor::run(const std::vector<Engine*>& engines,
                        uint64_t executions_per_engine, uint64_t slice,
                        size_t workers,
                        const std::function<void(uint64_t done)>& on_slice,
                        obs::Observability* obs, FleetUtilization* util) {
  if (engines.empty() || executions_per_engine == 0) return;
  if (slice == 0) slice = 1;
  workers = std::min(resolve_workers(workers), engines.size());
  const bool profiling = obs != nullptr || util != nullptr;

  const uint64_t total = executions_per_engine;
  if (workers <= 1) {
    // Sequential path — byte-for-byte the daemon's historical loop. The
    // profiler accounts it as a single worker: the engine loop is busy
    // time, the slice callback is barrier time (it is the same daemon-
    // granularity work the parallel completion function runs).
    const auto counters = make_util_counters(obs, profiling ? 1 : 0);
    WorkerUtilization u;
    uint64_t done = 0;
    while (done < total) {
      const uint64_t step = std::min(slice, total - done);
      const auto t0 = profiling ? Clock::now() : Clock::time_point{};
      for (Engine* e : engines) e->run(step);
      const auto t1 = profiling ? Clock::now() : Clock::time_point{};
      done += step;
      on_slice(done);
      if (profiling) {
        const auto t2 = Clock::now();
        const uint64_t busy = ns_between(t0, t1);
        const uint64_t barrier = ns_between(t1, t2);
        u.busy_ns += busy;
        u.barrier_ns += barrier;
        ++u.rounds;
        if (obs != nullptr) {
          publish_round(counters[0], busy, 0, barrier);
          obs->registry.gauge("fleet.worker.imbalance_ns").set(0);
        }
      }
    }
    if (util != nullptr) util->workers.assign(1, u);
    return;
  }

  // Parallel path. `step` is the round size every worker executes next; the
  // barrier's completion function — which runs on exactly one thread while
  // all workers are parked — advances `done`, runs the daemon-granularity
  // callback, and publishes the next round size (0 = campaign finished).
  // The barrier phase transition happens-before the workers' return from
  // arrive_and_wait, so the relaxed accesses below are ordered by it.
  uint64_t done = 0;
  std::atomic<uint64_t> step{std::min(slice, total)};
  const auto counters = make_util_counters(obs, workers);
  std::vector<WorkerUtilization> locals(workers);
  // Per-worker cumulative busy time, published round-by-round so the
  // completion function can refresh the imbalance gauge while workers park.
  std::vector<std::atomic<uint64_t>> busy_totals(workers);
  auto completion = [&]() noexcept {
    done += step.load(std::memory_order_relaxed);
    on_slice(done);
    step.store(done < total ? std::min(slice, total - done) : 0,
               std::memory_order_relaxed);
    if (obs != nullptr) {
      uint64_t lo = UINT64_MAX;
      uint64_t hi = 0;
      for (const auto& b : busy_totals) {
        const uint64_t v = b.load(std::memory_order_relaxed);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      obs->registry.gauge("fleet.worker.imbalance_ns")
          .set(static_cast<double>(hi - lo));
    }
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(workers), completion);

  // Static slot partition: engine i always belongs to worker i % workers,
  // so each engine's execution sequence is independent of scheduling.
  // Utilization clocks tick only at round boundaries: busy is the engine
  // loop, barrier is arrive_and_wait (completion included), idle is the
  // remaining loop overhead between rounds.
  auto worker = [&](size_t wi) {
    WorkerUtilization& u = locals[wi];
    auto mark = profiling ? Clock::now() : Clock::time_point{};
    while (true) {
      const uint64_t s = step.load(std::memory_order_relaxed);
      if (s == 0) return;
      const auto t0 = profiling ? Clock::now() : Clock::time_point{};
      for (size_t ei = wi; ei < engines.size(); ei += workers) {
        engines[ei]->run(s);
      }
      if (!profiling) {
        bar.arrive_and_wait();
        continue;
      }
      const auto t1 = Clock::now();
      const uint64_t busy = ns_between(t0, t1);
      const uint64_t idle = ns_between(mark, t0);
      u.busy_ns += busy;
      u.idle_ns += idle;
      busy_totals[wi].store(u.busy_ns, std::memory_order_relaxed);
      bar.arrive_and_wait();
      mark = Clock::now();
      const uint64_t barrier = ns_between(t1, mark);
      u.barrier_ns += barrier;
      ++u.rounds;
      publish_round(counters[wi], busy, idle, barrier);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t wi = 0; wi < workers; ++wi) threads.emplace_back(worker, wi);
  for (auto& t : threads) t.join();
  if (util != nullptr) util->workers = std::move(locals);
}

}  // namespace df::core
