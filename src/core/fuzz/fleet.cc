#include "core/fuzz/fleet.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>

#include "core/fuzz/engine.h"

namespace df::core {

size_t FleetExecutor::resolve_workers(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void FleetExecutor::run(const std::vector<Engine*>& engines,
                        uint64_t executions_per_engine, uint64_t slice,
                        size_t workers,
                        const std::function<void(uint64_t done)>& on_slice) {
  if (engines.empty() || executions_per_engine == 0) return;
  if (slice == 0) slice = 1;
  workers = std::min(resolve_workers(workers), engines.size());

  const uint64_t total = executions_per_engine;
  if (workers <= 1) {
    // Sequential path — byte-for-byte the daemon's historical loop.
    uint64_t done = 0;
    while (done < total) {
      const uint64_t step = std::min(slice, total - done);
      for (Engine* e : engines) e->run(step);
      done += step;
      on_slice(done);
    }
    return;
  }

  // Parallel path. `step` is the round size every worker executes next; the
  // barrier's completion function — which runs on exactly one thread while
  // all workers are parked — advances `done`, runs the daemon-granularity
  // callback, and publishes the next round size (0 = campaign finished).
  // The barrier phase transition happens-before the workers' return from
  // arrive_and_wait, so the relaxed accesses below are ordered by it.
  uint64_t done = 0;
  std::atomic<uint64_t> step{std::min(slice, total)};
  auto completion = [&]() noexcept {
    done += step.load(std::memory_order_relaxed);
    on_slice(done);
    step.store(done < total ? std::min(slice, total - done) : 0,
               std::memory_order_relaxed);
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(workers), completion);

  // Static slot partition: engine i always belongs to worker i % workers,
  // so each engine's execution sequence is independent of scheduling.
  auto worker = [&](size_t wi) {
    while (true) {
      const uint64_t s = step.load(std::memory_order_relaxed);
      if (s == 0) return;
      for (size_t ei = wi; ei < engines.size(); ei += workers) {
        engines[ei]->run(s);
      }
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t wi = 0; wi < workers; ++wi) threads.emplace_back(worker, wi);
  for (auto& t : threads) t.join();
}

}  // namespace df::core
