// Parallel fleet execution (paper §IV-A, DESIGN.md §8): drives one worker
// thread per device engine through slice-sized rounds separated by a
// barrier, so daemon-granularity work (reporter sampling, corpus snapshots,
// relation decay observation) keeps a single-threaded view of the fleet.
//
// Determinism: slots are partitioned statically (engine i -> worker
// i % workers) and every engine executes the same sequence of run(step)
// calls in every mode, so each engine's results — coverage, corpus, bug
// titles — are bit-identical between workers=1 and workers=N for the same
// seed. Only cross-device interleaving (trace event order, span ids) is
// scheduling-dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace df::obs {
struct Observability;
}

namespace df::core {

class Engine;

// Per-worker wall-time accounting for one run(): where each worker thread's
// nanoseconds went. `busy` is engine execution, `barrier` is waiting at the
// round barrier (including the completion callback), `idle` is everything
// else (round bookkeeping; on the sequential path, effectively zero).
// Clock reads happen once per round boundary — never inside the engine hot
// path — so the bench_micro attached-vs-detached overhead contract holds.
struct WorkerUtilization {
  uint64_t busy_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t barrier_ns = 0;
  uint64_t rounds = 0;
};

struct FleetUtilization {
  std::vector<WorkerUtilization> workers;

  // Load-imbalance signal: max minus min per-worker busy time.
  uint64_t busy_imbalance_ns() const;
  // Index-wise accumulation (for daemons that call run() repeatedly).
  void merge(const FleetUtilization& other);
};

class FleetExecutor {
 public:
  // Maps the DaemonConfig::workers convention to a concrete thread count:
  // 0 = std::thread::hardware_concurrency() (at least 1), otherwise the
  // requested value.
  static size_t resolve_workers(size_t requested);

  // Runs every engine for `executions_per_engine` executions in rounds of
  // at most `slice`. After each round — while every worker is parked at the
  // barrier — `on_slice(done)` is invoked with the cumulative per-engine
  // execution count; it may touch any engine safely but must not throw.
  // `workers` <= 1 (after resolve_workers) or a single engine takes the
  // exact sequential path the daemon has always used.
  //
  // With `obs` attached the utilization profiler publishes per-round
  // counters `fleet.worker.{busy,idle,barrier}_ns` (labeled w0..wN) and the
  // gauge `fleet.worker.imbalance_ns`, all relaxed atomics; with `util`
  // non-null the totals are also returned by value. Neither affects engine
  // execution, so per-device results stay bit-identical across settings.
  static void run(const std::vector<Engine*>& engines,
                  uint64_t executions_per_engine, uint64_t slice,
                  size_t workers,
                  const std::function<void(uint64_t done)>& on_slice,
                  obs::Observability* obs = nullptr,
                  FleetUtilization* util = nullptr);
};

}  // namespace df::core
