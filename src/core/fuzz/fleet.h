// Parallel fleet execution (paper §IV-A, DESIGN.md §8): drives one worker
// thread per device engine through slice-sized rounds separated by a
// barrier, so daemon-granularity work (reporter sampling, corpus snapshots,
// relation decay observation) keeps a single-threaded view of the fleet.
//
// Determinism: slots are partitioned statically (engine i -> worker
// i % workers) and every engine executes the same sequence of run(step)
// calls in every mode, so each engine's results — coverage, corpus, bug
// titles — are bit-identical between workers=1 and workers=N for the same
// seed. Only cross-device interleaving (trace event order, span ids) is
// scheduling-dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace df::core {

class Engine;

class FleetExecutor {
 public:
  // Maps the DaemonConfig::workers convention to a concrete thread count:
  // 0 = std::thread::hardware_concurrency() (at least 1), otherwise the
  // requested value.
  static size_t resolve_workers(size_t requested);

  // Runs every engine for `executions_per_engine` executions in rounds of
  // at most `slice`. After each round — while every worker is parked at the
  // barrier — `on_slice(done)` is invoked with the cumulative per-engine
  // execution count; it may touch any engine safely but must not throw.
  // `workers` <= 1 (after resolve_workers) or a single engine takes the
  // exact sequential path the daemon has always used.
  static void run(const std::vector<Engine*>& engines,
                  uint64_t executions_per_engine, uint64_t slice,
                  size_t workers,
                  const std::function<void(uint64_t done)>& on_slice);
};

}  // namespace df::core
