#include "core/gen/generator.h"

#include "kernel/syscall.h"

namespace df::core {

using dsl::ArgKind;
using dsl::Call;
using dsl::CallDesc;
using dsl::Program;
using dsl::Value;

Generator::Generator(const dsl::CallTable& table, RelationGraph& rel,
                     Corpus& corpus, util::Rng& rng, GenConfig cfg)
    : table_(table), rel_(rel), corpus_(corpus), rng_(rng), cfg_(cfg) {}

bool Generator::allowed(const CallDesc* d) const {
  if (d == nullptr) return false;
  if (d->is_hal()) return cfg_.use_hal;
  if (!cfg_.ioctl_only) return true;
  // DROIDFUZZ-D: kernel requests other than ioctl are blocked; opens and
  // closes stay allowed as pure resource plumbing.
  const auto nr = static_cast<kernel::Sys>(d->sys_nr);
  return nr == kernel::Sys::kIoctl || nr == kernel::Sys::kOpenAt ||
         nr == kernel::Sys::kClose;
}

const CallDesc* Generator::random_allowed_call() {
  if (allowed_cache_.size() != table_.size()) {
    allowed_cache_.clear();
    for (const CallDesc* d : table_.all()) {
      if (allowed(d)) allowed_cache_.push_back(d);
    }
  }
  if (allowed_cache_.empty()) return nullptr;
  // Weighted by vertex weight (interface ranking).
  std::vector<double> w;
  w.reserve(allowed_cache_.size());
  for (const CallDesc* d : allowed_cache_) {
    const double vw = rel_.vertex_weight(d);
    w.push_back(vw > 0 ? vw : d->weight);
  }
  return allowed_cache_[rng_.weighted(w)];
}

const CallDesc* Generator::pick_related_or_random(const dsl::Program& prog) {
  if (!prog.calls.empty() && rng_.prob(cfg_.related_bias)) {
    // Resource types live in this program.
    std::vector<std::string_view> types;
    for (const dsl::Call& c : prog.calls) {
      if (c.desc != nullptr && !c.desc->produces.empty()) {
        types.push_back(c.desc->produces);
      }
    }
    if (!types.empty()) {
      std::vector<const CallDesc*> related;
      std::vector<double> w;
      for (const CallDesc* d : table_.all()) {
        if (!allowed(d)) continue;
        for (std::string_view t : types) {
          if (d->consumes(t)) {
            related.push_back(d);
            const double vw = rel_.vertex_weight(d);
            w.push_back(vw > 0 ? vw : d->weight);
            break;
          }
        }
      }
      if (!related.empty()) return related[rng_.weighted(w)];
    }
  }
  return random_allowed_call();
}

const CallDesc* Generator::choose_producer(std::string_view type) {
  auto producers = table_.producers_of(type);
  std::vector<const CallDesc*> ok;
  std::vector<double> w;
  for (const CallDesc* d : producers) {
    if (!allowed(d)) continue;
    ok.push_back(d);
    w.push_back(d->weight);
  }
  if (ok.empty()) return nullptr;
  return ok[rng_.weighted(w)];
}

Call Generator::instantiate(const CallDesc* d) {
  Call c;
  c.desc = d;
  c.args.reserve(d->params.size());
  for (const auto& p : d->params) c.args.push_back(dsl::random_value(p, rng_));
  return c;
}

Program Generator::generate_fresh() {
  Program prog;
  const CallDesc* base = nullptr;
  for (int tries = 0; tries < 32 && base == nullptr; ++tries) {
    const CallDesc* cand =
        cfg_.use_relations ? rel_.pick_base(rng_) : random_allowed_call();
    if (allowed(cand)) base = cand;
  }
  if (base == nullptr) return prog;
  prog.calls.push_back(instantiate(base));

  const CallDesc* cur = base;
  while (prog.calls.size() < cfg_.max_calls) {
    const CallDesc* next = nullptr;
    if (cfg_.use_relations) {
      next = rel_.pick_next(cur, rng_);
      if (next != nullptr && !allowed(next)) next = nullptr;
    }
    if (next == nullptr) {
      // No learned edge fired (or NoRel mode): random continuation keeps
      // sequences from collapsing to singletons, biased toward calls that
      // consume resources this program already produces.
      if (!rng_.prob(cfg_.random_continue)) break;
      next = pick_related_or_random(prog);
      if (next == nullptr) break;
    }
    prog.calls.push_back(instantiate(next));
    cur = next;
  }
  resolve_producers(prog);
  return prog;
}

void Generator::resolve_producers(Program& prog) {
  size_t inserted = 0;
  for (size_t i = 0; i < prog.calls.size(); ++i) {
    // Index-based access: the vector may reallocate on insertion.
    for (size_t a = 0; a < prog.calls[i].args.size(); ++a) {
      const CallDesc* desc = prog.calls[i].desc;
      if (desc == nullptr || a >= desc->params.size()) break;
      const dsl::ParamDesc& p = desc->params[a];
      if (p.kind != ArgKind::kHandle) continue;

      Value& v = prog.calls[i].args[a];
      const bool already_ok =
          v.ref != Value::kNoRef && v.ref >= 0 &&
          static_cast<size_t>(v.ref) < i &&
          prog.calls[static_cast<size_t>(v.ref)].desc != nullptr &&
          prog.calls[static_cast<size_t>(v.ref)].desc->produces ==
              p.handle_type;
      if (already_ok) continue;

      // Prefer reusing an earlier producer — chosen uniformly among all of
      // them, not just the nearest: protocols like listen/connect/accept
      // need refs that skip over same-typed intermediate results.
      std::vector<int32_t> candidates;
      for (size_t j = 0; j < i; ++j) {
        if (prog.calls[j].desc != nullptr &&
            prog.calls[j].desc->produces == p.handle_type) {
          candidates.push_back(static_cast<int32_t>(j));
        }
      }
      if (!candidates.empty()) {
        v.ref = candidates[rng_.below(candidates.size())];
        continue;
      }

      // Insert a fresh producer as a prefix of the current call.
      if (inserted >= cfg_.producer_depth ||
          prog.calls.size() >= cfg_.max_total_calls) {
        v.ref = Value::kNoRef;
        continue;
      }
      const CallDesc* prod = choose_producer(p.handle_type);
      if (prod == nullptr) {
        v.ref = Value::kNoRef;
        continue;
      }
      Call pc = instantiate(prod);
      prog.calls.insert(prog.calls.begin() + static_cast<long>(i),
                        std::move(pc));
      ++inserted;
      // Shift every ref that pointed at index >= i.
      for (size_t j = 0; j < prog.calls.size(); ++j) {
        if (j == i) continue;  // the fresh producer has no resolved refs yet
        for (Value& val : prog.calls[j].args) {
          if (val.ref != Value::kNoRef &&
              static_cast<size_t>(val.ref) >= i) {
            ++val.ref;
          }
        }
      }
      // The current call moved to i + 1; bind its arg to the new producer.
      prog.calls[i + 1].args[a].ref = static_cast<int32_t>(i);
      // Reprocess from the inserted producer so *its* handles get resolved.
      --i;
      break;
    }
  }
}

obs::ProgramOrigin Generator::mutate_once(Program& prog) {
  enum { kArgMutate, kInsert, kRemove, kDuplicate, kSplice, kRewire };
  const int op = static_cast<int>(rng_.below(6));
  switch (op) {
    case kArgMutate: {
      if (prog.calls.empty()) break;
      Call& c = prog.calls[rng_.below(prog.calls.size())];
      if (c.desc == nullptr || c.desc->params.empty()) break;
      size_t a = rng_.below(c.desc->params.size());
      // Handle args keep their historical mutation rate: rewiring which
      // resource a protocol call operates on is what assembles the
      // multi-instance topologies (second socket connecting to a listener)
      // that guard hints cannot express, so the bias never steals an edit
      // that landed on one.
      const bool handle_edit =
          a < c.desc->params.size() &&
          c.desc->params[a].kind == dsl::ArgKind::kHandle;
      if (!handle_edit && guards_ != nullptr && !guards_->empty() &&
          rng_.prob(0.5)) {
        // Dataflow bias: redirect the edit to a guard-relevant argument —
        // one a driver's declared transition guard branches on — and half
        // the time pin it straight to a declared hint value, landing the
        // program on a state-machine edge instead of fuzzing around it.
        std::vector<size_t> relevant;
        for (size_t g = 0; g < c.desc->params.size(); ++g) {
          if (guards_->classify_arg(*c.desc, g) ==
              analysis::ArgClass::kGuardRelevant) {
            relevant.push_back(g);
          }
        }
        if (!relevant.empty()) {
          a = relevant[rng_.below(relevant.size())];
          const auto& hints =
              guards_->hint_values(c.desc->name, c.desc->params[a].name);
          if (!hints.empty() && a < c.args.size() && rng_.prob(0.5)) {
            c.args[a].scalar = hints[rng_.below(hints.size())];
            break;
          }
        }
      }
      if (a < c.args.size()) {
        dsl::mutate_value(c.desc->params[a], c.args[a], rng_);
      }
      break;
    }
    case kInsert: {
      if (prog.calls.size() >= cfg_.max_total_calls) break;
      const size_t pos = rng_.below(prog.calls.size() + 1);
      const CallDesc* d = nullptr;
      if (cfg_.use_relations && pos > 0 &&
          prog.calls[pos - 1].desc != nullptr) {
        d = rel_.pick_next(prog.calls[pos - 1].desc, rng_);
        if (d != nullptr && !allowed(d)) d = nullptr;
      }
      if (d == nullptr) d = pick_related_or_random(prog);
      if (d == nullptr) break;
      prog.calls.insert(prog.calls.begin() + static_cast<long>(pos),
                        instantiate(d));
      for (size_t j = 0; j < prog.calls.size(); ++j) {
        if (j == pos) continue;
        for (Value& v : prog.calls[j].args) {
          if (v.ref != Value::kNoRef && static_cast<size_t>(v.ref) >= pos) {
            ++v.ref;
          }
        }
      }
      break;
    }
    case kRemove:
      if (prog.calls.size() > 1) prog.remove_call(rng_.below(prog.calls.size()));
      break;
    case kDuplicate: {
      if (prog.calls.empty() || prog.calls.size() >= cfg_.max_total_calls) {
        break;
      }
      // Appending a copy keeps all of its refs pointing earlier: legal.
      prog.calls.push_back(prog.calls[rng_.below(prog.calls.size())]);
      break;
    }
    case kSplice: {
      if (corpus_.empty()) break;
      const Program& other = corpus_.pick(rng_).prog;
      const size_t offset = prog.calls.size();
      for (const Call& c : other.calls) {
        if (prog.calls.size() >= cfg_.max_total_calls) break;
        if (!allowed(c.desc)) continue;
        Call copy = c;
        for (Value& v : copy.args) {
          if (v.ref != Value::kNoRef) {
            v.ref += static_cast<int32_t>(offset);
            if (static_cast<size_t>(v.ref) >= prog.calls.size()) {
              v.ref = Value::kNoRef;
            }
          }
        }
        prog.calls.push_back(std::move(copy));
      }
      prog.repair_refs();
      break;
    }
    case kRewire: {
      // Rebind one handle argument to a different earlier producer of the
      // same type (explores which resource instance a call operates on).
      if (prog.calls.size() < 2) break;
      const size_t i = 1 + rng_.below(prog.calls.size() - 1);
      dsl::Call& c = prog.calls[i];
      if (c.desc == nullptr) break;
      for (size_t a = 0; a < c.args.size() && a < c.desc->params.size();
           ++a) {
        const dsl::ParamDesc& p = c.desc->params[a];
        if (p.kind != ArgKind::kHandle) continue;
        std::vector<int32_t> candidates;
        for (size_t j = 0; j < i; ++j) {
          if (prog.calls[j].desc != nullptr &&
              prog.calls[j].desc->produces == p.handle_type) {
            candidates.push_back(static_cast<int32_t>(j));
          }
        }
        if (!candidates.empty()) {
          c.args[a].ref = candidates[rng_.below(candidates.size())];
        }
        break;
      }
      break;
    }
    default:
      break;
  }
  // The attribution tag reports the operator *drawn*, even when it no-ops
  // on this particular program (e.g. kRemove on a one-call program) — the
  // yield table measures what each operator draw earns, not what it edits.
  static constexpr obs::ProgramOrigin kOpOrigin[6] = {
      obs::ProgramOrigin::kMutateArg,       obs::ProgramOrigin::kMutateInsert,
      obs::ProgramOrigin::kMutateRemove,    obs::ProgramOrigin::kMutateDuplicate,
      obs::ProgramOrigin::kMutateSplice,    obs::ProgramOrigin::kMutateRewire,
  };
  return kOpOrigin[op];
}

Program Generator::mutate(const Program& seed, obs::ProgramOrigin* origin) {
  Program prog = dsl::clone(seed);
  const size_t rounds = 1 + rng_.below(3);
  obs::ProgramOrigin last = obs::ProgramOrigin::kMutateArg;
  for (size_t r = 0; r < rounds; ++r) last = mutate_once(prog);
  if (origin != nullptr) *origin = last;
  prog.repair_refs();
  resolve_producers(prog);
  return prog;
}

void Generator::set_lint(const analysis::ProgramLint* lint,
                         obs::Counter* rejected, obs::Counter* repaired) {
  lint_ = lint;
  c_rejected_ = rejected;
  c_repaired_ = repaired;
}

Generator::Candidate Generator::next_candidate() {
  constexpr int kLintRetries = 4;
  Candidate cand;
  for (int tries = 0; tries < kLintRetries; ++tries) {
    if (!corpus_.empty() && rng_.chance(cfg_.mutate_percent, 100)) {
      const Seed& seed = corpus_.pick(rng_);
      // Read the parent identity before mutate(): kSplice may pick again
      // and the corpus vector is stable, but the reference discipline is
      // clearer this way.
      cand.parent_hash = seed.hash;
      cand.prog = mutate(seed.prog, &cand.origin);
    } else {
      cand.parent_hash = 0;
      cand.origin = obs::ProgramOrigin::kGenerate;
      cand.prog = generate_fresh();
    }
    if (lint_ == nullptr || lint_->analyze(cand.prog).clean()) return cand;
    // Mutation-side normalization first: rebind unresolved handle refs to
    // the nearest earlier producer so mutated fragments re-link into the
    // program. ProgramLint::repair deliberately leaves kNoRef alone (its
    // stale-use pass severs to kNoRef, and rebinding there would break its
    // idempotence), so the gate owns this step.
    cand.prog.repair_refs();
    lint_->repair(cand.prog);
    if (lint_->analyze(cand.prog).clean()) {
      if (c_repaired_ != nullptr) c_repaired_->inc();
      return cand;
    }
    // Unrepairable: discard and regenerate.
    if (c_rejected_ != nullptr) c_rejected_->inc();
  }
  // Every retry failed lint — return the last (repaired) candidate rather
  // than starving the fuzz loop; the executor tolerates it.
  return cand;
}

}  // namespace df::core
