// Kernel-user relational payload generation (paper §IV-C).
//
// Programs are built by (1) picking a *base invocation* weighted by vertex
// weight, (2) walking the relation graph edge-probabilistically to extend
// the sequence, (3) inserting *producer calls* as prefixes for unresolved
// resource arguments (fds, HAL handles, kernel ids), and (4) instantiating
// arguments by syntax-driven randomization or historical payload mutation.
//
// Ablations map onto the config: use_relations=false gives DF-NoRel's
// random dependency generation; ioctl_only=true gives DROIDFUZZ-D.
#pragma once

#include "analysis/semantic.h"
#include "core/feedback/coverage.h"
#include "core/relation/graph.h"
#include "dsl/descr.h"
#include "dsl/prog.h"
#include "obs/analytics.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace df::core {

struct GenConfig {
  size_t max_calls = 12;          // walk length cap (before producer insertion)
  size_t max_total_calls = 24;    // hard cap after producer insertion
  size_t producer_depth = 6;      // recursion budget for producer chains
  bool use_relations = true;      // false => DF-NoRel
  bool use_hal = true;            // false => kernel-syscall-only generation
  bool ioctl_only = false;        // true  => DROIDFUZZ-D (Fig. 5)
  unsigned mutate_percent = 60;   // corpus mutation vs fresh generation
  double random_continue = 0.45;  // continuation prob. when no edge fires
  double related_bias = 0.5;      // resource-aware call-choice probability
  // Dataflow-targeted mutation: when a GuardIndex is attached (see
  // set_guard_index), the arg-mutate operator prefers guard-relevant
  // arguments — those the drivers' declared_transitions() guards actually
  // branch on — and sometimes pins them to a declared hint value. false
  // restores the uniform arg choice (baselines opt out so their RNG
  // streams are untouched).
  bool dataflow_bias = true;
};

class Generator {
 public:
  Generator(const dsl::CallTable& table, RelationGraph& rel, Corpus& corpus,
            util::Rng& rng, GenConfig cfg);

  // One candidate program plus its attribution tag: the origin (fresh
  // generation or the last mutation operator applied) and, for mutations,
  // the hash of the corpus seed it derives from. Collecting the tag draws
  // no extra randomness — next_candidate() is byte-for-byte the historical
  // next() with bookkeeping on the side.
  struct Candidate {
    dsl::Program prog;
    obs::ProgramOrigin origin = obs::ProgramOrigin::kGenerate;
    uint64_t parent_hash = 0;  // 0 = no corpus parent
  };
  Candidate next_candidate();

  // One input payload: historical mutation or fresh relational generation.
  dsl::Program next() { return next_candidate().prog; }

  dsl::Program generate_fresh();
  // Mutates `seed`; when `origin` is non-null it receives the tag of the
  // last operator applied.
  dsl::Program mutate(const dsl::Program& seed,
                      obs::ProgramOrigin* origin = nullptr);

  // Inserts producer calls for unresolved handle args (public: the
  // minimizer and tests reuse it).
  void resolve_producers(dsl::Program& prog);

  // Semantic lint gate for next(): candidates failing analysis are
  // repaired, and unrepairable ones discarded and regenerated (bounded
  // retries). nullptr (the default) disables the gate. The counters (may
  // be null) record discarded / repaired candidates as analysis.rejected
  // and analysis.repaired.
  void set_lint(const analysis::ProgramLint* lint, obs::Counter* rejected,
                obs::Counter* repaired);

  // Attaches the guard index that drives dataflow-targeted mutation.
  // nullptr (the default) disables the bias; extra randomness is drawn
  // only while an index is attached, so detached generators keep their
  // historical RNG streams byte-for-byte.
  void set_guard_index(const analysis::GuardIndex* guards) {
    guards_ = guards;
  }

  const GenConfig& config() const { return cfg_; }

 private:
  bool allowed(const dsl::CallDesc* d) const;
  const dsl::CallDesc* random_allowed_call();
  // Resource-aware choice (syzkaller-style): with probability
  // `related_bias`, prefer calls that consume a resource type some call of
  // `prog` produces — this is what lets multi-call protocols on one handle
  // (configure -> start -> transcode) assemble incrementally.
  const dsl::CallDesc* pick_related_or_random(const dsl::Program& prog);
  const dsl::CallDesc* choose_producer(std::string_view type);
  dsl::Call instantiate(const dsl::CallDesc* d);
  // Applies one mutation operator; returns its origin tag.
  obs::ProgramOrigin mutate_once(dsl::Program& prog);

  const dsl::CallTable& table_;
  RelationGraph& rel_;
  Corpus& corpus_;
  util::Rng& rng_;
  GenConfig cfg_;
  std::vector<const dsl::CallDesc*> allowed_cache_;
  const analysis::ProgramLint* lint_ = nullptr;
  const analysis::GuardIndex* guards_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_repaired_ = nullptr;
};

}  // namespace df::core
