#include "core/gen/minimize.h"

namespace df::core {

dsl::Program minimize(const dsl::Program& prog, const StillInteresting& oracle,
                      size_t budget, MinimizeStats* stats,
                      obs::Histogram* latency,
                      const analysis::ProgramLint* lint) {
  obs::ScopedTimer timer(latency);
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  dsl::Program best = prog;

  // Phase 1: drop whole calls, back to front (later calls are more likely
  // to be incidental suffixes).
  for (size_t idx = best.calls.size(); idx-- > 0;) {
    if (best.calls.size() <= 1 || st.oracle_calls >= budget) break;
    dsl::Program cand = best;
    cand.remove_call(idx);
    if (lint != nullptr && !lint->analyze(cand).clean()) {
      // remove_call's structural repair can rebind a downstream use to a
      // closed fd (or orphan a ref entirely); fix semantically, and skip
      // the candidate when no repair restores validity.
      lint->repair(cand);
      if (!lint->analyze(cand).clean()) {
        ++st.lint_skipped;
        continue;
      }
      ++st.lint_repaired;
    }
    ++st.oracle_calls;
    if (oracle(cand)) {
      best = std::move(cand);
      ++st.calls_removed;
    }
  }

  // Phase 2: simplify arguments of surviving calls. Index-based access
  // throughout: `best` is reassigned on every accepted simplification.
  for (size_t i = 0; i < best.calls.size(); ++i) {
    if (best.calls[i].desc == nullptr) continue;
    const size_t nargs = best.calls[i].args.size();
    for (size_t a = 0; a < nargs; ++a) {
      if (a >= best.calls[i].desc->params.size()) break;
      if (st.oracle_calls >= budget) return best;
      const dsl::ParamDesc& p = best.calls[i].desc->params[a];
      const dsl::Value& v = best.calls[i].args[a];
      dsl::Program cand = best;
      bool attempted = false;
      switch (p.kind) {
        case dsl::ArgKind::kU8:
        case dsl::ArgKind::kU16:
        case dsl::ArgKind::kU32:
        case dsl::ArgKind::kU64:
          if (v.scalar != p.min) {
            cand.calls[i].args[a].scalar = p.min;
            attempted = true;
          }
          break;
        case dsl::ArgKind::kBlob:
        case dsl::ArgKind::kString:
          if (!v.bytes.empty()) {
            cand.calls[i].args[a].bytes.clear();
            attempted = true;
          }
          break;
        default:
          break;
      }
      if (!attempted) continue;
      ++st.oracle_calls;
      if (oracle(cand)) {
        best = std::move(cand);
        ++st.args_simplified;
      }
    }
  }
  return best;
}

}  // namespace df::core
