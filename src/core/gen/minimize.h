// Test-case minimization (paper §IV-C: "we *minimize* the call to the bare
// bones API and system calls, ensuring that only the most essential
// invocations that trigger the same execution behavior are exercised").
//
// Used both for relation learning (minimized programs expose true adjacent
// dependencies) and for crash reproducer reduction.
#pragma once

#include <functional>

#include "analysis/semantic.h"
#include "dsl/prog.h"
#include "obs/metrics.h"

namespace df::core {

// Re-execution oracle: returns true if the candidate still exhibits the
// behaviour of interest (same new coverage, same crash title, ...). The
// oracle runs the program — minimization cost is oracle invocations.
using StillInteresting = std::function<bool(const dsl::Program&)>;

struct MinimizeStats {
  size_t oracle_calls = 0;
  size_t calls_removed = 0;
  size_t args_simplified = 0;
  size_t lint_repaired = 0;  // candidates fixed up after call removal
  size_t lint_skipped = 0;   // candidates discarded as semantically broken
};

// Greedy reduction: (1) drop calls back-to-front, (2) simplify arguments
// (zero scalars, empty blobs) — each step kept only if the oracle still
// fires. `budget` caps oracle invocations. When `latency` is non-null the
// whole pass records its duration into that histogram (phase profiling).
// When `lint` is non-null, every call-removal candidate is re-validated
// semantically: removing a producer rebinds downstream refs (remove_call's
// nearest-producer repair), which can silently bind a use to an fd a close
// already destroyed — such candidates are repaired, and discarded without
// an oracle execution if still broken, so minimization cannot emit a
// semantically rotten reproducer.
dsl::Program minimize(const dsl::Program& prog,
                      const StillInteresting& oracle, size_t budget,
                      MinimizeStats* stats = nullptr,
                      obs::Histogram* latency = nullptr,
                      const analysis::ProgramLint* lint = nullptr);

}  // namespace df::core
