#include "core/probe/hal_probe.h"

#include <algorithm>

#include "trace/ebpf.h"
#include "util/log.h"

namespace df::core {

namespace {

// Marshals a "safe default" trial value for one argument (the Poke app's
// behaviour: minimal, well-formed parameters).
void marshal_default(const hal::ArgDesc& a, hal::Parcel& p) {
  switch (a.kind) {
    case hal::ArgKind::kU32:
      p.write_u32(static_cast<uint32_t>(a.min));
      break;
    case hal::ArgKind::kU64:
      p.write_u64(a.min);
      break;
    case hal::ArgKind::kEnum:
    case hal::ArgKind::kFlags:
      p.write_u32(a.choices.empty() ? 0
                                    : static_cast<uint32_t>(a.choices[0]));
      break;
    case hal::ArgKind::kBool:
      p.write_u32(0);
      break;
    case hal::ArgKind::kString:
      p.write_string("");
      break;
    case hal::ArgKind::kBlob:
      p.write_blob({});
      break;
    case hal::ArgKind::kHandle:
      p.write_u32(0);
      break;
  }
}

// Marshals a *plausible* framework-style value (used during the workload
// replay): valid enums, small in-range scalars, short payloads.
void marshal_plausible(const hal::ArgDesc& a, hal::Parcel& p,
                       util::Rng& rng,
                       std::map<std::string, uint32_t>& live_handles) {
  switch (a.kind) {
    case hal::ArgKind::kU32: {
      const uint64_t span = a.max - a.min;
      p.write_u32(static_cast<uint32_t>(
          a.min + rng.below(span > 256 ? 256 : span + 1)));
      break;
    }
    case hal::ArgKind::kU64:
      p.write_u64(a.min + rng.below(16));
      break;
    case hal::ArgKind::kEnum:
      p.write_u32(a.choices.empty()
                      ? 0
                      : static_cast<uint32_t>(
                            a.choices[rng.below(a.choices.size())]));
      break;
    case hal::ArgKind::kFlags: {
      uint64_t v = 0;
      for (uint64_t c : a.choices) {
        if (rng.chance(1, 2)) v |= c;
      }
      p.write_u32(static_cast<uint32_t>(v));
      break;
    }
    case hal::ArgKind::kBool:
      p.write_u32(rng.below(2) != 0 ? 1 : 0);
      break;
    case hal::ArgKind::kString:
      p.write_string("probe");
      break;
    case hal::ArgKind::kBlob: {
      std::vector<uint8_t> b(rng.below(17));
      for (auto& c : b) c = static_cast<uint8_t>(rng.next());
      p.write_blob(b);
      break;
    }
    case hal::ArgKind::kHandle: {
      auto it = live_handles.find(a.handle_type);
      p.write_u32(it == live_handles.end() ? 1 : it->second);
      break;
    }
  }
}

}  // namespace

std::vector<std::pair<uint32_t, double>> ProbeResult::method_weights_for(
    std::string_view service) const {
  std::vector<std::pair<uint32_t, double>> out;
  for (const auto& m : methods) {
    if (m.service == service) out.emplace_back(m.desc.code, m.weight);
  }
  return out;
}

HalProber::HalProber(device::Device& dev, uint64_t seed,
                     obs::Observability* o)
    : dev_(dev), rng_(seed), obs_(o) {
  if (obs_ != nullptr) {
    h_probe_ = &obs_->registry.histogram("phase.probe", dev_.spec().id);
  }
}

ProbeResult HalProber::probe(size_t workload_rounds) {
  const obs::ScopedTimer timer(h_probe_);
  ProbeResult out;
  // Step 1: enumerate running HAL services (the probe utility's lshal pass).
  out.services = dev_.service_manager().list_services();

  // Step 2: Poke each service's exposed interface under eBPF observation.
  for (const auto& name : out.services) poke_service(name, out);

  // Step 3: replay a high-level app workload to estimate interface weights
  // as normalized occurrence counts (paper §IV-B, last paragraph).
  run_app_workload(out, workload_rounds);

  DF_CLOG("probe", kInfo) << "probe: " << out.services.size() << " services, "
                          << out.methods.size() << " interfaces, "
                          << out.binder_transactions_observed << " binder txs";
  if (obs_ != nullptr) record_probe(out);
  return out;
}

void HalProber::record_probe(const ProbeResult& out) {
  const std::string& id = dev_.spec().id;
  size_t responsive = 0;
  for (const auto& pm : out.methods) {
    if (pm.responsive) ++responsive;
  }
  auto& reg = obs_->registry;
  reg.counter("probe.services", id).inc(out.services.size());
  reg.counter("probe.methods", id).inc(out.methods.size());
  reg.counter("probe.responsive_methods", id).inc(responsive);
  reg.counter("probe.binder_txns", id).inc(out.binder_transactions_observed);

  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kProbe;
  ev.device = id;
  ev.with("services", static_cast<uint64_t>(out.services.size()))
      .with("methods", static_cast<uint64_t>(out.methods.size()))
      .with("responsive", static_cast<uint64_t>(responsive))
      .with("binder_txns", out.binder_transactions_observed)
      .with("workload_invocations", out.workload_invocations);
  obs_->trace.emit(std::move(ev));
}

void HalProber::poke_service(const std::string& name, ProbeResult& out) {
  auto& sm = dev_.service_manager();
  const hal::InterfaceDesc* iface = sm.get_interface(name);
  if (iface == nullptr) return;

  for (const auto& m : iface->methods) {
    ProbedMethod pm;
    pm.service = name;
    pm.desc = m;

    uint64_t syscalls = 0;
    {
      trace::EbpfProbe hook(dev_.kernel(), kernel::TaskOrigin::kHal,
                            [&](const trace::SyscallEvent&) { ++syscalls; });
      hal::Parcel args;
      for (const auto& a : m.args) marshal_default(a, args);
      const hal::TxResult res = sm.call(name, m.code, args);
      ++out.binder_transactions_observed;
      pm.responsive = res.status != hal::kStatusUnknownTransaction;
    }
    pm.trial_syscalls = syscalls;
    out.methods.push_back(std::move(pm));

    // A trial poke may have taken the HAL process down; the supervisor
    // restarts it before the next poke.
    dev_.restart_dead_services();
    if (dev_.kernel().panicked()) dev_.reboot();
  }
}

void HalProber::run_app_workload(ProbeResult& out, size_t rounds) {
  auto& sm = dev_.service_manager();
  const auto& services = dev_.services();
  if (services.empty() || rounds == 0) return;

  // Occurrence counts per (service, method code).
  std::map<std::pair<std::string, uint32_t>, uint64_t> counts;
  std::map<std::string, uint64_t> totals;
  // Handles produced during the workload, so consuming methods get live ids.
  std::map<std::string, uint32_t> live_handles;

  for (size_t r = 0; r < rounds; ++r) {
    auto& svc = services[rng_.below(services.size())];
    const auto profile = svc->app_usage_profile();
    if (profile.empty()) continue;
    std::vector<double> w;
    w.reserve(profile.size());
    for (const auto& uw : profile) w.push_back(uw.weight);
    const uint32_t code = profile[rng_.weighted(w)].code;

    const hal::InterfaceDesc* iface = sm.get_interface(svc->descriptor());
    const hal::MethodDesc* m =
        iface != nullptr ? iface->find_method(code) : nullptr;
    if (m == nullptr) continue;

    hal::Parcel args;
    for (const auto& a : m->args) {
      marshal_plausible(a, args, rng_, live_handles);
    }
    hal::TxResult res = sm.call(std::string(svc->descriptor()), code, args);
    ++out.workload_invocations;
    ++out.binder_transactions_observed;
    ++counts[{std::string(svc->descriptor()), code}];
    ++totals[std::string(svc->descriptor())];
    if (res.status == hal::kStatusOk && !m->returns_handle.empty()) {
      res.reply.rewind();
      const uint32_t h = res.reply.read_u32();
      if (res.reply.ok()) live_handles[m->returns_handle] = h;
    }
    dev_.restart_dead_services();
    if (dev_.kernel().panicked()) dev_.reboot();
  }

  // Normalize occurrences into per-service weights.
  for (auto& pm : out.methods) {
    const auto it = counts.find({pm.service, pm.desc.code});
    const auto tot = totals.find(pm.service);
    if (it != counts.end() && tot != totals.end() && tot->second > 0) {
      pm.weight = static_cast<double>(it->second) /
                  static_cast<double>(tot->second);
    } else {
      pm.weight = 0.02;  // probed-but-unseen floor
    }
  }
}

}  // namespace df::core
