// Pre-testing HAL driver probing (paper §IV-B).
//
// Mirrors the paper's two-component design:
//  * the *probe utility* enumerates running HAL services (lshal-style via
//    ServiceManager) and attaches eBPF hooks that observe Binder traffic and
//    HAL-originated syscalls;
//  * the *Poke app* requests each service's interface through ServiceManager
//    reflection and trial-invokes every exposed method with marshalled
//    default parameters, letting the hooks record which interfaces are live
//    and what they do.
//
// Interface *weights* come from normalized occurrence counts while replaying
// a high-level Android app workload (each HAL's framework usage profile),
// exactly the ranking signal §IV-B describes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "device/device.h"
#include "hal/binder.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace df::core {

struct ProbedMethod {
  std::string service;
  hal::MethodDesc desc;
  double weight = 0;          // normalized occurrence (0..1 per service)
  uint64_t trial_syscalls = 0;  // HAL syscalls observed during the trial poke
  bool responsive = false;      // answered something other than UNKNOWN_TX
};

struct ProbeResult {
  std::vector<std::string> services;  // lshal output
  std::vector<ProbedMethod> methods;
  uint64_t workload_invocations = 0;
  uint64_t binder_transactions_observed = 0;

  // Per-service view, keyed by method code.
  std::vector<std::pair<uint32_t, double>> method_weights_for(
      std::string_view service) const;
};

class HalProber {
 public:
  // `o` (optional) receives probe telemetry: a phase.probe latency
  // histogram, probe.* counters, and one kProbe trace event per pass, all
  // labeled/attributed with the device id.
  HalProber(device::Device& dev, uint64_t seed,
            obs::Observability* o = nullptr);

  // Runs the full probing pass: enumerate -> poke every interface ->
  // replay `workload_rounds` framework-level invocations for weighting.
  ProbeResult probe(size_t workload_rounds = 400);

 private:
  void poke_service(const std::string& name, ProbeResult& out);
  void run_app_workload(ProbeResult& out, size_t rounds);
  void record_probe(const ProbeResult& out);

  device::Device& dev_;
  util::Rng rng_;
  obs::Observability* obs_ = nullptr;
  obs::Histogram* h_probe_ = nullptr;
};

}  // namespace df::core
