#include "core/relation/graph.h"

#include <algorithm>

namespace df::core {

size_t RelationGraph::index_of(const dsl::CallDesc* call) const {
  auto it = index_.find(call);
  return it == index_.end() ? kNoIndex : it->second;
}

void RelationGraph::add_vertex(const dsl::CallDesc* call, double weight) {
  const size_t idx = index_of(call);
  if (idx != kNoIndex) {
    weights_[idx] = std::max(weight, kMinVertexWeight);
    return;
  }
  index_.emplace(call, vertices_.size());
  vertices_.push_back(call);
  weights_.push_back(std::max(weight, kMinVertexWeight));
  out_.emplace_back();
  in_.emplace_back();
}

bool RelationGraph::has_vertex(const dsl::CallDesc* call) const {
  return index_of(call) != kNoIndex;
}

void RelationGraph::observe_relation(const dsl::CallDesc* a,
                                     const dsl::CallDesc* b) {
  if (a == nullptr || b == nullptr || a == b) return;
  const size_t ia = index_of(a);
  const size_t ib = index_of(b);
  if (ia == kNoIndex || ib == kNoIndex) return;

  // Halve the competing in-edges of b (Eq. 1); iteration is by source
  // index, so the floating-point sum is reproducible.
  double competing_sum = 0;
  for (auto& [src, w] : in_[ib]) {
    if (src == ia) continue;
    w *= 0.5;
    out_[src][ib] = w;
    competing_sum += w;
  }
  const double w = std::clamp(1.0 - competing_sum, kEdgeEpsilon, 1.0);
  const bool fresh = in_[ib].find(ia) == in_[ib].end();
  in_[ib][ia] = w;
  out_[ia][ib] = w;
  if (fresh) ++edge_count_;
}

double RelationGraph::vertex_weight(const dsl::CallDesc* v) const {
  const size_t idx = index_of(v);
  return idx == kNoIndex ? 0.0 : weights_[idx];
}

double RelationGraph::edge_weight(const dsl::CallDesc* a,
                                  const dsl::CallDesc* b) const {
  const size_t ia = index_of(a);
  const size_t ib = index_of(b);
  if (ia == kNoIndex || ib == kNoIndex) return 0.0;
  auto it = out_[ia].find(ib);
  return it == out_[ia].end() ? 0.0 : it->second;
}

double RelationGraph::in_weight_sum(const dsl::CallDesc* b) const {
  const size_t ib = index_of(b);
  if (ib == kNoIndex) return 0.0;
  double sum = 0;
  for (const auto& [src, w] : in_[ib]) sum += w;
  return sum;
}

std::vector<std::pair<const dsl::CallDesc*, double>> RelationGraph::out_edges(
    const dsl::CallDesc* a) const {
  std::vector<std::pair<const dsl::CallDesc*, double>> result;
  const size_t ia = index_of(a);
  if (ia == kNoIndex) return result;
  result.reserve(out_[ia].size());
  for (const auto& [dst, w] : out_[ia]) {
    result.emplace_back(vertices_[dst], w);
  }
  return result;
}

void RelationGraph::decay(double factor) {
  for (size_t src = 0; src < out_.size(); ++src) {
    for (auto it = out_[src].begin(); it != out_[src].end();) {
      it->second *= factor;
      if (it->second < kEdgeEpsilon) {
        in_[it->first].erase(src);
        it = out_[src].erase(it);
        --edge_count_;
      } else {
        in_[it->first][src] = it->second;
        ++it;
      }
    }
  }
}

std::vector<RelationGraph::Edge> RelationGraph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count_);
  for (size_t src = 0; src < out_.size(); ++src) {
    for (const auto& [dst, w] : out_[src]) {
      result.push_back({src, dst, w});
    }
  }
  return result;
}

void RelationGraph::restore_edge(size_t from, size_t to, double weight) {
  if (from >= out_.size() || to >= in_.size()) return;
  const bool fresh = out_[from].find(to) == out_[from].end();
  out_[from][to] = weight;
  in_[to][from] = weight;
  if (fresh) ++edge_count_;
}

const dsl::CallDesc* RelationGraph::pick_base(util::Rng& rng) const {
  if (vertices_.empty()) return nullptr;
  return vertices_[rng.weighted(weights_)];
}

const dsl::CallDesc* RelationGraph::pick_next(const dsl::CallDesc* from,
                                              util::Rng& rng) const {
  const size_t ia = index_of(from);
  if (ia == kNoIndex || out_[ia].empty()) return nullptr;
  double total = 0;
  for (const auto& [dst, w] : out_[ia]) total += w;
  // Stop mass: whatever weight is not claimed by edges, floored so the walk
  // always has a chance to end.
  const double stop = std::max(1.0 - total, kMinStopProb);
  double pick = rng.uniform() * (total + stop);
  for (const auto& [dst, w] : out_[ia]) {
    if (pick < w) return vertices_[dst];
    pick -= w;
  }
  return nullptr;  // stop
}

}  // namespace df::core
