// Kernel-user relation graph G_rel = (V, E) (paper §IV-C).
//
// Vertices are every syscall and HAL interface description, each carrying a
// fixed weight w in (0,1) — the interface ranking — which is the probability
// mass used to pick the *base invocation* during generation. Edges are
// directed and weighted; direction encodes a perceived dependency a -> b
// ("b is meaningful after a"), weight encodes confidence.
//
// Learning rule (Eq. 1): when a minimized program shows adjacent calls
// a -> b, competing in-edges (x, b), x != a are halved, and
//     w(a,b) = 1 - sum_{x != a} w(x,b) / 2
// which conserves unit in-weight mass per vertex. Periodic multiplicative
// decay keeps the fuzzer from locking into a local optimum.
//
// All internal state is ordered by vertex *insertion index* (never by
// pointer value), so campaigns replay bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "dsl/descr.h"
#include "util/rng.h"

namespace df::core {

class RelationGraph {
 public:
  // Vertex weights are clamped to a small positive floor so that every call
  // remains reachable as a base invocation.
  void add_vertex(const dsl::CallDesc* call, double weight);
  bool has_vertex(const dsl::CallDesc* call) const;
  size_t vertex_count() const { return vertices_.size(); }
  size_t edge_count() const { return edge_count_; }

  // Applies the Eq. (1) update for an observed dependency a -> b.
  void observe_relation(const dsl::CallDesc* a, const dsl::CallDesc* b);

  double vertex_weight(const dsl::CallDesc* v) const;
  double edge_weight(const dsl::CallDesc* a, const dsl::CallDesc* b) const;
  // Sum of in-edge weights of b (the Eq. (1) conserved quantity; <= 1).
  double in_weight_sum(const dsl::CallDesc* b) const;
  // Out-edges of a as (destination, weight), ordered by insertion index.
  std::vector<std::pair<const dsl::CallDesc*, double>> out_edges(
      const dsl::CallDesc* a) const;

  // Multiplies every edge weight by `factor` in (0,1) (paper's periodic
  // reduction). Edges decayed below epsilon are dropped.
  void decay(double factor);

  // --- checkpoint support ---------------------------------------------------
  // Every edge as (src index, dst index, weight), ordered by src insertion
  // index then dst index. Indices are stable across a resume because
  // Engine::setup() re-adds vertices in the same table order.
  struct Edge {
    size_t from = 0;
    size_t to = 0;
    double weight = 0;
  };
  std::vector<Edge> edges() const;
  // Reinstalls one edge verbatim (no Eq. (1) rebalancing). Out-of-range
  // indices are ignored.
  void restore_edge(size_t from, size_t to, double weight);

  // Weighted choice of a base invocation by vertex weight.
  const dsl::CallDesc* pick_base(util::Rng& rng) const;
  // Follows an out-edge of `from` with probability proportional to edge
  // weight; returns nullptr for "stop here" (probability = 1 - sum(w),
  // floored at kMinStopProb so walks terminate).
  const dsl::CallDesc* pick_next(const dsl::CallDesc* from,
                                 util::Rng& rng) const;

 private:
  static constexpr double kMinVertexWeight = 0.01;
  static constexpr double kEdgeEpsilon = 1e-4;
  static constexpr double kMinStopProb = 0.15;
  static constexpr size_t kNoIndex = static_cast<size_t>(-1);

  size_t index_of(const dsl::CallDesc* call) const;

  std::unordered_map<const dsl::CallDesc*, size_t> index_;
  std::vector<const dsl::CallDesc*> vertices_;  // insertion order
  std::vector<double> weights_;
  // Adjacency by vertex index (std::map keeps destinations ordered).
  std::vector<std::map<size_t, double>> out_;
  std::vector<std::map<size_t, double>> in_;
  size_t edge_count_ = 0;
};

}  // namespace df::core
