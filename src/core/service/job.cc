#include "core/service/job.h"

#include <set>

#include "device/catalog.h"
#include "obs/json.h"
#include "obs/json_parse.h"

namespace df::core {

namespace {

bool known_device(const std::string& id) {
  for (const auto& spec : device::device_table()) {
    if (spec.id == id) return true;
  }
  return false;
}

// Double values round-trip through decimal text; the only double in a spec
// is fault_rate, where short decimals ("0.01") survive exactly.
bool read_u64(const obs::JsonValue& v, const char* key, uint64_t* out,
              std::string* error) {
  if (!v.is_number()) {
    *error = std::string("job spec: \"") + key + "\" must be a number";
    return false;
  }
  *out = v.as_u64();
  return true;
}

}  // namespace

bool JobSpec::validate(std::string* error) const {
  if (devices.empty()) {
    *error = "job spec: \"devices\" must name at least one device";
    return false;
  }
  std::set<std::string> seen;
  for (const auto& id : devices) {
    if (!known_device(id)) {
      *error = "job spec: unknown device \"" + id + "\"";
      return false;
    }
    if (!seen.insert(id).second) {
      *error = "job spec: duplicate device \"" + id + "\"";
      return false;
    }
  }
  if (budget == 0) {
    *error = "job spec: \"budget\" must be > 0";
    return false;
  }
  if (slice == 0 || sample_every == 0 || checkpoint_every == 0) {
    *error = "job spec: slice/sample_every/checkpoint_every must be > 0";
    return false;
  }
  // Preemption happens at checkpoint barriers; those barriers must land
  // exactly on the sampling grid of the uninterrupted run, or the resumed
  // stats series would diverge (service.h, determinism contract).
  if (sample_every % slice != 0) {
    *error = "job spec: sample_every must be a multiple of slice";
    return false;
  }
  if (checkpoint_every % sample_every != 0) {
    *error = "job spec: checkpoint_every must be a multiple of sample_every";
    return false;
  }
  if (fault_rate < 0.0 || fault_rate > 1.0) {
    *error = "job spec: fault_rate must be in [0, 1]";
    return false;
  }
  return true;
}

void JobSpec::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.field("name", name);
  w.key("devices").begin_array();
  for (const auto& id : devices) w.value(id);
  w.end_array();
  w.field("seed", seed);
  w.field("budget", budget);
  w.field("priority", priority);
  w.field("slice", slice);
  w.field("sample_every", sample_every);
  w.field("checkpoint_every", checkpoint_every);
  w.field("fault_rate", fault_rate);
  w.end_object();
}

std::string JobSpec::to_json() const {
  obs::JsonWriter w;
  write_json(w);
  return w.take();
}

bool JobSpec::from_value(const obs::JsonValue& v, JobSpec* out,
                         std::string* error) {
  if (!v.is_object()) {
    *error = "job spec: document must be a JSON object";
    return false;
  }
  JobSpec spec;
  for (const auto& [key, val] : v.members) {
    if (key == "name") {
      if (!val.is_string()) {
        *error = "job spec: \"name\" must be a string";
        return false;
      }
      spec.name = val.scalar;
    } else if (key == "devices") {
      if (!val.is_array()) {
        *error = "job spec: \"devices\" must be an array of device ids";
        return false;
      }
      for (const auto& item : val.items) {
        if (!item.is_string()) {
          *error = "job spec: \"devices\" entries must be strings";
          return false;
        }
        spec.devices.push_back(item.scalar);
      }
    } else if (key == "seed") {
      if (!read_u64(val, "seed", &spec.seed, error)) return false;
    } else if (key == "budget") {
      if (!read_u64(val, "budget", &spec.budget, error)) return false;
    } else if (key == "priority") {
      if (!read_u64(val, "priority", &spec.priority, error)) return false;
    } else if (key == "slice") {
      if (!read_u64(val, "slice", &spec.slice, error)) return false;
    } else if (key == "sample_every") {
      if (!read_u64(val, "sample_every", &spec.sample_every, error)) {
        return false;
      }
    } else if (key == "checkpoint_every") {
      if (!read_u64(val, "checkpoint_every", &spec.checkpoint_every, error)) {
        return false;
      }
    } else if (key == "fault_rate") {
      if (!val.is_number()) {
        *error = "job spec: \"fault_rate\" must be a number";
        return false;
      }
      spec.fault_rate = val.as_double();
    } else {
      *error = "job spec: unknown key \"" + key + "\"";
      return false;
    }
  }
  if (!spec.validate(error)) return false;
  *out = std::move(spec);
  return true;
}

bool JobSpec::from_json(const std::string& text, JobSpec* out,
                        std::string* error) {
  const auto doc = obs::json_parse(text, error);
  if (!doc.has_value()) {
    *error = "job spec: " + *error;
    return false;
  }
  return from_value(*doc, out, error);
}

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPaused:
      return "paused";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

bool job_state_from_string(std::string_view s, JobState* out) {
  for (const JobState state :
       {JobState::kQueued, JobState::kRunning, JobState::kPaused,
        JobState::kDone, JobState::kFailed, JobState::kCancelled}) {
    if (s == to_string(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

void JobRecord::write_json(obs::JsonWriter& w, bool include_result) const {
  w.begin_object();
  w.field("id", id);
  w.field("state", to_string(state));
  w.key("spec");
  spec.write_json(w);
  w.field("progress", progress);
  w.field("preemptions", preemptions);
  w.field("wait_ticks", wait_ticks);
  w.field("pause_requested", pause_requested);
  w.field("cancel_requested", cancel_requested);
  if (include_result) {
    w.field("error", error);
    if (!result.empty()) {
      w.key("result").raw(result);
    }
  }
  w.end_object();
}

bool JobRecord::from_value(const obs::JsonValue& v, JobRecord* out,
                           std::string* error) {
  if (!v.is_object()) {
    *error = "job record: entry must be a JSON object";
    return false;
  }
  JobRecord rec;
  const obs::JsonValue* id = v.find("id");
  const obs::JsonValue* state = v.find("state");
  const obs::JsonValue* spec = v.find("spec");
  if (id == nullptr || !id->is_number() || state == nullptr ||
      !state->is_string() || spec == nullptr) {
    *error = "job record: missing id/state/spec";
    return false;
  }
  rec.id = id->as_u64();
  if (!job_state_from_string(state->scalar, &rec.state)) {
    *error = "job record: unknown state \"" + state->scalar + "\"";
    return false;
  }
  if (!JobSpec::from_value(*spec, &rec.spec, error)) return false;
  if (const auto* p = v.find("progress"); p != nullptr) {
    rec.progress = p->as_u64();
  }
  if (const auto* p = v.find("preemptions"); p != nullptr) {
    rec.preemptions = p->as_u64();
  }
  if (const auto* p = v.find("wait_ticks"); p != nullptr) {
    rec.wait_ticks = p->as_u64();
  }
  if (const auto* p = v.find("pause_requested"); p != nullptr) {
    rec.pause_requested = p->boolean;
  }
  if (const auto* p = v.find("cancel_requested"); p != nullptr) {
    rec.cancel_requested = p->boolean;
  }
  if (const auto* p = v.find("error"); p != nullptr && p->is_string()) {
    rec.error = p->scalar;
  }
  if (const auto* p = v.find("result"); p != nullptr && p->is_object()) {
    obs::JsonWriter w;
    // Round-trip the result document through the writer to restore the
    // serialized form (raw re-emission keeps it byte-stable because the
    // service always writes it with the same writer).
    auto emit = [&](const obs::JsonValue& node, auto&& self) -> void {
      switch (node.kind) {
        case obs::JsonValue::Kind::kObject: {
          w.begin_object();
          for (const auto& [k, item] : node.members) {
            w.key(k);
            self(item, self);
          }
          w.end_object();
          break;
        }
        case obs::JsonValue::Kind::kArray: {
          w.begin_array();
          for (const auto& item : node.items) self(item, self);
          w.end_array();
          break;
        }
        case obs::JsonValue::Kind::kString:
          w.value(node.scalar);
          break;
        case obs::JsonValue::Kind::kNumber:
          w.raw(node.scalar);
          break;
        case obs::JsonValue::Kind::kBool:
          w.value(node.boolean);
          break;
        case obs::JsonValue::Kind::kNull:
          w.raw("null");
          break;
      }
    };
    emit(*p, emit);
    rec.result = w.take();
  }
  *out = std::move(rec);
  return true;
}

}  // namespace df::core
