// Campaign service job model (DESIGN.md §14): one fuzzing campaign as a
// schedulable value. A JobSpec is the serializable description a client
// POSTs to /jobs — device catalog, budget, seed, priority, and the
// checkpoint grid — and a JobRecord is the service's bookkeeping around it
// (state machine, progress, preemption and queue-wait accounting).
//
// The spec carries the *whole* determinism surface of a campaign: two jobs
// with equal specs produce bit-identical results no matter how the
// scheduler interleaves, preempts, or restarts them (service.h explains
// why the grid fields make that true). Validation is strict — the cadence
// fields must nest (slice | sample_every | checkpoint_every) so preemption
// barriers land exactly on the uninterrupted run's sampling grid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace df::obs {
class JsonWriter;
struct JsonValue;
}  // namespace df::obs

namespace df::core {

struct JobSpec {
  std::string name;                  // optional human label
  std::vector<std::string> devices;  // Table I catalog ids, no duplicates
  uint64_t seed = 1;
  uint64_t budget = 0;      // executions per device (total, not per slice)
  uint64_t priority = 0;    // higher = scheduled sooner (aged while queued)
  uint64_t slice = 64;      // fleet barrier granularity (executions)
  uint64_t sample_every = 256;      // stats-reporter cadence
  uint64_t checkpoint_every = 512;  // barrier-reboot + serialize grid
  double fault_rate = 0.0;          // substrate fault injection (0 = off)

  // Structural + cadence validation (devices exist in the catalog, budget
  // non-zero, slice | sample_every | checkpoint_every). Returns false and
  // fills `error` with the first violation.
  bool validate(std::string* error) const;

  void write_json(obs::JsonWriter& w) const;
  std::string to_json() const;
  // Strict parse: unknown keys, wrong types, and validation failures all
  // reject with a descriptive error — the 400 body of POST /jobs.
  static bool from_json(const std::string& text, JobSpec* out,
                        std::string* error);
  static bool from_value(const obs::JsonValue& v, JobSpec* out,
                         std::string* error);
};

// Scheduler states. Queued and Running cycle through preemption; Paused
// holds the checkpoint without consuming queue slots; Done/Failed/Cancelled
// are terminal.
enum class JobState : uint8_t {
  kQueued,
  kRunning,
  kPaused,
  kDone,
  kFailed,
  kCancelled,
};

std::string_view to_string(JobState s);
bool job_state_from_string(std::string_view s, JobState* out);
inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

struct JobRecord {
  uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  uint64_t progress = 0;     // per-device executions checkpointed so far
  uint64_t preemptions = 0;  // quanta that ended with a re-enqueue
  uint64_t wait_ticks = 0;   // scheduler passes spent queued, all stints
  // Control flags set by the HTTP API mid-quantum, applied at the next
  // checkpoint barrier (a running job is never interrupted mid-slice).
  bool pause_requested = false;
  bool cancel_requested = false;
  std::string error;   // terminal diagnostic for kFailed
  std::string result;  // result document (service.h) once kDone

  // Serialization for the manifest and the job API. `include_result`
  // controls whether the (potentially large) result/error payload rides
  // along; the /jobs listing omits it.
  void write_json(obs::JsonWriter& w, bool include_result = true) const;
  static bool from_value(const obs::JsonValue& v, JobRecord* out,
                         std::string* error);
};

}  // namespace df::core
