#include "core/service/queue.h"

#include <algorithm>

namespace df::core {

void JobQueue::push(uint64_t job_id, uint64_t priority) {
  Entry e;
  e.job_id = job_id;
  e.priority = priority;
  e.enqueued_tick = tick_;
  e.seq = seq_++;
  entries_.push_back(e);
}

bool JobQueue::before(const Entry& a, const Entry& b) const {
  const uint64_t ea = effective(a);
  const uint64_t eb = effective(b);
  if (ea != eb) return ea > eb;
  return a.seq < b.seq;
}

std::optional<JobQueue::Popped> JobQueue::pop() {
  if (entries_.empty()) return std::nullopt;
  // Waiting time accrues on every scheduler pass, including the one that
  // dequeues: a job admitted and immediately popped waited one tick.
  ++tick_;
  size_t best = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (before(entries_[i], entries_[best])) best = i;
  }
  Popped out;
  out.job_id = entries_[best].job_id;
  out.waited = tick_ - entries_[best].enqueued_tick;
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(best));
  return out;
}

bool JobQueue::remove(uint64_t job_id) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].job_id == job_id) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

bool JobQueue::contains(uint64_t job_id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.job_id == job_id; });
}

std::vector<uint64_t> JobQueue::in_pop_order() const {
  std::vector<Entry> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [this](const Entry& a, const Entry& b) {
                     return before(a, b);
                   });
  std::vector<uint64_t> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.job_id);
  return out;
}

}  // namespace df::core
