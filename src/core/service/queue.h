// Priority job queue with aging (DESIGN.md §14). Purely deterministic: the
// pop order is a function of the push/pop call sequence alone — no clocks —
// so a service restart that replays the same admissions schedules the same.
//
// Each pop is one scheduler "tick". A queued entry's effective priority is
//
//   effective = priority + (tick - enqueued_tick) / age_every
//
// i.e. waiting age_every scheduler passes buys one priority level. Pop
// selects the highest effective priority; ties break FIFO by admission
// sequence. Two properties follow, both covered by queue property tests:
//
//  - starvation-free: an entry's effective priority grows without bound
//    while it waits, so it eventually exceeds any fixed admission priority
//    no matter how many higher-priority jobs keep arriving;
//  - FIFO within a priority level: equal-priority entries age at the same
//    rate, so their effective priorities never cross and the admission
//    sequence decides.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace df::core {

class JobQueue {
 public:
  // age_every == N: one priority level per N scheduler passes (0 is
  // clamped to 1; aging cannot be disabled, or starvation-freedom dies).
  explicit JobQueue(uint64_t age_every = 4)
      : age_every_(age_every == 0 ? 1 : age_every) {}

  struct Popped {
    uint64_t job_id = 0;
    uint64_t waited = 0;  // ticks spent queued (this stint)
  };

  void push(uint64_t job_id, uint64_t priority);
  // Highest effective priority, FIFO within ties; advances the tick.
  std::optional<Popped> pop();
  // Drops a queued entry (pause/cancel of a queued job). False if absent.
  bool remove(uint64_t job_id);
  bool contains(uint64_t job_id) const;

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  uint64_t tick() const { return tick_; }
  uint64_t age_every() const { return age_every_; }

  // Entries in current pop order (what pop would return if nothing else
  // changed) — the /jobs listing and the manifest's queue section.
  std::vector<uint64_t> in_pop_order() const;

 private:
  struct Entry {
    uint64_t job_id = 0;
    uint64_t priority = 0;
    uint64_t enqueued_tick = 0;
    uint64_t seq = 0;  // admission sequence, the FIFO tie-break
  };

  uint64_t effective(const Entry& e) const {
    return e.priority + (tick_ - e.enqueued_tick) / age_every_;
  }
  // True when a must pop before b at the current tick.
  bool before(const Entry& a, const Entry& b) const;

  std::vector<Entry> entries_;
  uint64_t tick_ = 0;
  uint64_t seq_ = 0;
  uint64_t age_every_;
};

}  // namespace df::core
