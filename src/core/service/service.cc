#include "core/service/service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/fuzz/checkpoint.h"
#include "core/fuzz/daemon.h"
#include "core/fuzz/engine.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/obs.h"
#include "obs/stats_reporter.h"
#include "util/hash.h"

namespace df::core {

namespace {

std::string hex64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

DaemonConfig daemon_config(const JobSpec& spec, size_t workers,
                           const std::string& checkpoint_dir) {
  DaemonConfig cfg;
  cfg.seed = spec.seed;
  cfg.workers = workers;
  cfg.engine.fault.rate = spec.fault_rate;
  // The checkpoint grid is part of the job's deterministic trajectory
  // (every checkpoint barrier-reboots the fleet), so it is always on —
  // including in the uninterrupted reference run.
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.checkpoint_every = spec.checkpoint_every;
  return cfg;
}

// One campaign process-image: fresh daemon + fresh telemetry, either
// started from scratch or restored from a checkpoint. Built once per
// quantum — exactly the resume pattern the checkpoint tests certify.
struct CampaignRun {
  CampaignRun(const JobSpec& spec, size_t workers, const std::string& dir)
      : rep(spec.sample_every), daemon(daemon_config(spec, workers, dir)) {
    obs.trace.set_record_execs(false);
    daemon.attach_observability(&obs);
    daemon.attach_reporter(&rep);
    for (const auto& id : spec.devices) daemon.add_device(id);
  }
  obs::Observability obs;
  obs::StatsReporter rep;
  Daemon daemon;
};

// The job result document: every content channel of the campaign reduced
// to scalars + 64-bit fingerprints. Contains no job id, no timestamps, no
// queue state — so a preempted service job and an uninterrupted reference
// run of the same spec must produce byte-identical documents (the
// scheduler determinism contract, service.h).
std::string result_json(CampaignRun& run, const JobSpec& spec) {
  std::vector<std::string> ids = spec.devices;
  std::sort(ids.begin(), ids.end());

  std::string bugs;
  size_t bug_count = 0;
  for (const auto& b : run.daemon.all_bugs()) {
    bugs += b.device_id + ":" + b.bug.title + ":" +
            std::to_string(b.bug.dup_count) + "\n";
    ++bug_count;
  }
  std::string analytics;
  std::string snapshots;
  for (const auto& id : ids) {
    Engine* e = run.daemon.engine(id);
    if (e == nullptr) continue;
    obs::JsonWriter aw;
    e->analytics_snapshot().write_json(aw);
    analytics += id + ":" + aw.take() + "\n";
    const SnapshotStats& s = e->snapshot_stats();
    snapshots += id + ":" + std::to_string(s.captures) + "/" +
                 std::to_string(s.restores) + "/" + std::to_string(s.forks) +
                 "/" + std::to_string(s.fault_recoveries) + "/pool=" +
                 std::to_string(e->snapshot_pool_size()) + "/good=" +
                 std::to_string(e->last_good_snapshot() != nullptr
                                    ? e->last_good_snapshot()->seq
                                    : 0) +
                 "\n";
  }

  obs::JsonWriter w;
  w.begin_object();
  w.field("determinism", "v1");
  w.field("devices", static_cast<uint64_t>(ids.size()));
  w.field("executions", run.daemon.total_executions());
  w.field("coverage", static_cast<uint64_t>(run.daemon.total_kernel_coverage()));
  w.field("bugs", static_cast<uint64_t>(bug_count));
  w.field("bugs_hash", hex64(util::fnv1a(bugs)));
  w.field("corpus_hash", hex64(util::fnv1a(run.daemon.save_corpus())));
  w.field("stats_hash",
          hex64(util::fnv1a(run.rep.to_json(/*include_timing=*/false))));
  w.field("trace_hash", hex64(util::fnv1a(run.obs.trace.to_jsonl())));
  w.field("analytics_hash", hex64(util::fnv1a(analytics)));
  w.field("snapshots_hash", hex64(util::fnv1a(snapshots)));
  w.end_object();
  return w.take();
}

obs::HttpResponse json_response(int status, std::string body) {
  obs::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

obs::HttpResponse error_response(int status, const std::string& message) {
  obs::JsonWriter w;
  w.begin_object().field("error", message).end_object();
  return json_response(status, w.take());
}

// Splits "/jobs/7/pause" into {"jobs", "7", "pause"}.
std::vector<std::string> path_segments(const std::string& path) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    const size_t next = path.find('/', pos);
    out.push_back(path.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos));
    if (next == std::string::npos) break;
    pos = next;
  }
  return out;
}

bool parse_job_id(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  *out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

}  // namespace

CampaignService::CampaignService(ServiceConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.age_every) {
  if (cfg_.quantum_barriers == 0) cfg_.quantum_barriers = 1;
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.serve_port >= 0) start_server();
}

CampaignService::~CampaignService() {
  if (server_ != nullptr) server_->stop();
}

std::string CampaignService::job_dir(uint64_t id) const {
  return cfg_.root_dir + "/job_" + std::to_string(id);
}

std::string CampaignService::manifest_path() const {
  return cfg_.root_dir + "/service.json";
}

void CampaignService::save_manifest_locked() {
  obs::JsonWriter w;
  w.begin_object();
  w.field("service", uint64_t{1});
  w.field("next_id", next_id_);
  w.key("queue").begin_array();
  for (const uint64_t id : queue_.in_pop_order()) w.value(id);
  w.end_array();
  w.key("jobs").begin_array();
  for (const auto& [id, job] : jobs_) job.rec.write_json(w);
  w.end_array();
  w.end_object();
  std::string error;
  CampaignCheckpoint::write_file(manifest_path(), w.take(), &error);
}

bool CampaignService::boot(std::string* error) {
  std::string text;
  std::string read_error;
  if (!CampaignCheckpoint::read_file(manifest_path(), &text, &read_error)) {
    return true;  // no manifest yet: fresh service
  }
  std::string parse_error;
  const auto doc = obs::json_parse(text, &parse_error);
  if (!doc.has_value() || !doc->is_object()) {
    if (error != nullptr) {
      *error = "service manifest: " +
               (parse_error.empty() ? "not a JSON object" : parse_error);
    }
    return false;
  }
  const obs::JsonValue* jobs = doc->find("jobs");
  const obs::JsonValue* queue = doc->find("queue");
  const obs::JsonValue* next = doc->find("next_id");
  if (jobs == nullptr || !jobs->is_array() || queue == nullptr ||
      !queue->is_array() || next == nullptr) {
    if (error != nullptr) *error = "service manifest: missing jobs/queue/next_id";
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  jobs_.clear();
  next_id_ = next->as_u64();
  std::vector<uint64_t> interrupted;  // jobs that died mid-quantum
  for (const auto& entry : jobs->items) {
    JobRecord rec;
    std::string rec_error;
    if (!JobRecord::from_value(entry, &rec, &rec_error)) {
      if (error != nullptr) *error = "service manifest: " + rec_error;
      return false;
    }
    // A job the previous process was running when it died goes back to the
    // queue; its checkpoint on disk is the resume point.
    if (rec.state == JobState::kRunning) {
      rec.state = JobState::kQueued;
      interrupted.push_back(rec.id);
    }
    jobs_[rec.id] = Job{std::move(rec)};
  }
  // Interrupted jobs first (they were at the head when the service died),
  // then the saved pop order. Aging ticks restart from zero; cumulative
  // wait_ticks in the records survive.
  for (const uint64_t id : interrupted) {
    queue_.push(id, jobs_[id].rec.spec.priority);
  }
  for (const auto& entry : queue->items) {
    const uint64_t id = entry.as_u64();
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.rec.state != JobState::kQueued ||
        queue_.contains(id)) {
      continue;
    }
    queue_.push(id, it->second.rec.spec.priority);
  }
  save_manifest_locked();
  return true;
}

uint64_t CampaignService::submit(const JobSpec& spec, std::string* error) {
  std::string local_error;
  if (!spec.validate(error != nullptr ? error : &local_error)) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  // A leftover checkpoint under this id (job dirs from a root whose
  // manifest was deleted) must not become the new job's resume point.
  std::error_code ec;
  std::filesystem::remove(job_dir(id) + "/checkpoint.json", ec);
  Job job;
  job.rec.id = id;
  job.rec.spec = spec;
  job.rec.state = JobState::kQueued;
  jobs_[id] = std::move(job);
  queue_.push(id, spec.priority);
  save_manifest_locked();
  return id;
}

bool CampaignService::pause(uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    if (error != nullptr) *error = "unknown job " + std::to_string(id);
    return false;
  }
  JobRecord& rec = it->second.rec;
  switch (rec.state) {
    case JobState::kQueued:
      queue_.remove(id);
      rec.state = JobState::kPaused;
      save_manifest_locked();
      return true;
    case JobState::kRunning:
      rec.pause_requested = true;
      save_manifest_locked();
      return true;
    default:
      if (error != nullptr) {
        *error = "cannot pause job in state \"" +
                 std::string(to_string(rec.state)) + "\"";
      }
      return false;
  }
}

bool CampaignService::resume_job(uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    if (error != nullptr) *error = "unknown job " + std::to_string(id);
    return false;
  }
  JobRecord& rec = it->second.rec;
  if (rec.state == JobState::kPaused) {
    rec.state = JobState::kQueued;
    queue_.push(id, rec.spec.priority);
    save_manifest_locked();
    return true;
  }
  if (rec.state == JobState::kRunning && rec.pause_requested) {
    rec.pause_requested = false;  // withdraw an unapplied pause
    save_manifest_locked();
    return true;
  }
  if (error != nullptr) {
    *error = "cannot resume job in state \"" +
             std::string(to_string(rec.state)) + "\"";
  }
  return false;
}

bool CampaignService::cancel(uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    if (error != nullptr) *error = "unknown job " + std::to_string(id);
    return false;
  }
  JobRecord& rec = it->second.rec;
  switch (rec.state) {
    case JobState::kQueued:
    case JobState::kPaused:
      queue_.remove(id);
      rec.state = JobState::kCancelled;
      rec.pause_requested = false;
      save_manifest_locked();
      return true;
    case JobState::kRunning:
      rec.cancel_requested = true;
      save_manifest_locked();
      return true;
    default:
      if (error != nullptr) {
        *error = "cannot cancel job in state \"" +
                 std::string(to_string(rec.state)) + "\"";
      }
      return false;
  }
}

CampaignService::QuantumResult CampaignService::execute_quantum(
    const JobRecord& rec) {
  QuantumResult out;
  const std::string dir = job_dir(rec.id);
  const std::string path = dir + "/checkpoint.json";
  CampaignRun run(rec.spec, cfg_.workers, dir);

  std::string text;
  std::string error;
  const bool have_checkpoint =
      CampaignCheckpoint::read_file(path, &text, &error);
  if (!have_checkpoint && rec.progress > 0) {
    out.failed = true;
    out.error = "checkpoint missing for job with progress " +
                std::to_string(rec.progress) + ": " + error;
    out.progress = rec.progress;
    return out;
  }
  if (have_checkpoint && !run.daemon.resume(text, &error)) {
    out.failed = true;
    out.error = "checkpoint restore failed: " + error;
    out.progress = rec.progress;
    return out;
  }

  const uint64_t start = run.daemon.progress();
  const uint64_t quantum = cfg_.quantum_barriers * rec.spec.checkpoint_every;
  const uint64_t target = std::min(rec.spec.budget, start + quantum);
  run.daemon.run(target, rec.spec.slice);
  out.progress = run.daemon.progress();

  if (out.progress >= rec.spec.budget) {
    out.finished = true;
    out.result = result_json(run, rec.spec);
  } else {
    // Preemption barrier: the explicit checkpoint here reproduces the
    // barrier-reboot the uninterrupted run performs at this same multiple
    // of checkpoint_every inside Daemon::run.
    std::string write_error;
    if (!CampaignCheckpoint::write_file(path, run.daemon.checkpoint_json(),
                                        &write_error)) {
      out.failed = true;
      out.error = "checkpoint write failed: " + write_error;
      return out;
    }
  }
  out.status = run.daemon.status_json();
  out.coverage = run.daemon.coverage_json();
  out.frontier = run.daemon.frontier_json();
  return out;
}

bool CampaignService::run_one_quantum() {
  JobRecord snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto popped = queue_.pop();
    if (!popped.has_value()) return false;
    Job& job = jobs_[popped->job_id];
    job.rec.wait_ticks += popped->waited;
    job.rec.state = JobState::kRunning;
    snapshot = job.rec;
    save_manifest_locked();
  }

  const QuantumResult qr = execute_quantum(snapshot);

  std::lock_guard<std::mutex> lock(mu_);
  Job& job = jobs_[snapshot.id];
  JobRecord& rec = job.rec;
  rec.progress = qr.progress;
  if (!qr.status.empty()) job.status = qr.status;
  if (!qr.coverage.empty()) job.coverage = qr.coverage;
  if (!qr.frontier.empty()) job.frontier = qr.frontier;
  if (qr.failed) {
    rec.state = JobState::kFailed;
    rec.error = qr.error;
  } else if (qr.finished) {
    rec.state = JobState::kDone;
    rec.result = qr.result;
  } else if (rec.cancel_requested) {
    rec.state = JobState::kCancelled;
  } else if (rec.pause_requested) {
    rec.state = JobState::kPaused;
  } else {
    rec.state = JobState::kQueued;
    ++rec.preemptions;
    queue_.push(rec.id, rec.spec.priority);
  }
  rec.pause_requested = false;
  rec.cancel_requested = false;
  save_manifest_locked();
  return true;
}

void CampaignService::run_until_idle() {
  while (run_one_quantum()) {
  }
}

std::optional<JobRecord> CampaignService::job(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.rec;
}

std::vector<JobRecord> CampaignService::jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job.rec);
  return out;
}

size_t CampaignService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t CampaignService::scheduler_ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.tick();
}

std::string CampaignService::jobs_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.field("tick", queue_.tick());
  w.field("queue_depth", static_cast<uint64_t>(queue_.size()));
  w.key("queue").begin_array();
  for (const uint64_t id : queue_.in_pop_order()) w.value(id);
  w.end_array();
  w.key("jobs").begin_array();
  for (const auto& [id, job] : jobs_) {
    job.rec.write_json(w, /*include_result=*/false);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string CampaignService::job_json(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return "";
  obs::JsonWriter w;
  it->second.rec.write_json(w);
  return w.take();
}

std::string CampaignService::job_view(uint64_t id,
                                      const std::string& which) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return "";
  if (which == "status") return it->second.status;
  if (which == "coverage") return it->second.coverage;
  if (which == "frontier") return it->second.frontier;
  return "";
}

void CampaignService::request_shutdown() {
  shutdown_.store(true, std::memory_order_release);
}

bool CampaignService::shutdown_requested() const {
  return shutdown_.load(std::memory_order_acquire);
}

std::string CampaignService::run_reference(const JobSpec& spec,
                                           size_t workers,
                                           const std::string& scratch_dir) {
  CampaignRun run(spec, workers, scratch_dir);
  run.daemon.run(spec.budget, spec.slice);
  return result_json(run, spec);
}

void CampaignService::start_server() {
  server_ = std::make_unique<obs::HttpServer>();
  server_->handle("/healthz", [] {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  server_->handle_route("/jobs", [this](const obs::HttpRequest& req) {
    return handle_jobs(req);
  });
  std::string error;
  if (!server_->start(static_cast<uint16_t>(cfg_.serve_port), &error)) {
    server_.reset();
  }
}

obs::HttpResponse CampaignService::handle_jobs(const obs::HttpRequest& req) {
  const std::vector<std::string> seg = path_segments(req.path);
  // /jobs — list (GET) or submit (POST).
  if (seg.size() == 1) {
    if (req.method == "POST") {
      JobSpec spec;
      std::string error;
      if (!JobSpec::from_json(req.body, &spec, &error)) {
        return error_response(400, error);
      }
      const uint64_t id = submit(spec, &error);
      if (id == 0) return error_response(400, error);
      obs::JsonWriter w;
      w.begin_object().field("id", id).field("state", "queued").end_object();
      return json_response(200, w.take());
    }
    return json_response(200, jobs_json());
  }

  uint64_t id = 0;
  if (seg.size() >= 2 && !parse_job_id(seg[1], &id)) {
    return error_response(404, "bad job id \"" + seg[1] + "\"");
  }

  // /jobs/<id> — full record.
  if (seg.size() == 2) {
    if (req.method != "GET") {
      return error_response(405, "use GET for job records");
    }
    const std::string body = job_json(id);
    if (body.empty()) {
      return error_response(404, "unknown job " + std::to_string(id));
    }
    return json_response(200, body);
  }

  if (seg.size() == 3) {
    const std::string& action = seg[2];
    // /jobs/<id>/{status,coverage,frontier} — per-job introspection views.
    if (action == "status" || action == "coverage" || action == "frontier") {
      if (req.method != "GET") {
        return error_response(405, "use GET for job views");
      }
      const std::string body = job_view(id, action);
      if (body.empty()) {
        return error_response(404, "unknown job " + std::to_string(id));
      }
      return json_response(200, body);
    }
    // /jobs/<id>/{pause,resume,cancel} — control actions.
    if (action == "pause" || action == "resume" || action == "cancel") {
      if (req.method != "POST") {
        return error_response(405, "use POST for job actions");
      }
      std::string error;
      bool ok = false;
      if (action == "pause") {
        ok = pause(id, &error);
      } else if (action == "resume") {
        ok = resume_job(id, &error);
      } else {
        ok = cancel(id, &error);
      }
      if (!ok) {
        const bool unknown = error.rfind("unknown job", 0) == 0;
        return error_response(unknown ? 404 : 409, error);
      }
      const auto rec = job(id);
      obs::JsonWriter w;
      w.begin_object()
          .field("id", id)
          .field("state", to_string(rec.has_value() ? rec->state
                                                    : JobState::kQueued))
          .end_object();
      return json_response(200, w.take());
    }
  }
  return error_response(404, "no such endpoint under /jobs");
}

}  // namespace df::core
