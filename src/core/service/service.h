// Campaign service control plane (DESIGN.md §14, ROADMAP item 2): promotes
// the single-campaign Daemon into a long-running multi-tenant server. The
// service owns a bounded FleetExecutor-backed worker budget
// (ServiceConfig::workers) and a priority JobQueue of campaigns; jobs are
// admitted over HTTP (POST /jobs), scheduled in budget slices of
// quantum_barriers checkpoint periods, preempted at checkpoint barriers —
// the campaign persists its versioned v3 checkpoint (live snapshot pool
// included) and re-enqueues — and the whole job table survives a service
// crash via the manifest (<root>/service.json) written at every scheduling
// event.
//
// Determinism contract (extends the PR 4/5 contract to the scheduler): a
// job's final result document is bit-identical to an uninterrupted
// reference run of the same spec, for any worker count, preemption cadence
// (quantum_barriers), admission order, pause/resume sequence, and service
// restart. Why this holds:
//
//  - checkpointing itself perturbs a campaign (every checkpoint is a
//    barrier reboot), so the reference run keeps checkpointing ON with the
//    same checkpoint_every grid (run_reference below);
//  - the service only preempts at multiples of spec.checkpoint_every: each
//    quantum is resume(last checkpoint) + run(min(budget, start + quantum))
//    + checkpoint_json(), which reproduces exactly the reboot/serialize
//    grid of the uninterrupted run — interior barriers fire inside
//    Daemon::run, the quantum-final one fires via checkpoint_json();
//  - JobSpec::validate forces slice | sample_every | checkpoint_every so
//    reporter samples land on the same execution grid on both sides and a
//    quantum boundary never emits an extra stats point;
//  - per-device results are already worker-count-independent (PR 4), and
//    jobs never share mutable state, so admission order cannot leak in.
//
// Threading: scheduling (run_one_quantum / run_until_idle) happens on the
// caller's thread, one quantum at a time. HTTP handlers run on the server
// thread and only flip job flags / read snapshots under the table lock;
// flags are applied at the next checkpoint barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/service/job.h"
#include "core/service/queue.h"
#include "obs/serve.h"

namespace df::core {

class Daemon;

struct ServiceConfig {
  // Manifest + per-job checkpoint directories live under here (required).
  std::string root_dir;
  // Fleet worker threads handed to each running job's Daemon — the bounded
  // pool all campaigns time-share. Per-job results do not depend on it.
  size_t workers = 1;
  // Preemption quantum in checkpoint periods: a job runs
  // quantum_barriers * spec.checkpoint_every executions per scheduling
  // turn, then checkpoints and re-enqueues (0 is clamped to 1).
  uint64_t quantum_barriers = 1;
  // Queue aging cadence (JobQueue, one priority level per N pops).
  uint64_t age_every = 4;
  // Job API port: -1 disables, 0 binds a free ephemeral port.
  int serve_port = -1;
};

class CampaignService {
 public:
  explicit CampaignService(ServiceConfig cfg);
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  // Crash-safe restart-from-disk: loads <root>/service.json if present and
  // re-enqueues every queued job plus any job the previous process died
  // while running (its checkpoint is the resume point; at most one quantum
  // of work is lost, never completed ones). Terminal and paused jobs keep
  // their state. A missing manifest is a fresh service, not an error.
  bool boot(std::string* error = nullptr);

  // Admits a job (validated spec) and persists the manifest. Returns the
  // job id, or 0 with `error` filled on invalid specs.
  uint64_t submit(const JobSpec& spec, std::string* error = nullptr);

  // Control actions. Queued jobs transition immediately; running jobs take
  // the flag and transition at the next checkpoint barrier. Invalid
  // transitions (pausing a done job, resuming a running one) return false
  // with a descriptive error — the 409 body of the job API.
  bool pause(uint64_t id, std::string* error = nullptr);
  bool resume_job(uint64_t id, std::string* error = nullptr);
  bool cancel(uint64_t id, std::string* error = nullptr);

  // One scheduling pass: pops the highest-effective-priority job, runs one
  // quantum, checkpoints, and re-enqueues / finishes / fails it. Returns
  // false when the queue is empty (nothing ran).
  bool run_one_quantum();
  // Drains the queue (every job reaches a terminal or paused state).
  void run_until_idle();

  // --- introspection ---------------------------------------------------------
  std::optional<JobRecord> job(uint64_t id) const;
  std::vector<JobRecord> jobs() const;
  size_t queue_depth() const;
  uint64_t scheduler_ticks() const;
  // The /jobs listing document (summaries + current pop order).
  std::string jobs_json() const;
  // Full record for one job ("" when unknown).
  std::string job_json(uint64_t id) const;
  // Per-job /status-family views ("status", "coverage", "frontier"),
  // refreshed at every checkpoint barrier; "{}" before the first quantum.
  std::string job_view(uint64_t id, const std::string& which) const;

  // The job API server (null when serve_port < 0 or bind failed).
  obs::HttpServer* server() { return server_.get(); }
  int serve_port() const {
    return server_ != nullptr ? static_cast<int>(server_->port()) : -1;
  }

  // Cooperative shutdown for the serving loop (wired to POST /shutdown by
  // df_service).
  void request_shutdown();
  bool shutdown_requested() const;

  // The determinism oracle: runs `spec` uninterrupted — same checkpoint
  // grid, same worker count — in `scratch_dir` and returns the result
  // document a service job with this spec must reproduce byte-for-byte.
  static std::string run_reference(const JobSpec& spec, size_t workers,
                                   const std::string& scratch_dir);

 private:
  struct Job {
    JobRecord rec;
    // Last published per-job introspection documents.
    std::string status = "{}";
    std::string coverage = "{}";
    std::string frontier = "{}";
  };

  // Outcome of one quantum, merged back into the table under the lock.
  struct QuantumResult {
    uint64_t progress = 0;
    bool finished = false;
    bool failed = false;
    std::string error;
    std::string result;
    std::string status;
    std::string coverage;
    std::string frontier;
  };

  std::string job_dir(uint64_t id) const;
  std::string manifest_path() const;
  void save_manifest_locked();
  // Runs one quantum of `rec` outside the lock.
  QuantumResult execute_quantum(const JobRecord& rec);
  void start_server();
  // HTTP plumbing.
  obs::HttpResponse handle_jobs(const obs::HttpRequest& req);

  ServiceConfig cfg_;
  mutable std::mutex mu_;  // guards jobs_, queue_, next_id_
  std::map<uint64_t, Job> jobs_;
  JobQueue queue_;
  uint64_t next_id_ = 1;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<obs::HttpServer> server_;
};

}  // namespace df::core
