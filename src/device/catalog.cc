#include "device/catalog.h"

#include "hal/services/audio_hal.h"
#include "hal/services/bt_hal.h"
#include "hal/services/camera_hal.h"
#include "hal/services/graphics_hal.h"
#include "hal/services/light_hal.h"
#include "hal/services/media_hal.h"
#include "hal/services/power_hal.h"
#include "hal/services/sensors_hal.h"
#include "hal/services/wifi_hal.h"
#include "kernel/drivers/audio_pcm.h"
#include "kernel/drivers/bt_hci.h"
#include "kernel/drivers/drm_gpu.h"
#include "kernel/drivers/gpu_mali.h"
#include "kernel/drivers/ion_alloc.h"
#include "kernel/drivers/l2cap.h"
#include "kernel/drivers/rt1711_i2c.h"
#include "kernel/drivers/sensor_hub.h"
#include "kernel/drivers/tcpc_core.h"
#include "kernel/drivers/v4l2_cam.h"
#include "kernel/drivers/wifi_rate.h"

namespace df::device {

namespace drv = kernel::drivers;
namespace svc = hal::services;

const std::vector<DeviceSpec>& device_table() {
  static const std::vector<DeviceSpec> kTable = {
      {"A1", "Phone Dev Board", "Xiaomi", "aarch64", "15", "6.6"},
      {"A2", "Tablet Dev Board", "Xiaomi", "aarch64", "15", "6.6"},
      {"B", "Pi 5", "Raspberry Pi", "aarch64", "15", "6.6"},
      {"C1", "Commercial Tablet", "Sunmi", "aarch64", "13", "5.15"},
      {"C2", "Cashier Kiosk", "Sunmi", "aarch64", "13", "5.15"},
      {"D", "LubanCat 5", "EmbedFire", "aarch64", "13", "5.10"},
      {"E", "UP Core Plus", "AAEON", "amd64", "13", "5.10"},
  };
  return kTable;
}

const std::vector<PlantedBug>& planted_bugs() {
  static const std::vector<PlantedBug> kBugs = {
      {"A1", "WARNING in rt1711_i2c_probe", "Logic Error", "Kernel Driver"},
      {"A1", "Native crash in Graphics HAL", "Memory Related Bug", "HAL"},
      {"A1", "BUG: looking up invalid subclass", "Logic Error",
       "Kernel Subsystem"},
      {"A1", "WARNING in tcpc_role_swap", "Logic Error", "Kernel Driver"},
      {"A2", "Infinite Loop in gpu_mali_job_loop", "Logic Error",
       "Kernel Driver"},
      {"A2", "Native crash in Media HAL", "Memory Related Bug", "HAL"},
      {"A2", "KASAN: invalid-access in hci_read_supported_codecs",
       "Memory Related Bug", "Kernel Driver"},
      {"B", "WARNING in l2cap_send_disconn_req", "Logic Error",
       "Kernel Subsystem"},
      {"C1", "Native crash in Camera HAL", "Memory Related Bug", "HAL"},
      {"C2", "WARNING in rate_control_rate_init", "Logic Error",
       "Kernel Driver"},
      {"D", "KASAN: slab-use-after-free Read in bt_accept_unlink",
       "Memory Related Bug", "Kernel Driver"},
      {"E", "WARNING in v4l_querycap", "Logic Error", "Kernel Driver"},
  };
  return kBugs;
}

namespace {

std::unique_ptr<Device> build_a1(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[0], seed);
  auto& k = dev->kernel();
  k.register_driver(
      std::make_unique<drv::Rt1711Driver>(drv::Rt1711Bugs{.probe_warn = true}));
  k.register_driver(std::make_unique<drv::TcpcDriver>(
      drv::TcpcBugs{.role_swap_warn = true}));
  k.register_driver(std::make_unique<drv::SensorHubDriver>(
      drv::SensorHubBugs{.lockdep_subclass = true}));
  k.register_driver(std::make_unique<drv::MaliDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::BtHciDriver>());
  k.register_driver(std::make_unique<drv::L2capDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::GraphicsHal>(
      k, svc::GraphicsHalBugs{.composite_overflow = true}));
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  dev->add_service(std::make_shared<svc::SensorsHal>(k));
  dev->add_service(std::make_shared<svc::BtHal>(k));
  dev->add_service(std::make_shared<svc::PowerHal>(k));
  dev->add_service(std::make_shared<svc::LightHal>(k));
  return dev;
}

std::unique_ptr<Device> build_a2(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[1], seed);
  auto& k = dev->kernel();
  k.register_driver(
      std::make_unique<drv::MaliDriver>(drv::MaliBugs{.job_loop = true}));
  k.register_driver(
      std::make_unique<drv::BtHciDriver>(drv::BtHciBugs{.codec_oob = true}));
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::SensorHubDriver>());
  k.register_driver(std::make_unique<drv::L2capDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::MediaHal>(
      k, svc::MediaHalBugs{.hevc_size_overflow = true}));
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  dev->add_service(std::make_shared<svc::BtHal>(k));
  dev->add_service(std::make_shared<svc::SensorsHal>(k));
  return dev;
}

std::unique_ptr<Device> build_b(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[2], seed);
  auto& k = dev->kernel();
  k.register_driver(
      std::make_unique<drv::L2capDriver>(drv::L2capBugs{.disconn_warn = true}));
  k.register_driver(std::make_unique<drv::BtHciDriver>());
  k.register_driver(std::make_unique<drv::V4l2CamDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  dev->add_service(std::make_shared<svc::CameraHal>(k));
  dev->add_service(std::make_shared<svc::BtHal>(k));
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  return dev;
}

std::unique_ptr<Device> build_c1(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[3], seed);
  auto& k = dev->kernel();
  k.register_driver(std::make_unique<drv::V4l2CamDriver>());
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::WifiRateDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::SensorHubDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::CameraHal>(
      k, svc::CameraHalBugs{.zsl_null_config = true}));
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  dev->add_service(std::make_shared<svc::LightHal>(k));
  dev->add_service(std::make_shared<svc::WifiHal>(k));
  return dev;
}

std::unique_ptr<Device> build_c2(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[4], seed);
  auto& k = dev->kernel();
  k.register_driver(std::make_unique<drv::WifiRateDriver>(
      drv::WifiRateBugs{.empty_rates_warn = true}));
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::SensorHubDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  dev->add_service(std::make_shared<svc::LightHal>(k));
  dev->add_service(std::make_shared<svc::SensorsHal>(k));
  dev->add_service(std::make_shared<svc::WifiHal>(k));
  return dev;
}

std::unique_ptr<Device> build_d(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[5], seed);
  auto& k = dev->kernel();
  k.register_driver(std::make_unique<drv::L2capDriver>(
      drv::L2capBugs{.accept_unlink_uaf = true}));
  k.register_driver(std::make_unique<drv::BtHciDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::SensorHubDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::BtHal>(k));
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  dev->add_service(std::make_shared<svc::LightHal>(k));
  return dev;
}

std::unique_ptr<Device> build_e(uint64_t seed) {
  auto dev = std::make_unique<Device>(device_table()[6], seed);
  auto& k = dev->kernel();
  k.register_driver(std::make_unique<drv::V4l2CamDriver>(
      drv::V4l2Bugs{.querycap_warn = true}));
  k.register_driver(std::make_unique<drv::AudioPcmDriver>());
  k.register_driver(std::make_unique<drv::DrmGpuDriver>());
  k.register_driver(std::make_unique<drv::IonDriver>());
  dev->boot();
  dev->add_service(std::make_shared<svc::CameraHal>(k));
  dev->add_service(std::make_shared<svc::AudioHal>(k));
  dev->add_service(std::make_shared<svc::GraphicsHal>(k));
  return dev;
}

}  // namespace

std::unique_ptr<Device> make_device(std::string_view id, uint64_t seed) {
  if (id == "A1") return build_a1(seed);
  if (id == "A2") return build_a2(seed);
  if (id == "B") return build_b(seed);
  if (id == "C1") return build_c1(seed);
  if (id == "C2") return build_c2(seed);
  if (id == "D") return build_d(seed);
  if (id == "E") return build_e(seed);
  return nullptr;
}

}  // namespace df::device
