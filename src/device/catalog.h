// The device catalog: the seven embedded Android devices from Table I, each
// assembled with its vendor driver set, HAL processes, and firmware-specific
// planted bugs (Table II). `make_device("A1", seed)` returns a fully booted
// simulated board.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "device/device.h"

namespace df::device {

// Table I rows.
const std::vector<DeviceSpec>& device_table();

// Expected Table II bug titles per device (ground truth for the evaluation
// harness; the fuzzer itself never sees this).
struct PlantedBug {
  std::string device_id;
  std::string title;      // dedup title, e.g. "WARNING in rt1711_i2c_probe"
  std::string bug_type;   // "Logic Error" / "Memory Related Bug"
  std::string component;  // "Kernel Driver" / "Kernel Subsystem" / "HAL"
};
const std::vector<PlantedBug>& planted_bugs();

// Builds and boots the given Table I device. Returns nullptr for unknown
// ids. `seed` drives all device-internal randomness.
std::unique_ptr<Device> make_device(std::string_view id, uint64_t seed);

}  // namespace df::device
