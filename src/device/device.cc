#include "device/device.h"

namespace df::device {

Device::Device(DeviceSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  kernel::KernelConfig cfg;
  cfg.version = spec_.kernel;
  cfg.seed = seed;
  kernel_ = std::make_unique<kernel::Kernel>(cfg);
}

hal::HalService* Device::find_service(std::string_view name) const {
  for (const auto& svc : services_) {
    if (svc->descriptor() == name) return svc.get();
  }
  return nullptr;
}

void Device::add_service(std::shared_ptr<hal::HalService> svc) {
  sm_.add_service(std::string(svc->descriptor()), svc, svc->interface());
  services_.push_back(std::move(svc));
}

void Device::boot() {
  if (!kernel_->booted()) kernel_->boot();
}

void Device::reboot() {
  kernel_->reboot();
  for (auto& svc : services_) svc->restart();
  if (reboot_hook_) reboot_hook_(kernel_->reboot_count());
}

void Device::restart_dead_services() {
  for (auto& svc : services_) {
    if (svc->dead()) svc->restart();
  }
}

std::vector<hal::CrashRecord> Device::hal_crashes() const {
  std::vector<hal::CrashRecord> out;
  for (const auto& svc : services_) {
    const auto& cs = svc->crashes();
    out.insert(out.end(), cs.begin(), cs.end());
  }
  return out;
}

}  // namespace df::device
