// A Device is one complete simulated embedded Android system: a booted
// kernel with its vendor driver set, the vendor HAL processes registered
// with a ServiceManager, and reboot plumbing. It is the unit the fuzzing
// harness connects to (the stand-in for a physical board behind ADB).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hal/binder.h"
#include "hal/hal_service.h"
#include "kernel/kernel.h"

namespace df::device {

struct DeviceSpec {
  std::string id;       // "A1" ... "E" (Table I)
  std::string device;   // "Phone Dev Board"
  std::string vendor;   // "Xiaomi"
  std::string arch;     // "aarch64" / "amd64"
  std::string aosp;     // "15" / "13"
  std::string kernel;   // "6.6" / "5.15" / "5.10"
};

class Device {
 public:
  Device(DeviceSpec spec, uint64_t seed);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  kernel::Kernel& kernel() { return *kernel_; }
  hal::ServiceManager& service_manager() { return sm_; }

  // Registered HAL services (order = registration order).
  const std::vector<std::shared_ptr<hal::HalService>>& services() const {
    return services_;
  }
  hal::HalService* find_service(std::string_view name) const;

  // Called by catalog builders during assembly.
  void add_service(std::shared_ptr<hal::HalService> svc);
  void boot();

  // Reboots the kernel and restarts every HAL process (the paper's harness
  // reboots the device upon any bug).
  void reboot();
  // Telemetry hook invoked after every reboot with the cumulative reboot
  // count (the fuzzing engine uses it to trace reboot events). Null clears.
  using RebootHook = std::function<void(uint64_t reboot_count)>;
  void set_reboot_hook(RebootHook hook) { reboot_hook_ = std::move(hook); }
  // Restart only dead HAL processes (hwservicemanager behaviour after a
  // native crash that did not take the kernel down).
  void restart_dead_services();

  // All HAL crash records across services, in chronological-ish order.
  std::vector<hal::CrashRecord> hal_crashes() const;

  uint64_t seed() const { return seed_; }

 private:
  DeviceSpec spec_;
  uint64_t seed_;
  std::unique_ptr<kernel::Kernel> kernel_;
  hal::ServiceManager sm_;
  std::vector<std::shared_ptr<hal::HalService>> services_;
  RebootHook reboot_hook_;
};

}  // namespace df::device
