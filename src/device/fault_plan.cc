#include "device/fault_plan.h"

namespace df::device {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kTransportError:
      return "transport_error";
    case FaultKind::kReboot:
      return "reboot";
  }
  return "unknown";
}

FaultPlan::FaultPlan(const FaultPlanConfig& cfg, uint64_t fallback_seed)
    : cfg_(cfg), rng_(cfg.seed != 0 ? cfg.seed : fallback_seed) {}

FaultKind FaultPlan::next() {
  ++decisions_;
  if (!rng_.prob(cfg_.rate)) return FaultKind::kNone;
  const double hang = cfg_.hang_weight > 0 ? cfg_.hang_weight : 0;
  const double transport =
      cfg_.transport_weight > 0 ? cfg_.transport_weight : 0;
  const double reboot = cfg_.reboot_weight > 0 ? cfg_.reboot_weight : 0;
  const double total = hang + transport + reboot;
  if (total <= 0) return FaultKind::kTransportError;
  const double pick = rng_.uniform() * total;
  if (pick < hang) return FaultKind::kHang;
  if (pick < hang + transport) return FaultKind::kTransportError;
  return FaultKind::kReboot;
}

}  // namespace df::device
