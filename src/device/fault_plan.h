// Substrate fault model (paper §V operational reality): physical embedded
// devices hang, drop the ADB transport mid-program, and reboot themselves
// on KASAN splats. Our in-process device::Device is perfectly reliable, so
// the failure modes are injected here instead: a FaultPlan is a seeded,
// deterministic schedule of transport-level faults, one decision per
// execute() attempt.
//
// Determinism contract: the plan owns a private RNG stream (derived from
// the engine seed, never a shared stream), and at rate == 0 a decision
// consumes *nothing* from it — attaching a zero-rate plan is bit-identical
// to no plan at all. The stream + decision count are checkpointable so a
// resumed campaign replays the same fault schedule.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace df::device {

enum class FaultKind : uint8_t {
  kNone,            // attempt proceeds normally
  kHang,            // device stops responding; deadline expires, forced reboot
  kTransportError,  // transport drops the program; retryable
  kReboot,          // spontaneous device reboot (kernel + HAL state wiped)
};

const char* fault_kind_name(FaultKind kind);

struct FaultPlanConfig {
  double rate = 0.0;    // per-attempt fault probability (0 disables)
  uint64_t seed = 0;    // 0 = derive from the owning engine's seed
  // Relative weights of the three fault kinds when a fault fires. The
  // defaults mirror the paper's field experience: transport drops dominate,
  // hangs and spontaneous reboots are rarer and equally likely.
  double hang_weight = 1.0;
  double transport_weight = 2.0;
  double reboot_weight = 1.0;
  // Paper-realistic policy: a KASAN report wedges the real device's kernel,
  // so the harness reboots after collecting it even when the fuzzer itself
  // did not ask for reboot_on_bug.
  bool reboot_on_kasan = true;
};

class FaultPlan {
 public:
  // `fallback_seed` is used when cfg.seed == 0 — callers pass a value
  // derived from the engine seed so fleets stay per-device deterministic.
  FaultPlan(const FaultPlanConfig& cfg, uint64_t fallback_seed);

  // One fault decision. At rate <= 0 this returns kNone without drawing
  // from the stream (Rng::prob short-circuits), so a disabled plan never
  // perturbs anything downstream.
  FaultKind next();

  const FaultPlanConfig& config() const { return cfg_; }
  bool reboot_on_kasan() const { return cfg_.reboot_on_kasan; }
  uint64_t decisions() const { return decisions_; }

  // Checkpoint support.
  util::RngState rng_state() const { return rng_.state(); }
  void restore(const util::RngState& st, uint64_t decisions) {
    rng_.set_state(st);
    decisions_ = decisions;
  }

 private:
  FaultPlanConfig cfg_;
  util::Rng rng_;
  uint64_t decisions_ = 0;
};

}  // namespace df::device
