#include "device/snapshot.h"

namespace df::device {

namespace {

using kernel::StateBuf;
using kernel::StateReader;

std::shared_ptr<const std::vector<uint8_t>> own(StateBuf&& buf) {
  return std::make_shared<const std::vector<uint8_t>>(buf.take());
}

// Appends `name` with image `buf`, aliasing the parent's buffer when the
// bytes are identical (the dirty-struct delta).
void add_section(StateSnapshot& snap, const StateSnapshot* parent,
                 std::string name, StateBuf&& buf) {
  if (parent != nullptr) {
    if (const StateSnapshot::Section* p = parent->find(name)) {
      if (p->bytes != nullptr && *p->bytes == buf.bytes()) {
        ++snap.sections_shared;
        snap.bytes_shared += p->bytes->size();
        snap.sections.push_back({std::move(name), p->bytes});
        return;
      }
    }
  }
  snap.sections.push_back({std::move(name), own(std::move(buf))});
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = "snapshot: " + what;
  return false;
}

}  // namespace

StateSnapshot capture_snapshot(Device& dev, kernel::TaskId native_task,
                               const StateSnapshot* parent) {
  kernel::Kernel& k = dev.kernel();
  StateSnapshot snap;

  {
    StateBuf b;
    k.save_live(b);
    add_section(snap, parent, "kernel", std::move(b));
  }
  {
    StateBuf b;
    k.kasan().heap().save(b);
    add_section(snap, parent, "heap", std::move(b));
  }
  // Drivers before fd tables, mirroring the restore order (load_file_state
  // may re-link driver side tables that load_state cleared).
  for (const auto& d : k.drivers()) {
    StateBuf b;
    b.u64(d->current_state());
    d->save_state(b);
    add_section(snap, parent, "drv/" + std::string(d->name()), std::move(b));
  }
  {
    StateBuf b;
    k.save_task_files(native_task, b);
    add_section(snap, parent, "fds/native", std::move(b));
  }
  const auto& services = dev.services();
  for (size_t i = 0; i < services.size(); ++i) {
    StateBuf b;
    k.save_task_files(services[i]->task(), b);
    add_section(snap, parent, "fds/svc" + std::to_string(i), std::move(b));
  }
  for (size_t i = 0; i < services.size(); ++i) {
    StateBuf b;
    b.b(services[i]->dead());
    services[i]->save_native(b);
    add_section(snap, parent, "hal/" + std::to_string(i), std::move(b));
  }
  return snap;
}

bool restore_snapshot(Device& dev, kernel::TaskId native_task,
                      const StateSnapshot& snap, std::string* error) {
  kernel::Kernel& k = dev.kernel();
  const auto& services = dev.services();

  // Shape check up front so a mismatched snapshot never half-applies.
  const size_t expect =
      2 + k.drivers().size() + 1 + 2 * services.size();
  if (snap.sections.size() != expect) {
    return fail(error, "section count mismatch (snapshot " +
                           std::to_string(snap.sections.size()) +
                           ", device " + std::to_string(expect) + ")");
  }
  for (const auto& d : k.drivers()) {
    if (snap.find("drv/" + std::string(d->name())) == nullptr) {
      return fail(error,
                  "missing driver section '" + std::string(d->name()) + "'");
    }
  }

  // 1. Revive dead services first: restart() mints the fresh kernel task
  //    whose fd table the snapshot is about to repopulate.
  for (const auto& svc : services) {
    if (svc->dead()) svc->restart();
  }
  k.clear_panic();

  // 2. Drivers: wholesale reset, then reload. Reset before load so stale
  //    side tables (l2cap's listener map) never survive into the restored
  //    state; per-file reload below re-links them.
  for (const auto& d : k.drivers()) {
    const StateSnapshot::Section* s =
        snap.find("drv/" + std::string(d->name()));
    d->reset();
    StateReader r(*s->bytes);
    const size_t cur = static_cast<size_t>(r.u64());
    d->load_state(r);
    if (!r.done()) {
      return fail(error, "driver section '" + std::string(d->name()) +
                             "' did not parse cleanly");
    }
    d->restore_current_state(cur);
  }

  // 3. Heap + kernel cursors/mappings/RNG.
  {
    StateReader r(*snap.find("heap")->bytes);
    k.kasan().heap().load(r);
    if (!r.done()) return fail(error, "heap section did not parse cleanly");
  }
  {
    StateReader r(*snap.find("kernel")->bytes);
    k.load_live(r);
    if (!r.done()) return fail(error, "kernel section did not parse cleanly");
  }

  // 4. Fd tables (driver per-open state reloads inside, which may re-link
  //    the driver side tables cleared in step 2).
  {
    StateReader r(*snap.find("fds/native")->bytes);
    if (!k.load_task_files(native_task, r) || !r.done()) {
      return fail(error, "native fd table did not parse cleanly");
    }
  }
  for (size_t i = 0; i < services.size(); ++i) {
    StateReader r(*snap.find("fds/svc" + std::to_string(i))->bytes);
    if (!k.load_task_files(services[i]->task(), r) || !r.done()) {
      return fail(error,
                  "service " + std::to_string(i) + " fd table did not parse");
    }
  }

  // 5. HAL native state last: the fds it caches now refer to the restored
  //    tables.
  for (size_t i = 0; i < services.size(); ++i) {
    StateReader r(*snap.find("hal/" + std::to_string(i))->bytes);
    const bool dead = r.b();
    services[i]->reset_native_for_snapshot();
    services[i]->load_native(r);
    if (!r.done()) {
      return fail(error, "service " + std::to_string(i) +
                             " native section did not parse cleanly");
    }
    services[i]->restore_dead(dead);
  }
  return true;
}

std::vector<uint8_t> snapshot_to_bytes(const StateSnapshot& snap) {
  StateBuf b;
  b.u64(snap.seq);
  b.u64(snap.estab_calls);
  b.u64(snap.sections_shared);
  b.u64(snap.bytes_shared);
  b.u32(static_cast<uint32_t>(snap.sections.size()));
  for (const auto& s : snap.sections) {
    b.str(s.name);
    static const std::vector<uint8_t> kEmpty;
    b.blob(s.bytes ? *s.bytes : kEmpty);
  }
  return b.take();
}

bool snapshot_from_bytes(std::span<const uint8_t> data, StateSnapshot* out,
                         std::string* error) {
  StateReader r(data);
  StateSnapshot snap;
  snap.seq = r.u64();
  snap.estab_calls = r.u64();
  snap.sections_shared = static_cast<size_t>(r.u64());
  snap.bytes_shared = static_cast<size_t>(r.u64());
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    StateSnapshot::Section s;
    s.name = r.str();
    s.bytes = std::make_shared<const std::vector<uint8_t>>(r.blob());
    snap.sections.push_back(std::move(s));
  }
  if (!r.done()) return fail(error, "byte image did not parse cleanly");
  *out = std::move(snap);
  return true;
}

}  // namespace df::device
