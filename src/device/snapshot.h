// Copy-on-write device state snapshots (DESIGN.md §13).
//
// A StateSnapshot is the full *live* state of a simulated device — slab
// heap (including the KASAN quarantine), per-task VFS fd tables, every
// driver's protocol state machine, kernel RNG/mmap cursors, and each HAL
// service's native state — as an ordered list of named byte sections.
// Campaign-cumulative statistics (coverage, dmesg sequence, state-visit
// tallies, reboot/syscall counters) are deliberately excluded: restoring a
// snapshot rewinds the device, not the campaign.
//
// Dirty-struct deltas: capturing with a parent compares each section image
// against the parent's and *shares* the parent's buffer when the bytes are
// unchanged, so a chain of nested snapshots stores each unchanged
// subsystem once. Sharing is pure aliasing (shared_ptr<const bytes>) —
// restores never care whether a section is owned or shared.
//
// Snapshots restore onto the same device *shape* (same catalog spec: same
// driver registration order, same service list); restore_snapshot verifies
// the section names against the device and rejects mismatches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "device/device.h"
#include "kernel/snapshot.h"

namespace df::device {

struct StateSnapshot {
  struct Section {
    std::string name;
    std::shared_ptr<const std::vector<uint8_t>> bytes;
  };

  std::vector<Section> sections;
  // Engine bookkeeping: capture sequence id (stable across checkpoint
  // round-trips) and the call count of the program that established this
  // state — the ioctl prefix a fork from here avoids re-executing.
  uint64_t seq = 0;
  uint64_t estab_calls = 0;
  // Dirty-struct delta stats, set at capture time.
  size_t sections_shared = 0;  // sections aliasing the parent's buffer
  size_t bytes_shared = 0;     // bytes in those shared sections

  size_t total_bytes() const {
    size_t n = 0;
    for (const Section& s : sections) n += s.bytes ? s.bytes->size() : 0;
    return n;
  }
  const Section* find(std::string_view name) const {
    for (const Section& s : sections) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

// Captures the live state of `dev`. `native_task` is the executor task
// whose fd table holds the fuzzer's own open files (the broker passes its
// native task). With a parent, unchanged sections alias the parent's
// buffers (see above).
StateSnapshot capture_snapshot(Device& dev, kernel::TaskId native_task,
                               const StateSnapshot* parent = nullptr);

// Restores `snap` onto `dev`: revives dead services, resets + reloads every
// driver, replaces heap/fd/mapping state, repositions the kernel RNG, and
// clears any latched panic. Returns false and fills `error` (if non-null)
// when the snapshot does not match the device shape; the device state is
// then unspecified and the caller should reboot.
bool restore_snapshot(Device& dev, kernel::TaskId native_task,
                      const StateSnapshot& snap, std::string* error = nullptr);

// Flat byte image for checkpoint serialization and tests. from_bytes
// re-owns every section (sharing is a capture-time optimization only).
std::vector<uint8_t> snapshot_to_bytes(const StateSnapshot& snap);
bool snapshot_from_bytes(std::span<const uint8_t> data, StateSnapshot* out,
                         std::string* error = nullptr);

}  // namespace df::device
