#include "dsl/descr.h"

namespace df::dsl {

bool CallDesc::consumes(std::string_view t) const {
  for (const auto& p : params) {
    if (p.kind == ArgKind::kHandle && p.handle_type == t) return true;
  }
  return false;
}

const CallDesc* CallTable::add(CallDesc desc) {
  auto owned = std::make_unique<CallDesc>(std::move(desc));
  const CallDesc* ptr = owned.get();
  auto [it, inserted] = by_name_.emplace(ptr->name, std::move(owned));
  if (!inserted) return it->second.get();  // duplicate name: keep the first
  order_.push_back(ptr);
  if (!ptr->produces.empty()) {
    by_produces_.emplace(ptr->produces, ptr);
  }
  return ptr;
}

const CallDesc* CallTable::find(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

std::vector<const CallDesc*> CallTable::producers_of(
    std::string_view type) const {
  std::vector<const CallDesc*> out;
  auto [lo, hi] = by_produces_.equal_range(type);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

}  // namespace df::dsl
