// Call descriptions: the DSL's catalogue of invocable operations.
//
// A CallDesc describes either a (specialized) kernel syscall — e.g.
// `ioctl$RT1711_ATTACH` with its fixed request code and payload layout — or
// a HAL interface method — e.g. `hal$graphics.createLayer`. Descriptions for
// syscalls are authored like syzlang descriptions (core/descriptions.cc);
// descriptions for HAL methods are *discovered at runtime* by the probing
// pass (core/probe). The CallTable owns all descriptions and provides the
// producer index used for resource resolution.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dsl/type.h"

namespace df::dsl {

enum class CallClass { kSyscall, kHal };

// Where the produced resource value comes from after execution.
enum class ProduceFrom {
  kNone,
  kRet,       // syscall return value (fds)
  kOutU32,    // first u32 of the syscall output buffer (kernel ids)
  kReplyU32,  // first u32 of the HAL reply parcel (HAL handles)
};

struct CallDesc {
  std::string name;  // "ioctl$RT1711_ATTACH", "hal$graphics.createLayer"
  CallClass cls = CallClass::kSyscall;

  // --- syscall form ---------------------------------------------------------
  uint32_t sys_nr = 0;       // kernel::Sys as integer (dsl does not link kernel)
  uint64_t fixed_arg = 0;    // ioctl request / sockopt level / open flags
  uint64_t fixed_arg2 = 0;   // sockopt optname / socket type
  uint64_t fixed_arg3 = 0;   // socket protocol
  std::string path;          // openat target

  // --- HAL form -------------------------------------------------------------
  std::string service;       // ServiceManager name
  uint32_t method_code = 0;

  // --- shared ----------------------------------------------------------------
  std::vector<ParamDesc> params;
  std::string produces;      // resource type created ("" = none)
  // Resource type this call invalidates ("" = none): close$* destroys its
  // fd, ioctl$ION_FREE destroys the ion_buf handle it is passed, etc. The
  // destroyed instance is the one bound to the first handle param of this
  // type — the semantic analyzer's use-after-close pass keys off this.
  std::string destroys;
  ProduceFrom produce_from = ProduceFrom::kNone;
  double weight = 1.0;       // vertex weight (interface ranking, §IV-C)

  bool is_hal() const { return cls == CallClass::kHal; }
  // True if any parameter consumes a resource of type `t`.
  bool consumes(std::string_view t) const;
};

class CallTable {
 public:
  // Adds a description; names must be unique. Returns the stable pointer.
  const CallDesc* add(CallDesc desc);

  const CallDesc* find(std::string_view name) const;
  const std::vector<const CallDesc*>& all() const { return order_; }

  // Calls producing a given resource type.
  std::vector<const CallDesc*> producers_of(std::string_view type) const;

  size_t size() const { return order_.size(); }

 private:
  std::map<std::string, std::unique_ptr<CallDesc>, std::less<>> by_name_;
  std::vector<const CallDesc*> order_;
  std::multimap<std::string, const CallDesc*, std::less<>> by_produces_;
};

}  // namespace df::dsl
