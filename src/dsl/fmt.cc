#include "dsl/fmt.h"

#include <cstdio>

namespace df::dsl {

namespace {

void append_hex(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  out += buf;
}

void append_bytes(std::string& out, const std::vector<uint8_t>& bytes) {
  out += "blob\"";
  char buf[4];
  for (uint8_t b : bytes) {
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  out += '"';
}

}  // namespace

std::string format_call(const Program& p, size_t idx) {
  std::string out;
  if (idx >= p.calls.size()) return out;
  const Call& c = p.calls[idx];
  if (c.desc == nullptr) return "<null>";
  if (!c.desc->produces.empty()) {
    out += 'r';
    out += std::to_string(idx);
    out += " = ";
  }
  out += c.desc->name;
  out += '(';
  for (size_t a = 0; a < c.args.size(); ++a) {
    if (a > 0) out += ", ";
    const ParamDesc& pd = a < c.desc->params.size() ? c.desc->params[a]
                                                    : ParamDesc{};
    const Value& v = c.args[a];
    switch (pd.kind) {
      case ArgKind::kHandle:
        if (v.ref == Value::kNoRef) {
          out += "nil";
        } else {
          out += 'r';
          out += std::to_string(v.ref);
        }
        break;
      case ArgKind::kString:
      case ArgKind::kBlob:
        append_bytes(out, v.bytes);
        break;
      default:
        append_hex(out, v.scalar);
        break;
    }
  }
  out += ')';
  return out;
}

std::string format_program(const Program& p) {
  std::string out;
  for (size_t i = 0; i < p.calls.size(); ++i) {
    out += format_call(p, i);
    out += '\n';
  }
  return out;
}

}  // namespace df::dsl
