// Textual form of DSL programs (one call per line, syzlang-flavoured):
//
//   r0 = openat$rt1711()
//   ioctl$RT1711_ATTACH(r0, 0x2)
//   r2 = hal$graphics.createLayer(0x40, 0x40, 0x1)
//   hal$audio.write(nil, blob"00ff12")
//
// Producing calls are prefixed `r<index> =`; handle args reference them as
// `r<index>`, or `nil` when unresolved. Scalars print as hex; blobs/strings
// as hex byte runs. parse.h reads this format back.
#pragma once

#include <string>

#include "dsl/prog.h"

namespace df::dsl {

std::string format_call(const Program& p, size_t idx);
std::string format_program(const Program& p);

}  // namespace df::dsl
