#include "dsl/parse.h"

#include <cctype>
#include <charconv>

namespace df::dsl {

namespace {

struct Cursor {
  std::string_view s;
  size_t pos = 0;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return eof() ? '\0' : s[pos]; }
  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos;
    return true;
  }
  std::string_view ident() {
    skip_ws();
    const size_t start = pos;
    while (!eof() &&
           (std::isalnum(static_cast<unsigned char>(s[pos])) != 0 ||
            s[pos] == '_' || s[pos] == '$' || s[pos] == '.')) {
      ++pos;
    }
    return s.substr(start, pos - start);
  }
};

bool parse_hex_u64(Cursor& c, uint64_t& out) {
  c.skip_ws();
  size_t start = c.pos;
  if (c.s.substr(c.pos).starts_with("0x")) c.pos += 2;
  const size_t digits = c.pos;
  while (!c.eof() &&
         std::isxdigit(static_cast<unsigned char>(c.s[c.pos])) != 0) {
    ++c.pos;
  }
  if (c.pos == digits) {
    c.pos = start;
    return false;
  }
  const auto sub = c.s.substr(digits, c.pos - digits);
  const auto res =
      std::from_chars(sub.data(), sub.data() + sub.size(), out, 16);
  return res.ec == std::errc();
}

bool parse_blob(Cursor& c, std::vector<uint8_t>& out) {
  // At "blob\"hex...\"" with `blob` already consumed by ident().
  if (!c.consume('"')) return false;
  out.clear();
  auto hexval = [](char ch) -> int {
    if (ch >= '0' && ch <= '9') return ch - '0';
    if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
    if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
    return -1;
  };
  while (!c.eof() && c.peek() != '"') {
    const int hi = hexval(c.s[c.pos]);
    if (hi < 0 || c.pos + 1 >= c.s.size()) return false;
    const int lo = hexval(c.s[c.pos + 1]);
    if (lo < 0) return false;
    out.push_back(static_cast<uint8_t>(hi * 16 + lo));
    c.pos += 2;
  }
  return c.consume('"');
}

}  // namespace

std::optional<Program> parse_program(std::string_view text,
                                     const CallTable& table,
                                     std::string* err) {
  auto fail = [&](std::string msg) -> std::optional<Program> {
    if (err != nullptr) *err = std::move(msg);
    return std::nullopt;
  };

  Program prog;
  size_t line_no = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_no;
    // Strip comments and blank lines.
    if (const size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    Cursor c{line, 0};
    c.skip_ws();
    if (c.eof()) {
      if (begin > text.size()) break;
      continue;
    }

    // Optional "rN = " prefix.
    const size_t mark = c.pos;
    std::string_view first = c.ident();
    if (!first.empty() && first[0] == 'r' && c.consume('=')) {
      // prefix consumed; fall through to the call name
    } else {
      c.pos = mark;
    }
    const std::string_view name = c.ident();
    const CallDesc* desc = table.find(name);
    if (desc == nullptr) {
      return fail("line " + std::to_string(line_no) + ": unknown call '" +
                  std::string(name) + "'");
    }
    if (!c.consume('(')) {
      return fail("line " + std::to_string(line_no) + ": expected '('");
    }

    Call call;
    call.desc = desc;
    for (size_t a = 0; a < desc->params.size(); ++a) {
      if (a > 0 && !c.consume(',')) {
        return fail("line " + std::to_string(line_no) + ": expected ','");
      }
      c.skip_ws();
      const ParamDesc& p = desc->params[a];
      Value v;
      switch (p.kind) {
        case ArgKind::kHandle: {
          const std::string_view tok = c.ident();
          if (tok == "nil") {
            v.ref = Value::kNoRef;
          } else if (!tok.empty() && tok[0] == 'r') {
            uint64_t idx = 0;
            const auto sub = tok.substr(1);
            if (std::from_chars(sub.data(), sub.data() + sub.size(), idx)
                    .ec != std::errc()) {
              return fail("line " + std::to_string(line_no) + ": bad ref");
            }
            v.ref = static_cast<int32_t>(idx);
          } else {
            return fail("line " + std::to_string(line_no) +
                        ": expected ref or nil");
          }
          break;
        }
        case ArgKind::kString:
        case ArgKind::kBlob: {
          const std::string_view tok = c.ident();
          if (tok != "blob" || !parse_blob(c, v.bytes)) {
            return fail("line " + std::to_string(line_no) + ": bad blob");
          }
          break;
        }
        default:
          if (!parse_hex_u64(c, v.scalar)) {
            return fail("line " + std::to_string(line_no) + ": bad scalar");
          }
          break;
      }
      call.args.push_back(std::move(v));
    }
    if (!c.consume(')')) {
      return fail("line " + std::to_string(line_no) + ": expected ')'");
    }
    prog.calls.push_back(std::move(call));
  }

  if (!prog.valid()) {
    // Refs may legitimately point at later lines only in corrupt corpora.
    prog.repair_refs();
    if (!prog.valid()) return fail("structural validation failed");
  }
  return prog;
}

}  // namespace df::dsl
