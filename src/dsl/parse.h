// Parser for the textual program form produced by fmt.h. Used by the
// daemon's persistent corpus, crash reproducers, and tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "dsl/prog.h"

namespace df::dsl {

// Parses one program. Unknown call names, malformed values, arity
// mismatches and bad refs fail with a message in `err` (if non-null).
std::optional<Program> parse_program(std::string_view text,
                                     const CallTable& table,
                                     std::string* err = nullptr);

}  // namespace df::dsl
