#include "dsl/prog.h"

#include "util/hash.h"

namespace df::dsl {

bool Program::valid() const {
  for (size_t i = 0; i < calls.size(); ++i) {
    const Call& c = calls[i];
    if (c.desc == nullptr) return false;
    if (c.args.size() != c.desc->params.size()) return false;
    for (size_t a = 0; a < c.args.size(); ++a) {
      const ParamDesc& p = c.desc->params[a];
      if (p.kind != ArgKind::kHandle) continue;
      const int32_t ref = c.args[a].ref;
      if (ref == Value::kNoRef) continue;  // unresolved is structurally legal
      if (ref < 0 || static_cast<size_t>(ref) >= i) return false;
      const CallDesc* producer = calls[static_cast<size_t>(ref)].desc;
      if (producer == nullptr || producer->produces != p.handle_type) {
        return false;
      }
    }
  }
  return true;
}

size_t Program::repair_refs(bool rebind_unresolved) {
  size_t changed = 0;
  for (size_t i = 0; i < calls.size(); ++i) {
    Call& c = calls[i];
    if (c.desc == nullptr) continue;
    for (size_t a = 0; a < c.args.size() && a < c.desc->params.size(); ++a) {
      const ParamDesc& p = c.desc->params[a];
      if (p.kind != ArgKind::kHandle) continue;
      Value& v = c.args[a];
      if (v.ref == Value::kNoRef && !rebind_unresolved) continue;
      const bool ok =
          v.ref != Value::kNoRef && v.ref >= 0 &&
          static_cast<size_t>(v.ref) < i &&
          calls[static_cast<size_t>(v.ref)].desc != nullptr &&
          calls[static_cast<size_t>(v.ref)].desc->produces == p.handle_type;
      if (ok) continue;
      // Rebind to the nearest earlier producer.
      int32_t found = Value::kNoRef;
      for (size_t j = i; j-- > 0;) {
        if (calls[j].desc != nullptr &&
            calls[j].desc->produces == p.handle_type) {
          found = static_cast<int32_t>(j);
          break;
        }
      }
      if (v.ref != found) {
        v.ref = found;
        ++changed;
      }
    }
  }
  return changed;
}

void Program::remove_call(size_t idx) {
  if (idx >= calls.size()) return;
  calls.erase(calls.begin() + static_cast<long>(idx));
  // Shift refs that pointed past the removed call.
  for (size_t i = 0; i < calls.size(); ++i) {
    for (Value& v : calls[i].args) {
      if (v.ref == Value::kNoRef) continue;
      if (static_cast<size_t>(v.ref) == idx) {
        v.ref = Value::kNoRef;
      } else if (static_cast<size_t>(v.ref) > idx) {
        --v.ref;
      }
    }
  }
  repair_refs();
}

size_t Program::remove_calls(const std::vector<bool>& drop) {
  const size_t n = calls.size();
  // Old index -> new index, or kNoRef for dropped calls.
  std::vector<int32_t> remap(n, Value::kNoRef);
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i >= drop.size() || !drop[i]) {
      remap[i] = static_cast<int32_t>(kept++);
    }
  }
  if (kept == n) return 0;
  std::vector<Call> out;
  out.reserve(kept);
  for (size_t i = 0; i < n; ++i) {
    if (remap[i] == Value::kNoRef) continue;
    Call c = std::move(calls[i]);
    for (Value& v : c.args) {
      if (v.ref >= 0 && static_cast<size_t>(v.ref) < n) {
        v.ref = remap[static_cast<size_t>(v.ref)];
      } else {
        v.ref = Value::kNoRef;
      }
    }
    out.push_back(std::move(c));
  }
  calls = std::move(out);
  return n - kept;
}

uint64_t program_hash(const Program& p) {
  uint64_t h = 0x9ae16a3b2f90404full;
  for (const Call& c : p.calls) {
    h = util::hash_combine(h, util::fnv1a(c.desc ? c.desc->name : "?"));
    for (const Value& v : c.args) {
      h = util::hash_combine(h, v.scalar);
      h = util::hash_combine(h, static_cast<uint64_t>(v.ref));
      for (uint8_t b : v.bytes) h = util::hash_combine(h, b);
    }
  }
  return h;
}

}  // namespace df::dsl
