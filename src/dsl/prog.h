// Programs: the unit of fuzzing — an ordered sequence of DSL calls with
// bound argument values and intra-program resource references.
#pragma once

#include <string>
#include <vector>

#include "dsl/descr.h"

namespace df::dsl {

struct Call {
  const CallDesc* desc = nullptr;
  std::vector<Value> args;  // one per desc->params entry
};

struct Program {
  std::vector<Call> calls;

  size_t size() const { return calls.size(); }
  bool empty() const { return calls.empty(); }

  // Structural validity: arg counts match descriptions; every handle ref
  // points to an *earlier* call that produces the required resource type.
  bool valid() const;

  // Fixes dangling/forward refs after call removal or reordering: each
  // handle ref is rebound to the nearest earlier producer of its type, or
  // cleared to kNoRef if none exists. Returns the number of refs changed.
  // With rebind_unresolved=false, refs already cleared to kNoRef are left
  // alone — unresolved is a legal (warning-only) state, and the semantic
  // repair pass severs stale uses to it, so re-resurrecting them here would
  // make the two passes oscillate.
  size_t repair_refs(bool rebind_unresolved = true);

  // Removes call `idx`, repairing refs. Safe for out-of-range (no-op).
  void remove_call(size_t idx);

  // Bulk removal: drops every call where `drop[i]` is true and remaps the
  // surviving refs (refs into dropped calls are cleared to kNoRef; no
  // repair_refs rebinding, so the result is a pure deterministic function
  // of the input — the canonicalizer depends on that). Returns calls
  // removed. `drop` may be shorter than calls (missing entries are kept).
  size_t remove_calls(const std::vector<bool>& drop);
};

// Deep-copy helper (Programs are cheap value types, but an explicit name at
// call sites documents intent in generator code).
inline Program clone(const Program& p) { return p; }

// Stable 64-bit structural hash (descriptions by name, args by content) —
// used for corpus dedup.
uint64_t program_hash(const Program& p);

}  // namespace df::dsl
