#include "dsl/type.h"

#include <algorithm>

namespace df::dsl {

namespace {

uint64_t flags_combo(const std::vector<uint64_t>& choices, util::Rng& rng) {
  uint64_t v = 0;
  for (uint64_t c : choices) {
    if (rng.chance(1, 2)) v |= c;
  }
  return v;
}

std::vector<uint8_t> random_bytes(size_t max_len, util::Rng& rng) {
  // Bias toward short payloads with an occasional max-length one.
  size_t len;
  if (rng.chance(1, 8)) {
    len = max_len;
  } else {
    len = static_cast<size_t>(rng.below(max_len > 64 ? 64 : max_len + 1));
  }
  std::vector<uint8_t> b(len);
  for (auto& c : b) c = static_cast<uint8_t>(rng.next());
  return b;
}

}  // namespace

uint64_t boundary_scalar(uint64_t min, uint64_t max, util::Rng& rng) {
  switch (rng.below(6)) {
    case 0: return min;
    case 1: return max;
    case 2: return min + (max - min) / 2;
    case 3: {
      // A power of two inside the range, if any.
      for (int shift = 63; shift >= 0; --shift) {
        const uint64_t p = 1ull << shift;
        if (p >= min && p <= max) {
          if (rng.chance(1, 2)) return p;
        }
      }
      return max;
    }
    case 4: return max > min ? max - 1 : max;
    default: return min + rng.below(max - min + 1);
  }
}

Value random_value(const ParamDesc& p, util::Rng& rng) {
  Value v;
  switch (p.kind) {
    case ArgKind::kU8:
    case ArgKind::kU16:
    case ArgKind::kU32:
    case ArgKind::kU64:
      v.scalar = rng.chance(1, 4) ? boundary_scalar(p.min, p.max, rng)
                                  : p.min + rng.below(p.max - p.min + 1);
      break;
    case ArgKind::kEnum:
      v.scalar = p.choices.empty()
                     ? 0
                     : p.choices[rng.below(p.choices.size())];
      break;
    case ArgKind::kFlags:
      v.scalar = flags_combo(p.choices, rng);
      break;
    case ArgKind::kBool:
      v.scalar = rng.below(2);
      break;
    case ArgKind::kString:
    case ArgKind::kBlob:
      v.bytes = random_bytes(p.max_len, rng);
      break;
    case ArgKind::kHandle:
      v.ref = Value::kNoRef;
      break;
  }
  return v;
}

void mutate_value(const ParamDesc& p, Value& v, util::Rng& rng) {
  switch (p.kind) {
    case ArgKind::kU8:
    case ArgKind::kU16:
    case ArgKind::kU32:
    case ArgKind::kU64:
      switch (rng.below(4)) {
        case 0:
          v.scalar = boundary_scalar(p.min, p.max, rng);
          break;
        case 1:  // small delta walk
          v.scalar += rng.range(-4, 4);
          break;
        case 2:  // bit flip
          v.scalar ^= 1ull << rng.below(64);
          break;
        default:
          v.scalar = p.min + rng.below(p.max - p.min + 1);
          break;
      }
      sanitize_value(p, v, rng);
      break;
    case ArgKind::kEnum:
      if (!p.choices.empty()) v.scalar = p.choices[rng.below(p.choices.size())];
      break;
    case ArgKind::kFlags:
      if (!p.choices.empty() && rng.chance(1, 2)) {
        v.scalar ^= p.choices[rng.below(p.choices.size())];
      } else {
        v.scalar = flags_combo(p.choices, rng);
      }
      break;
    case ArgKind::kBool:
      v.scalar ^= 1;
      break;
    case ArgKind::kString:
    case ArgKind::kBlob:
      if (v.bytes.empty() || rng.chance(1, 4)) {
        v.bytes = random_bytes(p.max_len, rng);
      } else {
        switch (rng.below(3)) {
          case 0:  // flip a byte
            v.bytes[rng.below(v.bytes.size())] ^=
                static_cast<uint8_t>(1 + rng.below(255));
            break;
          case 1:  // grow
            if (v.bytes.size() < p.max_len) {
              v.bytes.push_back(static_cast<uint8_t>(rng.next()));
            }
            break;
          default:  // shrink
            v.bytes.pop_back();
            break;
        }
      }
      break;
    case ArgKind::kHandle:
      break;  // refs are rewired by the generator, not mutated here
  }
}

void sanitize_value(const ParamDesc& p, Value& v, util::Rng& rng) {
  switch (p.kind) {
    case ArgKind::kU8:
    case ArgKind::kU16:
    case ArgKind::kU32:
    case ArgKind::kU64:
      if (v.scalar < p.min || v.scalar > p.max) {
        // Out-of-range scalars are occasionally *kept* — invalid inputs are
        // part of fuzzing — but mostly clamped back.
        if (rng.chance(7, 8)) {
          v.scalar = p.min + v.scalar % (p.max - p.min + 1);
        }
      }
      break;
    case ArgKind::kEnum:
      if (!p.choices.empty() &&
          std::find(p.choices.begin(), p.choices.end(), v.scalar) ==
              p.choices.end() &&
          rng.chance(7, 8)) {
        v.scalar = p.choices[rng.below(p.choices.size())];
      }
      break;
    case ArgKind::kString:
    case ArgKind::kBlob:
      if (v.bytes.size() > p.max_len) v.bytes.resize(p.max_len);
      break;
    default:
      break;
  }
}

}  // namespace df::dsl
