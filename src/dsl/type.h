// DSL argument type system (syzlang-lite).
//
// One parameter model covers both kernel syscalls and HAL interface methods,
// so the generator, mutator, minimizer and executors treat the two call
// classes uniformly — the property the paper's kernel-user relational
// generation depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace df::dsl {

enum class ArgKind {
  kU8,      // scalar in [min, max], packed as 1 byte
  kU16,     // scalar in [min, max], packed as 2 bytes
  kU32,     // scalar in [min, max]
  kU64,     // scalar in [min, max]
  kEnum,    // one of `choices`
  kFlags,   // OR-combination of `choices`
  kBool,    // 0 / 1
  kString,  // bounded-length text
  kBlob,    // bounded-length bytes
  kHandle,  // resource reference (fd, HAL object, kernel id)
};

// Where a syscall parameter lands in the SyscallReq (HAL params always go
// into the parcel in order).
enum class Slot {
  kPayload,  // packed into req.data (u32/u64/blob/string) or the parcel
  kFd,       // becomes req.fd
  kSize,     // becomes req.size
  kArg,      // becomes req.arg (scalar syscall argument, e.g. listen backlog)
};

struct ParamDesc {
  ArgKind kind = ArgKind::kU32;
  std::string name;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> choices;  // kEnum / kFlags
  size_t max_len = 0;             // kString / kBlob
  std::string handle_type;        // kHandle: resource type name
  Slot slot = Slot::kPayload;
};

// A concrete argument value. Exactly one of the representations is active,
// chosen by the ParamDesc it instantiates:
//   scalar  — kU32/kU64/kEnum/kFlags/kBool
//   bytes   — kBlob/kString (strings stored as raw bytes)
//   ref     — kHandle: index of the producing call within the program,
//             or kNoRef when unresolved (executor substitutes 0/-1).
struct Value {
  static constexpr int32_t kNoRef = -1;

  uint64_t scalar = 0;
  std::vector<uint8_t> bytes;
  int32_t ref = kNoRef;
};

// --- random instantiation & mutation (shared by DroidFuzz and baselines) ---

// Draws a fresh value for `p`. Handles are left unresolved (ref = kNoRef);
// resolving them is the generator's producer-insertion job.
Value random_value(const ParamDesc& p, util::Rng& rng);

// Mutates `v` in place according to `p` (bit flips, boundary values, length
// changes). Handle refs are not touched here.
void mutate_value(const ParamDesc& p, Value& v, util::Rng& rng);

// Clamp-or-resample so that `v` satisfies `p` (used after crossover).
void sanitize_value(const ParamDesc& p, Value& v, util::Rng& rng);

// Interesting boundary scalars biased into generation (0, 1, max, powers
// of two near the range edges).
uint64_t boundary_scalar(uint64_t min, uint64_t max, util::Rng& rng);

}  // namespace df::dsl
