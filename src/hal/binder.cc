#include "hal/binder.h"

namespace df::hal {

const MethodDesc* InterfaceDesc::find_method(uint32_t code) const {
  for (const auto& m : methods) {
    if (m.code == code) return &m;
  }
  return nullptr;
}

const MethodDesc* InterfaceDesc::find_method(std::string_view name) const {
  for (const auto& m : methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void ServiceManager::add_service(std::string name,
                                 std::shared_ptr<IBinder> binder,
                                 InterfaceDesc desc) {
  services_[std::move(name)] = Entry{std::move(binder), std::move(desc)};
}

void ServiceManager::remove_service(std::string_view name) {
  auto it = services_.find(name);
  if (it != services_.end()) services_.erase(it);
}

std::vector<std::string> ServiceManager::list_services() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, e] : services_) out.push_back(name);
  return out;
}

std::shared_ptr<IBinder> ServiceManager::get_service(
    std::string_view name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.binder;
}

const InterfaceDesc* ServiceManager::get_interface(
    std::string_view name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second.desc;
}

TxResult ServiceManager::call(std::string_view name, uint32_t code,
                              Parcel& data) {
  auto it = services_.find(name);
  if (it == services_.end()) return {kStatusDeadObject, {}};
  TxResult res = it->second.binder->transact(code, data);
  const TxRecord rec{std::string(name), code, data.size(), res.status};
  for (auto& [id, obs] : observers_) obs(rec);
  return res;
}

int ServiceManager::attach_observer(Observer obs) {
  const int id = next_obs_++;
  observers_.emplace(id, std::move(obs));
  return id;
}

void ServiceManager::detach_observer(int id) { observers_.erase(id); }

}  // namespace df::hal
