// Binder IPC substrate: transactions, interface metadata, ServiceManager.
//
// HAL interface *metadata* (method codes, argument descriptors) is what
// Android exposes through ServiceManager/lshal reflection; the prober uses
// it to marshal trial invocations, exactly like the paper's Poke app. The
// BinderBus additionally lets observers record raw transactions — the
// host-visible analogue of the paper's eBPF Binder hooks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hal/parcel.h"

namespace df::hal {

// Argument metadata for one HAL method parameter.
enum class ArgKind {
  kU32,      // scalar with [min, max]
  kU64,      // scalar with [min, max]
  kEnum,     // one of `choices`
  kFlags,    // OR-combination of `choices`
  kBool,
  kString,   // bounded length
  kBlob,     // bounded length
  kHandle,   // resource produced by another method (see handle_type)
};

struct ArgDesc {
  ArgKind kind = ArgKind::kU32;
  std::string name;
  uint64_t min = 0;
  uint64_t max = 0;
  std::vector<uint64_t> choices;  // kEnum / kFlags
  size_t max_len = 0;             // kString / kBlob
  std::string handle_type;        // kHandle
};

struct MethodDesc {
  uint32_t code = 0;
  std::string name;
  std::vector<ArgDesc> args;
  // Non-empty if the method returns a resource handle of this type in the
  // reply parcel (u32), consumable by kHandle args of the same type.
  std::string returns_handle;
};

struct InterfaceDesc {
  std::string service;  // e.g. "android.hardware.graphics.composer@sim"
  std::vector<MethodDesc> methods;

  const MethodDesc* find_method(uint32_t code) const;
  const MethodDesc* find_method(std::string_view name) const;
};

// Transaction status codes (subset of binder's).
inline constexpr int32_t kStatusOk = 0;
inline constexpr int32_t kStatusBadValue = -22;
inline constexpr int32_t kStatusInvalidOperation = -38;
inline constexpr int32_t kStatusDeadObject = -32;
inline constexpr int32_t kStatusUnknownTransaction = -74;

struct TxResult {
  int32_t status = kStatusOk;
  Parcel reply;
};

// Remote-object interface (HAL services implement this).
class IBinder {
 public:
  virtual ~IBinder() = default;
  virtual TxResult transact(uint32_t code, Parcel& data) = 0;
  virtual std::string_view descriptor() const = 0;
};

// Observed transaction record (for the prober / eBPF-style hooks).
struct TxRecord {
  std::string service;
  uint32_t code = 0;
  size_t data_size = 0;
  int32_t status = 0;
};

// Service registry + transaction routing, with observer taps.
class ServiceManager {
 public:
  void add_service(std::string name, std::shared_ptr<IBinder> binder,
                   InterfaceDesc desc);
  void remove_service(std::string_view name);

  // `lshal`-style enumeration.
  std::vector<std::string> list_services() const;
  std::shared_ptr<IBinder> get_service(std::string_view name) const;
  const InterfaceDesc* get_interface(std::string_view name) const;

  // Routes a transaction to a named service, notifying observers.
  TxResult call(std::string_view name, uint32_t code, Parcel& data);

  using Observer = std::function<void(const TxRecord&)>;
  int attach_observer(Observer obs);
  void detach_observer(int id);

 private:
  struct Entry {
    std::shared_ptr<IBinder> binder;
    InterfaceDesc desc;
  };
  std::map<std::string, Entry, std::less<>> services_;
  std::map<int, Observer> observers_;
  int next_obs_ = 1;
};

}  // namespace df::hal
