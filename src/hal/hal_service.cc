#include "hal/hal_service.h"

#include "util/log.h"

namespace df::hal {

using kernel::Sys;
using kernel::SyscallReq;
using kernel::SyscallRes;

HalService::HalService(kernel::Kernel& kernel, std::string process_name)
    : kernel_(kernel), process_name_(std::move(process_name)) {
  task_ = kernel_.create_task(kernel::TaskOrigin::kHal, process_name_);
}

HalService::~HalService() {
  if (task_ != 0) kernel_.exit_task(task_);
}

TxResult HalService::transact(uint32_t code, Parcel& data) {
  if (dead_) return {kStatusDeadObject, {}};
  data.rewind();
  try {
    return on_transact(code, data);
  } catch (const HalCrash& crash) {
    crashes_.push_back(
        {crash.service, crash.signal, crash.site, crash_seq_++});
    dead_ = true;
    DF_CLOG("hal", kInfo) << "HAL crash: " << crash.service << " "
                          << crash.signal << " in " << crash.site;
    return {kStatusDeadObject, {}};
  }
}

void HalService::restart() {
  // The supervisor kills and re-execs the HAL process: fresh task, fds gone,
  // native state reinitialized. Crash history is kept (it is host-side).
  kernel_.exit_task(task_);
  task_ = kernel_.create_task(kernel::TaskOrigin::kHal, process_name_);
  reset_native();
  dead_ = false;
}

int64_t HalService::sys_open(std::string_view path, uint64_t flags) {
  SyscallReq req;
  req.nr = Sys::kOpenAt;
  req.path = std::string(path);
  req.arg = flags;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_close(int32_t fd) {
  SyscallReq req;
  req.nr = Sys::kClose;
  req.fd = fd;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_ioctl(int32_t fd, uint64_t ioc,
                              std::span<const uint8_t> in,
                              std::vector<uint8_t>* out) {
  SyscallReq req;
  req.nr = Sys::kIoctl;
  req.fd = fd;
  req.arg = ioc;
  req.data.assign(in.begin(), in.end());
  SyscallRes res = kernel_.syscall(task_, req);
  if (out != nullptr) *out = std::move(res.out);
  return res.ret;
}

int64_t HalService::sys_read(int32_t fd, size_t n, std::vector<uint8_t>* out) {
  SyscallReq req;
  req.nr = Sys::kRead;
  req.fd = fd;
  req.size = n;
  SyscallRes res = kernel_.syscall(task_, req);
  if (out != nullptr) *out = std::move(res.out);
  return res.ret;
}

int64_t HalService::sys_write(int32_t fd, std::span<const uint8_t> data) {
  SyscallReq req;
  req.nr = Sys::kWrite;
  req.fd = fd;
  req.data.assign(data.begin(), data.end());
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_mmap(int32_t fd, size_t len, uint64_t prot) {
  SyscallReq req;
  req.nr = Sys::kMmap;
  req.fd = fd;
  req.size = len;
  req.arg = prot;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_socket(uint64_t family, uint64_t type, uint64_t proto) {
  SyscallReq req;
  req.nr = Sys::kSocket;
  req.arg = family;
  req.arg2 = type;
  req.arg3 = proto;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_bind(int32_t fd, std::span<const uint8_t> addr) {
  SyscallReq req;
  req.nr = Sys::kBind;
  req.fd = fd;
  req.data.assign(addr.begin(), addr.end());
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_connect(int32_t fd, std::span<const uint8_t> addr) {
  SyscallReq req;
  req.nr = Sys::kConnect;
  req.fd = fd;
  req.data.assign(addr.begin(), addr.end());
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_listen(int32_t fd, uint64_t backlog) {
  SyscallReq req;
  req.nr = Sys::kListen;
  req.fd = fd;
  req.arg = backlog;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_accept(int32_t fd) {
  SyscallReq req;
  req.nr = Sys::kAccept;
  req.fd = fd;
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_setsockopt(int32_t fd, uint64_t level, uint64_t opt,
                                   std::span<const uint8_t> data) {
  SyscallReq req;
  req.nr = Sys::kSetsockopt;
  req.fd = fd;
  req.arg = level;
  req.arg2 = opt;
  req.data.assign(data.begin(), data.end());
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_sendmsg(int32_t fd, std::span<const uint8_t> data) {
  SyscallReq req;
  req.nr = Sys::kSendmsg;
  req.fd = fd;
  req.data.assign(data.begin(), data.end());
  return kernel_.syscall(task_, req).ret;
}

int64_t HalService::sys_recvmsg(int32_t fd, size_t n,
                                std::vector<uint8_t>* out) {
  SyscallReq req;
  req.nr = Sys::kRecvmsg;
  req.fd = fd;
  req.size = n;
  SyscallRes res = kernel_.syscall(task_, req);
  if (out != nullptr) *out = std::move(res.out);
  return res.ret;
}

void HalService::crash_native(std::string_view signal, std::string_view site) {
  throw HalCrash{process_name_, std::string(signal), std::string(site)};
}

std::vector<uint8_t> pack_u32(std::initializer_list<uint32_t> vals) {
  std::vector<uint8_t> out;
  out.reserve(vals.size() * 4);
  for (uint32_t v : vals) kernel::put_u32(out, v);
  return out;
}

}  // namespace df::hal
