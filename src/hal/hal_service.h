// HAL service base class.
//
// Each HalService models one closed-source vendor HAL process: it owns a
// kernel task with TaskOrigin::kHal (so the eBPF tracer can attribute its
// syscalls), translates Binder transactions into proprietary native logic,
// and talks to kernel drivers through real (simulated) syscalls.
//
// "Native crashes" — the HAL bug class from Table II — are modelled as
// HalCrash exceptions thrown from native code; transact() converts them into
// a DEAD_OBJECT status and marks the process dead until restart(), which is
// what a real hwservicemanager-supervised HAL does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hal/binder.h"
#include "kernel/kernel.h"

namespace df::hal {

// A native crash in HAL code (SIGSEGV / SIGABRT / sanitizer-style).
struct HalCrash {
  std::string service;
  std::string signal;  // "SIGSEGV", "SIGABRT", ...
  std::string site;    // native function name
};

struct CrashRecord {
  std::string service;
  std::string signal;
  std::string site;
  uint64_t seq = 0;
};

// Relative method-invocation frequency when driven by high-level framework
// APIs (the signal the paper's probing phase measures to weight interfaces).
struct UsageWeight {
  uint32_t code = 0;
  double weight = 0;
};

class HalService : public IBinder {
 public:
  HalService(kernel::Kernel& kernel, std::string process_name);
  ~HalService() override;

  HalService(const HalService&) = delete;
  HalService& operator=(const HalService&) = delete;

  // --- IBinder --------------------------------------------------------------
  TxResult transact(uint32_t code, Parcel& data) final;
  std::string_view descriptor() const final { return process_name_; }

  // Interface metadata exposed through ServiceManager reflection.
  virtual InterfaceDesc interface() const = 0;

  // How often the Android framework calls each method under a typical app
  // workload (drives the probing phase's weight estimation).
  virtual std::vector<UsageWeight> app_usage_profile() const = 0;

  // --- process lifecycle ------------------------------------------------------
  bool dead() const { return dead_; }
  // Restart the HAL process after a crash (or a device reboot): closes the
  // old task's fds, resets all native state.
  void restart();
  const std::vector<CrashRecord>& crashes() const { return crashes_; }

  kernel::TaskId task() const { return task_; }
  kernel::Kernel& kernel() { return kernel_; }

  // --- snapshot support (DESIGN.md §13) --------------------------------------
  // Serializes/restores the service's *live* native state: every field
  // reset_native() would wipe, including cached kernel fds (the fd table
  // itself is captured separately by the kernel layer; the values stored
  // here must refer to the restored table). Crash history stays host-side
  // and is never restored.
  virtual void save_native(kernel::StateBuf&) const {}
  virtual void load_native(kernel::StateReader&) {}
  // Wipes native state in place (no task churn) so load_native() starts
  // from the same blank slate a restart would give it.
  void reset_native_for_snapshot() { reset_native(); }
  // Restores the supervisor's dead flag without a restart round-trip.
  void restore_dead(bool d) { dead_ = d; }

 protected:
  // Subclasses implement the proprietary native logic here. They may throw
  // HalCrash via crash_native().
  virtual TxResult on_transact(uint32_t code, Parcel& data) = 0;
  // Drop all native state (called by restart()).
  virtual void reset_native() = 0;

  // --- native code helpers (syscalls run on this service's HAL task) ---------
  int64_t sys_open(std::string_view path, uint64_t flags = 0);
  int64_t sys_close(int32_t fd);
  int64_t sys_ioctl(int32_t fd, uint64_t req,
                    std::span<const uint8_t> in = {},
                    std::vector<uint8_t>* out = nullptr);
  int64_t sys_read(int32_t fd, size_t n, std::vector<uint8_t>* out = nullptr);
  int64_t sys_write(int32_t fd, std::span<const uint8_t> data);
  int64_t sys_mmap(int32_t fd, size_t len, uint64_t prot = 3);
  int64_t sys_socket(uint64_t family, uint64_t type, uint64_t proto);
  int64_t sys_bind(int32_t fd, std::span<const uint8_t> addr);
  int64_t sys_connect(int32_t fd, std::span<const uint8_t> addr);
  int64_t sys_listen(int32_t fd, uint64_t backlog);
  int64_t sys_accept(int32_t fd);
  int64_t sys_setsockopt(int32_t fd, uint64_t level, uint64_t opt,
                         std::span<const uint8_t> data);
  int64_t sys_sendmsg(int32_t fd, std::span<const uint8_t> data);
  int64_t sys_recvmsg(int32_t fd, size_t n,
                      std::vector<uint8_t>* out = nullptr);

  // Raises a native crash at `site` (throws; never returns).
  [[noreturn]] void crash_native(std::string_view signal,
                                 std::string_view site);

 private:
  kernel::Kernel& kernel_;
  std::string process_name_;
  kernel::TaskId task_ = 0;
  bool dead_ = false;
  std::vector<CrashRecord> crashes_;
  uint64_t crash_seq_ = 0;
};

// Convenience: u32 args packed little-endian for ioctl payloads.
std::vector<uint8_t> pack_u32(std::initializer_list<uint32_t> vals);

}  // namespace df::hal
