#include "hal/parcel.h"

namespace df::hal {

void Parcel::write_u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Parcel::write_u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Parcel::write_string(std::string_view s) {
  write_u32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Parcel::write_blob(std::span<const uint8_t> b) {
  write_u32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool Parcel::have(size_t n) {
  // Once a read has failed the parcel is poisoned until rewind(), so a
  // malformed transaction cannot be "partially" interpreted.
  if (!ok_ || pos_ + n > buf_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint32_t Parcel::read_u32() {
  if (!have(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t Parcel::read_u64() {
  if (!have(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string Parcel::read_string() {
  const uint32_t n = read_u32();
  if (!ok_ || !have(n)) return {};
  std::string s(buf_.begin() + static_cast<long>(pos_),
                buf_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return s;
}

std::vector<uint8_t> Parcel::read_blob() {
  const uint32_t n = read_u32();
  if (!ok_ || !have(n)) return {};
  std::vector<uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                         buf_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace df::hal
