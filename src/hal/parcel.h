// Binder Parcel: the marshalling container for HAL transactions.
//
// Byte-compatible-in-spirit with Android's Parcel: little-endian scalars,
// length-prefixed strings/blobs, sequential read cursor. The prober observes
// raw parcel bytes exactly as the paper's eBPF hooks observe Binder IPC.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace df::hal {

class Parcel {
 public:
  Parcel() = default;
  explicit Parcel(std::vector<uint8_t> bytes) : buf_(std::move(bytes)) {}

  // --- writers -------------------------------------------------------------
  void write_i32(int32_t v) { write_u32(static_cast<uint32_t>(v)); }
  void write_u32(uint32_t v);
  void write_i64(int64_t v) { write_u64(static_cast<uint64_t>(v)); }
  void write_u64(uint64_t v);
  void write_bool(bool v) { write_u32(v ? 1 : 0); }
  void write_string(std::string_view s);
  void write_blob(std::span<const uint8_t> b);

  // --- readers (sequential; failures latch `ok() == false`) ----------------
  int32_t read_i32() { return static_cast<int32_t>(read_u32()); }
  uint32_t read_u32();
  int64_t read_i64() { return static_cast<int64_t>(read_u64()); }
  uint64_t read_u64();
  bool read_bool() { return read_u32() != 0; }
  std::string read_string();
  std::vector<uint8_t> read_blob();

  bool ok() const { return ok_; }
  void rewind() {
    pos_ = 0;
    ok_ = true;
  }
  size_t size() const { return buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  bool have(size_t n);

  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace df::hal
