#include "hal/services/audio_hal.h"

#include "kernel/drivers/audio_pcm.h"

namespace df::hal::services {

using kernel::drivers::AudioPcmDriver;

InterfaceDesc AudioHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kOpenOutput,
       "openOutput",
       {{ArgKind::kEnum, "rate", 0, 0, {8000, 16000, 44100, 48000, 96000}, 0,
         ""},
        {ArgKind::kU32, "channels", 1, 8, {}, 0, ""},
        {ArgKind::kEnum, "format", 0, 0, {0, 1, 2, 3}, 0, ""}},
       "stream"},
      {kWrite,
       "write",
       {{ArgKind::kHandle, "stream", 0, 0, {}, 0, "stream"},
        {ArgKind::kBlob, "frames", 0, 0, {}, 4096, ""}},
       ""},
      {kSetVolume,
       "setVolume",
       {{ArgKind::kU32, "volume", 0, 100, {}, 0, ""}},
       ""},
      {kStandby,
       "standby",
       {{ArgKind::kHandle, "stream", 0, 0, {}, 0, "stream"}},
       ""},
      {kCloseOutput,
       "closeOutput",
       {{ArgKind::kHandle, "stream", 0, 0, {}, 0, "stream"}},
       ""},
      {kGetLatency,
       "getLatency",
       {{ArgKind::kHandle, "stream", 0, 0, {}, 0, "stream"}},
       ""},
  };
  return d;
}

std::vector<UsageWeight> AudioHal::app_usage_profile() const {
  return {{kOpenOutput, 1.0}, {kWrite, 15.0},      {kSetVolume, 2.0},
          {kStandby, 1.0},    {kCloseOutput, 1.0}, {kGetLatency, 1.5}};
}

void AudioHal::reset_native() {
  streams_.clear();
  next_stream_ = 1;
  volume_ = 50;
}

TxResult AudioHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  auto stream_of = [&](uint32_t id) -> Stream* {
    auto it = streams_.find(id);
    return it == streams_.end() ? nullptr : &it->second;
  };

  switch (code) {
    case kOpenOutput: {
      const uint32_t rate = data.read_u32();
      const uint32_t ch = data.read_u32();
      const uint32_t fmt = data.read_u32();
      if (!data.ok() || ch == 0 || ch > 8 || fmt > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      Stream s;
      s.fd = static_cast<int32_t>(sys_open("/dev/snd_pcm"));
      if (s.fd < 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      if (sys_ioctl(s.fd, AudioPcmDriver::kIocHwParams,
                    pack_u32({rate, ch, fmt})) != 0) {
        sys_close(s.fd);
        res.status = kStatusBadValue;
        return res;
      }
      sys_ioctl(s.fd, AudioPcmDriver::kIocPrepare, {});
      s.rate = rate;
      s.channels = ch;
      s.fmt = fmt;
      const uint32_t id = next_stream_++;
      streams_.emplace(id, s);
      res.reply.write_u32(id);
      return res;
    }
    case kWrite: {
      const uint32_t id = data.read_u32();
      const std::vector<uint8_t> frames = data.read_blob();
      Stream* s = stream_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!s->running) {
        sys_ioctl(s->fd, AudioPcmDriver::kIocStart, {});
        s->running = true;
      }
      const int64_t n = sys_write(s->fd, frames);
      if (n < 0) {
        // Underrun: recover like a real HAL (prepare + start).
        sys_ioctl(s->fd, AudioPcmDriver::kIocPrepare, {});
        sys_ioctl(s->fd, AudioPcmDriver::kIocStart, {});
        res.status = kStatusInvalidOperation;
        return res;
      }
      res.reply.write_u64(static_cast<uint64_t>(n));
      return res;
    }
    case kSetVolume: {
      const uint32_t vol = data.read_u32();
      if (!data.ok() || vol > 100) {
        res.status = kStatusBadValue;
        return res;
      }
      volume_ = vol;
      return res;
    }
    case kStandby: {
      const uint32_t id = data.read_u32();
      Stream* s = stream_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (s->running) {
        sys_ioctl(s->fd, AudioPcmDriver::kIocDrain, {});
        s->running = false;
      }
      return res;
    }
    case kCloseOutput: {
      const uint32_t id = data.read_u32();
      Stream* s = stream_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      sys_close(s->fd);
      streams_.erase(id);
      return res;
    }
    case kGetLatency: {
      const uint32_t id = data.read_u32();
      Stream* s = stream_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      std::vector<uint8_t> out;
      sys_ioctl(s->fd, AudioPcmDriver::kIocStatus, {}, &out);
      res.reply.write_u32(s->rate ? 480000 / s->rate : 0);
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
