// Audio HAL (simulated vendor audio flinger backend).
//
// Output streams over the audio_pcm kernel driver with the full ALSA-style
// hw_params/prepare/start/write/drain protocol. No planted bug: this HAL
// demonstrates how correct HAL sequencing reaches deep PCM driver states
// that random syscalls rarely do.
#pragma once

#include <map>

#include "hal/hal_service.h"

namespace df::hal::services {

class AudioHal final : public HalService {
 public:
  static constexpr uint32_t kOpenOutput = 1;
  static constexpr uint32_t kWrite = 2;
  static constexpr uint32_t kSetVolume = 3;
  static constexpr uint32_t kStandby = 4;
  static constexpr uint32_t kCloseOutput = 5;
  static constexpr uint32_t kGetLatency = 6;

  explicit AudioHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.audio@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.u32(next_stream_);
    b.u32(volume_);
    b.u32(static_cast<uint32_t>(streams_.size()));
    for (const auto& [id, s] : streams_) {  // std::map: already id-sorted
      b.u32(id);
      b.i32(s.fd);
      b.u32(s.rate);
      b.u32(s.channels);
      b.u32(s.fmt);
      b.b(s.running);
    }
  }
  void load_native(kernel::StateReader& r) override {
    next_stream_ = r.u32();
    volume_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Stream s;
      s.fd = r.i32();
      s.rate = r.u32();
      s.channels = r.u32();
      s.fmt = r.u32();
      s.running = r.b();
      streams_[id] = s;
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Stream {
    int32_t fd = -1;
    uint32_t rate = 0, channels = 0, fmt = 0;
    bool running = false;
  };

  uint32_t next_stream_ = 1;
  uint32_t volume_ = 50;
  std::map<uint32_t, Stream> streams_;
};

}  // namespace df::hal::services
