#include "hal/services/bt_hal.h"

#include "kernel/drivers/bt_hci.h"
#include "kernel/drivers/l2cap.h"

namespace df::hal::services {

using kernel::drivers::BtHciDriver;
using kernel::drivers::L2capDriver;

InterfaceDesc BtHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kEnable, "enable", {}, ""},
      {kDisable, "disable", {}, ""},
      {kSetScanMode,
       "setScanMode",
       {{ArgKind::kEnum, "mode", 0, 0, {0, 1, 2}, 0, ""}},
       ""},
      {kSetCodecs,
       "setCodecs",
       {{ArgKind::kU32, "count", 1, 255, {}, 0, ""},
        {ArgKind::kBlob, "table", 0, 0, {}, 64, ""}},
       ""},
      {kReadCodecs, "readCodecs", {}, ""},
      // Profiles live on the well-known PSMs (SDP, RFCOMM, TCS, BNEP,
      // HID-C, HID-I, AVCTP, AVDTP) — the set a real stack advertises.
      {kListenProfile,
       "listenProfile",
       {{ArgKind::kEnum, "psm", 0, 0, {1, 3, 5, 15, 17, 19, 23, 25}, 0, ""}},
       "profile"},
      {kConnectProfile,
       "connectProfile",
       {{ArgKind::kEnum, "psm", 0, 0, {1, 3, 5, 15, 17, 19, 23, 25}, 0, ""}},
       "profile"},
      {kAcceptProfile,
       "acceptProfile",
       {{ArgKind::kHandle, "listener", 0, 0, {}, 0, "profile"}},
       "profile"},
      {kSendData,
       "sendData",
       {{ArgKind::kHandle, "profile", 0, 0, {}, 0, "profile"},
        {ArgKind::kBlob, "data", 0, 0, {}, 512, ""}},
       ""},
      {kDisconnectProfile,
       "disconnectProfile",
       {{ArgKind::kHandle, "profile", 0, 0, {}, 0, "profile"}},
       ""},
      {kCloseProfile,
       "closeProfile",
       {{ArgKind::kHandle, "profile", 0, 0, {}, 0, "profile"}},
       ""},
      {kCleanup, "cleanup", {}, ""},
  };
  return d;
}

std::vector<UsageWeight> BtHal::app_usage_profile() const {
  return {{kEnable, 1.0},         {kDisable, 0.5},
          {kSetScanMode, 2.0},    {kSetCodecs, 0.5},
          {kReadCodecs, 0.5},     {kListenProfile, 1.5},
          {kConnectProfile, 2.0}, {kAcceptProfile, 2.0},
          {kSendData, 10.0},      {kDisconnectProfile, 1.0},
          {kCloseProfile, 1.5},   {kCleanup, 1.5}};
}

void BtHal::reset_native() {
  hci_fd_ = -1;
  enabled_ = false;
  profiles_.clear();
  next_profile_ = 1;
}

int64_t BtHal::hci_cmd(uint16_t opcode, std::span<const uint8_t> params) {
  std::vector<uint8_t> pkt{0x01, static_cast<uint8_t>(opcode & 0xff),
                           static_cast<uint8_t>(opcode >> 8),
                           static_cast<uint8_t>(params.size())};
  pkt.insert(pkt.end(), params.begin(), params.end());
  const int64_t rc = sys_sendmsg(hci_fd_, pkt);
  if (rc == 0) {
    std::vector<uint8_t> ev;
    sys_recvmsg(hci_fd_, 64, &ev);  // drain the command-complete event
  }
  return rc;
}

TxResult BtHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  auto profile_of = [&](uint32_t id) -> Profile* {
    auto it = profiles_.find(id);
    return it == profiles_.end() ? nullptr : &it->second;
  };
  // L2CAP address bytes for a PSM (forced odd, as the kernel requires).
  auto psm_addr = [](uint16_t psm) {
    const uint16_t odd = static_cast<uint16_t>(psm | 1);
    return std::vector<uint8_t>{static_cast<uint8_t>(odd & 0xff),
                                static_cast<uint8_t>(odd >> 8)};
  };

  switch (code) {
    case kEnable: {
      if (enabled_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      hci_fd_ = static_cast<int32_t>(sys_socket(
          kernel::kAfBluetooth, kernel::kSockRaw, kernel::kBtProtoHci));
      if (hci_fd_ < 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const uint8_t dev0[1] = {0};
      sys_bind(hci_fd_, dev0);
      if (sys_ioctl(hci_fd_, BtHciDriver::kIocDevUp, {}) != 0) {
        sys_close(hci_fd_);
        hci_fd_ = -1;
        res.status = kStatusInvalidOperation;
        return res;
      }
      // Standard vendor bring-up: reset, baudrate (which unlocks vendor
      // commands on this firmware), event mask, local version.
      hci_cmd(BtHciDriver::kOpReset, {});
      const uint8_t baud[4] = {0x00, 0x10, 0x0e, 0x00};  // 921600
      hci_cmd(BtHciDriver::kOpVsSetBaudrate, baud);
      const uint8_t mask[8] = {0xff, 0xff, 0xfb, 0xff, 0x07, 0xf8, 0xbf, 0x3d};
      hci_cmd(BtHciDriver::kOpSetEventMask, mask);
      hci_cmd(BtHciDriver::kOpReadLocalVersion, {});
      hci_cmd(BtHciDriver::kOpReadBdAddr, {});
      enabled_ = true;
      return res;
    }
    case kDisable: {
      if (!enabled_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      sys_ioctl(hci_fd_, BtHciDriver::kIocDevDown, {});
      sys_close(hci_fd_);
      hci_fd_ = -1;
      enabled_ = false;
      return res;
    }
    case kSetScanMode: {
      const uint32_t mode = data.read_u32();
      if (!data.ok() || mode > 2) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!enabled_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const uint8_t inq[5] = {0x33, 0x8b, 0x9e,
                              static_cast<uint8_t>(mode + 1), 0x00};
      hci_cmd(BtHciDriver::kOpInquiry, inq);
      return res;
    }
    case kSetCodecs: {
      const uint32_t count = data.read_u32();
      const std::vector<uint8_t> table = data.read_blob();
      if (!data.ok() || count == 0 || count > 255) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!enabled_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      std::vector<uint8_t> params{static_cast<uint8_t>(count)};
      params.insert(params.end(), table.begin(), table.end());
      if (params.size() > 255) params.resize(255);
      hci_cmd(BtHciDriver::kOpVsSetCodecTable, params);
      return res;
    }
    case kReadCodecs: {
      if (!enabled_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      hci_cmd(BtHciDriver::kOpReadCodecs, {});
      return res;
    }
    case kListenProfile: {
      const uint32_t psm = data.read_u32();
      if (!data.ok() || psm == 0 || psm > 2047) {
        res.status = kStatusBadValue;
        return res;
      }
      // Re-registering a profile rebinds it: the stack tears the old
      // listener down first (profiles are singletons per PSM).
      const uint16_t odd_psm = static_cast<uint16_t>(psm | 1);
      for (auto it = profiles_.begin(); it != profiles_.end();) {
        if (it->second.listener && it->second.psm == odd_psm) {
          sys_close(it->second.fd);
          it = profiles_.erase(it);
        } else {
          ++it;
        }
      }
      Profile p;
      p.fd = static_cast<int32_t>(
          sys_socket(kernel::kAfBluetooth, kernel::kSockSeqpacket,
                     kernel::kBtProtoL2cap));
      if (p.fd < 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const auto addr = psm_addr(static_cast<uint16_t>(psm));
      if (sys_bind(p.fd, addr) != 0 || sys_listen(p.fd, 4) != 0) {
        sys_close(p.fd);
        res.status = kStatusBadValue;
        return res;
      }
      p.listener = true;
      p.psm = static_cast<uint16_t>(psm | 1);
      const uint32_t id = next_profile_++;
      profiles_.emplace(id, p);
      res.reply.write_u32(id);
      return res;
    }
    case kConnectProfile: {
      const uint32_t psm = data.read_u32();
      if (!data.ok() || psm == 0 || psm > 2047) {
        res.status = kStatusBadValue;
        return res;
      }
      Profile p;
      p.fd = static_cast<int32_t>(
          sys_socket(kernel::kAfBluetooth, kernel::kSockSeqpacket,
                     kernel::kBtProtoL2cap));
      if (p.fd < 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const auto addr = psm_addr(static_cast<uint16_t>(psm));
      if (sys_connect(p.fd, addr) != 0) {
        sys_close(p.fd);
        res.status = kStatusBadValue;
        return res;
      }
      // Finish channel configuration (no-op if still CONNECTING).
      const uint8_t cfg[5] = {L2capDriver::kCtlConfigReq, 0xa0, 0x02, 0, 0};
      if (sys_sendmsg(p.fd, cfg) == 0) p.configured = true;
      p.psm = static_cast<uint16_t>(psm | 1);
      const uint32_t id = next_profile_++;
      profiles_.emplace(id, p);
      res.reply.write_u32(id);
      return res;
    }
    case kAcceptProfile: {
      const uint32_t lid = data.read_u32();
      Profile* lp = profile_of(lid);
      if (!data.ok() || lp == nullptr || !lp->listener) {
        res.status = kStatusBadValue;
        return res;
      }
      const int64_t cfd = sys_accept(lp->fd);
      if (cfd < 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      Profile child;
      child.fd = static_cast<int32_t>(cfd);
      child.configured = true;
      child.psm = lp->psm;
      const uint32_t id = next_profile_++;
      profiles_.emplace(id, child);
      res.reply.write_u32(id);
      return res;
    }
    case kSendData: {
      const uint32_t id = data.read_u32();
      const std::vector<uint8_t> payload = data.read_blob();
      Profile* p = profile_of(id);
      if (!data.ok() || p == nullptr || p->listener) {
        res.status = kStatusBadValue;
        return res;
      }
      // Frame as data (first byte >= 0x10).
      std::vector<uint8_t> frame{0x10};
      frame.insert(frame.end(), payload.begin(), payload.end());
      const int64_t rc = sys_sendmsg(p->fd, frame);
      res.status = rc >= 0 ? kStatusOk : kStatusInvalidOperation;
      return res;
    }
    case kDisconnectProfile: {
      const uint32_t id = data.read_u32();
      Profile* p = profile_of(id);
      if (!data.ok() || p == nullptr || p->listener) {
        res.status = kStatusBadValue;
        return res;
      }
      const uint8_t disc[1] = {L2capDriver::kCtlDisconnReq};
      sys_sendmsg(p->fd, disc);
      return res;
    }
    case kCloseProfile: {
      const uint32_t id = data.read_u32();
      Profile* p = profile_of(id);
      if (!data.ok() || p == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      sys_close(p->fd);
      profiles_.erase(id);
      return res;
    }
    case kCleanup: {
      // Full profile teardown (IBluetooth::cleanup): the vendor stack tears
      // down *server* sockets first, then live connections — the ordering
      // that matters for the kernel's accept-queue lifetime.
      if (profiles_.empty()) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      uint32_t closed = 0;
      for (auto it = profiles_.begin(); it != profiles_.end();) {
        if (it->second.listener) {
          sys_close(it->second.fd);
          it = profiles_.erase(it);
          ++closed;
        } else {
          ++it;
        }
      }
      for (auto& [id, p] : profiles_) {
        sys_close(p.fd);
        ++closed;
      }
      profiles_.clear();
      res.reply.write_u32(closed);
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
