// Bluetooth HAL (simulated vendor BT stack: libbt + profile glue).
//
// Drives both Bluetooth kernel surfaces: the raw HCI socket (adapter
// lifecycle, vendor codec commands) and L2CAP profile sockets (listen /
// connect / accept / data / teardown). On the relevant device firmwares its
// perfectly ordinary call patterns are the userspace half of three Table II
// kernel bugs: #7 (codec-count OOB), #8 (disconnect-while-connecting WARN)
// and #11 (accept-queue use-after-free on close ordering).
#pragma once

#include <map>

#include "hal/hal_service.h"

namespace df::hal::services {

class BtHal final : public HalService {
 public:
  static constexpr uint32_t kEnable = 1;
  static constexpr uint32_t kDisable = 2;
  static constexpr uint32_t kSetScanMode = 3;
  static constexpr uint32_t kSetCodecs = 4;
  static constexpr uint32_t kReadCodecs = 5;
  static constexpr uint32_t kListenProfile = 6;
  static constexpr uint32_t kConnectProfile = 7;
  static constexpr uint32_t kAcceptProfile = 8;
  static constexpr uint32_t kSendData = 9;
  static constexpr uint32_t kDisconnectProfile = 10;
  static constexpr uint32_t kCloseProfile = 11;
  static constexpr uint32_t kCleanup = 12;

  explicit BtHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.bluetooth@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(hci_fd_);
    b.b(enabled_);
    b.u32(next_profile_);
    b.u32(static_cast<uint32_t>(profiles_.size()));
    for (const auto& [id, p] : profiles_) {  // std::map: already id-sorted
      b.u32(id);
      b.i32(p.fd);
      b.b(p.listener);
      b.b(p.configured);
      b.u16(p.psm);
    }
  }
  void load_native(kernel::StateReader& r) override {
    hci_fd_ = r.i32();
    enabled_ = r.b();
    next_profile_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Profile p;
      p.fd = r.i32();
      p.listener = r.b();
      p.configured = r.b();
      p.psm = r.u16();
      profiles_[id] = p;
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Profile {
    int32_t fd = -1;
    bool listener = false;
    bool configured = false;
    uint16_t psm = 0;
  };

  int64_t hci_cmd(uint16_t opcode, std::span<const uint8_t> params);

  int32_t hci_fd_ = -1;
  bool enabled_ = false;
  uint32_t next_profile_ = 1;
  std::map<uint32_t, Profile> profiles_;
};

}  // namespace df::hal::services
