#include "hal/services/camera_hal.h"

#include "kernel/drivers/ion_alloc.h"
#include "kernel/drivers/v4l2_cam.h"

namespace df::hal::services {

using kernel::drivers::IonDriver;
using kernel::drivers::V4l2CamDriver;

namespace {
constexpr uint32_t kFourccs[] = {
    V4l2CamDriver::kFmtYuyv, V4l2CamDriver::kFmtNv12,
    V4l2CamDriver::kFmtMjpg, V4l2CamDriver::kFmtVraw};
}

InterfaceDesc CameraHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kOpenCamera,
       "openCamera",
       {{ArgKind::kEnum, "id", 0, 0, {0, 1}, 0, ""}},
       "camera"},
      {kConfigureStreams,
       "configureStreams",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"},
        {ArgKind::kU32, "numStreams", 0, 4, {}, 0, ""},
        {ArgKind::kU32, "width", 1, 4096, {}, 0, ""},
        {ArgKind::kU32, "height", 1, 4096, {}, 0, ""}},
       ""},
      {kSetParam,
       "setParam",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"},
        {ArgKind::kEnum, "key", 0, 0, {0, 1, 2, 3}, 0, ""},
        {ArgKind::kU32, "value", 0, 16, {}, 0, ""}},
       ""},
      {kCapture,
       "capture",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"},
        {ArgKind::kU32, "count", 1, 8, {}, 0, ""}},
       ""},
      {kSetVendorFormat,
       "setVendorFormat",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"},
        {ArgKind::kEnum, "format", 0, 0, {0, 1, 2, 3}, 0, ""}},
       ""},
      {kGetCapabilities,
       "getCapabilities",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"}},
       ""},
      {kCloseCamera,
       "closeCamera",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"}},
       ""},
      {kStopStreams,
       "stopStreams",
       {{ArgKind::kHandle, "camera", 0, 0, {}, 0, "camera"}},
       ""},
  };
  return d;
}

std::vector<UsageWeight> CameraHal::app_usage_profile() const {
  return {{kOpenCamera, 1.0},      {kConfigureStreams, 1.5}, {kSetParam, 3.0},
          {kCapture, 10.0},        {kSetVendorFormat, 0.3},
          {kGetCapabilities, 1.0}, {kCloseCamera, 1.0},
          {kStopStreams, 1.2}};
}

int32_t CameraHal::video_fd() {
  if (video_fd_ < 0) video_fd_ = static_cast<int32_t>(sys_open("/dev/video0"));
  return video_fd_;
}

int32_t CameraHal::ion_fd() {
  if (ion_fd_ < 0) ion_fd_ = static_cast<int32_t>(sys_open("/dev/ion"));
  return ion_fd_;
}

void CameraHal::reset_native() {
  video_fd_ = -1;
  ion_fd_ = -1;
  cams_.clear();
  next_cam_ = 1;
}

TxResult CameraHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  auto cam_of = [&](uint32_t id) -> Camera* {
    auto it = cams_.find(id);
    return it == cams_.end() ? nullptr : &it->second;
  };

  switch (code) {
    case kOpenCamera: {
      const uint32_t sensor = data.read_u32();
      if (!data.ok() || sensor > 1) {
        res.status = kStatusBadValue;
        return res;
      }
      // Provider init: querycap + format enumeration.
      std::vector<uint8_t> out;
      sys_ioctl(video_fd(), V4l2CamDriver::kIocQuerycap, {}, &out);
      for (uint32_t i = 0; i < 4; ++i) {
        sys_ioctl(video_fd(), V4l2CamDriver::kIocEnumFmt, pack_u32({i}));
      }
      const uint32_t id = next_cam_++;
      cams_.emplace(id, Camera{sensor, 0, 0, 0, false, false, 0});
      res.reply.write_u32(id);
      return res;
    }
    case kConfigureStreams: {
      const uint32_t id = data.read_u32();
      const uint32_t n = data.read_u32();
      const uint32_t w = data.read_u32();
      const uint32_t h = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr || n > 4 || w == 0 || h == 0 ||
          w > 4096 || h > 4096) {
        res.status = kStatusBadValue;
        return res;
      }
      if (n == 0 && !(bugs_.zsl_null_config && cam->zsl)) {
        // Fixed build rejects an empty stream list; the vendor ZSL path
        // returns early before the check.
        res.status = kStatusBadValue;
        return res;
      }
      if (cam->streaming) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      sys_ioctl(video_fd(), V4l2CamDriver::kIocSetFmt,
                pack_u32({V4l2CamDriver::kFmtNv12, w, h}));
      sys_ioctl(video_fd(), V4l2CamDriver::kIocReqbufs, pack_u32({n * 2}));
      std::vector<uint8_t> out;
      if (sys_ioctl(ion_fd(), IonDriver::kIocAlloc,
                    pack_u32({w * h * 2, 0x4}), &out) == 0 &&
          out.size() >= 4) {
        cam->ion_id = kernel::le_u32(out, 0);
      }
      cam->streams = n;
      cam->w = w;
      cam->h = h;
      return res;
    }
    case kSetParam: {
      const uint32_t id = data.read_u32();
      const uint32_t key = data.read_u32();
      const uint32_t value = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr || key > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      if (key == 0) cam->zsl = value != 0;
      return res;
    }
    case kCapture: {
      const uint32_t id = data.read_u32();
      const uint32_t count = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr || count == 0 || count > 8) {
        res.status = kStatusBadValue;
        return res;
      }
      if (cam->w == 0) {
        res.status = kStatusInvalidOperation;  // never configured
        return res;
      }
      if (cam->streams == 0) {
        // request->streams[0] with an empty stream list.
        crash_native("SIGSEGV", "camera3_process_capture_request");
      }
      if (!cam->streaming) {
        sys_ioctl(video_fd(), V4l2CamDriver::kIocQbuf, pack_u32({0}));
        if (sys_ioctl(video_fd(), V4l2CamDriver::kIocStreamOn, {}) == 0) {
          cam->streaming = true;
        }
      }
      for (uint32_t i = 0; i < count; ++i) {
        sys_ioctl(video_fd(), V4l2CamDriver::kIocQbuf,
                  pack_u32({i % (cam->streams * 2)}));
        std::vector<uint8_t> out;
        sys_ioctl(video_fd(), V4l2CamDriver::kIocDqbuf, {}, &out);
      }
      res.reply.write_u32(count);
      return res;
    }
    case kSetVendorFormat: {
      const uint32_t id = data.read_u32();
      const uint32_t fmt = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr || fmt > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      // Vendor path: requests the sensor's full-resolution (2x2-binned)
      // readout for the current stream, firing S_FMT unconditionally (even
      // while streaming, ignoring EBUSY) — the kernel side of bug #12.
      const uint32_t base_w = cam->w ? cam->w : 640;
      const uint32_t base_h = cam->h ? cam->h : 480;
      sys_ioctl(video_fd(), V4l2CamDriver::kIocSetFmt,
                pack_u32({kFourccs[fmt], base_w * 2, base_h * 2}));
      return res;
    }
    case kGetCapabilities: {
      const uint32_t id = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      std::vector<uint8_t> out;
      sys_ioctl(video_fd(), V4l2CamDriver::kIocQuerycap, {}, &out);
      res.reply.write_u32(out.size() >= 4 ? kernel::le_u32(out, 0) : 0);
      return res;
    }
    case kCloseCamera: {
      const uint32_t id = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (cam->streaming) {
        sys_ioctl(video_fd(), V4l2CamDriver::kIocStreamOff, {});
      }
      if (cam->ion_id != 0) {
        sys_ioctl(ion_fd(), IonDriver::kIocFree, pack_u32({cam->ion_id}));
      }
      cams_.erase(id);
      return res;
    }
    case kStopStreams: {
      const uint32_t id = data.read_u32();
      Camera* cam = cam_of(id);
      if (!data.ok() || cam == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (cam->w == 0) {
        res.status = kStatusInvalidOperation;  // nothing configured
        return res;
      }
      if (cam->streaming) {
        sys_ioctl(video_fd(), V4l2CamDriver::kIocStreamOff, {});
        cam->streaming = false;
      }
      sys_ioctl(video_fd(), V4l2CamDriver::kIocReqbufs, pack_u32({0}));
      cam->streams = 0;
      if (!bugs_.zsl_null_config) {
        // Fixed build also clears the session so capture re-validates.
        cam->w = cam->h = 0;
      }
      // Vendor bug: the session stays "configured" with an empty stream
      // list; the next capture dereferences streams[0].
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
