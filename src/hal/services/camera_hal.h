// Camera provider HAL (simulated closed-source vendor camera stack).
//
// Open -> stream configuration -> capture, backed by the v4l2_cam and ion
// kernel drivers.
//
// Planted bug (Table II #9, device C1): the vendor stream teardown path
// (stopStreams, or configureStreams with zero streams under ZSL) clears the
// stream list but keeps the session marked configured; the next capture
// request dereferences the (absent) stream list and the HAL segfaults
// ("Native crash in Camera HAL").
//
// On device E (no crash bug) the setVendorFormat path forwards the vendor
// RAW fourcc to the kernel even while streaming, which is the userspace half
// of the Table II #12 v4l_querycap kernel WARNING.
#pragma once

#include <map>

#include "hal/hal_service.h"

namespace df::hal::services {

struct CameraHalBugs {
  bool zsl_null_config = false;  // Table II #9 (device C1)
};

class CameraHal final : public HalService {
 public:
  static constexpr uint32_t kOpenCamera = 1;
  static constexpr uint32_t kConfigureStreams = 2;
  static constexpr uint32_t kSetParam = 3;
  static constexpr uint32_t kCapture = 4;
  static constexpr uint32_t kSetVendorFormat = 5;
  static constexpr uint32_t kGetCapabilities = 6;
  static constexpr uint32_t kCloseCamera = 7;
  static constexpr uint32_t kStopStreams = 8;

  CameraHal(kernel::Kernel& kernel, CameraHalBugs bugs = {})
      : HalService(kernel, "android.hardware.camera.provider@sim"),
        bugs_(bugs) {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(video_fd_);
    b.i32(ion_fd_);
    b.u32(next_cam_);
    b.u32(static_cast<uint32_t>(cams_.size()));
    for (const auto& [id, c] : cams_) {  // std::map: already id-sorted
      b.u32(id);
      b.u32(c.sensor_id);
      b.u32(c.streams);
      b.u32(c.w);
      b.u32(c.h);
      b.b(c.zsl);
      b.b(c.streaming);
      b.u32(c.ion_id);
    }
  }
  void load_native(kernel::StateReader& r) override {
    video_fd_ = r.i32();
    ion_fd_ = r.i32();
    next_cam_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Camera c;
      c.sensor_id = r.u32();
      c.streams = r.u32();
      c.w = r.u32();
      c.h = r.u32();
      c.zsl = r.b();
      c.streaming = r.b();
      c.ion_id = r.u32();
      cams_[id] = c;
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Camera {
    uint32_t sensor_id = 0;
    uint32_t streams = 0;
    uint32_t w = 0, h = 0;
    bool zsl = false;
    bool streaming = false;
    uint32_t ion_id = 0;
  };

  int32_t video_fd();
  int32_t ion_fd();

  CameraHalBugs bugs_;
  int32_t video_fd_ = -1;
  int32_t ion_fd_ = -1;
  uint32_t next_cam_ = 1;
  std::map<uint32_t, Camera> cams_;
};

}  // namespace df::hal::services
