#include "hal/services/graphics_hal.h"

#include "kernel/drivers/drm_gpu.h"
#include "kernel/drivers/ion_alloc.h"

namespace df::hal::services {

using kernel::drivers::DrmGpuDriver;
using kernel::drivers::IonDriver;

InterfaceDesc GraphicsHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kCreateLayer,
       "createLayer",
       {{ArgKind::kU32, "width", 1, 4096, {}, 0, ""},
        {ArgKind::kU32, "height", 1, 4096, {}, 0, ""},
        {ArgKind::kEnum, "format", 0, 0, {0, 1, 2, 3}, 0, ""}},
       "layer"},
      {kSetLayerBuffer,
       "setLayerBuffer",
       {{ArgKind::kHandle, "layer", 0, 0, {}, 0, "layer"},
        {ArgKind::kU32, "stride", 1, 0xffffffff, {}, 0, ""},
        {ArgKind::kFlags, "usage", 0, 0, {1, 2, 4, 8}, 0, ""}},
       ""},
      {kComposite, "composite", {}, ""},
      {kDestroyLayer,
       "destroyLayer",
       {{ArgKind::kHandle, "layer", 0, 0, {}, 0, "layer"}},
       ""},
      {kSetColorMode,
       "setColorMode",
       {{ArgKind::kEnum, "mode", 0, 0, {0, 1, 2, 3, 4, 5}, 0, ""}},
       ""},
      {kGetDisplayInfo, "getDisplayInfo", {}, ""},
      {kSetVsync, "setVsync", {{ArgKind::kBool, "on", 0, 1, {}, 0, ""}}, ""},
  };
  return d;
}

std::vector<UsageWeight> GraphicsHal::app_usage_profile() const {
  // Composition dominates; layer churn is common; mode changes are rare.
  return {{kCreateLayer, 3.0},    {kSetLayerBuffer, 3.0}, {kComposite, 10.0},
          {kDestroyLayer, 2.0},   {kSetColorMode, 0.5},   {kGetDisplayInfo, 1.0},
          {kSetVsync, 2.0}};
}

int32_t GraphicsHal::drm_fd() {
  if (drm_fd_ < 0) {
    drm_fd_ = static_cast<int32_t>(sys_open("/dev/dri_card0"));
  }
  return drm_fd_;
}

int32_t GraphicsHal::ion_fd() {
  if (ion_fd_ < 0) ion_fd_ = static_cast<int32_t>(sys_open("/dev/ion"));
  return ion_fd_;
}

void GraphicsHal::reset_native() {
  drm_fd_ = -1;
  ion_fd_ = -1;
  layers_.clear();
  next_layer_ = 1;
  color_mode_ = 0;
  vsync_on_ = false;
}

TxResult GraphicsHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  switch (code) {
    case kCreateLayer: {
      const uint32_t w = data.read_u32();
      const uint32_t h = data.read_u32();
      const uint32_t format = data.read_u32();
      if (!data.ok() || w == 0 || h == 0 || w > 4096 || h > 4096 ||
          format > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      const uint32_t id = next_layer_++;
      layers_.emplace(id, Layer{w, h, format, 0, false, 0, 0});
      res.reply.write_u32(id);
      return res;
    }
    case kSetLayerBuffer: {
      const uint32_t id = data.read_u32();
      const uint32_t stride = data.read_u32();
      const uint32_t usage = data.read_u32();
      (void)usage;
      auto it = layers_.find(id);
      if (!data.ok() || it == layers_.end() || stride == 0) {
        res.status = kStatusBadValue;
        return res;
      }
      Layer& layer = it->second;
      // Vendor size check happens in 32 bits: stride * h wraps for large
      // strides and "passes".
      const uint32_t size32 = stride * layer.h;
      if (!bugs_.composite_overflow) {
        // Fixed build validates in 64 bits.
        const uint64_t size64 = static_cast<uint64_t>(stride) * layer.h;
        if (size64 > (256u << 20)) {
          res.status = kStatusBadValue;
          return res;
        }
      } else if (size32 > (256u << 20)) {
        res.status = kStatusBadValue;
        return res;
      }
      // Back the layer with an ION allocation and a DRM BO.
      std::vector<uint8_t> out;
      const uint32_t alloc_len = size32 == 0 ? 4096 : size32;
      if (sys_ioctl(ion_fd(), IonDriver::kIocAlloc,
                    pack_u32({alloc_len > (32u << 20) ? (32u << 20) : alloc_len,
                              0x1}),
                    &out) == 0 &&
          out.size() >= 4) {
        layer.ion_id = kernel::le_u32(out, 0);
      }
      out.clear();
      const uint32_t pages = (alloc_len >> 12) ? (alloc_len >> 12) : 1;
      if (sys_ioctl(drm_fd(), DrmGpuDriver::kIocCreateBo,
                    pack_u32({pages > 16384 ? 16384 : pages}), &out) == 0 &&
          out.size() >= 4) {
        layer.bo_handle = kernel::le_u32(out, 0);
        sys_ioctl(drm_fd(), DrmGpuDriver::kIocMapBo,
                  pack_u32({layer.bo_handle}));
      }
      layer.stride = stride;
      layer.buffer_set = true;
      return res;
    }
    case kComposite: {
      std::vector<uint32_t> handles;
      for (auto& [id, layer] : layers_) {
        if (!layer.buffer_set) continue;
        // The blit copies h rows of `stride` bytes into the 32-bit-sized
        // buffer; an overflowed size means the copy runs off the end.
        if (bugs_.composite_overflow &&
            static_cast<uint64_t>(layer.stride) * layer.h > 0xffffffffull) {
          crash_native("SIGSEGV", "gralloc_blit");
        }
        handles.push_back(layer.bo_handle);
      }
      if (handles.empty()) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      std::vector<uint8_t> submit = pack_u32(
          {0 /*pipe*/, static_cast<uint32_t>(handles.size())});
      for (uint32_t h : handles) kernel::put_u32(submit, h);
      std::vector<uint8_t> out;
      if (sys_ioctl(drm_fd(), DrmGpuDriver::kIocSubmit, submit, &out) == 0 &&
          out.size() >= 4) {
        sys_ioctl(drm_fd(), DrmGpuDriver::kIocWait,
                  pack_u32({kernel::le_u32(out, 0)}));
      }
      res.reply.write_u32(static_cast<uint32_t>(handles.size()));
      return res;
    }
    case kDestroyLayer: {
      const uint32_t id = data.read_u32();
      auto it = layers_.find(id);
      if (!data.ok() || it == layers_.end()) {
        res.status = kStatusBadValue;
        return res;
      }
      if (it->second.bo_handle != 0) {
        sys_ioctl(drm_fd(), DrmGpuDriver::kIocDestroyBo,
                  pack_u32({it->second.bo_handle}));
      }
      if (it->second.ion_id != 0) {
        sys_ioctl(ion_fd(), IonDriver::kIocFree, pack_u32({it->second.ion_id}));
      }
      layers_.erase(it);
      return res;
    }
    case kSetColorMode: {
      const uint32_t mode = data.read_u32();
      if (!data.ok() || mode > 5) {
        res.status = kStatusBadValue;
        return res;
      }
      color_mode_ = mode;
      return res;
    }
    case kGetDisplayInfo: {
      // Queries a couple of DRM caps like a real composer does at init.
      std::vector<uint8_t> out;
      sys_ioctl(drm_fd(), DrmGpuDriver::kIocGetCap, pack_u32({0}), &out);
      res.reply.write_u32(1920);
      res.reply.write_u32(1080);
      res.reply.write_u32(color_mode_);
      return res;
    }
    case kSetVsync: {
      vsync_on_ = data.read_u32() != 0;
      if (!data.ok()) {
        res.status = kStatusBadValue;
        return res;
      }
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
