// Graphics composer HAL (simulated closed-source vendor composer).
//
// Layers -> buffers -> composition, backed by the drm_gpu and ion kernel
// drivers. Planted bug (Table II #2, device A1): a layer whose
// stride * height overflows 32 bits passes the buffer-size check; the
// composition blit then writes past the allocation and the HAL process
// segfaults ("Native crash in Graphics HAL").
#pragma once

#include <map>

#include "hal/hal_service.h"

namespace df::hal::services {

struct GraphicsHalBugs {
  bool composite_overflow = false;  // Table II #2 (device A1)
};

class GraphicsHal final : public HalService {
 public:
  // Method codes.
  static constexpr uint32_t kCreateLayer = 1;
  static constexpr uint32_t kSetLayerBuffer = 2;
  static constexpr uint32_t kComposite = 3;
  static constexpr uint32_t kDestroyLayer = 4;
  static constexpr uint32_t kSetColorMode = 5;
  static constexpr uint32_t kGetDisplayInfo = 6;
  static constexpr uint32_t kSetVsync = 7;

  GraphicsHal(kernel::Kernel& kernel, GraphicsHalBugs bugs = {})
      : HalService(kernel, "android.hardware.graphics.composer@sim"),
        bugs_(bugs) {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(drm_fd_);
    b.i32(ion_fd_);
    b.u32(next_layer_);
    b.u32(color_mode_);
    b.b(vsync_on_);
    b.u32(static_cast<uint32_t>(layers_.size()));
    for (const auto& [id, l] : layers_) {  // std::map: already id-sorted
      b.u32(id);
      b.u32(l.w);
      b.u32(l.h);
      b.u32(l.format);
      b.u32(l.stride);
      b.b(l.buffer_set);
      b.u32(l.bo_handle);
      b.u32(l.ion_id);
    }
  }
  void load_native(kernel::StateReader& r) override {
    drm_fd_ = r.i32();
    ion_fd_ = r.i32();
    next_layer_ = r.u32();
    color_mode_ = r.u32();
    vsync_on_ = r.b();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Layer l;
      l.w = r.u32();
      l.h = r.u32();
      l.format = r.u32();
      l.stride = r.u32();
      l.buffer_set = r.b();
      l.bo_handle = r.u32();
      l.ion_id = r.u32();
      layers_[id] = l;
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Layer {
    uint32_t w = 0, h = 0, format = 0;
    uint32_t stride = 0;
    bool buffer_set = false;
    uint32_t bo_handle = 0;
    uint32_t ion_id = 0;
  };

  int32_t drm_fd() ;
  int32_t ion_fd();

  GraphicsHalBugs bugs_;
  int32_t drm_fd_ = -1;
  int32_t ion_fd_ = -1;
  uint32_t next_layer_ = 1;
  uint32_t color_mode_ = 0;
  bool vsync_on_ = false;
  std::map<uint32_t, Layer> layers_;
};

}  // namespace df::hal::services
