#include "hal/services/light_hal.h"

namespace df::hal::services {

InterfaceDesc LightHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kSetLight,
       "setLight",
       {{ArgKind::kEnum, "id", 0, 0, {0, 1, 2, 3}, 0, ""},
        {ArgKind::kU32, "argb", 0, 0xffffffff, {}, 0, ""},
        {ArgKind::kEnum, "mode", 0, 0, {0, 1, 2}, 0, ""}},
       ""},
      {kGetSupported, "getSupported", {}, ""},
      {kBlink,
       "blink",
       {{ArgKind::kEnum, "id", 0, 0, {0, 1, 2, 3}, 0, ""},
        {ArgKind::kU32, "onMs", 1, 10000, {}, 0, ""},
        {ArgKind::kU32, "offMs", 1, 10000, {}, 0, ""}},
       ""},
  };
  return d;
}

std::vector<UsageWeight> LightHal::app_usage_profile() const {
  return {{kSetLight, 5.0}, {kGetSupported, 1.0}, {kBlink, 1.0}};
}

void LightHal::reset_native() { lights_.fill(Light{}); }

TxResult LightHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  switch (code) {
    case kSetLight: {
      const uint32_t id = data.read_u32();
      const uint32_t argb = data.read_u32();
      const uint32_t mode = data.read_u32();
      if (!data.ok() || id > 3 || mode > 2) {
        res.status = kStatusBadValue;
        return res;
      }
      lights_[id] = {argb, mode};
      return res;
    }
    case kGetSupported:
      res.reply.write_u32(4);
      return res;
    case kBlink: {
      const uint32_t id = data.read_u32();
      const uint32_t on_ms = data.read_u32();
      const uint32_t off_ms = data.read_u32();
      if (!data.ok() || id > 3 || on_ms == 0 || off_ms == 0) {
        res.status = kStatusBadValue;
        return res;
      }
      lights_[id].mode = 2;
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
