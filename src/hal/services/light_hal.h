// Lights HAL (simulated). Pure-userspace vendor blob managing LED state —
// included to model HALs whose behaviour is invisible to kernel coverage,
// which is precisely the case cross-boundary feedback (directional HAL
// syscall coverage) cannot help with and kernel fuzzers cannot see at all.
#pragma once

#include <array>

#include "hal/hal_service.h"

namespace df::hal::services {

class LightHal final : public HalService {
 public:
  static constexpr uint32_t kSetLight = 1;
  static constexpr uint32_t kGetSupported = 2;
  static constexpr uint32_t kBlink = 3;

  explicit LightHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.light@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    for (const auto& l : lights_) {
      b.u32(l.argb);
      b.u32(l.mode);
    }
  }
  void load_native(kernel::StateReader& r) override {
    for (auto& l : lights_) {
      l.argb = r.u32();
      l.mode = r.u32();
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Light {
    uint32_t argb = 0;
    uint32_t mode = 0;
  };
  std::array<Light, 4> lights_{};  // backlight, battery, notif, attention
};

}  // namespace df::hal::services
