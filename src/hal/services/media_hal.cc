#include "hal/services/media_hal.h"

#include "kernel/drivers/gpu_mali.h"
#include "kernel/drivers/ion_alloc.h"

namespace df::hal::services {

using kernel::drivers::IonDriver;
using kernel::drivers::MaliDriver;

InterfaceDesc MediaHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kCreateSession,
       "createSession",
       {{ArgKind::kEnum, "codec", 0, 0, {0, 1, 2, 3}, 0, ""}},
       "session"},
      {kConfigure,
       "configure",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"},
        {ArgKind::kU32, "width", 1, 65535, {}, 0, ""},
        {ArgKind::kU32, "height", 1, 65535, {}, 0, ""},
        {ArgKind::kU32, "bitrate", 1, 100000, {}, 0, ""}},
       ""},
      {kQueueInput,
       "queueInput",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"},
        {ArgKind::kU32, "size", 1, 0xffffffff, {}, 0, ""}},
       ""},
      {kStart,
       "start",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"}},
       ""},
      {kTranscode,
       "transcode",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"},
        {ArgKind::kU32, "passes", 1, 8, {}, 0, ""},
        {ArgKind::kEnum, "pipeline", 0, 0, {0, 1, 2}, 0, ""}},
       ""},
      {kFlush,
       "flush",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"}},
       ""},
      {kStop,
       "stop",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"}},
       ""},
      {kReleaseSession,
       "releaseSession",
       {{ArgKind::kHandle, "session", 0, 0, {}, 0, "session"}},
       ""},
  };
  return d;
}

std::vector<UsageWeight> MediaHal::app_usage_profile() const {
  return {{kCreateSession, 1.0}, {kConfigure, 1.5}, {kQueueInput, 12.0},
          {kStart, 1.0},         {kTranscode, 2.0}, {kFlush, 1.0},
          {kStop, 1.0},          {kReleaseSession, 1.0}};
}

int32_t MediaHal::mali_fd() {
  if (mali_fd_ < 0) mali_fd_ = static_cast<int32_t>(sys_open("/dev/mali0"));
  return mali_fd_;
}

int32_t MediaHal::ion_fd() {
  if (ion_fd_ < 0) ion_fd_ = static_cast<int32_t>(sys_open("/dev/ion"));
  return ion_fd_;
}

void MediaHal::reset_native() {
  mali_fd_ = -1;
  ion_fd_ = -1;
  sessions_.clear();
  next_session_ = 1;
}

TxResult MediaHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  auto session_of = [&](uint32_t id) -> Session* {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : &it->second;
  };

  switch (code) {
    case kCreateSession: {
      const uint32_t codec = data.read_u32();
      if (!data.ok() || codec > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      Session s;
      s.codec = codec;
      // Hardware session: create a GPU context with a memory pool.
      std::vector<uint8_t> out;
      if (sys_ioctl(mali_fd(), MaliDriver::kIocCtxCreate, {}, &out) == 0 &&
          out.size() >= 4) {
        s.mali_ctx = kernel::le_u32(out, 0);
        sys_ioctl(mali_fd(), MaliDriver::kIocMemPool,
                  pack_u32({s.mali_ctx, 256}));
      }
      const uint32_t id = next_session_++;
      sessions_.emplace(id, s);
      res.reply.write_u32(id);
      return res;
    }
    case kConfigure: {
      const uint32_t id = data.read_u32();
      const uint32_t w = data.read_u32();
      const uint32_t h = data.read_u32();
      const uint32_t bitrate = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr || w == 0 || h == 0 || bitrate == 0) {
        res.status = kStatusBadValue;
        return res;
      }
      uint32_t frame_size;
      if (bugs_.hevc_size_overflow && s->codec == kCodecHevc) {
        // Vendor HEVC path skips the dimension clamp and computes the
        // 256-byte-aligned NV12 frame size in 32 bits: (w*256)*h*3/2 wraps
        // for large-but-valid dimensions.
        frame_size = (w * 256u) * h * 3u / 2u;
      } else {
        if (w > 8192 || h > 8192) {
          res.status = kStatusBadValue;
          return res;
        }
        const uint64_t fs = static_cast<uint64_t>(w) * h * 3 / 2;
        if (fs > (64u << 20)) {
          res.status = kStatusBadValue;
          return res;
        }
        frame_size = static_cast<uint32_t>(fs);
      }
      s->w = w;
      s->h = h;
      s->bitrate = bitrate;
      s->frame_size = frame_size;
      s->configured = true;
      // Input pool allocation sized from frame_size.
      std::vector<uint8_t> out;
      const uint32_t alloc = frame_size == 0 ? 4096 : frame_size;
      if (sys_ioctl(ion_fd(), IonDriver::kIocAlloc,
                    pack_u32({alloc > (32u << 20) ? (32u << 20) : alloc, 0x2}),
                    &out) == 0 &&
          out.size() >= 4) {
        s->ion_id = kernel::le_u32(out, 0);
      }
      return res;
    }
    case kQueueInput: {
      const uint32_t id = data.read_u32();
      const uint32_t size = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr || size == 0) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!s->configured) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      // memcpy(input_pool, bitstream, size) — pool was sized frame_size.
      if (size > s->frame_size) {
        if (bugs_.hevc_size_overflow && s->codec == kCodecHevc &&
            static_cast<uint64_t>(s->w) * 256u * s->h * 3 / 2 >
                0xffffffffull) {
          // Wrapped pool: the copy smashes the heap.
          crash_native("heap-buffer-overflow", "VdecCopyInputBuffer");
        }
        res.status = kStatusBadValue;
        return res;
      }
      return res;
    }
    case kStart: {
      const uint32_t id = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!s->configured || s->started) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      // Warm-up: a linear three-job chain (decode -> scale -> encode).
      std::vector<uint8_t> submit =
          pack_u32({s->mali_ctx, 3, MaliDriver::kJobCompute, 0,
                    MaliDriver::kJobVertex, 1, MaliDriver::kJobFragment, 2});
      sys_ioctl(mali_fd(), MaliDriver::kIocJobSubmit, submit);
      s->started = true;
      return res;
    }
    case kTranscode: {
      const uint32_t id = data.read_u32();
      const uint32_t passes = data.read_u32();
      const uint32_t pipeline = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr || passes == 0 || passes > 8 ||
          pipeline > 2) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!s->started) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      // Build the per-pass job chain. pipeline: 0 = linear, 1 = fan-out
      // from pass 1, 2 = "feedback" (vendor low-latency mode) where the
      // first pass waits on the last — a dependency cycle.
      std::vector<uint8_t> submit = pack_u32({s->mali_ctx, passes});
      for (uint32_t i = 0; i < passes; ++i) {
        const uint32_t type =
            i + 1 == passes ? MaliDriver::kJobFragment : MaliDriver::kJobVertex;
        uint32_t dep = 0;
        if (pipeline == 0) {
          dep = i;  // depends on previous (0 = none for the first)
        } else if (pipeline == 1) {
          dep = i == 0 ? 0 : 1;
        } else {
          dep = i == 0 ? passes : i;  // feedback: first waits on last
        }
        kernel::put_u32(submit, type);
        kernel::put_u32(submit, dep);
      }
      sys_ioctl(mali_fd(), MaliDriver::kIocJobSubmit, submit);
      std::vector<uint8_t> out;
      sys_ioctl(mali_fd(), MaliDriver::kIocJobWait, pack_u32({s->mali_ctx}),
                &out);
      res.reply.write_u32(passes);
      return res;
    }
    case kFlush: {
      const uint32_t id = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      sys_ioctl(mali_fd(), MaliDriver::kIocFlush, pack_u32({s->mali_ctx}));
      return res;
    }
    case kStop: {
      const uint32_t id = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr || !s->started) {
        res.status = kStatusBadValue;
        return res;
      }
      s->started = false;
      return res;
    }
    case kReleaseSession: {
      const uint32_t id = data.read_u32();
      Session* s = session_of(id);
      if (!data.ok() || s == nullptr) {
        res.status = kStatusBadValue;
        return res;
      }
      if (s->mali_ctx != 0) {
        sys_ioctl(mali_fd(), MaliDriver::kIocCtxDestroy,
                  pack_u32({s->mali_ctx}));
      }
      if (s->ion_id != 0) {
        sys_ioctl(ion_fd(), IonDriver::kIocFree, pack_u32({s->ion_id}));
      }
      sessions_.erase(id);
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
