// Media codec HAL (simulated closed-source vendor codec stack).
//
// Sessions -> configure -> input buffers -> GPU-accelerated transcode via
// the gpu_mali and ion kernel drivers.
//
// Planted bug (Table II #6, device A2): for HEVC the frame-size computation
// (w * h * 3 / 2) runs in 32 bits; large-but-valid dimensions wrap it to a
// tiny value, and the next queueInput() copy overflows the heap buffer
// ("Native crash in Media HAL", heap-buffer-overflow).
//
// The transcode() "feedback" pipeline mode builds a cyclic GPU job chain —
// on firmware with the Table II #5 mali bug this hangs the kernel job loop.
#pragma once

#include <map>

#include "hal/hal_service.h"

namespace df::hal::services {

struct MediaHalBugs {
  bool hevc_size_overflow = false;  // Table II #6 (device A2)
};

class MediaHal final : public HalService {
 public:
  static constexpr uint32_t kCreateSession = 1;
  static constexpr uint32_t kConfigure = 2;
  static constexpr uint32_t kQueueInput = 3;
  static constexpr uint32_t kStart = 4;
  static constexpr uint32_t kTranscode = 5;
  static constexpr uint32_t kFlush = 6;
  static constexpr uint32_t kStop = 7;
  static constexpr uint32_t kReleaseSession = 8;

  // Codec ids.
  static constexpr uint32_t kCodecH264 = 0;
  static constexpr uint32_t kCodecHevc = 1;
  static constexpr uint32_t kCodecVp9 = 2;
  static constexpr uint32_t kCodecAv1 = 3;

  MediaHal(kernel::Kernel& kernel, MediaHalBugs bugs = {})
      : HalService(kernel, "android.hardware.media.codec@sim"), bugs_(bugs) {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(mali_fd_);
    b.i32(ion_fd_);
    b.u32(next_session_);
    b.u32(static_cast<uint32_t>(sessions_.size()));
    for (const auto& [id, s] : sessions_) {  // std::map: already id-sorted
      b.u32(id);
      b.u32(s.codec);
      b.u32(s.w);
      b.u32(s.h);
      b.u32(s.bitrate);
      b.u32(s.frame_size);
      b.b(s.configured);
      b.b(s.started);
      b.u32(s.mali_ctx);
      b.u32(s.ion_id);
    }
  }
  void load_native(kernel::StateReader& r) override {
    mali_fd_ = r.i32();
    ion_fd_ = r.i32();
    next_session_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Session s;
      s.codec = r.u32();
      s.w = r.u32();
      s.h = r.u32();
      s.bitrate = r.u32();
      s.frame_size = r.u32();
      s.configured = r.b();
      s.started = r.b();
      s.mali_ctx = r.u32();
      s.ion_id = r.u32();
      sessions_[id] = s;
    }
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  struct Session {
    uint32_t codec = 0;
    uint32_t w = 0, h = 0, bitrate = 0;
    uint32_t frame_size = 0;  // bytes per input frame (possibly wrapped)
    bool configured = false;
    bool started = false;
    uint32_t mali_ctx = 0;
    uint32_t ion_id = 0;
  };

  int32_t mali_fd();
  int32_t ion_fd();

  MediaHalBugs bugs_;
  int32_t mali_fd_ = -1;
  int32_t ion_fd_ = -1;
  uint32_t next_session_ = 1;
  std::map<uint32_t, Session> sessions_;
};

}  // namespace df::hal::services
