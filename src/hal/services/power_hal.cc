#include "hal/services/power_hal.h"

#include "kernel/drivers/rt1711_i2c.h"
#include "kernel/drivers/tcpc_core.h"

namespace df::hal::services {

using kernel::drivers::Rt1711Driver;
using kernel::drivers::TcpcDriver;

InterfaceDesc PowerHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kSetBoost,
       "setBoost",
       {{ArgKind::kU32, "level", 0, 3, {}, 0, ""}},
       ""},
      {kSetMode,
       "setMode",
       {{ArgKind::kEnum, "mode", 0, 0, {0, 1, 2, 3, 4}, 0, ""}},
       ""},
      {kUsbInit, "usbInit", {}, ""},
      {kUsbConnect,
       "usbConnect",
       {{ArgKind::kEnum, "partner", 0, 0, {0, 1, 2, 3}, 0, ""}},
       ""},
      {kFastCharge,
       "fastCharge",
       {{ArgKind::kEnum, "mv", 0, 0, {5000, 9000, 15000, 20000}, 0, ""},
        {ArgKind::kU32, "ma", 500, 5000, {}, 0, ""}},
       ""},
      {kUsbRoleSwap,
       "usbRoleSwap",
       {{ArgKind::kEnum, "role", 0, 0, {0, 1}, 0, ""}},
       ""},
      {kUsbDisconnect, "usbDisconnect", {}, ""},
      {kTypecReset, "typecReset", {}, ""},
  };
  return d;
}

std::vector<UsageWeight> PowerHal::app_usage_profile() const {
  return {{kSetBoost, 8.0},   {kSetMode, 4.0},       {kUsbInit, 1.0},
          {kUsbConnect, 1.0}, {kFastCharge, 1.0},    {kUsbRoleSwap, 0.3},
          {kUsbDisconnect, 1.0}, {kTypecReset, 0.2}};
}

int32_t PowerHal::tcpc_fd() {
  if (tcpc_fd_ < 0) tcpc_fd_ = static_cast<int32_t>(sys_open("/dev/tcpc"));
  return tcpc_fd_;
}

int32_t PowerHal::rt_fd() {
  if (rt_fd_ < 0) rt_fd_ = static_cast<int32_t>(sys_open("/dev/rt1711"));
  return rt_fd_;
}

void PowerHal::reset_native() {
  tcpc_fd_ = -1;
  rt_fd_ = -1;
  usb_ready_ = false;
  boost_ = 0;
  mode_ = 0;
}

TxResult PowerHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  switch (code) {
    case kSetBoost: {
      const uint32_t level = data.read_u32();
      if (!data.ok() || level > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      boost_ = level;
      return res;
    }
    case kSetMode: {
      const uint32_t mode = data.read_u32();
      if (!data.ok() || mode > 4) {
        res.status = kStatusBadValue;
        return res;
      }
      mode_ = mode;
      return res;
    }
    case kUsbInit: {
      if (usb_ready_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      if (sys_ioctl(tcpc_fd(), TcpcDriver::kIocInit, {}) != 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      sys_ioctl(tcpc_fd(), TcpcDriver::kIocSetMode, pack_u32({2}));  // DRP
      sys_ioctl(tcpc_fd(), TcpcDriver::kIocSetAlert, pack_u32({0x3f}));
      // The companion rt1711 port controller is configured alongside.
      sys_ioctl(rt_fd(), Rt1711Driver::kIocSetCc, pack_u32({1, 2}));
      usb_ready_ = true;
      return res;
    }
    case kUsbConnect: {
      const uint32_t partner = data.read_u32();
      if (!data.ok() || partner > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!usb_ready_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      sys_ioctl(tcpc_fd(), TcpcDriver::kIocConnect, pack_u32({partner}));
      sys_ioctl(rt_fd(), Rt1711Driver::kIocAttach, pack_u32({3}));
      return res;
    }
    case kFastCharge: {
      const uint32_t mv = data.read_u32();
      const uint32_t ma = data.read_u32();
      if (!data.ok()) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!usb_ready_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const int64_t rc = sys_ioctl(tcpc_fd(), TcpcDriver::kIocPdNegotiate,
                                   pack_u32({mv, ma}));
      if (rc == 0) {
        sys_ioctl(rt_fd(), Rt1711Driver::kIocVbus, pack_u32({mv}));
      }
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kUsbRoleSwap: {
      const uint32_t role = data.read_u32();
      if (!data.ok() || role > 1) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!usb_ready_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      const int64_t rc =
          sys_ioctl(tcpc_fd(), TcpcDriver::kIocRoleSwap, pack_u32({role}));
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kUsbDisconnect: {
      if (!usb_ready_) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      sys_ioctl(tcpc_fd(), TcpcDriver::kIocDisconnect, {});
      sys_ioctl(rt_fd(), Rt1711Driver::kIocDetach, {});
      return res;
    }
    case kTypecReset: {
      sys_ioctl(rt_fd(), Rt1711Driver::kIocReset, {});
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
