// Power/USB HAL (simulated vendor charger + Type-C policy daemon).
//
// Performs the full TCPC bring-up (init -> DRP mode -> connect -> PD
// negotiation) the way a real charging policy engine does; its
// usbRoleSwap() is the userspace half of Table II #4 (tcpc WARNING on A1).
// It also pokes the rt1711 port controller, giving the fuzzer a HAL route
// to Table II #1.
#pragma once

#include "hal/hal_service.h"

namespace df::hal::services {

class PowerHal final : public HalService {
 public:
  static constexpr uint32_t kSetBoost = 1;
  static constexpr uint32_t kSetMode = 2;
  static constexpr uint32_t kUsbInit = 3;
  static constexpr uint32_t kUsbConnect = 4;
  static constexpr uint32_t kFastCharge = 5;
  static constexpr uint32_t kUsbRoleSwap = 6;
  static constexpr uint32_t kUsbDisconnect = 7;
  static constexpr uint32_t kTypecReset = 8;

  explicit PowerHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.power@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(tcpc_fd_);
    b.i32(rt_fd_);
    b.b(usb_ready_);
    b.u32(boost_);
    b.u32(mode_);
  }
  void load_native(kernel::StateReader& r) override {
    tcpc_fd_ = r.i32();
    rt_fd_ = r.i32();
    usb_ready_ = r.b();
    boost_ = r.u32();
    mode_ = r.u32();
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  int32_t tcpc_fd();
  int32_t rt_fd();

  int32_t tcpc_fd_ = -1;
  int32_t rt_fd_ = -1;
  bool usb_ready_ = false;
  uint32_t boost_ = 0;
  uint32_t mode_ = 0;
};

}  // namespace df::hal::services
