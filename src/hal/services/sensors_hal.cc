#include "hal/services/sensors_hal.h"

#include "kernel/drivers/sensor_hub.h"

namespace df::hal::services {

using kernel::drivers::SensorHubDriver;

InterfaceDesc SensorsHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kGetSensorList, "getSensorList", {}, ""},
      {kActivate,
       "activate",
       {{ArgKind::kU32, "sensor", 0, 15, {}, 0, ""},
        {ArgKind::kBool, "enable", 0, 1, {}, 0, ""}},
       ""},
      {kSetDelay,
       "setDelay",
       {{ArgKind::kU32, "sensor", 0, 15, {}, 0, ""},
        {ArgKind::kU32, "rateHz", 1, 1000, {}, 0, ""}},
       ""},
      {kBatch,
       "batch",
       {{ArgKind::kU32, "sensor", 0, 15, {}, 0, ""},
        {ArgKind::kU32, "fifoDepth", 1, 256, {}, 0, ""},
        {ArgKind::kU32, "fifoLevels", 0, 15, {}, 0, ""}},
       ""},
      {kPoll, "poll", {{ArgKind::kU32, "max", 1, 64, {}, 0, ""}}, ""},
      {kSelfTest,
       "selfTest",
       {{ArgKind::kU32, "sensor", 0, 15, {}, 0, ""}},
       ""},
  };
  return d;
}

std::vector<UsageWeight> SensorsHal::app_usage_profile() const {
  return {{kGetSensorList, 1.0}, {kActivate, 3.0}, {kSetDelay, 2.0},
          {kBatch, 1.5},         {kPoll, 12.0},    {kSelfTest, 0.2}};
}

int32_t SensorsHal::hub_fd() {
  if (hub_fd_ < 0) hub_fd_ = static_cast<int32_t>(sys_open("/dev/sensor_hub"));
  return hub_fd_;
}

void SensorsHal::reset_native() { hub_fd_ = -1; }

TxResult SensorsHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  switch (code) {
    case kGetSensorList: {
      std::vector<uint8_t> out;
      if (sys_ioctl(hub_fd(), SensorHubDriver::kIocList, {}, &out) != 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      res.reply.write_u32(out.size() >= 4 ? kernel::le_u32(out, 0) : 0);
      return res;
    }
    case kActivate: {
      const uint32_t sensor = data.read_u32();
      const bool enable = data.read_u32() != 0;
      if (!data.ok() || sensor > 15) {
        res.status = kStatusBadValue;
        return res;
      }
      const int64_t rc = sys_ioctl(
          hub_fd(),
          enable ? SensorHubDriver::kIocEnable : SensorHubDriver::kIocDisable,
          pack_u32({sensor}));
      if (rc == 0 && enable) {
        // Framework always programs a default rate right after enabling.
        sys_ioctl(hub_fd(), SensorHubDriver::kIocSetRate,
                  pack_u32({sensor, 50}));
      }
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kSetDelay: {
      const uint32_t sensor = data.read_u32();
      const uint32_t hz = data.read_u32();
      if (!data.ok() || sensor > 15) {
        res.status = kStatusBadValue;
        return res;
      }
      const int64_t rc = sys_ioctl(hub_fd(), SensorHubDriver::kIocSetRate,
                                   pack_u32({sensor, hz}));
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kBatch: {
      const uint32_t sensor = data.read_u32();
      const uint32_t depth = data.read_u32();
      const uint32_t levels = data.read_u32();
      if (!data.ok() || sensor > 15) {
        res.status = kStatusBadValue;
        return res;
      }
      // `levels` goes straight into the kernel's nested-lock subclass.
      const int64_t rc = sys_ioctl(hub_fd(), SensorHubDriver::kIocBatch,
                                   pack_u32({sensor, depth, levels}));
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kPoll: {
      const uint32_t max = data.read_u32();
      if (!data.ok() || max == 0 || max > 64) {
        res.status = kStatusBadValue;
        return res;
      }
      std::vector<uint8_t> out;
      const int64_t n = sys_read(hub_fd(), max * 8, &out);
      res.reply.write_u32(n >= 0 ? static_cast<uint32_t>(out.size() / 8) : 0);
      return res;
    }
    case kSelfTest: {
      const uint32_t sensor = data.read_u32();
      if (!data.ok() || sensor > 15) {
        res.status = kStatusBadValue;
        return res;
      }
      std::vector<uint8_t> out;
      sys_ioctl(hub_fd(), SensorHubDriver::kIocSelfTest, pack_u32({sensor}),
                &out);
      res.reply.write_u32(out.size() >= 4 ? kernel::le_u32(out, 0) : 0);
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
