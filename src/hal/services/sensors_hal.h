// Sensors HAL (simulated vendor sensor service).
//
// Drives the sensor_hub kernel driver: activate, rate, batching, polling.
// The batch() method forwards its `fifoLevels` argument into the kernel's
// nested-lock depth — on device A1 firmware that is the userspace half of
// the Table II #3 lockdep BUG.
#pragma once

#include "hal/hal_service.h"

namespace df::hal::services {

class SensorsHal final : public HalService {
 public:
  static constexpr uint32_t kGetSensorList = 1;
  static constexpr uint32_t kActivate = 2;
  static constexpr uint32_t kSetDelay = 3;
  static constexpr uint32_t kBatch = 4;
  static constexpr uint32_t kPoll = 5;
  static constexpr uint32_t kSelfTest = 6;

  explicit SensorsHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.sensors@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override { b.i32(hub_fd_); }
  void load_native(kernel::StateReader& r) override { hub_fd_ = r.i32(); }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  int32_t hub_fd();

  int32_t hub_fd_ = -1;
};

}  // namespace df::hal::services
