#include "hal/services/wifi_hal.h"

#include "kernel/drivers/wifi_rate.h"

namespace df::hal::services {

using kernel::drivers::WifiRateDriver;

InterfaceDesc WifiHal::interface() const {
  InterfaceDesc d;
  d.service = std::string(descriptor());
  d.methods = {
      {kScan, "scan", {}, ""},
      {kConnect,
       "connect",
       {{ArgKind::kU32, "bss", 0, 3, {}, 0, ""}},
       ""},
      {kDisconnect, "disconnect", {}, ""},
      {kSetPowerSave,
       "setPowerSave",
       {{ArgKind::kEnum, "mode", 0, 0, {0, 1, 2, 3}, 0, ""}},
       ""},
      {kSetRateMask,
       "setRateMask",
       {{ArgKind::kU32, "count", 0, 16, {}, 0, ""},
        {ArgKind::kBlob, "rates", 0, 0, {}, 32, ""}},
       ""},
      {kGetLinkInfo, "getLinkInfo", {}, ""},
  };
  return d;
}

std::vector<UsageWeight> WifiHal::app_usage_profile() const {
  return {{kScan, 3.0},         {kConnect, 2.0},     {kDisconnect, 1.0},
          {kSetPowerSave, 1.5}, {kSetRateMask, 0.5}, {kGetLinkInfo, 6.0}};
}

int32_t WifiHal::wifi_fd() {
  if (wifi_fd_ < 0) wifi_fd_ = static_cast<int32_t>(sys_open("/dev/wifi0"));
  return wifi_fd_;
}

void WifiHal::reset_native() {
  wifi_fd_ = -1;
  scanned_ = false;
}

TxResult WifiHal::on_transact(uint32_t code, Parcel& data) {
  TxResult res;
  switch (code) {
    case kScan: {
      std::vector<uint8_t> out;
      const int64_t rc =
          sys_ioctl(wifi_fd(), WifiRateDriver::kIocScan, {}, &out);
      if (rc != 0) {
        res.status = kStatusInvalidOperation;
        return res;
      }
      scanned_ = true;
      res.reply.write_u32(out.size() >= 4 ? kernel::le_u32(out, 0) : 0);
      return res;
    }
    case kConnect: {
      const uint32_t bss = data.read_u32();
      if (!data.ok() || bss > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      if (!scanned_) {
        // The supplicant always scans before associating.
        std::vector<uint8_t> out;
        if (sys_ioctl(wifi_fd(), WifiRateDriver::kIocScan, {}, &out) == 0) {
          scanned_ = true;
        }
      }
      const int64_t rc =
          sys_ioctl(wifi_fd(), WifiRateDriver::kIocAssoc, pack_u32({bss}));
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kDisconnect: {
      const int64_t rc =
          sys_ioctl(wifi_fd(), WifiRateDriver::kIocDisassoc, {});
      res.status = rc == 0 ? kStatusOk : kStatusInvalidOperation;
      return res;
    }
    case kSetPowerSave: {
      const uint32_t mode = data.read_u32();
      if (!data.ok() || mode > 3) {
        res.status = kStatusBadValue;
        return res;
      }
      sys_ioctl(wifi_fd(), WifiRateDriver::kIocSetPower, pack_u32({mode}));
      return res;
    }
    case kSetRateMask: {
      const uint32_t count = data.read_u32();
      const std::vector<uint8_t> rates = data.read_blob();
      if (!data.ok() || count > 16) {
        res.status = kStatusBadValue;
        return res;
      }
      // The HAL abstracts rate *indices* into the PHY's supported-rate
      // table entries (500 kbps units) — userspace never supplies raw
      // rates, which is why its tables always validate in the kernel.
      static constexpr uint16_t kSupported[] = {2,  4,  11, 12, 18, 22,
                                                24, 36, 48, 72, 96, 108};
      std::vector<uint8_t> payload = pack_u32({count});
      for (uint32_t i = 0; i < count; ++i) {
        const uint8_t idx = i < rates.size() ? rates[i] : 0;
        const uint16_t rate = kSupported[idx % 12];
        payload.push_back(static_cast<uint8_t>(rate & 0xff));
        payload.push_back(static_cast<uint8_t>(rate >> 8));
      }
      const int64_t rc =
          sys_ioctl(wifi_fd(), WifiRateDriver::kIocSetRates, payload);
      res.status = rc == 0 ? kStatusOk : kStatusBadValue;
      return res;
    }
    case kGetLinkInfo: {
      std::vector<uint8_t> out;
      sys_ioctl(wifi_fd(), WifiRateDriver::kIocGetLink, {}, &out);
      res.reply.write_u32(out.size() >= 4 ? kernel::le_u32(out, 0) : 0);
      return res;
    }
    default:
      res.status = kStatusUnknownTransaction;
      return res;
  }
}

}  // namespace df::hal::services
