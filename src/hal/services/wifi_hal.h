// Wi-Fi HAL (simulated vendor wlan supplicant backend).
//
// Drives the wifi_rate kernel driver with vendor knowledge of valid rate
// tables, BSS indices and power modes — knowledge a syscall-description
// fuzzer lacks. Its legacy-compat path (setPowerSave(2) + updateRateMask)
// is the userspace half of Table II #10 (rate_control_rate_init WARNING on
// device C2).
#pragma once

#include "hal/hal_service.h"

namespace df::hal::services {

class WifiHal final : public HalService {
 public:
  static constexpr uint32_t kScan = 1;
  static constexpr uint32_t kConnect = 2;        // bss index
  static constexpr uint32_t kDisconnect = 3;
  static constexpr uint32_t kSetPowerSave = 4;   // mode 0..3
  static constexpr uint32_t kSetRateMask = 5;    // count + u16 rates
  static constexpr uint32_t kGetLinkInfo = 6;

  explicit WifiHal(kernel::Kernel& kernel)
      : HalService(kernel, "android.hardware.wifi@sim") {}

  InterfaceDesc interface() const override;
  std::vector<UsageWeight> app_usage_profile() const override;

  void save_native(kernel::StateBuf& b) const override {
    b.i32(wifi_fd_);
    b.b(scanned_);
  }
  void load_native(kernel::StateReader& r) override {
    wifi_fd_ = r.i32();
    scanned_ = r.b();
  }

 protected:
  TxResult on_transact(uint32_t code, Parcel& data) override;
  void reset_native() override;

 private:
  int32_t wifi_fd();

  int32_t wifi_fd_ = -1;
  bool scanned_ = false;
};

}  // namespace df::hal::services
