#include "kernel/dmesg.h"

namespace df::kernel {

const char* report_kind_name(ReportKind kind) {
  switch (kind) {
    case ReportKind::kWarning: return "WARNING";
    case ReportKind::kBug: return "BUG";
    case ReportKind::kKasan: return "KASAN";
    case ReportKind::kHang: return "HANG";
    case ReportKind::kPanic: return "PANIC";
  }
  return "?";
}

Dmesg::Dmesg(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void Dmesg::warn(std::string_view driver, std::string_view site,
                 std::string_view detail) {
  Report r;
  r.kind = ReportKind::kWarning;
  r.title = "WARNING in " + std::string(site);
  r.driver = driver;
  r.detail = detail;
  r.fatal = false;
  push(std::move(r));
}

void Dmesg::bug(std::string_view driver, std::string_view message) {
  Report r;
  r.kind = ReportKind::kBug;
  r.title = "BUG: " + std::string(message);
  r.driver = driver;
  r.fatal = true;
  push(std::move(r));
}

void Dmesg::kasan(std::string_view driver, std::string_view bug_class,
                  std::string_view site, std::string_view detail) {
  Report r;
  r.kind = ReportKind::kKasan;
  r.title = "KASAN: " + std::string(bug_class) + " in " + std::string(site);
  r.driver = driver;
  r.detail = detail;
  r.fatal = true;
  push(std::move(r));
}

void Dmesg::hang(std::string_view driver, std::string_view site) {
  Report r;
  r.kind = ReportKind::kHang;
  r.title = "Infinite Loop in " + std::string(site);
  r.driver = driver;
  r.fatal = true;
  push(std::move(r));
}

void Dmesg::panic(std::string_view driver, std::string_view message) {
  Report r;
  r.kind = ReportKind::kPanic;
  r.title = "Kernel panic: " + std::string(message);
  r.driver = driver;
  r.fatal = true;
  push(std::move(r));
}

void Dmesg::push(Report r) {
  r.seq = next_seq_++;
  if (r.fatal) panicked_ = true;
  if (ring_.size() >= capacity_ && !ring_.empty()) {
    ring_.erase(ring_.begin());
  }
  ring_.push_back(std::move(r));
}

std::vector<Report> Dmesg::since(uint64_t from_seq) const {
  std::vector<Report> out;
  for (const Report& r : ring_) {
    if (r.seq >= from_seq) out.push_back(r);
  }
  return out;
}

void Dmesg::clear() {
  ring_.clear();
  panicked_ = false;
  // next_seq_ deliberately not reset: sequence numbers are campaign-global.
}

}  // namespace df::kernel
