// Kernel report log: the simulated analogue of the dmesg ring buffer plus
// the crash-detection conventions kernel fuzzers key on (WARNING / BUG /
// KASAN / hung-task lines).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace df::kernel {

enum class ReportKind {
  kWarning,  // WARNING in <site>           (logic error, non-fatal)
  kBug,      // BUG: <message>              (fatal)
  kKasan,    // KASAN: <class> in <site>    (fatal, memory bug)
  kHang,     // Infinite loop / hung task   (fatal; watchdog fired)
  kPanic,    // Kernel panic                (fatal)
};

const char* report_kind_name(ReportKind kind);

struct Report {
  ReportKind kind = ReportKind::kWarning;
  std::string title;    // dedup key, e.g. "WARNING in rt1711_i2c_probe"
  std::string driver;   // originating driver / subsystem name
  std::string detail;   // free-form extra context
  uint64_t seq = 0;     // monotonically increasing sequence number
  bool fatal = false;   // requires a device reboot
};

// Bounded report ring. Fatal reports latch a panic flag which the device
// layer turns into a reboot (the paper's harness reboots on every bug).
class Dmesg {
 public:
  explicit Dmesg(size_t capacity = 1024);

  void warn(std::string_view driver, std::string_view site,
            std::string_view detail = {});
  void bug(std::string_view driver, std::string_view message);
  void kasan(std::string_view driver, std::string_view bug_class,
             std::string_view site, std::string_view detail = {});
  void hang(std::string_view driver, std::string_view site);
  void panic(std::string_view driver, std::string_view message);

  bool panicked() const { return panicked_; }
  void clear_panic() { panicked_ = false; }

  // Reports with seq >= from_seq. Sequence numbers survive ring eviction,
  // so callers can poll incrementally with from_seq = next_seq().
  std::vector<Report> since(uint64_t from_seq) const;
  // Sequence number the next report will receive.
  uint64_t next_seq() const { return next_seq_; }
  size_t total_reports() const { return next_seq_; }
  const std::vector<Report>& ring() const { return ring_; }
  void clear();

 private:
  void push(Report r);

  size_t capacity_;
  uint64_t next_seq_ = 0;
  bool panicked_ = false;
  std::vector<Report> ring_;
};

}  // namespace df::kernel
