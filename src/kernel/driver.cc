#include "kernel/driver.h"

#include <string>

#include "kernel/kernel.h"

namespace df::kernel {

DriverCtx::DriverCtx(Kernel& kernel, Task& task, Driver& driver)
    : kernel_(kernel), task_(task), driver_(driver) {}

void DriverCtx::cov(uint64_t block) {
  kernel_.record_cov(driver_.driver_id(), block, task_);
}

HeapPtr DriverCtx::kmalloc(size_t size, std::string_view tag) {
  return kernel_.kasan_.alloc(size, tag);
}

void DriverCtx::kfree(HeapPtr p, std::string_view site) {
  kernel_.kasan_.free(p, driver_.name(), site);
}

bool DriverCtx::mem_read(HeapPtr p, size_t off, std::span<uint8_t> dst,
                         std::string_view site) {
  return kernel_.kasan_.read(p, off, dst, driver_.name(), site);
}

bool DriverCtx::mem_write(HeapPtr p, size_t off, std::span<const uint8_t> src,
                          std::string_view site) {
  return kernel_.kasan_.write(p, off, src, driver_.name(), site);
}

bool DriverCtx::mem_check(HeapPtr p, size_t off, size_t len, Access kind,
                          std::string_view site) {
  return kernel_.kasan_.check(p, off, len, kind, driver_.name(), site);
}

void DriverCtx::warn(std::string_view site, std::string_view detail) {
  kernel_.dmesg_.warn(driver_.name(), site, detail);
}

void DriverCtx::bug(std::string_view message) {
  kernel_.dmesg_.bug(driver_.name(), message);
}

void DriverCtx::kasan_report(std::string_view bug_class, std::string_view site,
                             std::string_view detail) {
  kernel_.dmesg_.kasan(driver_.name(), bug_class, site, detail);
}

bool DriverCtx::loop_guard(std::string_view site) {
  if (++loop_iters_ <= kernel_.loop_budget()) return true;
  if (!hang_reported_) {
    hang_reported_ = true;
    kernel_.dmesg_.hang(driver_.name(), site);
  }
  return false;
}

bool DriverCtx::lock_acquire_nested(uint32_t subclass,
                                    std::string_view lock_name) {
  // Mirrors lockdep's MAX_LOCKDEP_SUBCLASSES == 8 check.
  if (subclass < 8) return true;
  kernel_.dmesg_.bug(driver_.name(),
                     "looking up invalid subclass: " +
                         std::to_string(subclass) + " (lock " +
                         std::string(lock_name) + ")");
  return false;
}

util::Rng& DriverCtx::rng() { return kernel_.rng(); }

void Driver::state_machine_boot() {
  const size_t n = state_names().size();
  if (state_visits_.size() != n) {
    state_visits_.assign(n, 0);
    state_matrix_.assign(n * n, 0);
  }
  cur_state_ = 0;
  if (n > 0) ++state_visits_[0];
}

void Driver::enter_state(size_t s) {
  const size_t n = state_visits_.size();
  if (s >= n) return;
  ++state_visits_[s];
  if (s != cur_state_) {
    ++state_matrix_[cur_state_ * n + s];
    cur_state_ = s;
  }
}

size_t Driver::states_visited() const {
  size_t n = 0;
  for (uint64_t v : state_visits_) n += v > 0 ? 1 : 0;
  return n;
}

uint64_t Driver::transitions_observed() const {
  uint64_t n = 0;
  for (uint64_t v : state_matrix_) n += v > 0 ? 1 : 0;
  return n;
}

uint64_t le_u64(std::span<const uint8_t> b, size_t off) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && off + i < b.size(); ++i)
    v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
  return v;
}

uint32_t le_u32(std::span<const uint8_t> b, size_t off) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4 && off + i < b.size(); ++i)
    v |= static_cast<uint32_t>(b[off + i]) << (8 * i);
  return v;
}

uint16_t le_u16(std::span<const uint8_t> b, size_t off) {
  uint16_t v = 0;
  for (size_t i = 0; i < 2 && off + i < b.size(); ++i)
    v = static_cast<uint16_t>(v | static_cast<uint16_t>(b[off + i]) << (8 * i));
  return v;
}

void put_u64(std::vector<uint8_t>& b, uint64_t v) {
  for (size_t i = 0; i < 8; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u32(std::vector<uint8_t>& b, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void put_u16(std::vector<uint8_t>& b, uint16_t v) {
  for (size_t i = 0; i < 2; ++i) b.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace df::kernel
