// Driver framework for the simulated kernel.
//
// A Driver is a file_operations-style object: the kernel routes syscalls on
// its device nodes (or socket protocols) to the virtual ops below. Drivers
// are written as *gated state machines*: deep blocks only execute after a
// realistic multi-call protocol, which is exactly the property that makes
// proprietary drivers hard for syscall-only fuzzers and reachable through
// the HAL (the paper's core premise).
//
// All driver-visible kernel services (coverage, kmalloc/KASAN, WARN/BUG,
// watchdog) flow through DriverCtx so that every effect is attributed to a
// task and a driver.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/kasan.h"
#include "kernel/snapshot.h"
#include "kernel/syscall.h"
#include "util/rng.h"

namespace df::kernel {

class Kernel;
class Driver;
struct Task;

// One open file description (regular device node or socket). Shared between
// fds on dup(). Driver-private per-open state lives in `priv`.
struct File {
  Driver* drv = nullptr;
  std::string path;           // "/dev/..." or "sock:<family>:<proto>"
  uint64_t flags = 0;         // open flags
  uint64_t pos = 0;           // lseek position
  bool is_sock = false;
  uint64_t sock_type = 0;
  uint64_t sock_proto = 0;
  std::shared_ptr<void> priv;

  // Typed accessor for driver-private state.
  template <typename T>
  T* state() const {
    return static_cast<T*>(priv.get());
  }
  template <typename T, typename... Args>
  T* make_state(Args&&... args) {
    auto p = std::make_shared<T>(std::forward<Args>(args)...);
    T* raw = p.get();
    priv = std::move(p);
    return raw;
  }
};

// Kernel services exposed to driver code for the duration of one syscall.
class DriverCtx {
 public:
  DriverCtx(Kernel& kernel, Task& task, Driver& driver);

  // --- coverage -----------------------------------------------------------
  // Records basic block `block` of the current driver in the task's kcov
  // buffer and the kernel's cumulative statistics.
  void cov(uint64_t block);
  // Parametric block: base + sub encodes per-command / per-state blocks.
  void covp(uint64_t base, uint64_t sub) { cov(base * 1024 + sub); }

  // --- memory (KASAN-checked) --------------------------------------------
  HeapPtr kmalloc(size_t size, std::string_view tag);
  void kfree(HeapPtr p, std::string_view site);
  bool mem_read(HeapPtr p, size_t off, std::span<uint8_t> dst,
                std::string_view site);
  bool mem_write(HeapPtr p, size_t off, std::span<const uint8_t> src,
                 std::string_view site);
  bool mem_check(HeapPtr p, size_t off, size_t len, Access kind,
                 std::string_view site);

  // --- reporting ----------------------------------------------------------
  void warn(std::string_view site, std::string_view detail = {});
  void bug(std::string_view message);
  void kasan_report(std::string_view bug_class, std::string_view site,
                    std::string_view detail = {});

  // --- watchdog -----------------------------------------------------------
  // Call inside loops. Returns false once the per-syscall iteration budget
  // is exhausted; a hung-task report has then been raised for `site` and the
  // driver must bail out.
  bool loop_guard(std::string_view site);

  // --- lockdep ------------------------------------------------------------
  // Validates a lock nesting subclass like the kernel's lockdep facility;
  // subclass >= 8 raises "BUG: looking up invalid subclass: N".
  bool lock_acquire_nested(uint32_t subclass, std::string_view lock_name);

  Kernel& kernel() { return kernel_; }
  Task& task() { return task_; }
  Driver& driver() { return driver_; }
  util::Rng& rng();

 private:
  Kernel& kernel_;
  Task& task_;
  Driver& driver_;
  size_t loop_iters_ = 0;
  bool hang_reported_ = false;
};

// --- statically declared state graphs --------------------------------------
// A driver can export its protocol-state machine *without execution*: which
// DSL call moves it from state `from` to state `to`, and which argument
// values make that call take the transition instead of an error path. The
// reachability planner (src/analysis) turns these tables into shortest
// call-sequence plans for states a campaign has never visited.

// Pins one named parameter of a plan call to a concrete value. Scalar
// params use `value`; blob/string params use `bytes` (zero-filled to
// `value` bytes when `bytes` is empty and `value` > 0).
struct TransitionHint {
  std::string param;
  uint64_t value = 0;
  std::vector<uint8_t> bytes;

  TransitionHint() = default;
  TransitionHint(std::string p, uint64_t v, std::vector<uint8_t> b = {})
      : param(std::move(p)), value(v), bytes(std::move(b)) {}
};

// One call of a plan: a DSL description name (core/descriptions.cc) plus
// the argument pins required for the success path. The leading handle
// argument is bound at materialization to the producer for `instance` —
// multi-resource protocols (l2cap's listener + connecting socket) number
// their resources so plan calls land on the right one; single-resource
// plans leave the default 0.
struct PlanCall {
  std::string call;
  std::vector<TransitionHint> hints;
  size_t instance = 0;

  PlanCall() = default;
  PlanCall(std::string c, std::vector<TransitionHint> h = {},  // NOLINT
           size_t inst = 0)
      : call(std::move(c)), hints(std::move(h)), instance(inst) {}
};

// One edge of the declared graph. `steps` is the call sequence effecting
// the edge — usually a single call, occasionally a short combo (e.g. V4L2
// needs QBUF before STREAMON to leave the buffers state).
struct DeclaredTransition {
  size_t from = 0;
  size_t to = 0;
  std::vector<PlanCall> steps;

  DeclaredTransition() = default;
  DeclaredTransition(size_t f, size_t t, std::vector<PlanCall> s)
      : from(f), to(t), steps(std::move(s)) {}
};

class Driver {
 public:
  struct SockTriple {
    uint64_t family = 0;
    uint64_t type = 0;
    uint64_t proto = 0;
  };

  virtual ~Driver() = default;

  virtual std::string_view name() const = 0;
  // Device nodes this driver serves, e.g. {"/dev/rt1711"}.
  virtual std::vector<std::string> nodes() const { return {}; }
  // Socket (family, type, protocol) triples this driver serves.
  virtual std::vector<SockTriple> socket_protos() const { return {}; }

  // Called once at boot (and again after every reboot).
  virtual void probe(DriverCtx&) {}
  // Drop all driver state (device reboot). Must restore boot-time state.
  virtual void reset() {}

  // --- file ops; default implementations return sensible errnos ----------
  virtual int64_t open(DriverCtx&, File&) { return 0; }
  virtual void release(DriverCtx&, File&) {}
  virtual int64_t ioctl(DriverCtx&, File&, uint64_t /*req*/,
                        std::span<const uint8_t> /*in*/,
                        std::vector<uint8_t>& /*out*/) {
    return err::kENOTTY;
  }
  virtual int64_t read(DriverCtx&, File&, size_t /*n*/,
                       std::vector<uint8_t>& /*out*/) {
    return err::kEINVAL;
  }
  virtual int64_t write(DriverCtx&, File&, std::span<const uint8_t>) {
    return err::kEINVAL;
  }
  virtual int64_t mmap(DriverCtx&, File&, size_t /*len*/, uint64_t /*prot*/) {
    return err::kENODEV;
  }
  virtual int64_t poll(DriverCtx&, File&, uint64_t /*events*/) { return 0; }

  // --- socket ops ---------------------------------------------------------
  virtual int64_t sock_create(DriverCtx&, File&) { return err::kEPROTO; }
  virtual int64_t bind(DriverCtx&, File&, std::span<const uint8_t>) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t connect(DriverCtx&, File&, std::span<const uint8_t>) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t listen(DriverCtx&, File&, uint64_t /*backlog*/) {
    return err::kEOPNOTSUPP;
  }
  // On success the driver fills `child` (a fresh socket File on the same
  // driver) and returns 0; the kernel then assigns the new fd.
  virtual int64_t accept(DriverCtx&, File& /*listener*/, File& /*child*/) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t setsockopt(DriverCtx&, File&, uint64_t /*level*/,
                             uint64_t /*opt*/, std::span<const uint8_t>) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t getsockopt(DriverCtx&, File&, uint64_t /*level*/,
                             uint64_t /*opt*/, std::vector<uint8_t>&) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t sendmsg(DriverCtx&, File&, std::span<const uint8_t>) {
    return err::kEOPNOTSUPP;
  }
  virtual int64_t recvmsg(DriverCtx&, File&, size_t /*n*/,
                          std::vector<uint8_t>&) {
    return err::kEOPNOTSUPP;
  }

  // Assigned by the kernel at registration; used for coverage attribution.
  uint16_t driver_id() const { return driver_id_; }

  // --- state-machine introspection ----------------------------------------
  // Every gated state machine reports its protocol position through
  // enter_state(); the base class tallies campaign-cumulative per-state
  // visit counts and a transition matrix — the observability counterpart of
  // the paper's "deep block" claim. State 0 is the boot/initial state.
  //
  // Names of the protocol states, index == state id. Empty (the default)
  // means the driver does not expose a state machine.
  virtual std::vector<std::string> state_names() const { return {}; }

  // (Re)sizes the tallies from state_names() and counts the boot-time entry
  // into state 0 *without* recording a transition — a reboot is not a
  // protocol transition. Called by the kernel at boot() and reboot();
  // tallies deliberately survive reboots (they are campaign-cumulative).
  void state_machine_boot();

  size_t current_state() const { return cur_state_; }
  const std::vector<uint64_t>& state_visits() const { return state_visits_; }
  // Row-major transition counts: matrix[from * n + to], n = state count.
  const std::vector<uint64_t>& state_matrix() const { return state_matrix_; }
  size_t states_visited() const;
  uint64_t transitions_observed() const;  // distinct (from, to) pairs seen

  // Static declaration of the same machine: edges with the DSL calls (and
  // argument pins) that take them. Indices refer to state_names(). Empty
  // (the default) means the driver declares no graph; drivers with a state
  // machine should keep this in sync with their enter_state() calls.
  virtual std::vector<DeclaredTransition> declared_transitions() const {
    return {};
  }

  // --- snapshot support (DESIGN.md §13) -------------------------------------
  // Serializes/restores the driver's *live* protocol state: every field
  // reset() would wipe, plus per-boot fields a reboot keeps (rt1711's probe
  // counter). load_state() runs right after reset(), so a driver only needs
  // to write back what save_state() recorded. Campaign-cumulative tallies
  // (state_visits/state_matrix) and cur_state_ are handled by the snapshot
  // layer itself — do not write them here. The per-driver property test
  // (tests/property) catches implementations that forget a field.
  virtual void save_state(StateBuf&) const {}
  virtual void load_state(StateReader&) {}
  // Per-open-file private state (File::priv): called once per unique File
  // owned by this driver. Drivers without per-open state (plain ioctl
  // devices) keep the no-op defaults. load_file_state() may also re-link
  // global side tables that point into File priv (l2cap's listener map).
  virtual void save_file_state(const File&, StateBuf&) const {}
  virtual void load_file_state(File&, StateReader&) {}

  // Snapshot support: repositions the live state machine without touching
  // the campaign-cumulative tallies (a restore is not a protocol
  // transition, exactly like a reboot is not one).
  void restore_current_state(size_t s) { cur_state_ = s; }

  // Checkpoint support: restores the campaign-cumulative tallies verbatim
  // (core/fuzz/checkpoint.h). Sizes must match state_names(); mismatched
  // vectors are ignored so a stale checkpoint cannot corrupt the tallies.
  void restore_state_tallies(size_t cur, std::vector<uint64_t> visits,
                             std::vector<uint64_t> matrix) {
    if (visits.size() != state_visits_.size() ||
        matrix.size() != state_matrix_.size()) {
      return;
    }
    if (cur < visits.size()) cur_state_ = cur;
    state_visits_ = std::move(visits);
    state_matrix_ = std::move(matrix);
  }

 protected:
  // Driver code calls this whenever the protocol state machine moves (or
  // re-enters a state). No-op before state_machine_boot() or for out-of-
  // range indices, so drivers stay usable without a booted kernel.
  void enter_state(size_t s);

 private:
  friend class Kernel;
  uint16_t driver_id_ = 0;
  size_t cur_state_ = 0;
  std::vector<uint64_t> state_visits_;
  std::vector<uint64_t> state_matrix_;
};

// Helpers for little-endian scalar extraction from syscall payloads —
// drivers parse user buffers with these.
uint64_t le_u64(std::span<const uint8_t> b, size_t off);
uint32_t le_u32(std::span<const uint8_t> b, size_t off);
uint16_t le_u16(std::span<const uint8_t> b, size_t off);
void put_u64(std::vector<uint8_t>& b, uint64_t v);
void put_u32(std::vector<uint8_t>& b, uint32_t v);
void put_u16(std::vector<uint8_t>& b, uint16_t v);

}  // namespace df::kernel
