#include "kernel/drivers/audio_pcm.h"

namespace df::kernel::drivers {

// Block map: 1xx params, 2xx prepare/start, 3xx write, 4xx drain/pause.

namespace {
bool valid_rate(uint32_t r) {
  return r == 8000 || r == 16000 || r == 44100 || r == 48000 || r == 96000;
}
}  // namespace

void AudioPcmDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void AudioPcmDriver::reset() {
  st_ = St::kOpen;
  rate_ = channels_ = fmt_ = 0;
  frames_written_ = 0;
}

int64_t AudioPcmDriver::ioctl(DriverCtx& ctx, File&, uint64_t req,
                              std::span<const uint8_t> in,
                              std::vector<uint8_t>& out) {
  switch (req) {
    case kIocHwParams: {
      const uint32_t rate = le_u32(in, 0);
      const uint32_t ch = le_u32(in, 4);
      const uint32_t fmt = le_u32(in, 8);
      ctx.cov(110);
      if (st_ == St::kRunning || st_ == St::kDraining) {
        ctx.cov(111);
        return err::kEBUSY;
      }
      if (!valid_rate(rate)) {
        ctx.cov(112);
        return err::kEINVAL;
      }
      if (ch == 0 || ch > 8) {
        ctx.cov(113);
        return err::kEINVAL;
      }
      if (fmt > 3) {  // s16le, s24le, s32le, f32
        ctx.cov(114);
        return err::kEINVAL;
      }
      rate_ = rate;
      channels_ = ch;
      fmt_ = fmt;
      st_ = St::kSetup;
      track_st();
      // DSP path table: rate x channels x format.
      ctx.covp(12, (rate / 8000) * 32 + ch * 4 + fmt);
      return 0;
    }
    case kIocPrepare:
      ctx.cov(200);
      if (st_ != St::kSetup && st_ != St::kPaused) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      st_ = St::kPrepared;
      track_st();
      ctx.cov(202);
      return 0;
    case kIocStart:
      ctx.cov(210);
      if (st_ != St::kPrepared) {
        ctx.cov(211);
        return err::kEINVAL;
      }
      st_ = St::kRunning;
      track_st();
      ctx.cov(212);
      return 0;
    case kIocDrain:
      ctx.cov(400);
      if (st_ != St::kRunning) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      st_ = St::kDraining;
      track_st();  // transient: running -> draining -> setup within one call
      ctx.covp(41, frames_written_ % 8);
      st_ = St::kSetup;
      track_st();
      return 0;
    case kIocPause: {
      const uint32_t on = le_u32(in, 0);
      ctx.cov(410);
      if (on != 0 && st_ == St::kRunning) {
        st_ = St::kPaused;
        track_st();
        ctx.cov(411);
        return 0;
      }
      if (on == 0 && st_ == St::kPaused) {
        st_ = St::kRunning;
        track_st();
        ctx.cov(412);
        return 0;
      }
      ctx.cov(413);
      return err::kEINVAL;
    }
    case kIocStatus:
      ctx.cov(420);
      put_u32(out, static_cast<uint32_t>(st_));
      put_u64(out, frames_written_);
      ctx.covp(43, static_cast<uint64_t>(st_));
      return 0;
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

int64_t AudioPcmDriver::write(DriverCtx& ctx, File&,
                              std::span<const uint8_t> data) {
  ctx.cov(300);
  if (st_ != St::kRunning) {
    ctx.cov(301);
    return err::kEPIPE;  // underrun-style error
  }
  if (data.empty()) {
    ctx.cov(302);
    return 0;
  }
  const size_t frame_bytes = channels_ * (fmt_ == 0 ? 2 : 4);
  const uint64_t frames = data.size() / (frame_bytes ? frame_bytes : 1);
  frames_written_ += frames;
  ctx.covp(31, data.size() / 256 % 16);  // period-size paths
  ctx.covp(32, frames_written_ / 1024 % 8);
  return static_cast<int64_t>(data.size());
}

int64_t AudioPcmDriver::mmap(DriverCtx& ctx, File&, size_t len, uint64_t) {
  ctx.cov(330);
  if (st_ == St::kOpen || len == 0) {
    ctx.cov(331);
    return err::kEINVAL;
  }
  ctx.covp(34, len / 4096 % 8);
  return 0;
}

}  // namespace df::kernel::drivers
