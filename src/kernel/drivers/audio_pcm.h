// ALSA-style PCM playback driver (simulated vendor audio DSP front end).
//
// hw_params -> prepare -> start -> write periods -> drain/pause. No planted
// bug: this driver exists to give the Audio HAL a deep, realistic kernel
// counterpart whose states only a correctly sequenced client reaches.
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

class AudioPcmDriver final : public Driver {
 public:
  static constexpr uint64_t kIocHwParams = 0xc001;  // u32 rate, ch, fmt
  static constexpr uint64_t kIocPrepare = 0xc002;
  static constexpr uint64_t kIocStart = 0xc003;
  static constexpr uint64_t kIocDrain = 0xc004;
  static constexpr uint64_t kIocPause = 0xc005;  // u32 on/off
  static constexpr uint64_t kIocStatus = 0xc006;

  std::string_view name() const override { return "audio_pcm"; }
  std::vector<std::string> nodes() const override { return {"/dev/snd_pcm"}; }
  std::vector<std::string> state_names() const override {
    return {"open", "setup", "prepared", "running", "paused", "draining"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1,
         {{"ioctl$PCM_HW_PARAMS",
           {{"rate", 8000}, {"channels", 2}, {"format", 0}}}}},
        {1, 2, {{"ioctl$PCM_PREPARE"}}},
        {2, 3, {{"ioctl$PCM_START"}}},
        {3, 4, {{"ioctl$PCM_PAUSE", {{"on", 1}}}}},
        {4, 3, {{"ioctl$PCM_PAUSE", {{"on", 0}}}}},
        {4, 2, {{"ioctl$PCM_PREPARE"}}},
        {3, 5, {{"ioctl$PCM_DRAIN"}}},
        {5, 1, {{"ioctl$PCM_DRAIN"}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(static_cast<uint32_t>(st_));
    b.u32(rate_);
    b.u32(channels_);
    b.u32(fmt_);
    b.u64(frames_written_);
  }
  void load_state(StateReader& r) override {
    st_ = static_cast<St>(r.u32());
    rate_ = r.u32();
    channels_ = r.u32();
    fmt_ = r.u32();
    frames_written_ = r.u64();
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override;
  int64_t write(DriverCtx& ctx, File& f,
                std::span<const uint8_t> data) override;
  int64_t mmap(DriverCtx& ctx, File& f, size_t len, uint64_t prot) override;

 private:
  enum class St { kOpen, kSetup, kPrepared, kRunning, kPaused, kDraining };

  void track_st() { enter_state(static_cast<size_t>(st_)); }

  St st_ = St::kOpen;
  uint32_t rate_ = 0, channels_ = 0, fmt_ = 0;
  uint64_t frames_written_ = 0;
};

}  // namespace df::kernel::drivers
