#include "kernel/drivers/bt_hci.h"

#include <algorithm>
#include <array>

namespace df::kernel::drivers {

// Block map: 1xx socket/bind, 2xx ioctl, 3xx send framing, 4xx per-opcode,
// 5xx codecs, 6xx recv.

void BtHciDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void BtHciDriver::reset() {
  adapter_up_ = false;
  event_mask_ = 0;
  codec_buf_ = kNullHeapPtr;
  codec_count_ = codec_capacity_ = 0;
  vendor_unlocked_ = false;
}

int64_t BtHciDriver::sock_create(DriverCtx& ctx, File& f) {
  ctx.cov(110);
  f.make_state<SockState>();
  return 0;
}

int64_t BtHciDriver::bind(DriverCtx& ctx, File& f,
                          std::span<const uint8_t> addr) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(120);
  if (addr.empty() || addr[0] != 0) {
    // Only adapter hci0 exists.
    ctx.cov(121);
    return err::kENODEV;
  }
  if (ss->bound) {
    ctx.cov(122);
    return err::kEINVAL;
  }
  ss->bound = true;
  ctx.cov(123);
  return 0;
}

int64_t BtHciDriver::ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                           std::span<const uint8_t>, std::vector<uint8_t>& out) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  switch (req) {
    case kIocDevUp:
      ctx.cov(200);
      if (!ss->bound) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      if (adapter_up_) {
        ctx.cov(202);
        return err::kEBUSY;
      }
      adapter_up_ = true;
      // Controller init: firmware reports an 8-entry codec capability; the
      // host allocates accordingly.
      codec_capacity_ = 8;
      codec_count_ = 2;  // firmware default: CVSD + mSBC
      codec_buf_ = ctx.kmalloc(codec_capacity_ * 4, "bt_hci:codec_buf");
      ctx.cov(203);
      return 0;
    case kIocDevDown:
      ctx.cov(210);
      if (!adapter_up_) return err::kEINVAL;
      adapter_up_ = false;
      ctx.kfree(codec_buf_, "hci_dev_down");
      codec_buf_ = kNullHeapPtr;
      codec_count_ = codec_capacity_ = 0;
      ctx.cov(211);
      return 0;
    case kIocDevReset:
      ctx.cov(220);
      if (!adapter_up_) return err::kEINVAL;
      event_mask_ = 0;
      ctx.cov(221);
      return 0;
    case kIocDevInfo:
      ctx.cov(230);
      put_u32(out, adapter_up_ ? 1 : 0);
      put_u32(out, codec_count_);
      return 0;
    default:
      ctx.cov(2);
      return err::kENOTTY;
  }
}

void BtHciDriver::queue_cmd_complete(SockState& ss, uint16_t opcode,
                                     std::span<const uint8_t> params) {
  // HCI Event: 0x04, code 0x0e (Command Complete), plen, ncmd, opcode, ...
  std::vector<uint8_t> ev{0x04, 0x0e,
                          static_cast<uint8_t>(3 + params.size()), 0x01};
  ev.push_back(static_cast<uint8_t>(opcode & 0xff));
  ev.push_back(static_cast<uint8_t>(opcode >> 8));
  ev.insert(ev.end(), params.begin(), params.end());
  ss.events.push_back(std::move(ev));
}

int64_t BtHciDriver::sendmsg_impl(DriverCtx& ctx, File& f,
                             std::span<const uint8_t> pkt) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(300);
  if (!ss->bound) {
    ctx.cov(301);
    return err::kEINVAL;
  }
  if (!adapter_up_) {
    ctx.cov(302);
    return err::kENODEV;
  }
  // Packet framing: [0x01 type][opcode lo][opcode hi][plen][params...].
  if (pkt.size() < 4 || pkt[0] != 0x01) {
    ctx.cov(303);
    return err::kEINVAL;
  }
  const uint16_t opcode = static_cast<uint16_t>(pkt[1] | (pkt[2] << 8));
  const uint8_t plen = pkt[3];
  if (pkt.size() < 4u + plen) {
    ctx.cov(304);
    return err::kEINVAL;
  }
  ++cmds_handled_;
  return handle_command(ctx, *ss, opcode, pkt.subspan(4, plen));
}

int64_t BtHciDriver::handle_command(DriverCtx& ctx, SockState& ss,
                                    uint16_t opcode,
                                    std::span<const uint8_t> params) {
  switch (opcode) {
    case kOpSetEventMask: {
      ctx.cov(400);
      if (params.size() < 8) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      event_mask_ = le_u64(params, 0);
      // Distinct controller config paths per enabled event class.
      for (uint32_t bit = 0; bit < 16; ++bit) {
        if (event_mask_ & (1ull << bit)) ctx.covp(41, bit);
      }
      queue_cmd_complete(ss, opcode, std::array<uint8_t, 1>{0x00});
      return 0;
    }
    case kOpReset:
      ctx.cov(410);
      event_mask_ = 0;
      queue_cmd_complete(ss, opcode, std::array<uint8_t, 1>{0x00});
      return 0;
    case kOpReadLocalVersion: {
      ctx.cov(420);
      std::array<uint8_t, 5> v{0x00, 0x0c, 0x00, 0x0c, 0x00};  // BT 5.3
      queue_cmd_complete(ss, opcode, v);
      return 0;
    }
    case kOpReadBdAddr: {
      ctx.cov(430);
      std::array<uint8_t, 7> v{0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
      queue_cmd_complete(ss, opcode, v);
      return 0;
    }
    case kOpInquiry:
      ctx.cov(440);
      if (params.size() < 5) {
        ctx.cov(441);
        return err::kEINVAL;
      }
      ctx.covp(44, params[3] % 16);  // inquiry length paths
      queue_cmd_complete(ss, opcode, std::array<uint8_t, 1>{0x00});
      return 0;
    case kOpVsSetCodecTable: {
      // params: [count][count * 4-byte codec descriptors]
      ctx.cov(450);
      if (!vendor_unlocked_) {
        // Vendor commands are only accepted after the init sequence has
        // configured the transport (VS_SET_BAUDRATE), as on real firmware.
        ctx.cov(454);
        return err::kEPERM;
      }
      if (params.empty()) {
        ctx.cov(451);
        return err::kEINVAL;
      }
      const uint8_t count = params[0];
      if (count == 0) {
        ctx.cov(452);
        return err::kEINVAL;
      }
      if (!bugs_.codec_oob && count > codec_capacity_) {
        // Fixed firmware rejects counts above the allocated capability.
        ctx.cov(453);
        return err::kEINVAL;
      }
      // Vendor bug: count is stored unchecked; only capacity entries are
      // actually written (the rest "come from firmware" later).
      const uint32_t to_write =
          std::min<uint32_t>(count, codec_capacity_);
      for (uint32_t i = 0; i < to_write; ++i) {
        uint8_t entry[4] = {static_cast<uint8_t>(i), 0, 0, 0};
        if (1 + i * 4 + 4 <= params.size()) {
          std::copy_n(params.begin() + 1 + i * 4, 4, entry);
        }
        ctx.mem_write(codec_buf_, i * 4, entry, "hci_vs_set_codec_table");
      }
      codec_count_ = count;
      ctx.covp(45, count % 16);
      queue_cmd_complete(ss, opcode, std::array<uint8_t, 1>{0x00});
      return 0;
    }
    case kOpVsSetBaudrate: {
      ctx.cov(460);
      if (params.size() < 4) return err::kEINVAL;
      const uint32_t baud = le_u32(params, 0);
      // Only the transport rates the vendor firmware supports are accepted;
      // anything else NAKs and leaves vendor commands locked.
      if (baud != 115200 && baud != 921600 && baud != 1500000 &&
          baud != 2000000 && baud != 3000000) {
        ctx.cov(461);
        return err::kEINVAL;
      }
      vendor_unlocked_ = true;
      ctx.covp(46, baud % 8);
      queue_cmd_complete(ss, opcode, std::array<uint8_t, 1>{0x00});
      return 0;
    }
    case kOpReadCodecs: {
      ctx.cov(500);
      std::vector<uint8_t> reply{0x00, static_cast<uint8_t>(codec_count_)};
      // Walks codec_count_ entries; with the vendor bug a count > capacity
      // walks past the allocation into unmapped firmware shared memory ->
      // "KASAN: invalid-access in hci_read_supported_codecs".
      for (uint32_t i = 0; i < codec_count_; ++i) {
        uint8_t entry[4] = {0, 0, 0, 0};
        if (codec_buf_ == kNullHeapPtr || (i + 1) * 4 > codec_capacity_ * 4) {
          ctx.cov(501);
          ctx.kasan_report("invalid-access", "hci_read_supported_codecs",
                           "codec index beyond firmware capability table");
          return err::kEFAULT;
        }
        ctx.mem_read(codec_buf_, i * 4, entry, "hci_read_supported_codecs");
        reply.push_back(entry[0]);
      }
      ctx.covp(51, codec_count_ % 8);
      queue_cmd_complete(ss, opcode, reply);
      return 0;
    }
    default:
      ctx.cov(340);
      return err::kEOPNOTSUPP;
  }
}

int64_t BtHciDriver::recvmsg(DriverCtx& ctx, File& f, size_t,
                             std::vector<uint8_t>& out) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(600);
  if (ss->events.empty()) {
    ctx.cov(601);
    return err::kEAGAIN;
  }
  out = std::move(ss->events.front());
  ss->events.erase(ss->events.begin());
  ctx.cov(602);
  return static_cast<int64_t>(out.size());
}

void BtHciDriver::release(DriverCtx& ctx, File&) {
  ctx.cov(130);
}

void BtHciDriver::save_state(StateBuf& b) const {
  b.b(adapter_up_);
  b.u64(event_mask_);
  b.u64(codec_buf_);
  b.u32(codec_count_);
  b.u32(codec_capacity_);
  b.u32(cmds_handled_);
  b.b(vendor_unlocked_);
}

void BtHciDriver::load_state(StateReader& r) {
  adapter_up_ = r.b();
  event_mask_ = r.u64();
  codec_buf_ = r.u64();
  codec_count_ = r.u32();
  codec_capacity_ = r.u32();
  cmds_handled_ = r.u32();
  vendor_unlocked_ = r.b();
}

void BtHciDriver::save_file_state(const File& f, StateBuf& b) const {
  const auto* ss = f.state<SockState>();
  b.b(ss != nullptr);
  if (ss == nullptr) return;
  b.b(ss->bound);
  b.u32(static_cast<uint32_t>(ss->events.size()));
  for (const auto& ev : ss->events) b.blob(ev);
}

void BtHciDriver::load_file_state(File& f, StateReader& r) {
  if (!r.b()) return;
  auto* ss = f.make_state<SockState>();
  ss->bound = r.b();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) ss->events.push_back(r.blob());
}

}  // namespace df::kernel::drivers
