// Bluetooth HCI raw-socket driver (simulated vendor BT controller stack).
//
// Userspace (and the BT HAL) talks to the controller through an AF_BLUETOOTH
// raw socket: bind to an adapter, bring it up via ioctl, then exchange HCI
// command/event packets via sendmsg/recvmsg. Planted bug (Table II #7): the
// vendor "set codec table" command (0xFC12) sizes the codec buffer from the
// firmware-reported capability (8 entries) but stores the user-supplied
// count; a later Read_Local_Supported_Codecs (0x100B) walks `count` entries
// and reads out of bounds — "KASAN: invalid-access Read in
// hci_read_supported_codecs". Requires: bind + dev-up + two correctly framed
// HCI commands with a count > 8.
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct BtHciBugs {
  bool codec_oob = false;  // Table II #7 (device A2)
};

class BtHciDriver final : public Driver {
 public:
  // ioctls on the HCI socket.
  static constexpr uint64_t kIocDevUp = 0x1001;
  static constexpr uint64_t kIocDevDown = 0x1002;
  static constexpr uint64_t kIocDevReset = 0x1003;
  static constexpr uint64_t kIocDevInfo = 0x1004;

  // HCI opcodes (16-bit, little-endian in the packet).
  static constexpr uint16_t kOpSetEventMask = 0x0c01;
  static constexpr uint16_t kOpReset = 0x0c03;
  static constexpr uint16_t kOpReadLocalVersion = 0x1001;
  static constexpr uint16_t kOpReadBdAddr = 0x1009;
  static constexpr uint16_t kOpReadCodecs = 0x100b;  // read supported codecs
  static constexpr uint16_t kOpInquiry = 0x0401;
  static constexpr uint16_t kOpVsSetCodecTable = 0xfc12;  // vendor specific
  static constexpr uint16_t kOpVsSetBaudrate = 0xfc18;    // vendor specific

  explicit BtHciDriver(BtHciBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "bt_hci"; }
  std::vector<SockTriple> socket_protos() const override {
    return {{kAfBluetooth, kSockRaw, kBtProtoHci}};
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override;
  void load_state(StateReader& r) override;
  void save_file_state(const File& f, StateBuf& b) const override;
  void load_file_state(File& f, StateReader& r) override;

  std::vector<std::string> state_names() const override {
    return {"down", "up", "vendor_unlocked"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        // DEVUP only works on a bound socket, so the edge binds first.
        {0, 1, {{"bind$hci", {{"dev", 0}}}, {"ioctl$HCIDEVUP"}}},
        {1, 0, {{"ioctl$HCIDEVDOWN"}}},
        {1, 2, {{"sendmsg$HCI_VS_SET_BAUDRATE", {{"baud", 115200}}}}},
    };
  }

  int64_t sock_create(DriverCtx& ctx, File& f) override;
  int64_t bind(DriverCtx& ctx, File& f,
               std::span<const uint8_t> addr) override;
  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }
  int64_t sendmsg(DriverCtx& ctx, File& f,
                  std::span<const uint8_t> pkt) override {
    const int64_t ret = sendmsg_impl(ctx, f, pkt);
    enter_state(protocol_state());
    return ret;
  }
  int64_t recvmsg(DriverCtx& ctx, File& f, size_t n,
                  std::vector<uint8_t>& out) override;
  void release(DriverCtx& ctx, File& f) override;

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  int64_t sendmsg_impl(DriverCtx& ctx, File& f, std::span<const uint8_t> pkt);
  // Adapter position: vendor surface unlocked > adapter up > down.
  size_t protocol_state() const {
    if (vendor_unlocked_) return 2;
    return adapter_up_ ? 1 : 0;
  }

  struct SockState {
    bool bound = false;
    std::vector<std::vector<uint8_t>> events;  // pending HCI events
  };

  void queue_cmd_complete(SockState& ss, uint16_t opcode,
                          std::span<const uint8_t> params);
  int64_t handle_command(DriverCtx& ctx, SockState& ss, uint16_t opcode,
                         std::span<const uint8_t> params);

  BtHciBugs bugs_;
  // Adapter-global state (shared across sockets, reset on reboot).
  bool adapter_up_ = false;
  uint64_t event_mask_ = 0;
  HeapPtr codec_buf_ = kNullHeapPtr;
  uint32_t codec_count_ = 0;      // count claimed by the VS command
  uint32_t codec_capacity_ = 0;   // entries actually allocated
  uint32_t cmds_handled_ = 0;
  bool vendor_unlocked_ = false;  // VS commands gated on the baudrate cmd
};

}  // namespace df::kernel::drivers
