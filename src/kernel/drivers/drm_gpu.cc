#include "kernel/drivers/drm_gpu.h"

namespace df::kernel::drivers {

// Block map: 1xx caps, 2xx bo, 3xx submit, 4xx wait.

void DrmGpuDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void DrmGpuDriver::reset() {
  bos_.clear();
  next_handle_ = 1;
  next_fence_ = 1;
}

int64_t DrmGpuDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                            std::span<const uint8_t> in,
                            std::vector<uint8_t>& out) {
  switch (req) {
    case kIocGetCap: {
      const uint32_t cap = le_u32(in, 0);
      ctx.cov(110);
      if (cap > 12) {
        ctx.cov(111);
        return err::kEINVAL;
      }
      ctx.covp(11, cap);
      put_u64(out, cap % 3 ? 1 : 4096);
      return 0;
    }
    case kIocCreateBo: {
      const uint32_t pages = le_u32(in, 0);
      ctx.cov(200);
      if (pages == 0 || pages > 16384) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      if (bos_.size() >= 64) {
        ctx.cov(202);
        return err::kENOSPC;
      }
      const uint32_t h = next_handle_++;
      bos_.emplace(h, Bo{pages, false});
      uint32_t order = 0;
      for (uint32_t p = pages; p > 1; p >>= 1) ++order;
      ctx.covp(21, order);
      put_u32(out, h);
      return 0;
    }
    case kIocMapBo: {
      const uint32_t h = le_u32(in, 0);
      ctx.cov(210);
      auto it = bos_.find(h);
      if (it == bos_.end()) {
        ctx.cov(211);
        return err::kEINVAL;
      }
      it->second.mapped = true;
      ctx.cov(212);
      put_u64(out, 0x10000000ull + h * 0x1000);
      return 0;
    }
    case kIocDestroyBo: {
      const uint32_t h = le_u32(in, 0);
      ctx.cov(220);
      if (bos_.erase(h) == 0) {
        ctx.cov(221);
        return err::kEINVAL;
      }
      ctx.cov(222);
      return 0;
    }
    case kIocSubmit: {
      // u32 pipe, u32 n, n x u32 handles.
      const uint32_t pipe = le_u32(in, 0);
      const uint32_t n = le_u32(in, 4);
      ctx.cov(300);
      if (pipe > 2) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      if (n == 0 || n > 16 || in.size() < 8 + n * 4u) {
        ctx.cov(302);
        return err::kEINVAL;
      }
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t h = le_u32(in, 8 + i * 4);
        auto it = bos_.find(h);
        if (it == bos_.end()) {
          ctx.cov(303);
          return err::kEINVAL;
        }
        if (!it->second.mapped) {
          ctx.cov(304);
          return err::kEFAULT;
        }
        ctx.covp(31, pipe * 8 + i % 8);
      }
      ctx.covp(32, n);
      put_u32(out, next_fence_++);
      return 0;
    }
    case kIocWait: {
      const uint32_t fence = le_u32(in, 0);
      ctx.cov(400);
      if (fence == 0 || fence >= next_fence_) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      ctx.covp(41, fence % 8);
      return 0;
    }
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

int64_t DrmGpuDriver::mmap(DriverCtx& ctx, File&, size_t len, uint64_t) {
  ctx.cov(230);
  if (len == 0) return err::kEINVAL;
  ctx.covp(23, len / 4096 % 8);
  return 0;
}

}  // namespace df::kernel::drivers
