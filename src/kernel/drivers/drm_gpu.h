// DRM display/render driver (simulated).
//
// Buffer-object lifecycle (create/map/destroy) plus command submission over
// BO lists — the kernel counterpart of the Graphics HAL's composition path.
// No planted bug.
#pragma once

#include <map>

#include "kernel/driver.h"

namespace df::kernel::drivers {

class DrmGpuDriver final : public Driver {
 public:
  static constexpr uint64_t kIocGetCap = 0xd001;     // u32 cap id
  static constexpr uint64_t kIocCreateBo = 0xd002;   // u32 size_pages
  static constexpr uint64_t kIocMapBo = 0xd003;      // u32 handle
  static constexpr uint64_t kIocDestroyBo = 0xd004;  // u32 handle
  static constexpr uint64_t kIocSubmit = 0xd005;     // u32 pipe, u32 n, h[]
  static constexpr uint64_t kIocWait = 0xd006;       // u32 fence

  std::string_view name() const override { return "drm_gpu"; }
  std::vector<std::string> nodes() const override {
    return {"/dev/dri_card0"};
  }
  std::vector<std::string> state_names() const override {
    return {"idle", "bo_allocated", "bo_mapped", "submitted"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$DRM_CREATE_BO", {{"pages", 1}}}}},
        {1, 2, {{"ioctl$DRM_MAP_BO"}}},
        {2, 3, {{"ioctl$DRM_SUBMIT", {{"pipe", 0}}}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(next_handle_);
    b.u32(next_fence_);
    b.u32(static_cast<uint32_t>(bos_.size()));
    for (const auto& [h, bo] : bos_) {  // std::map: already handle-sorted
      b.u32(h);
      b.u32(bo.pages);
      b.b(bo.mapped);
    }
  }
  void load_state(StateReader& r) override {
    next_handle_ = r.u32();
    next_fence_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t h = r.u32();
      Bo bo;
      bo.pages = r.u32();
      bo.mapped = r.b();
      bos_[h] = bo;
    }
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }
  int64_t mmap(DriverCtx& ctx, File& f, size_t len, uint64_t prot) override;

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Composition-path position: submissions trump mapping trump allocation.
  size_t protocol_state() const {
    if (next_fence_ > 1) return 3;
    size_t st = 0;
    for (const auto& [h, bo] : bos_) {
      if (bo.mapped) return 2;
      st = 1;
    }
    return st;
  }

  struct Bo {
    uint32_t pages = 0;
    bool mapped = false;
  };

  uint32_t next_handle_ = 1;
  uint32_t next_fence_ = 1;
  std::map<uint32_t, Bo> bos_;
};

}  // namespace df::kernel::drivers
