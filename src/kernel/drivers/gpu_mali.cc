#include "kernel/drivers/gpu_mali.h"

#include <vector>

namespace df::kernel::drivers {

// Block map: 1xx ctx, 2xx pool, 3xx submit parse, 4xx scheduler, 5xx wait.

void MaliDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void MaliDriver::reset() {
  ctxs_.clear();
  next_ctx_ = 1;
}

int64_t MaliDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                          std::span<const uint8_t> in,
                          std::vector<uint8_t>& out) {
  switch (req) {
    case kIocCtxCreate: {
      ctx.cov(110);
      if (ctxs_.size() >= 16) {
        ctx.cov(111);
        return err::kENOSPC;
      }
      const uint32_t id = next_ctx_++;
      ctxs_.emplace(id, GpuCtx{});
      ctx.covp(12, ctxs_.size());
      put_u32(out, id);
      return 0;
    }
    case kIocCtxDestroy: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(130);
      if (ctxs_.erase(id) == 0) {
        ctx.cov(131);
        return err::kEINVAL;
      }
      ctx.cov(132);
      return 0;
    }
    case kIocMemPool: {
      const uint32_t id = le_u32(in, 0);
      const uint32_t pages = le_u32(in, 4);
      ctx.cov(200);
      auto it = ctxs_.find(id);
      if (it == ctxs_.end()) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      if (pages == 0 || pages > 65536) {
        ctx.cov(202);
        return err::kEINVAL;
      }
      it->second.pool_pages = pages;
      // Pool grow paths bucketed by order of magnitude.
      uint32_t order = 0;
      for (uint32_t p = pages; p > 1; p >>= 1) ++order;
      ctx.covp(21, order);
      return 0;
    }
    case kIocJobSubmit: {
      // Payload: u32 ctx_id, u32 njobs, then njobs x {u32 type, u32 dep}.
      ctx.cov(300);
      const uint32_t id = le_u32(in, 0);
      const uint32_t njobs = le_u32(in, 4);
      auto it = ctxs_.find(id);
      if (it == ctxs_.end()) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      GpuCtx& g = it->second;
      if (g.pool_pages == 0) {
        ctx.cov(302);
        return err::kENOMEM;  // no backing memory configured
      }
      if (njobs == 0 || njobs > 32 || in.size() < 8 + njobs * 8u) {
        ctx.cov(303);
        return err::kEINVAL;
      }
      struct Job {
        uint32_t type;
        uint32_t dep;
        bool done = false;
      };
      std::vector<Job> jobs;
      jobs.reserve(njobs);
      bool has_fragment = false;
      for (uint32_t i = 0; i < njobs; ++i) {
        Job j{le_u32(in, 8 + i * 8), le_u32(in, 12 + i * 8), false};
        if (j.type > kJobCompute) {
          ctx.cov(304);
          return err::kEINVAL;
        }
        if (j.type == kJobFragment) has_fragment = true;
        jobs.push_back(j);
      }
      ctx.covp(31, njobs);

      // Scheduler: run any job whose dependency is satisfied. dep == 0
      // means "no dependency"; dep == k depends on job k (1-based).
      // A hardened driver validates acyclicity up front; the vendor one
      // only does when the bug is "fixed" (flag off).
      if (!bugs_.job_loop || !has_fragment) {
        // Cycle pre-check (the fixed behaviour).
        for (uint32_t i = 0; i < njobs; ++i) {
          uint32_t seen = 0, cur = i + 1;
          while (cur != 0 && seen <= njobs) {
            cur = jobs[cur - 1].dep > njobs ? 0 : jobs[cur - 1].dep;
            ++seen;
          }
          if (seen > njobs) {
            ctx.cov(305);
            return err::kEINVAL;
          }
        }
      }
      ctx.cov(400);
      size_t remaining = jobs.size();
      while (remaining > 0) {
        if (!ctx.loop_guard("gpu_mali_job_loop")) return err::kEINTR;
        bool progress = false;
        for (auto& j : jobs) {
          if (j.done) continue;
          const bool dep_ok =
              j.dep == 0 || (j.dep <= njobs && jobs[j.dep - 1].done);
          if (!dep_ok) continue;
          j.done = true;
          --remaining;
          progress = true;
          ++g.jobs_run;
          ctx.covp(41, j.type);  // per-job-type execution units
          if (j.type == kJobFragment) ctx.covp(42, g.pool_pages % 16);
        }
        if (!progress) {
          if (bugs_.job_loop && has_fragment) {
            // Vendor bug: the scheduler retries forever waiting for the
            // dependency to resolve instead of failing the chain.
            ctx.cov(410);
            continue;
          }
          ctx.cov(411);
          return err::kEINVAL;  // unresolvable chain, fail cleanly
        }
      }
      ++g.completed_batches;
      ctx.covp(43, g.completed_batches % 8);
      return 0;
    }
    case kIocJobWait: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(500);
      auto it = ctxs_.find(id);
      if (it == ctxs_.end()) return err::kEINVAL;
      put_u64(out, it->second.jobs_run);
      ctx.covp(51, it->second.jobs_run % 8);
      return 0;
    }
    case kIocGetVersion:
      ctx.cov(510);
      put_u32(out, 0x0b0a0900);  // r11p0
      return 0;
    case kIocFlush: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(520);
      auto it = ctxs_.find(id);
      if (it == ctxs_.end()) return err::kEINVAL;
      ctx.cov(521);
      return 0;
    }
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

}  // namespace df::kernel::drivers
