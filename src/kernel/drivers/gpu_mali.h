// Mali-style GPU job-chain driver (simulated vendor kbase).
//
// Contexts, memory pools, and job-chain submission with inter-job
// dependencies. Planted bug (Table II #5): submitting a dependency *cycle*
// that includes a fragment job, on a context with a configured memory pool,
// spins the job scheduler forever — the watchdog then reports
// "Infinite Loop in gpu_mali_job_loop". Reaching it needs a valid context
// id, a pool, and a crafted multi-record payload: deep for syscall fuzzing,
// routine for the Graphics/Media HAL submission paths.
#pragma once

#include <algorithm>
#include <map>

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct MaliBugs {
  bool job_loop = false;  // Table II #5 (device A2)
};

class MaliDriver final : public Driver {
 public:
  static constexpr uint64_t kIocCtxCreate = 0x8001;
  static constexpr uint64_t kIocCtxDestroy = 0x8002;  // u32 ctx
  static constexpr uint64_t kIocMemPool = 0x8003;     // u32 ctx, u32 pages
  static constexpr uint64_t kIocJobSubmit = 0x8004;   // header + job records
  static constexpr uint64_t kIocJobWait = 0x8005;     // u32 ctx
  static constexpr uint64_t kIocGetVersion = 0x8006;
  static constexpr uint64_t kIocFlush = 0x8007;       // u32 ctx

  // Job record types.
  static constexpr uint32_t kJobNull = 0;
  static constexpr uint32_t kJobVertex = 1;
  static constexpr uint32_t kJobFragment = 2;
  static constexpr uint32_t kJobCompute = 3;

  explicit MaliDriver(MaliBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "gpu_mali"; }
  std::vector<std::string> nodes() const override { return {"/dev/mali0"}; }
  std::vector<std::string> state_names() const override {
    return {"no_ctx", "ctx_ready", "pool_ready", "jobs_running"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$MALI_CTX_CREATE"}}},
        {1, 2, {{"ioctl$MALI_MEM_POOL", {{"pages", 16}}}}},
        {2, 3, {{"ioctl$MALI_JOB_SUBMIT", {{"njobs", 1}, {"jobs", 8}}}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(next_ctx_);
    b.u32(static_cast<uint32_t>(ctxs_.size()));
    for (const auto& [id, c] : ctxs_) {  // std::map: already id-sorted
      b.u32(id);
      b.u32(c.pool_pages);
      b.u64(c.jobs_run);
      b.u32(c.completed_batches);
    }
  }
  void load_state(StateReader& r) override {
    next_ctx_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      GpuCtx c;
      c.pool_pages = r.u32();
      c.jobs_run = r.u64();
      c.completed_batches = r.u32();
      ctxs_[id] = c;
    }
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Deepest position any context has reached in the submission protocol.
  size_t protocol_state() const {
    size_t st = 0;
    for (const auto& [id, c] : ctxs_) {
      if (c.jobs_run > 0) return 3;
      st = std::max(st, c.pool_pages > 0 ? size_t{2} : size_t{1});
    }
    return st;
  }

  struct GpuCtx {
    uint32_t pool_pages = 0;
    uint64_t jobs_run = 0;
    uint32_t completed_batches = 0;
  };

  MaliBugs bugs_;
  uint32_t next_ctx_ = 1;
  std::map<uint32_t, GpuCtx> ctxs_;
};

}  // namespace df::kernel::drivers
