#include "kernel/drivers/ion_alloc.h"

namespace df::kernel::drivers {

// Block map: 1xx alloc, 2xx free/share, 3xx query.

void IonDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void IonDriver::reset() {
  bufs_.clear();
  next_id_ = 1;
}

int64_t IonDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                         std::span<const uint8_t> in,
                         std::vector<uint8_t>& out) {
  switch (req) {
    case kIocAlloc: {
      const uint32_t len = le_u32(in, 0);
      const uint32_t heap_mask = le_u32(in, 4);
      ctx.cov(110);
      if (len == 0 || len > (64u << 20)) {
        ctx.cov(111);
        return err::kEINVAL;
      }
      if ((heap_mask & 0xf) == 0) {
        ctx.cov(112);
        return err::kEINVAL;  // no eligible heap
      }
      if (bufs_.size() >= 128) {
        ctx.cov(113);
        return err::kENOMEM;
      }
      const uint32_t id = next_id_++;
      bufs_.emplace(id, Buf{len, heap_mask & 0xf, false});
      for (uint32_t bit = 0; bit < 4; ++bit) {
        if (heap_mask & (1u << bit)) ctx.covp(12, bit);
      }
      uint32_t order = 0;
      for (uint32_t l = len >> 12; l > 1; l >>= 1) ++order;
      ctx.covp(13, order);
      put_u32(out, id);
      return 0;
    }
    case kIocFree: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(200);
      if (bufs_.erase(id) == 0) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      ctx.cov(202);
      return 0;
    }
    case kIocShare: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(210);
      auto it = bufs_.find(id);
      if (it == bufs_.end()) {
        ctx.cov(211);
        return err::kEINVAL;
      }
      it->second.shared = true;
      ctx.covp(22, it->second.heap);
      put_u32(out, id | 0x80000000u);
      return 0;
    }
    case kIocQuery:
      ctx.cov(300);
      put_u32(out, static_cast<uint32_t>(bufs_.size()));
      ctx.covp(31, bufs_.size() % 8);
      return 0;
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

}  // namespace df::kernel::drivers
