// ION-style DMA buffer allocator (simulated).
//
// Heap-masked allocations shared between the media/camera/graphics HALs and
// their kernel drivers; allocation ids act as cross-driver buffer currency.
// No planted bug.
#pragma once

#include <map>

#include "kernel/driver.h"

namespace df::kernel::drivers {

class IonDriver final : public Driver {
 public:
  static constexpr uint64_t kIocAlloc = 0xe001;  // u32 len, u32 heap_mask
  static constexpr uint64_t kIocFree = 0xe002;   // u32 id
  static constexpr uint64_t kIocShare = 0xe003;  // u32 id
  static constexpr uint64_t kIocQuery = 0xe004;

  std::string_view name() const override { return "ion_alloc"; }
  std::vector<std::string> nodes() const override { return {"/dev/ion"}; }
  std::vector<std::string> state_names() const override {
    return {"empty", "allocated", "shared"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$ION_ALLOC", {{"len", 4096}, {"heap", 1}}}}},
        {1, 2, {{"ioctl$ION_SHARE"}}},
        {1, 0, {{"ioctl$ION_FREE"}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(next_id_);
    b.u32(static_cast<uint32_t>(bufs_.size()));
    for (const auto& [id, buf] : bufs_) {  // std::map: already id-sorted
      b.u32(id);
      b.u32(buf.len);
      b.u32(buf.heap);
      b.b(buf.shared);
    }
  }
  void load_state(StateReader& r) override {
    next_id_ = r.u32();
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      const uint32_t id = r.u32();
      Buf buf;
      buf.len = r.u32();
      buf.heap = r.u32();
      buf.shared = r.b();
      bufs_[id] = buf;
    }
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Allocator position: any buffer shared cross-driver > any live buffer.
  size_t protocol_state() const {
    bool allocated = false;
    for (const auto& [id, b] : bufs_) {
      if (b.shared) return 2;
      allocated = true;
    }
    return allocated ? 1 : 0;
  }

  struct Buf {
    uint32_t len = 0;
    uint32_t heap = 0;
    bool shared = false;
  };

  uint32_t next_id_ = 1;
  std::map<uint32_t, Buf> bufs_;
};

}  // namespace df::kernel::drivers
