#include "kernel/drivers/l2cap.h"

namespace df::kernel::drivers {

// Block map: 1xx create/bind, 2xx connect, 3xx listen/accept, 4xx sockopt,
// 5xx send, 6xx recv, 7xx release.

void L2capDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void L2capDriver::reset() {
  listeners_.clear();
  bound_.clear();
}

int64_t L2capDriver::sock_create(DriverCtx& ctx, File& f) {
  ctx.cov(110);
  f.make_state<SockState>();
  return 0;
}

int64_t L2capDriver::bind(DriverCtx& ctx, File& f,
                          std::span<const uint8_t> addr) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(120);
  if (addr.size() < 2) {
    ctx.cov(121);
    return err::kEINVAL;
  }
  const uint16_t psm = le_u16(addr, 0);
  if ((psm & 1) == 0 || psm >= 0x1000) {
    // Valid dynamic PSMs are odd and below 0x1000.
    ctx.cov(122);
    return err::kEINVAL;
  }
  if (ss->st != Chan::kClosed) {
    ctx.cov(123);
    return err::kEINVAL;
  }
  if (bound_.count(psm) != 0) {
    ctx.cov(124);
    return err::kEADDRINUSE;
  }
  ++bound_[psm];
  ss->psm = psm;
  ss->st = Chan::kBound;
  track_chan(ss->st);
  ctx.covp(13, psm % 32);  // PSM hash-bucket paths
  return 0;
}

int64_t L2capDriver::connect(DriverCtx& ctx, File& f,
                             std::span<const uint8_t> addr) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(200);
  if (addr.size() < 2) {
    ctx.cov(201);
    return err::kEINVAL;
  }
  if (ss->st != Chan::kClosed && ss->st != Chan::kBound) {
    ctx.cov(202);
    return err::kEBUSY;
  }
  const uint16_t psm = le_u16(addr, 0);
  auto it = listeners_.find(psm);
  if (it != listeners_.end() && it->second->pending < it->second->backlog) {
    // Local loopback connection: queue on the listener, move to CONFIG.
    ++it->second->pending;
    ss->st = Chan::kConfig;
    track_chan(ss->st);
    ss->psm = psm;
    ctx.covp(21, psm % 16);
    return 0;
  }
  // Remote peer: the response never arrives in this simulation, so the
  // channel sits in CONNECTING — exactly the window for bug #8.
  ss->st = Chan::kConnecting;
  track_chan(ss->st);
  ss->psm = psm;
  ctx.cov(220);
  return 0;
}

int64_t L2capDriver::listen(DriverCtx& ctx, File& f, uint64_t backlog) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(300);
  if (ss->st != Chan::kBound) {
    ctx.cov(301);
    return err::kEINVAL;
  }
  if (backlog == 0 || backlog > 8) {
    ctx.cov(302);
    return err::kEINVAL;
  }
  ss->backlog = static_cast<uint32_t>(backlog);
  ss->accept_q = ctx.kmalloc(ss->backlog * 16, "l2cap:accept_q");
  ss->st = Chan::kListening;
  track_chan(ss->st);
  listeners_[ss->psm] = ss;
  ctx.covp(31, backlog);
  return 0;
}

int64_t L2capDriver::accept(DriverCtx& ctx, File& listener, File& child) {
  auto* ls = listener.state<SockState>();
  if (ls == nullptr) return err::kEINVAL;
  ctx.cov(310);
  if (ls->st != Chan::kListening) {
    ctx.cov(311);
    return err::kEINVAL;
  }
  if (ls->pending == 0) {
    ctx.cov(312);
    return err::kEAGAIN;
  }
  --ls->pending;
  auto* cs = child.make_state<SockState>();
  cs->st = Chan::kConnected;
  track_chan(cs->st);
  cs->psm = ls->psm;
  if (bugs_.accept_unlink_uaf) {
    // Vendor bug: the child stays linked into the parent's accept queue
    // after accept(); unlink happens lazily at child close.
    cs->parent_q = ls->accept_q;
  }
  ctx.cov(313);
  ctx.covp(35, cs->psm % 16);  // per-PSM child setup paths
  return 0;
}

int64_t L2capDriver::setsockopt(DriverCtx& ctx, File& f, uint64_t level,
                                uint64_t opt, std::span<const uint8_t> in) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(400);
  if (level != 6 /*SOL_L2CAP*/) {
    ctx.cov(401);
    return err::kEOPNOTSUPP;
  }
  switch (opt) {
    case 1: {  // L2CAP_OPTIONS: mtu
      const uint32_t mtu = le_u32(in, 0);
      if (mtu < 48 || mtu > 65535) {
        ctx.cov(402);
        return err::kEINVAL;
      }
      ss->mtu = mtu;
      ctx.covp(41, mtu / 4096);
      return 0;
    }
    case 2: {  // channel mode
      const uint32_t mode = le_u32(in, 0);
      if (mode > 3) {
        ctx.cov(403);
        return err::kEINVAL;
      }
      ctx.covp(42, mode);
      return 0;
    }
    default:
      ctx.cov(404);
      return err::kEINVAL;
  }
}

int64_t L2capDriver::sendmsg(DriverCtx& ctx, File& f,
                             std::span<const uint8_t> data) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(500);
  if (data.empty()) {
    ctx.cov(501);
    return err::kEINVAL;
  }
  const uint8_t op = data[0];
  switch (op) {
    case kCtlConfigReq:
      ctx.cov(510);
      if (ss->st != Chan::kConfig) {
        ctx.cov(511);
        return err::kEINVAL;
      }
      if (data.size() >= 5) {
        const uint32_t mtu = le_u32(data, 1);
        if (mtu >= 48 && mtu <= 65535) ss->mtu = mtu;  // else keep default
      }
      ss->st = Chan::kConnected;
      track_chan(ss->st);
      ctx.cov(512);
      return 0;
    case kCtlDisconnReq:
      ctx.cov(520);
      if (ss->st == Chan::kConnecting) {
        // Disconnect while the connect response is outstanding: the state
        // machine has no channel to tear down yet and WARNs.
        ctx.cov(521);
        if (bugs_.disconn_warn) {
          ctx.warn("l2cap_send_disconn_req", "chan in BT_CONNECT state");
        }
        ss->st = Chan::kClosed;
        track_chan(ss->st);
        return 0;
      }
      if (ss->st == Chan::kConnected || ss->st == Chan::kConfig) {
        ctx.cov(522);
        ss->st = Chan::kClosed;
        track_chan(ss->st);
        return 0;
      }
      ctx.cov(523);
      return err::kEINVAL;
    case kCtlEchoReq:
      ctx.cov(530);
      if (ss->st != Chan::kConnected) return err::kEINVAL;
      ctx.covp(53, data.size() % 8);
      return 0;
    default:
      // Data plane.
      ctx.cov(540);
      if (ss->st != Chan::kConnected) {
        ctx.cov(541);
        return err::kEPIPE;
      }
      if (data.size() > ss->mtu) {
        ctx.cov(542);
        return err::kEINVAL;
      }
      ++ss->tx;
      ctx.covp(54, data.size() / 64);  // fragmentation paths
      return static_cast<int64_t>(data.size());
  }
}

int64_t L2capDriver::recvmsg(DriverCtx& ctx, File& f, size_t,
                             std::vector<uint8_t>& out) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return err::kEINVAL;
  ctx.cov(600);
  if (ss->st != Chan::kConnected || ss->tx == 0) {
    ctx.cov(601);
    return err::kEAGAIN;
  }
  // Loopback echo of the last transmission's sequence number.
  put_u64(out, ss->tx);
  ctx.cov(602);
  return static_cast<int64_t>(out.size());
}

void L2capDriver::release(DriverCtx& ctx, File& f) {
  auto* ss = f.state<SockState>();
  if (ss == nullptr) return;
  ctx.cov(700);
  track_chan(Chan::kClosed);  // socket teardown closes the channel
  if (ss->st == Chan::kBound || ss->st == Chan::kListening) {
    auto it = bound_.find(ss->psm);
    if (it != bound_.end() && --it->second == 0) bound_.erase(it);
  }
  if (ss->st == Chan::kListening) {
    listeners_.erase(ss->psm);
    ctx.kfree(ss->accept_q, "l2cap_sock_release");
    ss->accept_q = kNullHeapPtr;
    ctx.cov(701);
  }
  if (ss->parent_q != kNullHeapPtr) {
    // bt_accept_unlink: drop the child from the parent's accept queue. If
    // the parent already closed, its queue is gone -> use-after-free.
    ctx.cov(702);
    ctx.covp(71, ss->psm % 16);  // per-PSM unlink paths
    ctx.mem_check(ss->parent_q, 0, 8, Access::kRead, "bt_accept_unlink");
    ss->parent_q = kNullHeapPtr;
  }
}

void L2capDriver::save_state(StateBuf& b) const {
  // listeners_ holds raw pointers into File priv; it is rebuilt by
  // load_file_state() when the listening sockets reload.
  b.u32(static_cast<uint32_t>(bound_.size()));
  for (const auto& [psm, n] : bound_) {  // std::map: already psm-sorted
    b.u16(psm);
    b.u32(n);
  }
}

void L2capDriver::load_state(StateReader& r) {
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const uint16_t psm = r.u16();
    bound_[psm] = r.u32();
  }
}

void L2capDriver::save_file_state(const File& f, StateBuf& b) const {
  const auto* ss = f.state<SockState>();
  b.b(ss != nullptr);
  if (ss == nullptr) return;
  b.u32(static_cast<uint32_t>(ss->st));
  b.u16(ss->psm);
  b.u32(ss->mtu);
  b.u32(ss->backlog);
  b.u32(ss->pending);
  b.u64(ss->accept_q);
  b.u64(ss->parent_q);
  b.u64(ss->tx);
}

void L2capDriver::load_file_state(File& f, StateReader& r) {
  if (!r.b()) return;
  auto* ss = f.make_state<SockState>();
  ss->st = static_cast<Chan>(r.u32());
  ss->psm = r.u16();
  ss->mtu = r.u32();
  ss->backlog = r.u32();
  ss->pending = r.u32();
  ss->accept_q = r.u64();
  ss->parent_q = r.u64();
  ss->tx = r.u64();
  // Re-link the adapter-global listener table (reset() just cleared it).
  if (ss->st == Chan::kListening) listeners_[ss->psm] = ss;
}

}  // namespace df::kernel::drivers
