// Bluetooth L2CAP socket layer (simulated kernel subsystem).
//
// SEQPACKET sockets over AF_BLUETOOTH/BTPROTO_L2CAP: bind to a PSM, listen/
// accept on the server side, connect + configure + data on the client side.
//
// Two planted bugs live here:
//  * Table II #8 (device B, shallow): sending an L2CAP Disconnect request
//    while the channel is still in the CONNECTING state trips
//    "WARNING in l2cap_send_disconn_req" — reachable in three loosely
//    constrained calls, which is why Syzkaller also finds it in the paper.
//  * Table II #11 (device D, deep): the accept queue is freed when the
//    listening socket closes, but accepted children keep a pointer into it;
//    closing the child afterwards touches the freed queue in
//    bt_accept_unlink -> "KASAN: slab-use-after-free Read in
//    bt_accept_unlink". Needs two sockets and a precise 6-call order.
#pragma once

#include <map>

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct L2capBugs {
  bool disconn_warn = false;      // Table II #8 (device B)
  bool accept_unlink_uaf = false;  // Table II #11 (device D)
};

class L2capDriver final : public Driver {
 public:
  // First byte of a sendmsg payload selects the control opcode; anything
  // >= 0x10 is treated as data.
  static constexpr uint8_t kCtlConfigReq = 0x04;
  static constexpr uint8_t kCtlDisconnReq = 0x06;
  static constexpr uint8_t kCtlEchoReq = 0x08;

  explicit L2capDriver(L2capBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "l2cap"; }
  std::vector<SockTriple> socket_protos() const override {
    return {{kAfBluetooth, kSockSeqpacket, kBtProtoL2cap}};
  }
  // Channel states are per-socket; the driver-level machine tracks whichever
  // channel transitioned last, so the matrix records the protocol orderings
  // the fuzzer actually exercised across all sockets.
  std::vector<std::string> state_names() const override {
    return {"closed", "bound", "listening", "connecting", "config",
            "connected"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"bind$l2cap", {{"psm", 1}}}}},
        {1, 2, {{"listen$l2cap", {{"backlog", 1}}}}},
        // No listener on PSM 25: the connect response never arrives.
        {0, 3, {{"connect$l2cap", {{"psm", 25}}}}},
        {3, 0, {{"sendmsg$l2cap_disconn"}}},
        // A second socket's (instance 1) loopback connect against the
        // listener's PSM: connecting on the listener itself would EBUSY.
        {2, 4, {{"connect$l2cap", {{"psm", 1}}, 1}}},
        {4, 5, {{"sendmsg$l2cap_config", {{"mtu", 1024}}, 1}}},
        {5, 0, {{"sendmsg$l2cap_disconn", {}, 1}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override;
  void load_state(StateReader& r) override;
  void save_file_state(const File& f, StateBuf& b) const override;
  void load_file_state(File& f, StateReader& r) override;

  int64_t sock_create(DriverCtx& ctx, File& f) override;
  int64_t bind(DriverCtx& ctx, File& f,
               std::span<const uint8_t> addr) override;
  int64_t connect(DriverCtx& ctx, File& f,
                  std::span<const uint8_t> addr) override;
  int64_t listen(DriverCtx& ctx, File& f, uint64_t backlog) override;
  int64_t accept(DriverCtx& ctx, File& listener, File& child) override;
  int64_t setsockopt(DriverCtx& ctx, File& f, uint64_t level, uint64_t opt,
                     std::span<const uint8_t> in) override;
  int64_t sendmsg(DriverCtx& ctx, File& f,
                  std::span<const uint8_t> data) override;
  int64_t recvmsg(DriverCtx& ctx, File& f, size_t n,
                  std::vector<uint8_t>& out) override;
  void release(DriverCtx& ctx, File& f) override;

 private:
  enum class Chan {
    kClosed,
    kBound,
    kListening,
    kConnecting,
    kConfig,
    kConnected,
  };

  struct SockState {
    Chan st = Chan::kClosed;
    uint16_t psm = 0;
    uint32_t mtu = 672;
    uint32_t backlog = 0;
    uint32_t pending = 0;          // queued incoming connections (listener)
    HeapPtr accept_q = kNullHeapPtr;  // listener's accept queue allocation
    HeapPtr parent_q = kNullHeapPtr;  // child's pointer into parent queue
    uint64_t tx = 0;
  };

  void track_chan(Chan c) { enter_state(static_cast<size_t>(c)); }

  L2capBugs bugs_;
  // PSM -> listening socket state (single adapter).
  std::map<uint16_t, SockState*> listeners_;
  // PSMs with a bound (not necessarily listening) socket.
  std::map<uint16_t, uint32_t> bound_;
};

}  // namespace df::kernel::drivers
