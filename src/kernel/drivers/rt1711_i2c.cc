#include "kernel/drivers/rt1711_i2c.h"

namespace df::kernel::drivers {

// Block map: 1xx probe, 2xx attach, 3xx cc, 4xx vbus, 5xx alert, 6xx status.

void Rt1711Driver::probe(DriverCtx& ctx) {
  chip_ = Chip::kIdle;
  mode_ = cc1_ = cc2_ = vbus_mv_ = alert_mask_ = 0;
  do_probe(ctx);
}

void Rt1711Driver::do_probe(DriverCtx& ctx) {
  ++probe_count_;
  ctx.cov(100);
  ctx.cov(101 + probe_count_ % 4);  // vendor init retries differ per boot
  if (chip_ == Chip::kAttached) {
    // Re-probe with a partner attached: the vendor driver forgets to tear
    // down the CC state machine first and trips a WARN_ON in probe.
    ctx.cov(110);
    if (bugs_.probe_warn) {
      ctx.warn("rt1711_i2c_probe", "re-probe with active CC attach");
    }
    chip_ = Chip::kIdle;
    track_chip();
  }
  ctx.cov(120);
}

void Rt1711Driver::reset() {
  chip_ = Chip::kIdle;
  mode_ = cc1_ = cc2_ = vbus_mv_ = alert_mask_ = 0;
}

int64_t Rt1711Driver::open(DriverCtx& ctx, File&) {
  ctx.cov(1);
  return 0;
}

int64_t Rt1711Driver::ioctl(DriverCtx& ctx, File&, uint64_t req,
                            std::span<const uint8_t> in,
                            std::vector<uint8_t>& out) {
  switch (req) {
    case kIocAttach: {
      const uint32_t mode = le_u32(in, 0);
      ctx.cov(200);
      if (mode == 0 || mode > 3) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      ctx.covp(21, mode);  // per-mode attach paths
      if (chip_ == Chip::kAttached) {
        ctx.cov(202);
        return err::kEBUSY;
      }
      mode_ = mode;
      chip_ = Chip::kAttached;
      track_chip();
      ctx.covp(22, mode * 4 + (cc1_ & 3));  // attach outcome depends on CC
      return 0;
    }
    case kIocDetach:
      ctx.cov(210);
      if (chip_ != Chip::kAttached) return err::kEINVAL;
      chip_ = Chip::kIdle;
      track_chip();
      ctx.cov(211);
      return 0;
    case kIocReset:
      ctx.cov(220);
      // Chip reset path re-enters probe (the planted bug's entry point).
      do_probe(ctx);
      return 0;
    case kIocSetCc: {
      const uint32_t cc1 = le_u32(in, 0), cc2 = le_u32(in, 4);
      ctx.cov(300);
      if (cc1 > 3 || cc2 > 3) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      cc1_ = cc1;
      cc2_ = cc2;
      ctx.covp(31, cc1 * 4 + cc2);  // 16 distinct CC configurations
      return 0;
    }
    case kIocVbus: {
      const uint32_t mv = le_u32(in, 0);
      ctx.cov(400);
      if (chip_ != Chip::kAttached) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      if (mv > 20000) {
        ctx.cov(402);
        return err::kEINVAL;
      }
      vbus_mv_ = mv;
      ctx.covp(41, mv / 1000);  // per-kV regulator paths
      return 0;
    }
    case kIocAlert: {
      const uint32_t mask = le_u32(in, 0);
      ctx.cov(500);
      alert_mask_ = mask & 0xff;
      for (uint32_t bit = 0; bit < 8; ++bit) {
        if (alert_mask_ & (1u << bit)) ctx.covp(51, bit);
      }
      if (alert_mask_ != 0 && chip_ == Chip::kAttached) {
        chip_ = Chip::kAlerting;
        track_chip();
        ctx.cov(510);
      }
      return 0;
    }
    case kIocGetStatus:
      ctx.cov(600);
      ctx.covp(61, static_cast<uint64_t>(chip_));
      put_u32(out, static_cast<uint32_t>(chip_));
      put_u32(out, mode_);
      put_u32(out, vbus_mv_);
      return 0;
    default:
      ctx.cov(2);
      return err::kENOTTY;
  }
}

int64_t Rt1711Driver::read(DriverCtx& ctx, File&, size_t n,
                           std::vector<uint8_t>& out) {
  ctx.cov(700);
  if (n == 0) return 0;
  // Alert FIFO: drains one event per read when alerting.
  if (chip_ == Chip::kAlerting) {
    ctx.cov(701);
    put_u32(out, alert_mask_);
    chip_ = Chip::kAttached;
    track_chip();
    return static_cast<int64_t>(out.size());
  }
  ctx.cov(702);
  return err::kEAGAIN;
}

}  // namespace df::kernel::drivers
