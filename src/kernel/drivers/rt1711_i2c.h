// Richtek RT1711 Type-C port-controller driver (simulated).
//
// Models the vendor rt1711h I2C driver found on the Xiaomi dev boards:
// attach/detach CC logic, VBUS control, alert masking, and a chip-reset path
// that re-enters the probe routine. Planted bug (Table II #1): resetting the
// chip while a partner is attached re-probes with stale CC state and trips
// "WARNING in rt1711_i2c_probe". The trigger is shallow (open + 2 ioctls),
// which is why Syzkaller also finds this one in the paper.
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct Rt1711Bugs {
  bool probe_warn = false;  // Table II #1 (device A1)
};

class Rt1711Driver final : public Driver {
 public:
  static constexpr uint64_t kIocAttach = 0x7401;
  static constexpr uint64_t kIocDetach = 0x7402;
  static constexpr uint64_t kIocReset = 0x7403;
  static constexpr uint64_t kIocGetStatus = 0x7404;
  static constexpr uint64_t kIocSetCc = 0x7405;
  static constexpr uint64_t kIocVbus = 0x7406;
  static constexpr uint64_t kIocAlert = 0x7407;

  explicit Rt1711Driver(Rt1711Bugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "rt1711_i2c"; }
  std::vector<std::string> nodes() const override { return {"/dev/rt1711"}; }
  std::vector<std::string> state_names() const override {
    return {"idle", "attached", "alerting"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$RT1711_ATTACH", {{"mode", 1}}}}},
        {1, 0, {{"ioctl$RT1711_DETACH"}}},
        {1, 2, {{"ioctl$RT1711_ALERT", {{"mask", 1}}}}},
        {2, 1, {{"read$rt1711", {{"size", 4}}}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(static_cast<uint32_t>(chip_));
    b.u32(mode_);
    b.u32(cc1_);
    b.u32(cc2_);
    b.u32(vbus_mv_);
    b.u32(alert_mask_);
    b.u32(probe_count_);  // per-boot, but part of the observable state
  }
  void load_state(StateReader& r) override {
    chip_ = static_cast<Chip>(r.u32());
    mode_ = r.u32();
    cc1_ = r.u32();
    cc2_ = r.u32();
    vbus_mv_ = r.u32();
    alert_mask_ = r.u32();
    probe_count_ = r.u32();
  }

  int64_t open(DriverCtx& ctx, File& f) override;
  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override;
  int64_t read(DriverCtx& ctx, File& f, size_t n,
               std::vector<uint8_t>& out) override;

 private:
  enum class Chip { kIdle, kAttached, kAlerting };

  void do_probe(DriverCtx& ctx);
  void track_chip() { enter_state(static_cast<size_t>(chip_)); }

  Rt1711Bugs bugs_;
  Chip chip_ = Chip::kIdle;
  uint32_t mode_ = 0;      // 1=sink 2=source 3=drp
  uint32_t cc1_ = 0, cc2_ = 0;
  uint32_t vbus_mv_ = 0;
  uint32_t alert_mask_ = 0;
  uint32_t probe_count_ = 0;
};

}  // namespace df::kernel::drivers
