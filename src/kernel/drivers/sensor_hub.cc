#include "kernel/drivers/sensor_hub.h"

namespace df::kernel::drivers {

// Block map: 1xx list, 2xx enable, 3xx rate, 4xx batch, 5xx selftest, 6xx read.

void SensorHubDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void SensorHubDriver::reset() { sensors_.fill(Sensor{}); }

int64_t SensorHubDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                               std::span<const uint8_t> in,
                               std::vector<uint8_t>& out) {
  switch (req) {
    case kIocList:
      ctx.cov(110);
      put_u32(out, kNumSensors);
      for (uint32_t i = 0; i < kNumSensors; ++i) {
        put_u32(out, i);
        put_u32(out, i % 5);  // sensor class: accel/gyro/mag/light/prox
      }
      return 0;
    case kIocEnable: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(200);
      if (id >= kNumSensors) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      if (sensors_[id].enabled) {
        ctx.cov(202);
        return err::kEBUSY;
      }
      sensors_[id].enabled = true;
      ctx.covp(21, id);  // per-sensor power-up paths
      return 0;
    }
    case kIocDisable: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(210);
      if (id >= kNumSensors || !sensors_[id].enabled) return err::kEINVAL;
      sensors_[id] = Sensor{};
      ctx.covp(22, id);
      return 0;
    }
    case kIocSetRate: {
      const uint32_t id = le_u32(in, 0);
      const uint32_t hz = le_u32(in, 4);
      ctx.cov(300);
      if (id >= kNumSensors) return err::kEINVAL;
      if (!sensors_[id].enabled) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      if (hz == 0 || hz > 1000) {
        ctx.cov(302);
        return err::kEINVAL;
      }
      sensors_[id].rate_hz = hz;
      ctx.covp(31, id * 8 + (hz > 200 ? 7 : hz / 30));  // ODR table rows
      return 0;
    }
    case kIocBatch: {
      const uint32_t id = le_u32(in, 0);
      const uint32_t depth = le_u32(in, 4);
      const uint32_t nesting = le_u32(in, 8);
      ctx.cov(400);
      if (id >= kNumSensors) return err::kEINVAL;
      if (!sensors_[id].enabled) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      if (depth == 0 || depth > 256) {
        ctx.cov(402);
        return err::kEINVAL;
      }
      // FIFO chaining only engages at high output data rates *while the
      // sensor is streaming* (samples have been drained at least once); it
      // takes the hub lock once per chained FIFO level. The fixed driver
      // clamps the level; the vendor one trusts userspace.
      const bool chaining =
          sensors_[id].rate_hz >= 400 && sensors_[id].sample_seq > 0;
      const uint32_t subclass = (bugs_.lockdep_subclass && chaining)
                                    ? nesting
                                    : (nesting & 0x7);
      if (!ctx.lock_acquire_nested(subclass, "sensor_hub->fifo_lock")) {
        return err::kEINVAL;
      }
      sensors_[id].batch_depth = depth;
      ctx.covp(41, id * 4 + (nesting & 3));
      ctx.covp(42, depth / 32);
      return 0;
    }
    case kIocSelfTest: {
      const uint32_t id = le_u32(in, 0);
      ctx.cov(500);
      if (id >= kNumSensors) return err::kEINVAL;
      ctx.covp(51, id);
      put_u32(out, sensors_[id].enabled ? 1 : 0);
      return 0;
    }
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

int64_t SensorHubDriver::read(DriverCtx& ctx, File&, size_t n,
                              std::vector<uint8_t>& out) {
  ctx.cov(600);
  if (n == 0) return 0;
  // Produce one sample per enabled sensor, round-robin sequence numbers.
  bool any = false;
  for (uint32_t i = 0; i < kNumSensors; ++i) {
    Sensor& s = sensors_[i];
    if (!s.enabled || s.rate_hz == 0) continue;
    any = true;
    put_u32(out, i);
    put_u32(out, s.sample_seq++);
    ctx.covp(61, i);
    if (out.size() >= n) break;
  }
  if (!any) {
    ctx.cov(610);
    return err::kEAGAIN;
  }
  return static_cast<int64_t>(out.size());
}

}  // namespace df::kernel::drivers
