// Vendor sensor-hub driver (simulated).
//
// Manages 16 logical sensors with enable/rate/batch controls and a sample
// FIFO. Planted bug (Table II #3): the batch path passes the user-supplied
// FIFO *nesting level* straight into a nested lock acquisition; lockdep then
// reports "BUG: looking up invalid subclass: N" for N >= 8. Gated behind an
// enabled sensor and a non-zero batch depth, so it needs a meaningful call
// sequence (the Sensors HAL batching path produces exactly that shape).
#pragma once

#include <array>

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct SensorHubBugs {
  bool lockdep_subclass = false;  // Table II #3 (device A1)
};

class SensorHubDriver final : public Driver {
 public:
  static constexpr uint64_t kIocList = 0x9001;
  static constexpr uint64_t kIocEnable = 0x9002;   // u32 id
  static constexpr uint64_t kIocDisable = 0x9003;  // u32 id
  static constexpr uint64_t kIocSetRate = 0x9004;  // u32 id, u32 hz
  static constexpr uint64_t kIocBatch = 0x9005;    // u32 id, depth, nesting
  static constexpr uint64_t kIocSelfTest = 0x9006; // u32 id

  static constexpr uint32_t kNumSensors = 16;

  explicit SensorHubDriver(SensorHubBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "sensor_hub"; }
  std::vector<std::string> nodes() const override {
    return {"/dev/sensor_hub"};
  }
  std::vector<std::string> state_names() const override {
    return {"idle", "sensing", "batching"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$SENS_ENABLE", {{"id", 0}}}}},
        {1, 2,
         {{"ioctl$SENS_BATCH", {{"id", 0}, {"depth", 16}, {"nesting", 0}}}}},
        {1, 0, {{"ioctl$SENS_DISABLE", {{"id", 0}}}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    for (const auto& s : sensors_) {
      b.b(s.enabled);
      b.u32(s.rate_hz);
      b.u32(s.batch_depth);
      b.u32(s.sample_seq);
    }
  }
  void load_state(StateReader& r) override {
    for (auto& s : sensors_) {
      s.enabled = r.b();
      s.rate_hz = r.u32();
      s.batch_depth = r.u32();
      s.sample_seq = r.u32();
    }
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override {
    const int64_t ret = ioctl_impl(ctx, f, req, in, out);
    enter_state(protocol_state());
    return ret;
  }
  int64_t read(DriverCtx& ctx, File& f, size_t n,
               std::vector<uint8_t>& out) override;

 private:
  int64_t ioctl_impl(DriverCtx& ctx, File& f, uint64_t req,
                     std::span<const uint8_t> in, std::vector<uint8_t>& out);
  // Hub-level position: any sensor batching > any sensor enabled > idle.
  size_t protocol_state() const {
    bool sensing = false;
    for (const auto& s : sensors_) {
      if (s.enabled && s.batch_depth > 0) return 2;
      sensing = sensing || s.enabled;
    }
    return sensing ? 1 : 0;
  }

  struct Sensor {
    bool enabled = false;
    uint32_t rate_hz = 0;
    uint32_t batch_depth = 0;
    uint32_t sample_seq = 0;
  };

  SensorHubBugs bugs_;
  std::array<Sensor, kNumSensors> sensors_{};
};

}  // namespace df::kernel::drivers
