#include "kernel/drivers/tcpc_core.h"

namespace df::kernel::drivers {

// Block map: 1xx init/mode, 2xx connect, 3xx pd, 4xx swap, 5xx disconnect,
// 6xx state/alert.

void TcpcDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
  st_ = St::kUninit;
}

void TcpcDriver::reset() {
  st_ = St::kUninit;
  mode_ = role_ = partner_ = contract_mv_ = contract_ma_ = alert_mask_ = 0;
  swaps_since_connect_ = 0;
}

int64_t TcpcDriver::ioctl(DriverCtx& ctx, File&, uint64_t req,
                          std::span<const uint8_t> in,
                          std::vector<uint8_t>& out) {
  switch (req) {
    case kIocInit:
      ctx.cov(110);
      if (st_ != St::kUninit) {
        ctx.cov(111);
        return err::kEBUSY;
      }
      st_ = St::kIdle;
      track_st();
      ctx.cov(112);
      return 0;
    case kIocSetMode: {
      const uint32_t mode = le_u32(in, 0);
      ctx.cov(120);
      if (st_ != St::kIdle) return err::kEINVAL;
      if (mode > 2) {
        ctx.cov(121);
        return err::kEINVAL;
      }
      mode_ = mode;
      role_ = mode == 1 ? 1 : 0;
      ctx.covp(13, mode);
      return 0;
    }
    case kIocConnect: {
      const uint32_t partner = le_u32(in, 0);
      ctx.cov(200);
      if (st_ != St::kIdle) {
        ctx.cov(201);
        return err::kEBUSY;
      }
      if (partner > 3) {
        ctx.cov(202);
        return err::kEINVAL;
      }
      partner_ = partner;
      st_ = St::kConnected;
      track_st();
      swaps_since_connect_ = 0;
      // Debounce + orientation paths depend on mode and partner kind.
      ctx.covp(21, mode_ * 4 + partner);
      return 0;
    }
    case kIocPdNegotiate: {
      const uint32_t mv = le_u32(in, 0);
      const uint32_t ma = le_u32(in, 4);
      ctx.cov(300);
      if (st_ != St::kConnected) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      // Only the standard PD tiers are accepted (source caps).
      if (mv != 5000 && mv != 9000 && mv != 15000 && mv != 20000) {
        ctx.cov(302);
        return err::kEINVAL;
      }
      if (ma == 0 || ma > 5000) {
        ctx.cov(303);
        return err::kEINVAL;
      }
      contract_mv_ = mv;
      contract_ma_ = ma;
      st_ = St::kContract;
      track_st();
      ctx.covp(31, (mv / 1000) * 8 + ma / 1000);  // per-tier contract paths
      return 0;
    }
    case kIocRoleSwap: {
      const uint32_t target = le_u32(in, 0);
      ctx.cov(400);
      if (st_ != St::kContract) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      if (target > 1) {
        ctx.cov(402);
        return err::kEINVAL;
      }
      if (mode_ != 2) {
        // Fixed-role ports reject PR_Swap.
        ctx.cov(403);
        return err::kEOPNOTSUPP;
      }
      ctx.covp(41, role_ * 2 + target);
      if (target == role_) {
        // Swap request to the role we already hold. Benign when idle; but
        // right after a completed PR_Swap the vendor state machine still
        // holds the old PS_RDY bookkeeping and asserts the roles differ.
        ctx.cov(410);
        // The assert lives in the PD alert handler, so it only fires when
        // PD alerts (bit 4) are unmasked.
        if (bugs_.role_swap_warn && contract_mv_ > 5000 &&
            swaps_since_connect_ >= 1 && (alert_mask_ & 0x10) != 0) {
          ctx.warn("tcpc_role_swap",
                   "repeat PR_Swap to current role with HV contract live");
        }
        return err::kEINVAL;
      }
      role_ = target;
      ++swaps_since_connect_;
      ctx.cov(411);
      return 0;
    }
    case kIocDisconnect:
      ctx.cov(500);
      if (st_ != St::kConnected && st_ != St::kContract) {
        ctx.cov(501);
        return err::kEINVAL;
      }
      ctx.covp(51, static_cast<uint64_t>(st_));
      st_ = St::kIdle;
      track_st();
      contract_mv_ = contract_ma_ = 0;
      return 0;
    case kIocGetState:
      ctx.cov(600);
      put_u32(out, static_cast<uint32_t>(st_));
      put_u32(out, role_);
      put_u32(out, contract_mv_);
      return 0;
    case kIocSetAlert: {
      ctx.cov(610);
      alert_mask_ = le_u32(in, 0) & 0x3f;
      for (uint32_t bit = 0; bit < 6; ++bit) {
        if (alert_mask_ & (1u << bit)) ctx.covp(62, bit);
      }
      return 0;
    }
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

}  // namespace df::kernel::drivers
