// Type-C Port Controller core (simulated vendor TCPC class driver).
//
// A deeper state machine than rt1711: INIT -> mode select -> partner connect
// -> PD contract negotiation -> role swap / disconnect. Planted bug
// (Table II #4): a power-role swap issued in DRP mode while an explicit PD
// contract above 5 V is live and the swap direction equals the current role
// trips "WARNING in tcpc_role_swap". Five ordered, value-constrained calls —
// effectively unreachable for description-less syscall fuzzing, but the
// Power HAL's usbRoleSwap() path performs the prefix naturally.
#pragma once

#include "kernel/driver.h"

namespace df::kernel::drivers {

struct TcpcBugs {
  bool role_swap_warn = false;  // Table II #4 (device A1)
};

class TcpcDriver final : public Driver {
 public:
  static constexpr uint64_t kIocInit = 0x5470;
  static constexpr uint64_t kIocSetMode = 0x5471;      // u32: 0 snk 1 src 2 drp
  static constexpr uint64_t kIocConnect = 0x5472;      // u32 partner 0..3
  static constexpr uint64_t kIocPdNegotiate = 0x5473;  // u32 mv, u32 ma
  static constexpr uint64_t kIocRoleSwap = 0x5474;     // u32 target role
  static constexpr uint64_t kIocDisconnect = 0x5475;
  static constexpr uint64_t kIocGetState = 0x5476;
  static constexpr uint64_t kIocSetAlert = 0x5477;     // u32 mask

  explicit TcpcDriver(TcpcBugs bugs = {}) : bugs_(bugs) {}

  std::string_view name() const override { return "tcpc_core"; }
  std::vector<std::string> nodes() const override { return {"/dev/tcpc"}; }
  std::vector<std::string> state_names() const override {
    return {"uninit", "idle", "connected", "contract"};
  }
  std::vector<DeclaredTransition> declared_transitions() const override {
    return {
        {0, 1, {{"ioctl$TCPC_INIT"}}},
        {1, 2, {{"ioctl$TCPC_CONNECT", {{"partner", 0}}}}},
        {2, 3, {{"ioctl$TCPC_PD_NEGOTIATE", {{"mv", 5000}, {"ma", 1000}}}}},
        {2, 1, {{"ioctl$TCPC_DISCONNECT"}}},
        {3, 1, {{"ioctl$TCPC_DISCONNECT"}}},
    };
  }

  void probe(DriverCtx& ctx) override;
  void reset() override;

  void save_state(StateBuf& b) const override {
    b.u32(static_cast<uint32_t>(st_));
    b.u32(mode_);
    b.u32(role_);
    b.u32(partner_);
    b.u32(contract_mv_);
    b.u32(contract_ma_);
    b.u32(alert_mask_);
    b.u32(swaps_since_connect_);
  }
  void load_state(StateReader& r) override {
    st_ = static_cast<St>(r.u32());
    mode_ = r.u32();
    role_ = r.u32();
    partner_ = r.u32();
    contract_mv_ = r.u32();
    contract_ma_ = r.u32();
    alert_mask_ = r.u32();
    swaps_since_connect_ = r.u32();
  }

  int64_t ioctl(DriverCtx& ctx, File& f, uint64_t req,
                std::span<const uint8_t> in,
                std::vector<uint8_t>& out) override;

 private:
  enum class St { kUninit, kIdle, kConnected, kContract };

  void track_st() { enter_state(static_cast<size_t>(st_)); }

  TcpcBugs bugs_;
  St st_ = St::kUninit;
  uint32_t mode_ = 0;      // 0 sink, 1 source, 2 drp
  uint32_t role_ = 0;      // current power role: 0 sink, 1 source
  uint32_t partner_ = 0;
  uint32_t contract_mv_ = 0;
  uint32_t contract_ma_ = 0;
  uint32_t alert_mask_ = 0;
  uint32_t swaps_since_connect_ = 0;
};

}  // namespace df::kernel::drivers
