#include "kernel/drivers/v4l2_cam.h"

namespace df::kernel::drivers {

namespace {
constexpr uint32_t kFormats[] = {
    V4l2CamDriver::kFmtYuyv, V4l2CamDriver::kFmtNv12,
    V4l2CamDriver::kFmtMjpg, V4l2CamDriver::kFmtVraw};
}

// Block map: 1xx querycap, 2xx fmt, 3xx bufs, 4xx stream, 5xx frame io.

void V4l2CamDriver::probe(DriverCtx& ctx) {
  ctx.cov(100);
}

void V4l2CamDriver::reset() {
  fourcc_ = width_ = height_ = nbufs_ = queued_ = frames_ = 0;
  streaming_ = false;
  caps_dirty_ = false;
}

int64_t V4l2CamDriver::ioctl_impl(DriverCtx& ctx, File&, uint64_t req,
                             std::span<const uint8_t> in,
                             std::vector<uint8_t>& out) {
  switch (req) {
    case kIocQuerycap:
      ctx.cov(110);
      if (caps_dirty_) {
        // Capability flags disagree with the active vendor format.
        ctx.cov(111);
        if (bugs_.querycap_warn) {
          ctx.warn("v4l_querycap", "caps inconsistent after VRAW S_FMT");
        }
        caps_dirty_ = false;
      }
      put_u32(out, 0x85200001);  // caps: capture | streaming | device_caps
      ctx.covp(12, streaming_ ? 1 : 0);
      return 0;
    case kIocEnumFmt: {
      const uint32_t idx = le_u32(in, 0);
      ctx.cov(200);
      if (idx >= 4) {
        ctx.cov(201);
        return err::kEINVAL;
      }
      put_u32(out, kFormats[idx]);
      ctx.covp(20, idx);
      return 0;
    }
    case kIocSetFmt: {
      const uint32_t fourcc = le_u32(in, 0);
      const uint32_t w = le_u32(in, 4);
      const uint32_t h = le_u32(in, 8);
      ctx.cov(210);
      size_t fmt_idx = 4;
      for (size_t i = 0; i < 4; ++i) {
        if (kFormats[i] == fourcc) fmt_idx = i;
      }
      if (fmt_idx == 4) {
        ctx.cov(211);
        return err::kEINVAL;
      }
      if (streaming_) {
        // Vendor bug: a VRAW request for the sensor's full (2x2-binned)
        // readout of the live stream is treated as an in-place reconfigure
        // and updates capability state before the busy check rejects the
        // call. (Deliberately shares the EBUSY block: invisible to
        // coverage.)
        ctx.cov(213);
        if (fourcc == kFmtVraw && w == 2 * width_ && h == 2 * height_) {
          caps_dirty_ = true;
        }
        return err::kEBUSY;
      }
      if (w == 0 || h == 0 || w > 4096 || h > 4096) {
        ctx.cov(212);
        return err::kEINVAL;
      }
      fourcc_ = fourcc;
      width_ = w;
      height_ = h;
      ctx.covp(22, fmt_idx * 8 + (w * h) / (1024 * 1024));  // per-fmt, per-MP
      return 0;
    }
    case kIocReqbufs: {
      const uint32_t count = le_u32(in, 0);
      ctx.cov(300);
      if (fourcc_ == 0) {
        ctx.cov(301);
        return err::kEINVAL;
      }
      if (streaming_) {
        ctx.cov(302);
        return err::kEBUSY;
      }
      if (count > 32) {
        ctx.cov(303);
        return err::kEINVAL;
      }
      nbufs_ = count;
      queued_ = 0;
      ctx.covp(31, count);
      return 0;
    }
    case kIocQbuf: {
      const uint32_t idx = le_u32(in, 0);
      ctx.cov(310);
      if (idx >= nbufs_) {
        ctx.cov(311);
        return err::kEINVAL;
      }
      ++queued_;
      ctx.covp(32, idx % 16);
      return 0;
    }
    case kIocDqbuf:
      ctx.cov(320);
      if (!streaming_ || queued_ == 0) {
        ctx.cov(321);
        return err::kEAGAIN;
      }
      --queued_;
      ++frames_;
      put_u32(out, frames_);
      ctx.covp(33, frames_ % 8);
      return 0;
    case kIocStreamOn:
      ctx.cov(400);
      if (nbufs_ == 0 || queued_ == 0) {
        ctx.cov(401);
        return err::kEINVAL;
      }
      if (streaming_) {
        ctx.cov(402);
        return err::kEBUSY;
      }
      streaming_ = true;
      ctx.covp(41, fourcc_ % 8);
      return 0;
    case kIocStreamOff:
      ctx.cov(410);
      if (!streaming_) {
        ctx.cov(411);
        return err::kEINVAL;
      }
      streaming_ = false;
      ctx.cov(412);
      return 0;
    default:
      ctx.cov(1);
      return err::kENOTTY;
  }
}

int64_t V4l2CamDriver::read(DriverCtx& ctx, File&, size_t n,
                            std::vector<uint8_t>& out) {
  ctx.cov(500);
  if (!streaming_) {
    ctx.cov(501);
    return err::kEAGAIN;
  }
  ++frames_;
  out.assign(n > 64 ? 64 : n, static_cast<uint8_t>(frames_));
  ctx.covp(51, frames_ % 8);
  return static_cast<int64_t>(out.size());
}

int64_t V4l2CamDriver::mmap(DriverCtx& ctx, File&, size_t len, uint64_t) {
  ctx.cov(510);
  if (nbufs_ == 0 || len == 0) {
    ctx.cov(511);
    return err::kEINVAL;
  }
  ctx.covp(52, len / 4096 % 16);
  return 0;
}

}  // namespace df::kernel::drivers
